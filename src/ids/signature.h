// Signature-based IDS substrate.
//
// The paper's ground truth (§IV-B) comes from a commercial signature IDS
// run twice — with early-2012 and June-2013 signature sets — plus public
// blacklists. We reproduce that apparatus: a rule engine matching HTTP
// requests on (URI file, User-Agent, parameter pattern) with two signature
// vintages. The 2013 set is a superset of 2012's, so servers matched only
// by 2013 signatures play the paper's "zero-day at 2012 time" role.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/trace.h"

namespace smash::ids {

enum class Vintage : std::uint8_t { k2012 = 0, k2013 = 1 };

struct Signature {
  std::string threat_id;  // e.g. "Trojan.Zbot"; groups servers into threats
  // Match criteria; empty string = wildcard. At least one must be set.
  std::string uri_file;       // exact match on the request's URI file
  std::string user_agent;     // exact match on the User-Agent header
  std::string param_pattern;  // exact match on the blanked parameter pattern
  Vintage vintage = Vintage::k2012;

  bool matches(const net::HttpRequest& request) const;
};

// Per-server IDS verdicts for a trace, keyed by aggregated server name
// (effective 2LD), which is the unit the evaluation operates on.
struct IdsLabels {
  // server 2LD -> threat ids that fired on at least one request to it.
  std::unordered_map<std::string, std::unordered_set<std::string>> threats;

  bool labeled(std::string_view server) const {
    return threats.count(std::string(server)) > 0;
  }
};

class SignatureEngine {
 public:
  void add(Signature signature);

  std::size_t size() const noexcept { return signatures_.size(); }

  // Runs all signatures of `vintage` (for k2013: 2012 rules are included —
  // signature sets only grow) over the trace; returns per-2LD labels.
  IdsLabels label(const net::Trace& trace, Vintage vintage) const;

 private:
  std::vector<Signature> signatures_;
};

}  // namespace smash::ids
