// Concurrency hammer for the serving path: N reader threads fire
// VerdictService::lookup / lookup_request nonstop while snapshots publish
// underneath — windows sliding in sync mode, async mining with forced
// skip-to-newest coalescing, and a recovered engine republishing after a
// restart. TSan (CI's tsan job runs *Stream* tests) holds the SnapshotSlot
// swap to being race-free; the inline invariants hold every answer to
// being coherent, never torn: a malicious verdict always carries its
// campaign detail, an available snapshot always carries a positive
// sequence and a non-negative read-time age, and the sequence a single
// thread observes never moves backwards.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "stream/engine.h"
#include "stream/verdict.h"
#include "synth/stream_gen.h"

namespace smash::stream {
namespace {

synth::StreamScenarioConfig hammer_scenario_config() {
  synth::StreamScenarioConfig config;
  config.seed = 11;
  config.duration_s = 6 * 600;
  config.benign_servers = 60;
  config.benign_clients = 40;
  config.benign_visits = 500;
  config.popular_servers = 2;
  config.popular_clients = 70;
  config.campaigns = 1;
  config.campaign_servers = 5;
  config.campaign_bots = 4;
  config.poll_interval_s = 120;
  config.active_fraction = 0.5;
  return config;
}

StreamConfig hammer_stream_config() {
  StreamConfig config;
  // A window shorter than the scenario so epochs slide out mid-feed:
  // publications replace snapshots whose verdict sets genuinely differ.
  config.epoch_seconds = 600;
  config.window_epochs = 3;
  config.smash.idf_threshold = 50;
  return config;
}

// One reader: alternates lookup() and lookup_request() across campaign,
// benign and unknown keys, checking per-answer coherence and that its own
// view of the snapshot sequence never regresses.
void hammer_reader(const VerdictService& service,
                   const std::vector<std::string>& hosts,
                   const std::atomic<bool>& stop,
                   std::atomic<std::uint64_t>& reads) {
  std::uint64_t last_sequence = 0;
  std::size_t i = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    const auto& host = hosts[i++ % hosts.size()];
    const VerdictAnswer answer =
        (i % 2 == 0) ? service.lookup(host)
                     : service.lookup_request(host, "198.51.100.7");
    if (answer.snapshot_available) {
      ASSERT_GE(answer.snapshot_sequence, 1u);
      ASSERT_GE(answer.snapshot_sequence, last_sequence)
          << "a thread's snapshot view moved backwards";
      last_sequence = answer.snapshot_sequence;
      ASSERT_GE(answer.snapshot_age_s, 0.0);
    } else {
      ASSERT_EQ(answer.snapshot_sequence, 0u);
      ASSERT_LT(answer.snapshot_age_s, 0.0);
    }
    if (answer.malicious) {
      ASSERT_GE(answer.verdict.campaign_servers, 1u);
    }
    reads.fetch_add(1, std::memory_order_relaxed);
  }
}

struct HammerRun {
  std::uint64_t reads = 0;
};

// Feeds `engine` the scenario with `threads` readers attached, joining
// them after finish(). Shared by all three publication modes.
HammerRun run_hammer(StreamEngine& engine, const synth::StreamScenario& scenario,
                     int threads = 4) {
  const VerdictService service(engine.slot());
  std::vector<std::string> hosts;
  for (const auto& campaign : scenario.campaigns) {
    hosts.insert(hosts.end(), campaign.servers.begin(),
                 campaign.servers.end());
    hosts.push_back("www." + campaign.servers[0]);
  }
  hosts.push_back("site3.org");
  hosts.push_back("unknown.example");

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < threads; ++t) {
    readers.emplace_back(
        [&] { hammer_reader(service, hosts, stop, reads); });
  }
  synth::feed(engine, scenario);
  engine.finish();
  stop.store(true);
  for (auto& reader : readers) reader.join();
  return {reads.load()};
}

TEST(StreamHammer, SyncPublicationWithSlidingWindows) {
  const auto scenario = synth::generate_stream(hammer_scenario_config());
  StreamEngine engine(hammer_stream_config(), scenario.whois);
  const auto run = run_hammer(engine, scenario);
  EXPECT_GT(run.reads, 0u);
  EXPECT_GT(engine.snapshots_published(), 1u)
      << "the hammer must race real publications";
}

TEST(StreamHammer, AsyncCoalescedPublication) {
  const auto scenario = synth::generate_stream(hammer_scenario_config());
  StreamConfig config = hammer_stream_config();
  config.async_mining = true;
  // Slow each mine enough that closes pile up behind it and coalesce —
  // publications then skip windows, the racier schedule.
  config.mine_throttle_ms = 5;
  StreamEngine engine(config, scenario.whois);
  const auto run = run_hammer(engine, scenario);
  EXPECT_GT(run.reads, 0u);
  ASSERT_NE(engine.snapshot(), nullptr);
  // Every close is accounted for even when windows were skipped.
  EXPECT_EQ(engine.snapshot()->sequence(), engine.epochs_closed_total());
}

TEST(StreamHammer, RecoveredEngineRepublishes) {
  const auto scenario = synth::generate_stream(hammer_scenario_config());
  const auto dir = std::filesystem::temp_directory_path() /
                   "smash_serve_hammer_recovery";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  StreamConfig config = hammer_stream_config();
  config.durability_dir = dir.string();

  // First life: feed the front half, shut down cleanly (the WAL holds the
  // full story).
  const std::size_t cut = scenario.events.size() / 2;
  {
    StreamEngine first(config, scenario.whois);
    for (std::size_t i = 0; i < cut; ++i) {
      synth::ingest_event(first, scenario.events[i]);
    }
  }

  // Second life: recover() republishes the restored window, then the
  // readers race the post-recovery publications.
  auto recovered = StreamEngine::recover(config, scenario.whois);
  ASSERT_TRUE(recovered->recovery_stats().recovered);

  const VerdictService service(recovered->slot());
  // The republished snapshot is visible before any new epoch closes.
  const bool republished = service.stats().snapshot_available;

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::string> hosts{scenario.campaigns[0].servers[0],
                                 "site3.org", "unknown.example"};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back(
        [&] { hammer_reader(service, hosts, stop, reads); });
  }
  for (std::size_t i = cut; i < scenario.events.size(); ++i) {
    synth::ingest_event(*recovered, scenario.events[i]);
  }
  recovered->finish();
  stop.store(true);
  for (auto& reader : readers) reader.join();

  EXPECT_GT(reads.load(), 0u);
  ASSERT_NE(recovered->snapshot(), nullptr);
  // The first life closed at least one epoch, so recover() republished.
  EXPECT_TRUE(republished);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace smash::stream
