#include "core/pruning.h"

#include <algorithm>
#include <optional>
#include <unordered_set>

namespace smash::core {

namespace {

// Follows aggregated redirect edges from `server` to the chain's landing
// (last hop without an outgoing redirect). Cycle-guarded. Returns nullopt
// when the server does not redirect at all.
std::optional<std::uint32_t> landing_of(const AggregatedTrace& agg,
                                        std::uint32_t server) {
  const auto& redirects = agg.redirects();
  auto it = redirects.find(server);
  if (it == redirects.end()) return std::nullopt;
  std::unordered_set<std::uint32_t> seen{server};
  std::uint32_t current = it->second;
  while (true) {
    if (!seen.insert(current).second) return std::nullopt;  // cycle
    auto next = redirects.find(current);
    if (next == redirects.end()) return current;
    current = next->second;
  }
}

// The referrer host present on >= `dominance` of the server's requests,
// if any.
std::optional<std::uint32_t> dominant_referrer(const ServerProfile& profile,
                                               double dominance) {
  for (const auto& [host, count] : profile.referrer_counts) {
    if (static_cast<double>(count) >=
        dominance * static_cast<double>(profile.requests)) {
      return host;
    }
  }
  return std::nullopt;
}

}  // namespace

PruneResult prune(const PreprocessResult& pre,
                  const std::vector<std::vector<std::uint32_t>>& groups,
                  const SmashConfig& config) {
  PruneResult out;
  const auto& agg = pre.agg;

  for (const auto& group : groups) {
    std::vector<std::uint32_t> pruned;
    std::unordered_set<std::uint32_t> added;  // aggregated ids added

    const auto add_agg_server = [&](std::uint32_t agg_id) {
      if (!added.insert(agg_id).second) return;
      const auto kept_idx = pre.kept_index_of[agg_id];
      // Landing servers filtered by the IDF step stay out (they are
      // popular, hence uninteresting by construction).
      if (kept_idx >= 0) pruned.push_back(static_cast<std::uint32_t>(kept_idx));
    };

    for (auto member : group) {
      const auto agg_id = pre.kept[member];

      // Redirection group member: the whole chain is represented by its
      // landing server.
      if (const auto landing = landing_of(agg, agg_id)) {
        ++out.stats.redirect_members_replaced;
        add_agg_server(*landing);
        continue;
      }

      // Referrer group member: represented by the landing (referring)
      // server, unless the member *is* its own herd's landing.
      const auto referrer =
          dominant_referrer(agg.profile(agg_id), config.referrer_dominance);
      if (referrer && *referrer != agg_id) {
        ++out.stats.referrer_members_replaced;
        add_agg_server(*referrer);
        continue;
      }

      add_agg_server(agg_id);
    }

    std::sort(pruned.begin(), pruned.end());
    if (pruned.size() >= 2) {
      out.groups.push_back(std::move(pruned));
    } else {
      ++out.stats.groups_dropped;
    }
  }
  return out;
}

}  // namespace smash::core
