// Thin POSIX I/O shim with fault-injection hooks — the only place the
// durability layer touches the filesystem. Every mutating operation
// consults a util::FailPoint site named "<site>.<op>" (e.g. "wal.write",
// "ckpt.fsync", "ckpt.rename"), so tests and the CI crash matrix can
// deterministically inject clean I/O errors (IoError), short/torn writes,
// and simulated process deaths (util::SimulatedCrash) at exact byte
// offsets without mocking the engine above.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace smash::durability {

// A real I/O failure (or an injected kError): the operation did not
// complete and the durability layer must treat the log as unusable.
struct IoError : std::runtime_error {
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

// Write-side RAII fd. Movable, not copyable; close() is idempotent and the
// destructor never throws (a failed close at teardown is logged to stderr).
class File {
 public:
  File() = default;
  ~File();
  File(File&& other) noexcept;
  File& operator=(File&& other) noexcept;
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  // Creates (O_CREAT | O_TRUNC) `path` for writing. `site` prefixes the
  // failpoint names consulted by write()/sync().
  static File create(const std::string& path, std::string site);

  // Opens `path` for appending (creating it when absent); offset() starts
  // at the existing size. Recovery uses this to resume the last WAL
  // segment after truncating it to its valid prefix.
  static File append_to(const std::string& path, std::string site);

  bool is_open() const noexcept { return fd_ >= 0; }
  std::uint64_t offset() const noexcept { return offset_; }

  // Appends all of `bytes` (looping over partial writes). Failpoints:
  // "<site>.write" — kError throws IoError, kCrash throws SimulatedCrash
  // before writing, kShortWrite writes action.bytes bytes then throws
  // SimulatedCrash (a torn record on disk, exactly as a mid-write power
  // cut would leave it).
  void write(std::string_view bytes);

  // fsync(2). Failpoint "<site>.fsync": kError -> IoError, kCrash ->
  // SimulatedCrash (before syncing).
  void sync();

  void close();

  // --- path-level helpers ----------------------------------------------------
  static bool exists(const std::string& path);
  static std::uint64_t size_of(const std::string& path);
  static std::string read_all(const std::string& path);
  static void truncate_file(const std::string& path, std::uint64_t size);
  // rename(2); consults "<site>.rename" (kError/kCrash).
  static void rename_file(const std::string& from, const std::string& to,
                          const std::string& site);
  static void remove_file(const std::string& path);
  // mkdir -p equivalent.
  static void make_dirs(const std::string& dir);
  // Opens `path` read-only and fsyncs it — used to make a truncation
  // durable when there is no writer fd open on the file.
  static void sync_path(const std::string& path);
  // fsync on the directory itself (durable rename/create on POSIX). When
  // `site` is non-empty, consults "<site>.dirsync" (kError -> IoError,
  // anything else armed -> SimulatedCrash) before syncing.
  static void sync_dir(const std::string& dir, const std::string& site = "");
  // Plain file names (not paths) in `dir`, sorted.
  static std::vector<std::string> list_dir(const std::string& dir);

 private:
  int fd_ = -1;
  std::uint64_t offset_ = 0;
  std::string path_;
  std::string site_;
};

// Exclusive advisory lock on a durability directory, held via flock(2) on
// `<dir>/LOCK` for the lifetime of the object. Guards against two journals
// (in one process or across processes) interleaving appends into the same
// segment files. flock locks are per open-file-description, so a second
// acquire in the same process conflicts just like one from another
// process; the lock dies with the fd — a SIGKILL/_Exit releases it, and a
// stale LOCK file on disk is inert.
class DirLock {
 public:
  DirLock() = default;
  ~DirLock();
  DirLock(DirLock&& other) noexcept;
  DirLock& operator=(DirLock&& other) noexcept;
  DirLock(const DirLock&) = delete;
  DirLock& operator=(const DirLock&) = delete;

  // Takes the lock (LOCK_EX | LOCK_NB); throws IoError when another
  // journal already holds it. `dir` must exist.
  static DirLock acquire(const std::string& dir);

  bool held() const noexcept { return fd_ >= 0; }
  void release();

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace smash::durability
