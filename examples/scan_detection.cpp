// Attacking-activity scenario (paper Fig. 1b): a ZmEu-style scanning
// campaign probing setup.php across hundreds of benign servers, plus the
// WordPress iframe-injection campaign of Table IX. Shows how SMASH groups
// the *victims* into an attacking campaign — servers a defender should
// patch, not block.
//
//   ./scan_detection [seed]
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

#include "core/pipeline.h"
#include "synth/world.h"

int main(int argc, char** argv) {
  using namespace smash;

  auto config = synth::data2011day();
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);
  std::puts("generating ISP day trace...");
  const synth::Dataset dataset = synth::generate_world(config);

  const core::SmashPipeline pipeline{core::SmashConfig{}};
  const core::SmashResult result = pipeline.run(dataset.trace, dataset.whois);

  // Attacking campaigns look different from C&C herds: large victim sets,
  // a tiny set of shared "clients" (the scanners/injectors), one shared
  // vulnerable/injected URI file, and *no* infrastructure correlation.
  std::puts("\n=== inferred attacking campaigns (victim herds) ===");
  for (const auto& campaign : result.campaigns) {
    if (campaign.servers.size() < 30) continue;  // attacking herds are big
    // Count the dominant URI file across members.
    std::map<std::string, int> file_counts;
    for (auto member : campaign.servers) {
      for (auto f : result.server_profile(member).files) {
        ++file_counts[result.pre.agg.files().name(f)];
      }
    }
    std::string top_file;
    int top_count = 0;
    for (const auto& [file, count] : file_counts) {
      if (count > top_count && !file.empty()) { top_count = count; top_file = file; }
    }
    if (2 * top_count < static_cast<int>(campaign.servers.size())) continue;

    // User-Agent fingerprint of the attackers.
    std::set<std::string> uas;
    for (auto member : campaign.servers) {
      for (const auto& ua : result.server_profile(member).user_agents) {
        uas.insert(ua);
      }
      if (uas.size() > 4) break;
    }

    std::printf("\ncampaign: %zu victim servers, %zu attacking clients\n",
                campaign.servers.size(), campaign.involved_clients.size());
    std::printf("  shared URI file: %-24s (on %d victims)\n", top_file.c_str(),
                top_count);
    std::printf("  attacker clients:");
    for (auto c : campaign.involved_clients) {
      std::printf(" %s", dataset.trace.clients().name(c).c_str());
    }
    std::printf("\n  sample victims:");
    for (std::size_t i = 0; i < campaign.servers.size() && i < 4; ++i) {
      std::printf(" %s", result.server_name(campaign.servers[i]).c_str());
    }
    std::puts(" ...");
    // Error-rate tells scans (404 probes) apart from successful injections.
    std::uint64_t errors = 0;
    std::uint64_t requests = 0;
    for (auto member : campaign.servers) {
      errors += result.server_profile(member).error_requests;
      requests += result.server_profile(member).requests;
    }
    std::printf("  request error rate: %.0f%%  -> %s\n",
                100.0 * errors / requests,
                errors * 2 > requests ? "probing scan (mostly 404s)"
                                      : "successful compromise (injected file served)");
  }
  return 0;
}
