// Shared helpers for building tiny hand-crafted traces in unit tests.
#pragma once

#include <string>
#include <string_view>

#include "net/trace.h"

namespace smash::test {

// Appends one request; interns names on the fly.
inline void add_request(net::Trace& trace, std::string_view client,
                        std::string_view host, std::string path,
                        std::string user_agent = "UA", std::string referrer = "",
                        std::uint16_t status = 200, std::uint32_t day = 0) {
  net::HttpRequest req;
  req.client = trace.intern_client(client);
  req.server = trace.intern_server(host);
  req.day = day;
  req.status = status;
  req.path = std::move(path);
  req.user_agent = std::move(user_agent);
  req.referrer = std::move(referrer);
  trace.add_request(std::move(req));
}

inline void resolve(net::Trace& trace, std::string_view host, std::string_view ip) {
  trace.add_resolution(trace.intern_server(host), trace.intern_ip(ip));
}

}  // namespace smash::test
