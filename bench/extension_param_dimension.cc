// Extension study (paper §V-A2 + §VI): the parameter-pattern dimension.
//
// The paper's false-negative analysis found 40 malicious servers (Cycbot,
// FakeAV, Tidserv) sharing *only* URI parameter patterns — invisible to
// the four shipped dimensions — and suggested extending the URI-file
// dimension with parameter structure. This bench runs SMASH with and
// without the kParam dimension and reports how many of the injected
// no-secondary-dimension campaigns are recovered, and what it costs in
// false positives.
#include <cstdio>
#include <set>

#include "bench_common.h"

namespace {

using namespace smash;

struct Outcome {
  int nosec_detected = 0;
  int nosec_total = 0;
  core::ServerCounts servers;
  int fn_threats = 0;
};

Outcome run(const synth::Dataset& ds, bool with_param) {
  core::SmashConfig config;
  config.enable_param_dimension = with_param;
  const core::SmashPipeline pipeline(config);
  const auto result = pipeline.run(ds.trace, ds.whois);

  std::set<std::string> detected;
  for (const auto& campaign : result.campaigns) {
    for (auto member : campaign.servers) {
      detected.insert(result.server_name(member));
    }
  }

  Outcome out;
  for (const auto& truth : ds.truth.campaigns()) {
    if (!truth.name.starts_with("nosec-")) continue;
    for (const auto& server : truth.servers) {
      ++out.nosec_total;
      out.nosec_detected += detected.count(server);
    }
  }
  const core::Evaluator evaluator(ds.trace, ds.signatures, ds.blacklist, ds.truth);
  const auto multi = evaluator.evaluate(result, false);
  out.servers = multi.server_counts;
  out.fn_threats = static_cast<int>(multi.false_negatives.size());
  return out;
}

}  // namespace

int main() {
  const auto& ds = smash::bench::dataset("2011day");

  smash::util::Table table(
      "Extension: parameter-pattern dimension (recovers Sec. V-A2 FNs)");
  table.set_header({"configuration", "nosec servers found", "SMASH servers",
                    "FP servers", "FP (updated)", "FN threat groups"});
  for (const bool with_param : {false, true}) {
    const auto outcome = run(ds, with_param);
    table.add_row({with_param ? "4 dims + param-pattern" : "paper's 4 dimensions",
                   std::to_string(outcome.nosec_detected) + "/" +
                       std::to_string(outcome.nosec_total),
                   std::to_string(outcome.servers.smash),
                   std::to_string(outcome.servers.false_positives),
                   std::to_string(outcome.servers.fp_updated),
                   std::to_string(outcome.fn_threats)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nTarget: the no-secondary-dimension campaigns (shared parameter");
  std::puts("  structure only, the Cycbot shape) go from missed to detected when");
  std::puts("  the extension dimension is enabled, at little or no FP cost.");
  return 0;
}
