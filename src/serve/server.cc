#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "obs/trace.h"

namespace smash::serve {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

double now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

VerdictServer::VerdictServer(const stream::SnapshotSlot& slot,
                             ServeConfig config)
    : config_(std::move(config)),
      metrics_(config_.metrics ? config_.metrics
                               : std::make_shared<obs::Registry>()),
      service_(slot, metrics_) {
  m_.connections_opened = &metrics_->counter(
      "serve.connections_opened_total", "client connections accepted");
  m_.connections_rejected = &metrics_->counter(
      "serve.connections_rejected_total",
      "connections refused over max_connections");
  m_.accepted = &metrics_->counter("serve.accepted_total",
                                   "request frames admitted to lookup");
  m_.rejected = &metrics_->counter(
      "serve.rejected_total", "request frames shed by admission control");
  m_.responses =
      &metrics_->counter("serve.responses_total", "response frames queued");
  m_.stale = &metrics_->counter(
      "serve.stale_total", "responses answered past the staleness SLO");
  m_.partial_batches = &metrics_->counter(
      "serve.partial_batches_total", "batched requests answered partially");
  m_.request_ns = &metrics_->histogram(
      "serve.request_ns", obs::latency_buckets_ns(),
      "request decode to response queued, per request frame");
  m_.queue_depth = &metrics_->gauge(
      "serve.queue_depth", "un-flushed response bytes across connections");
  m_.connections = &metrics_->gauge("serve.connections", "open connections");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    throw std::runtime_error("VerdictServer: bad bind address " +
                             config_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(listen_fd_);
    throw_errno("bind");
  }
  if (::listen(listen_fd_, config_.listen_backlog) < 0) {
    ::close(listen_fd_);
    throw_errno("listen");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) < 0) {
    ::close(listen_fd_);
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) {
    ::close(listen_fd_);
    throw_errno("epoll_create1");
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(listen_fd_);
    ::close(epoll_fd_);
    throw_errno("eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    throw_errno("epoll_ctl(listen)");
  }
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    throw_errno("epoll_ctl(wake)");
  }

  loop_ = std::thread([this] { run(); });
}

VerdictServer::~VerdictServer() { stop(); }

void VerdictServer::stop() {
  if (!stopping_.exchange(true)) {
    const std::uint64_t one = 1;
    // A full eventfd counter or a torn write are both impossible here
    // (one writer, 8-byte write), but never block a destructor on a
    // syscall result.
    [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof(one));
  }
  if (loop_.joinable()) loop_.join();
  // Only after the join: closing the eventfd on the loop thread would race
  // this function's wake-up write.
  if (listen_fd_ >= 0) ::close(std::exchange(listen_fd_, -1));
  if (epoll_fd_ >= 0) ::close(std::exchange(epoll_fd_, -1));
  if (wake_fd_ >= 0) ::close(std::exchange(wake_fd_, -1));
}

void VerdictServer::run() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, /*timeout=*/200);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself failed; nothing sane left to do
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) continue;  // drained by the loop condition
      if (fd == listen_fd_) {
        handle_accept();
        continue;
      }
      const auto it = connections_.find(fd);
      if (it == connections_.end()) continue;  // closed earlier this batch
      Connection& conn = it->second;
      bool alive = true;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        alive = false;
      }
      if (alive && (events[i].events & EPOLLIN) != 0) {
        alive = handle_readable(fd, conn);
      }
      if (alive && (events[i].events & EPOLLOUT) != 0) {
        alive = flush(fd, conn);
      }
      if (alive) {
        update_interest(fd, conn);
      } else {
        close_connection(fd);
      }
    }
    refresh_queue_depth();
  }
  // Connection teardown on the loop thread (no other thread ever touches
  // connections_); the listen/epoll/wake fds are closed by stop() after
  // the join so they cannot race the wake-up write.
  for (const auto& [fd, conn] : connections_) ::close(fd);
  connections_.clear();
  m_.connections->set(0.0);
  m_.queue_depth->set(0.0);
}

void VerdictServer::handle_accept() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the next event retries
    }
    if (connections_.size() >= config_.max_connections) {
      // Explicit rejection beats a silently growing backlog: close now,
      // count it, let the client see ECONNRESET/EOF immediately.
      m_.connections_rejected->inc();
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (config_.sndbuf_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config_.sndbuf_bytes,
                   sizeof(config_.sndbuf_bytes));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    connections_.emplace(fd, Connection{});
    m_.connections_opened->inc();
    m_.connections->set(static_cast<double>(connections_.size()));
  }
}

bool VerdictServer::handle_readable(int fd, Connection& conn) {
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n == 0) return false;  // peer closed
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    conn.decoder.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    std::string payload;
    while (conn.decoder.next(payload)) {
      if (!handle_request(conn, payload)) return false;
    }
    if (conn.decoder.failed()) return false;  // oversized frame: hang up
    // Hard bound: a peer that will not drain its responses gets TCP
    // pushback, not unbounded server memory.
    if (conn.pending_bytes() >= 2 * config_.max_pending_response_bytes) break;
  }
  return flush(fd, conn);
}

bool VerdictServer::handle_request(Connection& conn, std::string_view payload) {
  const double start_ns = now_ns();
  const auto request = decode_request(payload);
  if (!request) return false;  // malformed: framing contract broken, hang up

  ResponseFrame response;
  response.type = request->type;
  response.request_id = request->request_id;

  if (conn.pending_bytes() > config_.max_pending_response_bytes) {
    // Shed before any lookup: the response queue is already past the
    // bound, so answering would grow it further for a peer not draining.
    response.status = FrameStatus::kRejected;
    m_.rejected->inc();
  } else {
    m_.accepted->inc();
    SMASH_SPAN("serve.request");
    bool stale = false;
    bool first = true;
    for (const auto& key : request->lookups) {
      // Mid-batch shedding: a huge batch admitted at the edge of the
      // bound stops early instead of blowing through it; the shortfall
      // is visible in answers.size() < request count.
      if (!first &&
          conn.pending_bytes() + response.answers.size() * 22 >
              2 * config_.max_pending_response_bytes) {
        break;
      }
      const auto answer = service_.lookup_request(key.host, key.server_ip);
      if (first) {
        response.snapshot_sequence = answer.snapshot_sequence;
        if (answer.snapshot_age_s >= 0.0) {
          response.snapshot_age_ms =
              static_cast<std::uint32_t>(answer.snapshot_age_s * 1e3);
        }
        // No snapshot yet is stale by definition; otherwise compare the
        // read-time age against the SLO.
        stale = !answer.snapshot_available ||
                (config_.stale_after_ms > 0.0 &&
                 answer.snapshot_age_s * 1e3 > config_.stale_after_ms);
        first = false;
      }
      AnswerEntry entry;
      entry.malicious = answer.malicious;
      entry.campaign = answer.verdict.campaign;
      entry.campaign_servers = answer.verdict.campaign_servers;
      entry.window_requests = answer.verdict.window_requests;
      entry.active_epochs = answer.verdict.active_epochs;
      response.answers.push_back(entry);
    }
    if (stale) {
      response.status = FrameStatus::kStale;
      m_.stale->inc();
    }
    if (response.answers.size() < request->lookups.size()) {
      m_.partial_batches->inc();
    }
  }

  encode_response(conn.outbound, response);
  m_.responses->inc();
  m_.request_ns->observe(now_ns() - start_ns);
  return true;
}

bool VerdictServer::flush(int fd, Connection& conn) {
  while (conn.flushed < conn.outbound.size()) {
    const ssize_t n = ::write(fd, conn.outbound.data() + conn.flushed,
                              conn.outbound.size() - conn.flushed);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    conn.flushed += static_cast<std::size_t>(n);
  }
  if (conn.flushed == conn.outbound.size()) {
    conn.outbound.clear();
    conn.flushed = 0;
  } else if (conn.flushed > conn.outbound.size() / 2) {
    conn.outbound.erase(0, conn.flushed);
    conn.flushed = 0;
  }
  return true;
}

void VerdictServer::update_interest(int fd, Connection& conn) {
  const bool want_write = conn.pending_bytes() > 0;
  const bool pause_read =
      conn.pending_bytes() >= 2 * config_.max_pending_response_bytes;
  if (want_write == conn.want_write && pause_read == conn.paused_read) return;
  conn.want_write = want_write;
  conn.paused_read = pause_read;
  epoll_event ev{};
  ev.events = (pause_read ? 0u : EPOLLIN) | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

void VerdictServer::close_connection(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  connections_.erase(fd);
  m_.connections->set(static_cast<double>(connections_.size()));
}

void VerdictServer::refresh_queue_depth() {
  std::size_t pending = 0;
  for (const auto& [fd, conn] : connections_) pending += conn.pending_bytes();
  m_.queue_depth->set(static_cast<double>(pending));
}

}  // namespace smash::serve
