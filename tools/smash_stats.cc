// Pretty-printer for the obs exporters' JSON (docs/OBSERVABILITY.md):
// either a registry dump (render_json: {"counters":...,"gauges":...,
// "histograms":...}) or a MetricsLogger JSONL file ({"ts_unix_ms":...,
// "metrics":{...}} per line). For JSONL the last line gives current
// values and the first line the baseline, so counter rates fall out of
// the two timestamps. Histograms print count / mean / bucket-interpolated
// p50/p95/p99.
//
// Usage: smash_stats <metrics.json | metrics.jsonl>
//        smash_stats -          (read a single JSON document from stdin)
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

// --- minimal JSON reader -----------------------------------------------------
// Covers exactly what the exporters emit: objects, arrays, numbers, strings
// with \" escapes, true/false/null. Not a general-purpose parser.

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  const Json* find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Json parse() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Json v;
        v.type = Json::Type::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        Json v;
        v.type = Json::Type::kBool;
        v.boolean = peek() == 't';
        if (!consume_literal(v.boolean ? "true" : "false")) fail("bad literal");
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return Json{};
      }
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u':
          // The exporters never emit \u escapes; keep them legible if a
          // hand-edited file has one.
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          out.append(text_, pos_, 4);
          pos_ += 4;
          break;
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            std::strchr("+-.eE", text_[pos_]) != nullptr)) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    Json v;
    v.type = Json::Type::kNumber;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  Json parse_array() {
    expect('[');
    Json v;
    v.type = Json::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      expect(',');
    }
  }

  Json parse_object() {
    expect('{');
    Json v;
    v.type = Json::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      expect(',');
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// --- printing ----------------------------------------------------------------

// Linear interpolation inside the winning bucket, Prometheus
// histogram_quantile style. `bounds` are inclusive upper bounds; the +Inf
// bucket reports its lower bound (the data gives no upper edge).
double bucket_quantile(const std::vector<double>& bounds,
                       const std::vector<double>& counts, double q) {
  double total = 0.0;
  for (const double c : counts) total += c;
  if (total <= 0.0) return 0.0;
  const double rank = q * total;
  double cumulative = 0.0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const double next = cumulative + counts[b];
    if (next >= rank && counts[b] > 0.0) {
      if (b >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
      const double lo = b == 0 ? 0.0 : bounds[b - 1];
      return lo + (bounds[b] - lo) * ((rank - cumulative) / counts[b]);
    }
    cumulative = next;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

void print_metrics(const Json& metrics, double window_s,
                   const Json* baseline) {
  if (const Json* counters = metrics.find("counters");
      counters != nullptr && !counters->object.empty()) {
    std::printf("counters\n");
    const Json* base_counters =
        baseline != nullptr ? baseline->find("counters") : nullptr;
    for (const auto& [name, value] : counters->object) {
      std::printf("  %-34s %14.0f", name.c_str(), value.number);
      if (window_s > 0.0 && base_counters != nullptr) {
        const Json* base = base_counters->find(name);
        const double delta = value.number - (base != nullptr ? base->number : 0.0);
        std::printf("   %10.1f /s", delta / window_s);
      }
      std::printf("\n");
    }
  }
  if (const Json* gauges = metrics.find("gauges");
      gauges != nullptr && !gauges->object.empty()) {
    std::printf("gauges\n");
    for (const auto& [name, value] : gauges->object) {
      std::printf("  %-34s %14.3f\n", name.c_str(), value.number);
    }
  }
  const Json* histograms = metrics.find("histograms");
  if (histograms == nullptr || histograms->object.empty()) return;
  std::printf("histograms%26s %10s %10s %10s %10s\n", "count", "mean", "p50",
              "p95", "p99");
  for (const auto& [name, hist] : histograms->object) {
    const Json* count = hist.find("count");
    const Json* sum = hist.find("sum");
    const Json* bounds_json = hist.find("bounds");
    const Json* counts_json = hist.find("counts");
    if (count == nullptr || sum == nullptr || bounds_json == nullptr ||
        counts_json == nullptr) {
      std::printf("  %-34s (malformed)\n", name.c_str());
      continue;
    }
    std::vector<double> bounds, counts;
    for (const auto& b : bounds_json->array) bounds.push_back(b.number);
    for (const auto& c : counts_json->array) counts.push_back(c.number);
    const double n = count->number;
    std::printf("  %-33s %10.0f %10.3f %10.3f %10.3f %10.3f\n", name.c_str(),
                n, n > 0.0 ? sum->number / n : 0.0,
                bucket_quantile(bounds, counts, 0.50),
                bucket_quantile(bounds, counts, 0.95),
                bucket_quantile(bounds, counts, 0.99));
  }
}

int run(const std::string& path) {
  std::string content;
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    content = buffer.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "smash_stats: cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    content = buffer.str();
  }

  // Split into non-empty lines: one line = registry dump, many = JSONL.
  std::vector<std::string> lines;
  std::istringstream stream(content);
  for (std::string line; std::getline(stream, line);) {
    if (line.find_first_not_of(" \t\r") != std::string::npos) {
      lines.push_back(line);
    }
  }
  if (lines.empty()) {
    std::fprintf(stderr, "smash_stats: %s is empty\n", path.c_str());
    return 1;
  }

  const Json last = JsonParser(lines.back()).parse();
  const Json* metrics = last.find("metrics");
  if (metrics == nullptr) {
    // A bare registry dump (metrics.json): no timestamps, no rates.
    print_metrics(last, 0.0, nullptr);
    return 0;
  }

  // MetricsLogger JSONL: rate counters across first -> last line.
  Json first;
  double window_s = 0.0;
  if (lines.size() > 1) {
    first = JsonParser(lines.front()).parse();
    const Json* t0 = first.find("ts_unix_ms");
    const Json* t1 = last.find("ts_unix_ms");
    if (t0 != nullptr && t1 != nullptr) {
      window_s = (t1->number - t0->number) / 1000.0;
    }
  }
  const Json* ts = last.find("ts_unix_ms");
  std::printf("%zu samples%s", lines.size(), window_s > 0.0 ? ", " : "\n");
  if (window_s > 0.0) std::printf("%.1f s window\n", window_s);
  if (ts != nullptr) std::printf("last sample at unix_ms %.0f\n", ts->number);
  print_metrics(*metrics, window_s,
                lines.size() > 1 ? first.find("metrics") : nullptr);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2 || std::strcmp(argv[1], "--help") == 0) {
    std::fprintf(stderr,
                 "usage: smash_stats <metrics.json | metrics.jsonl | ->\n"
                 "pretty-prints a smash obs registry dump or MetricsLogger "
                 "JSONL file\n");
    return argc == 2 ? 0 : 2;
  }
  try {
    return run(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "smash_stats: %s\n", e.what());
    return 1;
  }
}
