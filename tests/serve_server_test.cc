// Socket-level tests for VerdictServer: real TCP connections against a
// live server fronting a StreamEngine's snapshot slot. Covers single and
// batched lookups, the staleness SLO, deterministic shedding (kRejected +
// partial batches) via the sndbuf test hook, the connection cap, framing
// violations, and the serve.* metrics surface.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "stream/engine.h"
#include "synth/stream_gen.h"
#include "util/binary.h"

namespace smash::serve {
namespace {

using namespace std::chrono_literals;

// Mirrors the tiny scenario in stream_test.cc: small enough for unit
// tests, campaigns reliably detected.
synth::StreamScenarioConfig tiny_scenario_config() {
  synth::StreamScenarioConfig config;
  config.seed = 11;
  config.duration_s = 6 * 600;
  config.benign_servers = 60;
  config.benign_clients = 40;
  config.benign_visits = 500;
  config.popular_servers = 2;
  config.popular_clients = 70;
  config.campaigns = 1;
  config.campaign_servers = 5;
  config.campaign_bots = 4;
  config.poll_interval_s = 120;
  config.active_fraction = 0.5;
  return config;
}

stream::StreamConfig tiny_stream_config() {
  stream::StreamConfig config;
  config.epoch_seconds = 600;
  config.window_epochs = 6;
  config.smash.idf_threshold = 50;
  return config;
}

// A fed engine with at least one published snapshot, plus its scenario
// ground truth.
struct Fixture {
  synth::StreamScenario scenario;
  std::unique_ptr<stream::StreamEngine> engine;

  Fixture() {
    scenario = synth::generate_stream(tiny_scenario_config());
    engine = std::make_unique<stream::StreamEngine>(tiny_stream_config(),
                                                    scenario.whois);
    synth::feed(*engine, scenario);
    engine->finish();
  }
};

RequestFrame lookup_of(std::uint64_t id, std::string host,
                       std::string server_ip = "") {
  RequestFrame request;
  request.type = FrameType::kLookup;
  request.request_id = id;
  LookupKey key;
  key.host = std::move(host);
  key.server_ip = std::move(server_ip);
  request.lookups.push_back(key);
  return request;
}

std::uint64_t counter_value(const obs::Registry& registry,
                            std::string_view name) {
  const auto snapshot = registry.snapshot();
  const auto* c = snapshot.counter(name);
  return c ? c->value : 0;
}

TEST(ServeServer, AnswersSingleAndBatchedLookups) {
  Fixture fx;
  ServeConfig config;
  VerdictServer server(fx.engine->slot(), std::move(config));
  ASSERT_GT(server.port(), 0) << "ephemeral port resolved";

  BlockingClient client("127.0.0.1", server.port());
  const auto& truth = fx.scenario.campaigns[0];

  // Single lookup: a campaign server is malicious, with campaign detail.
  auto response = client.call(lookup_of(1, truth.servers[0]));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->request_id, 1u);
  EXPECT_EQ(response->status, FrameStatus::kOk);
  EXPECT_GT(response->snapshot_sequence, 0u);
  ASSERT_EQ(response->answers.size(), 1u);
  EXPECT_TRUE(response->answers[0].malicious);
  EXPECT_EQ(response->answers[0].campaign_servers, truth.servers.size());
  EXPECT_GT(response->answers[0].window_requests, 0u);

  // Benign host stays clean.
  response = client.call(lookup_of(2, "site3.org"));
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->answers.size(), 1u);
  EXPECT_FALSE(response->answers[0].malicious);

  // Batch: every campaign server plus a benign tail, answers positional.
  RequestFrame batch;
  batch.type = FrameType::kBatch;
  batch.request_id = 3;
  for (const auto& host : truth.servers) {
    LookupKey key;
    key.host = host;
    batch.lookups.push_back(key);
  }
  LookupKey benign;
  benign.host = "site4.org";
  batch.lookups.push_back(benign);
  response = client.call(batch);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->request_id, 3u);
  ASSERT_EQ(response->answers.size(), truth.servers.size() + 1);
  for (std::size_t i = 0; i < truth.servers.size(); ++i) {
    EXPECT_TRUE(response->answers[i].malicious) << truth.servers[i];
  }
  EXPECT_FALSE(response->answers.back().malicious);

  // Pipelining: several frames written back-to-back all get answered, in
  // order, on one connection.
  for (std::uint64_t id = 10; id < 15; ++id) {
    client.send(lookup_of(id, "site3.org"));
  }
  for (std::uint64_t id = 10; id < 15; ++id) {
    response = client.receive();
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->request_id, id);
  }

  const auto& registry = *server.metrics();
  EXPECT_EQ(counter_value(registry, "serve.accepted_total"), 8u);
  EXPECT_EQ(counter_value(registry, "serve.responses_total"), 8u);
  EXPECT_EQ(counter_value(registry, "serve.rejected_total"), 0u);
  EXPECT_EQ(counter_value(registry, "serve.connections_opened_total"), 1u);
  const auto metrics_snapshot = registry.snapshot();
  const auto* request_ns = metrics_snapshot.histogram("serve.request_ns");
  ASSERT_NE(request_ns, nullptr);
  EXPECT_EQ(request_ns->count, 8u);
  // The embedded VerdictService shares the registry: 7 single lookups
  // plus the (campaign + 1)-entry batch.
  EXPECT_EQ(counter_value(registry, "verdict.lookups_total"),
            truth.servers.size() + 8);
}

TEST(ServeServer, NoSnapshotYetIsExplicitlyStale) {
  // A server over an engine that has never published: answers must carry
  // kStale, never a fresh-looking all-clear.
  const auto scenario = synth::generate_stream(tiny_scenario_config());
  stream::StreamEngine engine(tiny_stream_config(), scenario.whois);
  ServeConfig config;
  VerdictServer server(engine.slot(), std::move(config));

  BlockingClient client("127.0.0.1", server.port());
  const auto response = client.call(lookup_of(1, "anything.example"));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, FrameStatus::kStale);
  EXPECT_EQ(response->snapshot_sequence, 0u);
  ASSERT_EQ(response->answers.size(), 1u);
  EXPECT_FALSE(response->answers[0].malicious);
  EXPECT_EQ(counter_value(*server.metrics(), "serve.stale_total"), 1u);
}

TEST(ServeServer, StalenessSloFlipsAnswersToStale) {
  Fixture fx;
  // The snapshot was built during Fixture construction, milliseconds ago
  // at minimum — a 10 microsecond SLO is already blown, deterministically.
  ServeConfig config;
  config.stale_after_ms = 0.01;
  VerdictServer server(fx.engine->slot(), std::move(config));

  BlockingClient client("127.0.0.1", server.port());
  const auto& truth = fx.scenario.campaigns[0];
  const auto response = client.call(lookup_of(1, truth.servers[0]));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, FrameStatus::kStale);
  // The verdicts are still carried — stale data beats no data, and the
  // caller decides.
  ASSERT_EQ(response->answers.size(), 1u);
  EXPECT_TRUE(response->answers[0].malicious);
  EXPECT_GT(response->snapshot_sequence, 0u);
  EXPECT_EQ(counter_value(*server.metrics(), "serve.stale_total"), 1u);

  // A generous SLO on the same slot answers kOk, with a visible age (the
  // sleep guarantees at least one whole millisecond has passed since the
  // fixture's last publication).
  std::this_thread::sleep_for(2ms);
  ServeConfig fresh_config;
  fresh_config.stale_after_ms = 3600.0 * 1000.0;
  VerdictServer fresh(fx.engine->slot(), std::move(fresh_config));
  BlockingClient fresh_client("127.0.0.1", fresh.port());
  const auto ok = fresh_client.call(lookup_of(2, truth.servers[0]));
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->status, FrameStatus::kOk);
  EXPECT_GT(ok->snapshot_age_ms, 0u);
}

TEST(ServeServer, ShedsExplicitlyWhenTheClientWontRead) {
  Fixture fx;
  ServeConfig config;
  // Tiny bounds so the un-read-response pile crosses the soft bound at
  // test scale: the kernel send buffer is forced small (test hook), and a
  // few hundred un-flushed bytes already count as overload.
  config.sndbuf_bytes = 4096;
  config.max_pending_response_bytes = 512;
  VerdictServer server(fx.engine->slot(), std::move(config));

  BlockingClient client("127.0.0.1", server.port());
  // Fire requests without reading a single response. Each response is
  // ~22 bytes of answer + header; the kernel buffer (~4-8 KiB effective)
  // plus the 512-byte soft bound fill well within a few thousand.
  constexpr std::uint64_t kRequests = 4000;
  for (std::uint64_t id = 0; id < kRequests; ++id) {
    client.send(lookup_of(id, "site3.org"));
  }
  // Now drain everything; the server must have answered every admitted
  // request and explicitly rejected the shed ones — none silently lost
  // before the read-pause point, and once paused the remaining requests
  // sit in the socket until we drain.
  std::uint64_t ok = 0, rejected = 0;
  std::uint64_t received = 0;
  while (received < kRequests) {
    const auto response = client.receive();
    ASSERT_TRUE(response.has_value())
        << "connection died after " << received << " responses";
    if (response->status == FrameStatus::kRejected) {
      EXPECT_TRUE(response->answers.empty());
      ++rejected;
    } else {
      ++ok;
    }
    ++received;
  }
  EXPECT_EQ(ok + rejected, kRequests);
  EXPECT_GT(rejected, 0u) << "overload must shed explicitly";
  EXPECT_GT(ok, 0u) << "admitted requests still get answers";

  const auto& registry = *server.metrics();
  EXPECT_EQ(counter_value(registry, "serve.rejected_total"), rejected);
  EXPECT_EQ(counter_value(registry, "serve.accepted_total"), ok);
  EXPECT_EQ(counter_value(registry, "serve.responses_total"), kRequests);

  // After draining, the connection still works.
  const auto after = client.call(lookup_of(999999, "site3.org"));
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->status, FrameStatus::kOk);
}

TEST(ServeServer, CutsBatchesShortAtTheBoundNotSilently) {
  Fixture fx;
  ServeConfig config;
  config.sndbuf_bytes = 4096;
  config.max_pending_response_bytes = 512;
  VerdictServer server(fx.engine->slot(), std::move(config));

  BlockingClient client("127.0.0.1", server.port());
  // Enough max-width batches, unread, that one lands while the pending
  // pile is between the soft bound and the mid-batch cutoff.
  RequestFrame batch;
  batch.type = FrameType::kBatch;
  for (int i = 0; i < 200; ++i) {
    LookupKey key;
    key.host = "site3.org";
    batch.lookups.push_back(key);
  }
  constexpr std::uint64_t kBatches = 64;
  for (std::uint64_t id = 0; id < kBatches; ++id) {
    batch.request_id = id;
    client.send(batch);
  }
  std::uint64_t full = 0, partial = 0, rejected = 0;
  for (std::uint64_t i = 0; i < kBatches; ++i) {
    const auto response = client.receive();
    ASSERT_TRUE(response.has_value());
    if (response->status == FrameStatus::kRejected) {
      EXPECT_TRUE(response->answers.empty());
      ++rejected;
    } else if (response->answers.size() < batch.lookups.size()) {
      EXPECT_FALSE(response->answers.empty());
      ++partial;
    } else {
      ++full;
    }
  }
  EXPECT_EQ(full + partial + rejected, kBatches);
  EXPECT_GT(partial + rejected, 0u);
  EXPECT_EQ(counter_value(*server.metrics(), "serve.partial_batches_total"),
            partial);
}

TEST(ServeServer, ConnectionCapAcceptsAndClosesOverflow) {
  Fixture fx;
  ServeConfig config;
  config.max_connections = 2;
  VerdictServer server(fx.engine->slot(), std::move(config));

  BlockingClient first("127.0.0.1", server.port());
  BlockingClient second("127.0.0.1", server.port());
  ASSERT_TRUE(first.call(lookup_of(1, "site3.org")).has_value());
  ASSERT_TRUE(second.call(lookup_of(2, "site3.org")).has_value());

  // The third connects at the kernel level (backlog) but the server
  // accepts-and-closes it: the first receive sees EOF, never an answer.
  BlockingClient third("127.0.0.1", server.port());
  third.send(lookup_of(3, "site3.org"));
  EXPECT_FALSE(third.receive().has_value());
  EXPECT_EQ(
      counter_value(*server.metrics(), "serve.connections_rejected_total"),
      1u);

  // Closing a held connection frees a slot for a newcomer.
  first.close();
  for (int attempt = 0; attempt < 100; ++attempt) {
    try {
      BlockingClient fourth("127.0.0.1", server.port());
      if (fourth.call(lookup_of(4, "site3.org")).has_value()) return;
    } catch (const std::exception&) {
    }
    std::this_thread::sleep_for(10ms);  // loop hasn't reaped `first` yet
  }
  FAIL() << "slot never freed after closing a connection";
}

TEST(ServeServer, FramingViolationsCloseTheConnection) {
  Fixture fx;
  ServeConfig config;
  VerdictServer server(fx.engine->slot(), std::move(config));

  // Oversized declared length: the server drops the connection rather
  // than resynchronize on garbage.
  {
    BlockingClient client("127.0.0.1", server.port());
    std::string hostile;
    util::put_u32(hostile, kMaxFramePayloadBytes + 1);
    client.send_raw(hostile);
    EXPECT_FALSE(client.receive().has_value());
  }
  // Well-framed but malformed payload: same fate.
  {
    BlockingClient client("127.0.0.1", server.port());
    std::string junk;
    util::put_u32(junk, 3);
    junk += "abc";
    client.send_raw(junk);
    EXPECT_FALSE(client.receive().has_value());
  }
  // The server survives both and keeps serving.
  BlockingClient client("127.0.0.1", server.port());
  EXPECT_TRUE(client.call(lookup_of(1, "site3.org")).has_value());
}

TEST(ServeServer, StopIsIdempotentAndUnblocksClients) {
  Fixture fx;
  ServeConfig config;
  VerdictServer server(fx.engine->slot(), std::move(config));
  BlockingClient client("127.0.0.1", server.port());
  ASSERT_TRUE(client.call(lookup_of(1, "site3.org")).has_value());

  server.stop();
  server.stop();  // idempotent

  // The connection is gone; a blocked reader sees EOF, not a hang.
  client.send(lookup_of(2, "site3.org"));
  EXPECT_FALSE(client.receive().has_value());
}

}  // namespace
}  // namespace smash::serve
