#include <gtest/gtest.h>

#include <set>

#include "core/file_classifier.h"
#include "dns/dga.h"
#include "dns/domain.h"

namespace smash::dns {
namespace {

struct TwoLdCase {
  std::string host;
  std::string expected;
};

class Effective2ldTest : public ::testing::TestWithParam<TwoLdCase> {};

TEST_P(Effective2ldTest, Aggregates) {
  EXPECT_EQ(effective_2ld(GetParam().host), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Effective2ldTest,
    ::testing::Values(
        TwoLdCase{"a.xyz.com", "xyz.com"},            // paper's own example
        TwoLdCase{"b.xyz.com", "xyz.com"},
        TwoLdCase{"cdn1.fbcdn.net", "fbcdn.net"},
        TwoLdCase{"ec2-1-2-3.amazonaws.com", "amazonaws.com"},
        TwoLdCase{"deep.a.b.example.com", "example.com"},
        TwoLdCase{"xyz.com", "xyz.com"},              // already a 2LD
        TwoLdCase{"com", "com"},                      // bare suffix
        TwoLdCase{"localhost", "localhost"},          // single label
        TwoLdCase{"4k0t111m.cz.cc", "4k0t111m.cz.cc"},  // Zeus zone (Table X)
        TwoLdCase{"www.4k0t111m.cz.cc", "4k0t111m.cz.cc"},
        TwoLdCase{"shop.example.co.uk", "example.co.uk"},
        TwoLdCase{"user.dyndns.org", "user.dyndns.org"},
        TwoLdCase{"10.1.2.3", "10.1.2.3"},            // IP literal unchanged
        TwoLdCase{"a.b.unknowntld", "b.unknowntld"}));

TEST(IsIpv4Literal, AcceptsAndRejects) {
  EXPECT_TRUE(is_ipv4_literal("1.2.3.4"));
  EXPECT_TRUE(is_ipv4_literal("255.255.255.255"));
  EXPECT_FALSE(is_ipv4_literal("256.1.1.1"));
  EXPECT_FALSE(is_ipv4_literal("1.2.3"));
  EXPECT_FALSE(is_ipv4_literal("1.2.3.4.5"));
  EXPECT_FALSE(is_ipv4_literal("a.b.c.d"));
  EXPECT_FALSE(is_ipv4_literal("1..2.3"));
  EXPECT_FALSE(is_ipv4_literal(""));
}

TEST(IsValidHostname, Basics) {
  EXPECT_TRUE(is_valid_hostname("a-b.example.com"));
  EXPECT_TRUE(is_valid_hostname("x"));
  EXPECT_FALSE(is_valid_hostname(".x.com"));
  EXPECT_FALSE(is_valid_hostname("x.com."));
  EXPECT_FALSE(is_valid_hostname("a..b"));
  EXPECT_FALSE(is_valid_hostname("sp ace.com"));
  EXPECT_FALSE(is_valid_hostname(""));
}

TEST(IsPublicSuffix, KnowsBothKinds) {
  EXPECT_TRUE(is_public_suffix("com"));
  EXPECT_TRUE(is_public_suffix("co.uk"));
  EXPECT_TRUE(is_public_suffix("cz.cc"));
  EXPECT_FALSE(is_public_suffix("example.com"));
}

TEST(ZeusStyleFamily, SiblingsShareScaffold) {
  util::Rng rng(4);
  const auto family = zeus_style_family(rng, 8);
  ASSERT_EQ(family.size(), 8u);
  std::set<std::string> unique(family.begin(), family.end());
  EXPECT_EQ(unique.size(), 8u);  // all distinct
  for (const auto& d : family) {
    EXPECT_TRUE(d.ends_with(".cz.cc"));
    // Each sibling keeps its own 2LD in the free zone.
    EXPECT_EQ(effective_2ld(d), d);
  }
  // Siblings share the stem: common prefix of first two is >= 4 chars.
  const auto& a = family[0];
  const auto& b = family[1];
  std::size_t common = 0;
  while (common < a.size() && common < b.size() && a[common] == b[common]) ++common;
  EXPECT_GE(common, 4u);
}

TEST(RandomDomains, ValidAndDiverse) {
  util::Rng rng(9);
  std::set<std::string> seen;
  for (int i = 0; i < 50; ++i) {
    const auto d = random_word_domain(rng);
    EXPECT_TRUE(is_valid_hostname(d));
    EXPECT_TRUE(d.ends_with(".com"));
    seen.insert(d);
  }
  EXPECT_GT(seen.size(), 40u);  // collisions should be rare
  const auto alnum = random_alnum_domain(rng, 10, "info");
  EXPECT_TRUE(is_valid_hostname(alnum));
  EXPECT_EQ(alnum.size(), 10u + 5u);  // label + ".info"
  EXPECT_THROW(random_alnum_domain(rng, 0), std::invalid_argument);
}

TEST(RandomIpv4, AlwaysValid) {
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(is_ipv4_literal(random_ipv4(rng)));
  }
}

TEST(ObfuscatedFilenameFamily, LongAndCosineSimilar) {
  util::Rng rng(6);
  const auto family = obfuscated_filename_family(rng, 6, /*min_len=*/30);
  ASSERT_EQ(family.size(), 6u);
  std::set<std::string> unique(family.begin(), family.end());
  EXPECT_GE(unique.size(), 5u);  // near-certainly distinct strings
  for (const auto& f : family) EXPECT_GT(f.size(), 25u);
  // Pairwise similar under the paper's long-filename rule (eqs. 4-6).
  for (std::size_t i = 0; i < family.size(); ++i) {
    for (std::size_t j = i + 1; j < family.size(); ++j) {
      EXPECT_GT(core::char_frequency_cosine(family[i], family[j]), 0.8)
          << family[i] << " vs " << family[j];
    }
  }
}

TEST(FluxIpPool, DrawsOverlapAcrossDomains) {
  FluxIpPool pool(util::Rng(12), 5);
  EXPECT_EQ(pool.pool().size(), 5u);
  const auto a = pool.draw(3);
  const auto b = pool.draw(3);
  EXPECT_EQ(a.size(), 3u);
  // Two draws of 3 from a pool of 5 must share at least one address.
  std::set<std::string> sa(a.begin(), a.end());
  int shared = 0;
  for (const auto& ip : b) shared += sa.count(ip);
  EXPECT_GE(shared, 1);
  // Oversized draw clamps to the pool.
  EXPECT_EQ(pool.draw(100).size(), 5u);
  EXPECT_THROW(FluxIpPool(util::Rng(1), 0), std::invalid_argument);
}

}  // namespace
}  // namespace smash::dns
