// Streaming perf baseline: a day-long timestamped scenario driven through
// the StreamEngine, measuring end-to-end epoch-close-to-snapshot-publish
// latency (assemble / mine / snapshot breakdown), detection latency against
// campaign ground truth, and VerdictService lookup throughput. Written to
// BENCH_stream.json.
//
// Usage: perf_stream [output.json] [--smoke]
//   --smoke: minutes-long scenario for CI bitrot checks (same code paths,
//            tiny population).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "stream/engine.h"
#include "stream/verdict.h"
#include "synth/stream_gen.h"

namespace {

using smash::stream::EpochId;

smash::synth::StreamScenarioConfig scenario_config(bool smoke) {
  smash::synth::StreamScenarioConfig config;
  config.seed = 2015;
  if (smoke) {
    config.duration_s = 2 * 3600;
    config.benign_servers = 150;
    config.benign_clients = 120;
    config.benign_visits = 2500;
    config.popular_servers = 2;
    config.popular_clients = 250;
    config.campaigns = 2;
  } else {
    config.duration_s = 86400;
    config.benign_servers = 1200;
    config.benign_clients = 800;
    config.benign_visits = 40000;
    config.popular_servers = 6;
    config.popular_clients = 250;
    config.campaigns = 6;
  }
  config.campaign_servers = 6;
  config.campaign_bots = 5;
  config.poll_interval_s = 300;
  config.active_fraction = 0.35;
  return config;
}

smash::stream::StreamConfig stream_config(bool smoke) {
  smash::stream::StreamConfig config;
  config.epoch_seconds = smoke ? 600 : 3600;
  config.window_epochs = smoke ? 12 : 24;
  config.smash.idf_threshold = 200;  // popular_clients = 250 get filtered
  return config;
}

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_stream.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  const auto scenario = smash::synth::generate_stream(scenario_config(smoke));
  const auto config = stream_config(smoke);
  smash::bench::JsonReporter report("stream");

  // --- drive the stream, probing detection after every publication ---------
  smash::stream::StreamEngine engine(config, scenario.whois);
  const smash::stream::VerdictService service(engine.slot());

  std::vector<EpochId> first_flagged(scenario.campaigns.size(), 0);
  std::vector<bool> detected(scenario.campaigns.size(), false);
  std::uint64_t seen_publications = 0;
  const auto probe = [&] {
    for (std::size_t c = 0; c < scenario.campaigns.size(); ++c) {
      if (detected[c]) continue;
      if (service.lookup(scenario.campaigns[c].servers[0]).malicious) {
        detected[c] = true;
        first_flagged[c] = engine.snapshot()->last_epoch();
      }
    }
  };

  const double feed_ms = smash::bench::time_once_ms([&] {
    for (const auto& event : scenario.events) {
      smash::synth::ingest_event(engine, event);
      if (engine.snapshots_published() != seen_publications) {
        seen_publications = engine.snapshots_published();
        probe();
      }
    }
    engine.finish();
    probe();
  });

  // --- epoch-close-to-publish latency ---------------------------------------
  const auto& records = engine.close_records();
  std::vector<double> total_ms, assemble_ms, mine_ms, snapshot_ms;
  std::size_t peak_window_requests = 0;
  for (const auto& record : records) {
    total_ms.push_back(record.total_ms);
    assemble_ms.push_back(record.assemble_ms);
    mine_ms.push_back(record.mine_ms);
    snapshot_ms.push_back(record.snapshot_ms);
    peak_window_requests = std::max(peak_window_requests, record.window_requests);
  }
  const double worst_ms =
      total_ms.empty() ? 0.0 : *std::max_element(total_ms.begin(), total_ms.end());
  report.add("stream/epoch_close_to_publish", mean(total_ms),
             {{"max_ms", worst_ms},
              {"assemble_ms", mean(assemble_ms)},
              {"mine_ms", mean(mine_ms)},
              {"snapshot_ms", mean(snapshot_ms)},
              {"publications", static_cast<double>(records.size())},
              {"peak_window_requests", static_cast<double>(peak_window_requests)},
              {"events", static_cast<double>(scenario.events.size())},
              {"feed_total_ms", feed_ms}});
  std::printf(
      "stream  %zu events, %zu publications  close->publish %0.1f ms mean / "
      "%0.1f ms max  (assemble %0.1f, mine %0.1f, snapshot %0.1f)\n",
      scenario.events.size(), records.size(), mean(total_ms), worst_ms,
      mean(assemble_ms), mean(mine_ms), mean(snapshot_ms));

  // --- detection latency -----------------------------------------------------
  std::vector<double> latency_epochs;
  std::size_t missed = 0;
  for (std::size_t c = 0; c < scenario.campaigns.size(); ++c) {
    if (!detected[c]) {
      ++missed;
      continue;
    }
    const EpochId activation =
        scenario.campaigns[c].start_s / config.epoch_seconds;
    latency_epochs.push_back(first_flagged[c] >= activation
                                 ? static_cast<double>(first_flagged[c] - activation)
                                 : 0.0);
  }
  const double worst_latency =
      latency_epochs.empty()
          ? 0.0
          : *std::max_element(latency_epochs.begin(), latency_epochs.end());
  report.add("stream/detection_latency_epochs", mean(latency_epochs),
             {{"max_epochs", worst_latency},
              {"campaigns", static_cast<double>(scenario.campaigns.size())},
              {"missed", static_cast<double>(missed)}});
  std::printf("stream  detection latency %0.2f epochs mean / %0.0f max  (%zu/%zu detected)\n",
              mean(latency_epochs), worst_latency,
              scenario.campaigns.size() - missed, scenario.campaigns.size());

  // --- verdict lookup throughput --------------------------------------------
  const std::size_t lookups = smoke ? 20000 : 1000000;
  std::size_t hits = 0;
  const double lookup_ms = smash::bench::time_once_ms([&] {
    for (std::size_t i = 0; i < lookups; ++i) {
      // Alternate flagged / benign / unknown hosts to mix hash paths.
      const auto& truth = scenario.campaigns[i % scenario.campaigns.size()];
      switch (i % 3) {
        case 0:
          hits += service.lookup(truth.servers[i % truth.servers.size()]).malicious;
          break;
        case 1:
          hits += service.lookup("site" + std::to_string(i % 97) + ".org").malicious;
          break;
        default:
          hits += service.lookup("never-seen" + std::to_string(i % 31) + ".example")
                      .malicious;
          break;
      }
    }
  });
  const double qps = lookup_ms > 0.0
                         ? static_cast<double>(lookups) / (lookup_ms / 1000.0)
                         : 0.0;
  report.add("stream/verdict_lookup", lookup_ms,
             {{"lookups", static_cast<double>(lookups)},
              {"qps", qps},
              {"hits", static_cast<double>(hits)}});
  std::printf("stream  %zu lookups in %0.1f ms  (%0.0f lookups/s)\n", lookups,
              lookup_ms, qps);

  if (!report.write(out_path)) return 1;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
