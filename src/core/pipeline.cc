#include "core/pipeline.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace smash::core {

namespace {

// Stage timing into the configured registry (no-op on null). Stage spans
// are emitted separately at the call sites via SMASH_SPAN.
class StageClock {
 public:
  explicit StageClock(obs::Registry* metrics) : metrics_(metrics) {}
  void lap(const char* histogram_name) {
    const auto now = std::chrono::steady_clock::now();
    if (metrics_ != nullptr) {
      metrics_->latency_histogram_ms(histogram_name)
          .observe(std::chrono::duration<double, std::milli>(now - last_).count());
    }
    last_ = now;
  }

 private:
  obs::Registry* metrics_;
  std::chrono::steady_clock::time_point last_ = std::chrono::steady_clock::now();
};

// Merge pruned groups that live in the same main-dimension herd (paper
// §III-E: the main dimension captures the campaign's group connection
// behavior, so download tiers and C&C tiers reunite here). Union-find over
// group indices keyed by herd.
std::vector<std::vector<std::uint32_t>> merge_by_main_herd(
    const std::vector<std::vector<std::uint32_t>>& groups,
    const DimensionAshes& main) {
  std::vector<std::uint32_t> parent(groups.size());
  std::iota(parent.begin(), parent.end(), 0u);
  const auto find = [&](std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  std::unordered_map<std::int32_t, std::uint32_t> first_group_of_herd;
  for (std::uint32_t g = 0; g < groups.size(); ++g) {
    for (auto member : groups[g]) {
      const auto herd = main.ash_of[member];
      if (herd < 0) continue;
      auto [it, inserted] = first_group_of_herd.emplace(herd, g);
      if (!inserted) parent[find(g)] = find(it->second);
    }
  }

  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> merged;
  for (std::uint32_t g = 0; g < groups.size(); ++g) {
    auto& target = merged[find(g)];
    target.insert(target.end(), groups[g].begin(), groups[g].end());
  }

  std::vector<std::vector<std::uint32_t>> out;
  out.reserve(merged.size());
  for (auto& [root, members] : merged) {
    (void)root;
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    out.push_back(std::move(members));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint32_t> involved_clients_of(const PreprocessResult& pre,
                                               const std::vector<std::uint32_t>& members) {
  std::unordered_map<std::uint32_t, std::uint32_t> appearances;
  for (auto member : members) {
    for (auto client : pre.agg.profile(pre.kept[member]).clients) {
      ++appearances[client];
    }
  }
  std::vector<std::uint32_t> out;
  const auto majority = members.size() / 2;
  for (const auto& [client, count] : appearances) {
    if (count > majority) out.push_back(client);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<std::uint32_t> SmashResult::detected_servers(bool single_client) const {
  std::vector<std::uint32_t> out;
  for (const auto& campaign : campaigns) {
    if (campaign.single_client() != single_client) continue;
    out.insert(out.end(), campaign.servers.begin(), campaign.servers.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<const Campaign*> SmashResult::detected_campaigns(bool single_client) const {
  std::vector<const Campaign*> out;
  for (const auto& campaign : campaigns) {
    if (campaign.single_client() == single_client) out.push_back(&campaign);
  }
  return out;
}

bool SmashResult::postings_budget_exceeded() const noexcept {
  for (const auto& dim : dims) {
    if (dim.postings_budget_exceeded()) return true;
  }
  return false;
}

std::size_t SmashResult::join_shard_passes() const noexcept {
  std::size_t total = 0;
  for (const auto& dim : dims) total += dim.join_stats.shard_passes;
  return total;
}

std::size_t SmashResult::peak_resident_postings_bytes() const noexcept {
  std::size_t peak = 0;
  for (const auto& dim : dims) {
    peak = std::max(peak, dim.join_stats.peak_resident_postings_bytes);
  }
  return peak;
}

graph::LouvainStats SmashResult::louvain_stats() const noexcept {
  graph::LouvainStats total;
  for (const auto& dim : dims) total += dim.louvain_stats;
  return total;
}

SmashResult SmashPipeline::run(const net::Trace& trace,
                               const whois::Registry& registry) const {
  StageClock clock(config_.metrics);
  PreprocessResult pre;
  {
    SMASH_SPAN("pipeline.preprocess");
    pre = preprocess(trace, config_);
  }
  clock.lap("pipeline.preprocess_ms");
  return run_preprocessed(std::move(pre), registry);
}

SmashResult SmashPipeline::run_preprocessed(PreprocessResult pre,
                                            const whois::Registry& registry) const {
  StageClock clock(config_.metrics);
  SmashResult result;
  result.pre = std::move(pre);
  {
    SMASH_SPAN("pipeline.mine");
    result.dims = mine_all_dimensions(result.pre, registry, config_);
  }
  clock.lap("pipeline.mine_ms");
  return run_tail(std::move(result));
}

SmashResult SmashPipeline::run_incremental(PreprocessResult pre,
                                           const whois::Registry& registry,
                                           DeltaMiner& miner,
                                           const util::Interner& window_clients,
                                           const util::Interner& window_ips,
                                           const WindowDelta& delta) const {
  StageClock clock(config_.metrics);
  SmashResult result;
  result.pre = std::move(pre);
  const auto mine_start = std::chrono::steady_clock::now();
  {
    SMASH_SPAN("pipeline.mine");
    result.dims = miner.mine(result.pre, registry, window_clients, window_ips,
                             delta, config_, result.delta);
  }
  clock.lap("pipeline.mine_ms");
  if (config_.metrics != nullptr) {
    config_.metrics->latency_histogram_ms("pipeline.delta.mine_ms")
        .observe(std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - mine_start)
                     .count());
  }
  return run_tail(std::move(result));
}

// Correlation -> pruning -> campaign inference: the shared tail of the
// full and incremental entries.
SmashResult SmashPipeline::run_tail(SmashResult result) const {
  StageClock clock(config_.metrics);
  {
    SMASH_SPAN("pipeline.correlate");
    result.correlation = correlate(result.pre, result.dims, config_);
  }
  clock.lap("pipeline.correlate_ms");
  {
    SMASH_SPAN("pipeline.prune");
    result.pruned = prune(result.pre, result.correlation.groups, config_);
  }
  clock.lap("pipeline.prune_ms");

  {
    SMASH_SPAN("pipeline.campaigns");
    const auto& main = result.dims[static_cast<int>(Dimension::kClient)];
    for (auto& members : merge_by_main_herd(result.pruned.groups, main)) {
      Campaign campaign;
      campaign.involved_clients = involved_clients_of(result.pre, members);
      campaign.servers = std::move(members);
      result.campaigns.push_back(std::move(campaign));
    }
  }
  clock.lap("pipeline.campaigns_ms");
  return result;
}

}  // namespace smash::core
