// Whois substrate: registration records, a registry keyed by 2LD, and the
// field-overlap similarity of paper §III-B2 ("Whois Similarity").
//
// The paper compares five registration fields — registrant name, home
// address, email, phone, and name servers — and scores two domains by
//   shared fields / union of fields,
// requiring at least two shared fields, and ignoring fields whose value is
// a domain-privacy proxy (otherwise every proxied domain would associate
// with every other).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace smash::whois {

enum class Field : std::uint8_t {
  kRegistrant = 0,
  kAddress = 1,
  kEmail = 2,
  kPhone = 3,
  kNameServers = 4,
};
inline constexpr int kNumFields = 5;

std::string_view field_name(Field f) noexcept;

struct Record {
  std::string registrant;
  std::string address;
  std::string email;
  std::string phone;
  // Joined, order-normalized name-server list (e.g. "ns1.x.com,ns2.x.com");
  // compared as a single field like the paper's Fig. 5 examples.
  std::string name_servers;

  const std::string& value(Field f) const;
  std::string& value(Field f);
};

struct SimilarityResult {
  int shared_fields = 0;  // non-empty, non-proxy fields with equal values
  int union_fields = 0;   // fields non-empty in at least one record
  double score = 0.0;     // shared/union if shared >= min_shared, else 0
};

class Registry {
 public:
  // Registers `domain` (an effective 2LD). Overwrites any prior record.
  void add(std::string_view domain, Record record);

  const Record* find(std::string_view domain) const;

  // Declare a value as a privacy-proxy value: matches on it never count.
  void add_proxy_value(std::string_view value);

  bool is_proxy_value(std::string_view value) const;

  // Similarity per the paper: shared/union over the five fields, with a
  // minimum-shared-fields gate (default 2) and proxy values excluded.
  SimilarityResult similarity(std::string_view domain_a,
                              std::string_view domain_b,
                              int min_shared = 2) const;

  std::size_t size() const noexcept { return records_.size(); }

  const std::unordered_map<std::string, Record>& records() const noexcept {
    return records_;
  }

  // Tab-separated persistence, one record per line:
  //   WHOIS <domain> <registrant> <address> <email> <phone> <name_servers>
  //   PROXY <value>
  // Empty fields are stored as "-". Values must not contain tabs.
  void write_tsv(const std::string& file_path) const;
  static Registry read_tsv(const std::string& file_path);

 private:
  std::unordered_map<std::string, Record> records_;
  std::unordered_set<std::string> proxy_values_;
};

// Normalize a name-server list into the canonical joined form.
std::string join_name_servers(std::vector<std::string> servers);

}  // namespace smash::whois
