#include "stream/ingest.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "dns/domain.h"
#include "obs/trace.h"
#include "util/check.h"

namespace smash::stream {

namespace {
constexpr std::uint64_t kSecondsPerDay = 86400;
}  // namespace

// --- EpochShard --------------------------------------------------------------

EpochShard::EpochShard(EpochId id) : id_(id) { trace_.enable_journal(); }

EpochShard EpochShard::restore_sealed(EpochId id, net::Trace trace) {
  SMASH_CHECK(trace.journal_enabled(),
              "EpochShard::restore_sealed needs a journaled trace");
  EpochShard shard(id);
  shard.trace_ = std::move(trace);
  shard.seal();
  return shard;
}

EpochShard EpochShard::restore_open(EpochId id, net::Trace trace) {
  SMASH_CHECK(trace.journal_enabled(),
              "EpochShard::restore_open needs a journaled trace");
  EpochShard shard(id);
  shard.trace_ = std::move(trace);
  return shard;
}

void EpochShard::add(const RequestEvent& event) {
  net::HttpRequest req;
  req.client = trace_.intern_client(event.client);
  req.server = trace_.intern_server(event.host);
  req.day = static_cast<std::uint32_t>(event.time_s / kSecondsPerDay);
  req.method = event.method;
  req.status = event.status;
  req.path = event.path;
  req.user_agent = event.user_agent;
  req.referrer = event.referrer;
  trace_.add_request(std::move(req));
}

void EpochShard::add(const ResolutionEvent& event) {
  trace_.add_resolution(trace_.intern_server(event.host),
                        trace_.intern_ip(event.ip));
}

void EpochShard::add(const RedirectEvent& event) {
  trace_.add_redirect(trace_.intern_server(event.from),
                      trace_.intern_server(event.to));
}

void EpochShard::seal() {
  if (sealed_) return;
  trace_.finalize();
  // All per-request parsing happens once, here: the cached ShardPre feeds
  // both the window aggregates delta and every future window re-mine.
  pre_ = core::build_shard_pre(trace_);
  for (std::size_t d = 0; d < pre_.deltas.size(); ++d) {
    const auto& shard_delta = pre_.deltas[d];
    if (shard_delta.requests == 0) continue;  // resolution/redirect-only 2LD
    auto& delta = per_2ld_[pre_.delta_2lds[d]];
    delta.requests = shard_delta.requests;
    delta.error_requests = shard_delta.error_requests;
    delta.active_epochs = 1;
  }
  sealed_ = true;
}

// --- WindowAggregates --------------------------------------------------------

void WindowAggregates::add_epoch(const EpochShard& shard) {
  for (const auto& [host, delta] : shard.per_2ld()) {
    auto& agg = by_2ld_[host];
    agg.requests += delta.requests;
    agg.error_requests += delta.error_requests;
    agg.active_epochs += delta.active_epochs;
    window_requests_ += delta.requests;
  }
}

void WindowAggregates::remove_epoch(const EpochShard& shard) {
  for (const auto& [host, delta] : shard.per_2ld()) {
    auto it = by_2ld_.find(host);
    // An evicted shard's delta was added when the shard entered the window;
    // a missing entry or a delta exceeding the accumulated value means the
    // aggregates no longer describe the window — underflow here would serve
    // garbage verdict stats silently, so fail loudly instead.
    SMASH_CHECK(it != by_2ld_.end(),
                "WindowAggregates underflow: evicted 2LD absent from window");
    auto& agg = it->second;
    SMASH_CHECK(agg.requests >= delta.requests &&
                    agg.error_requests >= delta.error_requests &&
                    agg.active_epochs >= delta.active_epochs &&
                    window_requests_ >= delta.requests,
                "WindowAggregates underflow: evicted delta exceeds window");
    agg.requests -= delta.requests;
    agg.error_requests -= delta.error_requests;
    agg.active_epochs -= delta.active_epochs;
    window_requests_ -= delta.requests;
    if (agg.empty()) by_2ld_.erase(it);
  }
}

const ServerWindowStats* WindowAggregates::find(std::string_view host_2ld) const {
  auto it = by_2ld_.find(std::string(host_2ld));
  return it == by_2ld_.end() ? nullptr : &it->second;
}

std::vector<std::pair<std::string, ServerWindowStats>>
WindowAggregates::sorted_entries() const {
  std::vector<std::pair<std::string, ServerWindowStats>> entries(by_2ld_.begin(),
                                                                 by_2ld_.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return entries;
}

// --- StreamIngestor ----------------------------------------------------------

StreamIngestor::StreamIngestor(StreamConfig config) : config_(std::move(config)) {
  config_.validate();
}

StreamIngestor StreamIngestor::restore(
    StreamConfig config, bool started, EpochId open_epoch, EpochShard open_shard,
    std::deque<std::shared_ptr<const EpochShard>> window, IngestStats stats) {
  StreamIngestor ingestor(std::move(config));
  SMASH_CHECK(window.size() <= ingestor.config_.window_epochs,
              "StreamIngestor::restore: window wider than config");
  ingestor.started_ = started;
  ingestor.open_epoch_ = open_epoch;
  ingestor.open_shard_ = std::move(open_shard);
  ingestor.window_ = std::move(window);
  ingestor.stats_ = stats;
  for (const auto& shard : ingestor.window_) {
    ingestor.aggregates_.add_epoch(*shard);
  }
  return ingestor;
}

IngestResult StreamIngestor::position(std::uint64_t time_s) {
  const EpochId epoch = config_.epoch_of(time_s);
  IngestResult result;
  if (!started_) {
    started_ = true;
    open_epoch_ = epoch;
    open_shard_ = EpochShard(epoch);
    return result;
  }
  if (epoch < open_epoch_) {
    if (config_.drop_late_events) {
      ++stats_.late_dropped;
      result.accepted = false;
    } else {
      ++stats_.late_folded;
    }
    return result;
  }
  if (epoch > open_epoch_) result.epochs_closed = advance_to(epoch);
  return result;
}

IngestResult StreamIngestor::ingest(const RequestEvent& event) {
  IngestResult result = position(event.time_s);
  if (!result.accepted) return result;
  open_shard_.add(event);
  ++stats_.requests;
  return result;
}

IngestResult StreamIngestor::ingest(const ResolutionEvent& event) {
  IngestResult result = position(event.time_s);
  if (!result.accepted) return result;
  open_shard_.add(event);
  ++stats_.resolutions;
  return result;
}

IngestResult StreamIngestor::ingest(const RedirectEvent& event) {
  IngestResult result = position(event.time_s);
  if (!result.accepted) return result;
  open_shard_.add(event);
  ++stats_.redirects;
  return result;
}

void StreamIngestor::close_epoch() {
  if (!started_) return;
  // Covers the seal (finalize + ShardPre build) and the window/aggregates
  // rotation — the ingest-side half of an epoch close on the trace
  // timeline; the mining half is stream.assemble/stream.mine.
  SMASH_SPAN("stream.epoch_seal");
  open_shard_.seal();
  window_.push_back(
      std::make_shared<const EpochShard>(std::move(open_shard_)));
  aggregates_.add_epoch(*window_.back());
  if (window_.size() > config_.window_epochs) {
    aggregates_.remove_epoch(*window_.front());
    window_.pop_front();
  }
  ++open_epoch_;
  open_shard_ = EpochShard(open_epoch_);
}

std::uint32_t StreamIngestor::advance_to(EpochId epoch) {
  // A gap wider than the window would close epoch after empty epoch only to
  // evict them all again — with a corrupt far-future timestamp that loop is
  // effectively unbounded. Jump straight to the equivalent end state: the
  // open shard sealed-and-evicted, a ring of empty epochs, no aggregates.
  const EpochId gap = epoch - open_epoch_;
  if (gap > config_.window_epochs) {
    window_.clear();
    aggregates_ = WindowAggregates();
    for (EpochId e = epoch - config_.window_epochs; e < epoch; ++e) {
      EpochShard empty(e);
      empty.seal();
      window_.push_back(std::make_shared<const EpochShard>(std::move(empty)));
    }
    open_epoch_ = epoch;
    open_shard_ = EpochShard(epoch);
    return static_cast<std::uint32_t>(
        std::min<EpochId>(gap, std::numeric_limits<std::uint32_t>::max()));
  }
  std::uint32_t closed = 0;
  while (open_epoch_ < epoch) {
    close_epoch();
    ++closed;
  }
  return closed;
}

net::Trace StreamIngestor::assemble_window() const {
  net::Trace out;
  for (const auto& shard : window_) out.merge_from(shard->trace());
  out.finalize();
  return out;
}

}  // namespace smash::stream
