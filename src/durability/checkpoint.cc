#include "durability/checkpoint.h"

#include <cstdio>

#include "durability/crc32c.h"
#include "durability/file.h"
#include "util/binary.h"

namespace smash::durability {

namespace {

constexpr std::string_view kMagic = "SMCK";
constexpr std::uint32_t kVersion = 1;
// Checkpoints scale with window size, not with a corrupt length field:
// anything claiming more than 1 GiB of body is rejected before allocation.
constexpr std::uint32_t kMaxBody = 1u << 30;

void encode_body(std::string& out, const CheckpointState& s) {
  util::put_u32(out, s.epoch_seconds);
  util::put_u32(out, s.window_epochs);
  util::put_u8(out, s.drop_late_events ? 1 : 0);

  util::put_u64(out, s.closes_total);
  util::put_u64(out, s.records_logged);

  util::put_u8(out, s.started ? 1 : 0);
  util::put_u64(out, s.open_epoch);
  util::put_u64(out, s.ingest_stats.requests);
  util::put_u64(out, s.ingest_stats.resolutions);
  util::put_u64(out, s.ingest_stats.redirects);
  util::put_u64(out, s.ingest_stats.late_dropped);
  util::put_u64(out, s.ingest_stats.late_folded);

  util::put_u64(out, s.replay_segment);
  util::put_u64(out, s.replay_offset);

  util::put_u32(out, static_cast<std::uint32_t>(s.window.size()));
  for (const auto& shard : s.window) {
    util::put_u64(out, shard.epoch);
    util::put_u64(out, shard.pre_fingerprint);
    util::put_bytes(out, shard.trace_bytes);
  }
  util::put_bytes(out, s.open_trace_bytes);

  util::put_u64(out, s.window_requests);
  util::put_u32(out, static_cast<std::uint32_t>(s.aggregates.size()));
  for (const auto& agg : s.aggregates) {
    util::put_bytes(out, agg.host_2ld);
    util::put_u64(out, agg.requests);
    util::put_u64(out, agg.error_requests);
    util::put_u32(out, agg.active_epochs);
  }
}

bool decode_body(std::string_view body, CheckpointState& s) {
  util::BinaryReader in(body);
  std::uint8_t drop = 0;
  std::uint8_t started = 0;
  if (!in.u32(s.epoch_seconds) || !in.u32(s.window_epochs) || !in.u8(drop) ||
      !in.u64(s.closes_total) || !in.u64(s.records_logged) || !in.u8(started) ||
      !in.u64(s.open_epoch) || !in.u64(s.ingest_stats.requests) ||
      !in.u64(s.ingest_stats.resolutions) || !in.u64(s.ingest_stats.redirects) ||
      !in.u64(s.ingest_stats.late_dropped) ||
      !in.u64(s.ingest_stats.late_folded) || !in.u64(s.replay_segment) ||
      !in.u64(s.replay_offset)) {
    return false;
  }
  if (drop > 1 || started > 1) return false;
  s.drop_late_events = drop == 1;
  s.started = started == 1;

  std::uint32_t num_shards = 0;
  if (!in.u32(num_shards)) return false;
  s.window.clear();
  s.window.reserve(num_shards);
  for (std::uint32_t i = 0; i < num_shards; ++i) {
    CheckpointShard shard;
    std::string_view trace;
    if (!in.u64(shard.epoch) || !in.u64(shard.pre_fingerprint) ||
        !in.bytes(trace)) {
      return false;
    }
    shard.trace_bytes.assign(trace);
    s.window.push_back(std::move(shard));
  }
  if (!in.str(s.open_trace_bytes)) return false;

  std::uint32_t num_aggs = 0;
  if (!in.u64(s.window_requests) || !in.u32(num_aggs)) return false;
  s.aggregates.clear();
  s.aggregates.reserve(num_aggs);
  for (std::uint32_t i = 0; i < num_aggs; ++i) {
    CheckpointAggregate agg;
    if (!in.str(agg.host_2ld) || !in.u64(agg.requests) ||
        !in.u64(agg.error_requests) || !in.u32(agg.active_epochs)) {
      return false;
    }
    s.aggregates.push_back(std::move(agg));
  }
  return in.done();
}

}  // namespace

std::string checkpoint_file_name(std::uint64_t closes, std::uint64_t replay_segment) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "ckpt-%020llu-%012llu.bin",
                static_cast<unsigned long long>(closes),
                static_cast<unsigned long long>(replay_segment));
  return buf;
}

std::optional<CheckpointFileName> parse_checkpoint_file_name(std::string_view name) {
  constexpr std::string_view prefix = "ckpt-";
  constexpr std::string_view suffix = ".bin";
  if (name.size() != prefix.size() + 20 + 1 + 12 + suffix.size()) return std::nullopt;
  if (name.substr(0, prefix.size()) != prefix) return std::nullopt;
  if (name.substr(name.size() - suffix.size()) != suffix) return std::nullopt;
  if (name[prefix.size() + 20] != '-') return std::nullopt;
  const auto digits = [](std::string_view text, std::uint64_t& out) {
    out = 0;
    for (const char c : text) {
      if (c < '0' || c > '9') return false;
      out = out * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return true;
  };
  CheckpointFileName parsed;
  if (!digits(name.substr(prefix.size(), 20), parsed.closes)) return std::nullopt;
  if (!digits(name.substr(prefix.size() + 21, 12), parsed.replay_segment)) {
    return std::nullopt;
  }
  return parsed;
}

std::string encode_checkpoint(const CheckpointState& state) {
  std::string body;
  encode_body(body, state);
  std::string out;
  out.reserve(kMagic.size() + 12 + body.size());
  out.append(kMagic);
  util::put_u32(out, kVersion);
  util::put_u32(out, crc32c(body));
  util::put_u32(out, static_cast<std::uint32_t>(body.size()));
  out.append(body);
  return out;
}

std::optional<CheckpointState> decode_checkpoint(std::string_view bytes) {
  if (bytes.size() < kMagic.size() + 12) return std::nullopt;
  if (bytes.substr(0, kMagic.size()) != kMagic) return std::nullopt;
  util::BinaryReader header(bytes.substr(kMagic.size()));
  std::uint32_t version = 0;
  std::uint32_t crc = 0;
  std::uint32_t body_len = 0;
  if (!header.u32(version) || !header.u32(crc) || !header.u32(body_len)) {
    return std::nullopt;
  }
  if (version != kVersion || body_len > kMaxBody) return std::nullopt;
  if (header.remaining() != body_len) return std::nullopt;
  const std::string_view body = bytes.substr(kMagic.size() + 12, body_len);
  if (crc32c(body) != crc) return std::nullopt;
  CheckpointState state;
  if (!decode_body(body, state)) return std::nullopt;
  return state;
}

void write_checkpoint_file(const std::string& dir, const CheckpointState& state,
                           FsyncPolicy policy) {
  const std::string tmp = dir + "/ckpt.tmp";
  const std::string final_path =
      dir + "/" + checkpoint_file_name(state.closes_total, state.replay_segment);
  {
    File file = File::create(tmp, "ckpt");
    file.write(encode_checkpoint(state));
    if (policy != FsyncPolicy::kOff) file.sync();
    file.close();
  }
  File::rename_file(tmp, final_path, "ckpt");
  if (policy != FsyncPolicy::kOff) File::sync_dir(dir);
}

}  // namespace smash::durability
