#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file dumped by the obs tracer.

Checks (see docs/OBSERVABILITY.md):
  - the file is valid JSON with a ``traceEvents`` list and a
    ``displayTimeUnit``;
  - every event is well-formed: name/cat/ph/pid/tid/ts present, numeric
    timestamps, non-negative duration;
  - span timestamps are monotonic: the dump is sorted by start time, and
    every span ends at or after it starts;
  - no unclosed spans: the tracer only emits complete ("X") events, so any
    begin/end ("B"/"E") event means a span was recorded half-open;
  - optionally (--require-span, repeatable) that named spans are present —
    CI uses this to assert the smoke trace shows the whole pipeline
    dataflow (ingest, seal, join, Louvain, publish, WAL fsync).

Exits non-zero with a message on the first violation.

Usage: check_trace.py TRACE.json [--require-span NAME]...
"""

import argparse
import json
import numbers
import sys


def fail(message):
    print(f"check_trace: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument(
        "--require-span",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless a span with this exact name is present (repeatable)",
    )
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as handle:
            trace = json.load(handle)
    except OSError as error:
        fail(f"cannot read {args.trace}: {error}")
    except json.JSONDecodeError as error:
        fail(f"{args.trace} is not valid JSON: {error}")

    if not isinstance(trace, dict):
        fail("top level is not an object")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        fail('missing or non-list "traceEvents"')
    if "displayTimeUnit" not in trace:
        fail('missing "displayTimeUnit"')

    required_fields = ("name", "cat", "ph", "pid", "tid", "ts")
    seen_names = set()
    previous_ts = None
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            fail(f"event #{index} is not an object")
        for field in required_fields:
            if field not in event:
                fail(f'event #{index} has no "{field}"')
        name, phase, ts = event["name"], event["ph"], event["ts"]
        if not isinstance(ts, numbers.Real):
            fail(f"event #{index} ({name}): non-numeric ts {ts!r}")
        if phase in ("B", "E"):
            fail(
                f"event #{index} ({name}): half-open '{phase}' event — "
                "an unclosed span leaked into the dump"
            )
        if phase != "X":
            fail(f"event #{index} ({name}): unexpected phase {phase!r}")
        duration = event.get("dur")
        if not isinstance(duration, numbers.Real) or duration < 0:
            fail(f"event #{index} ({name}): bad duration {duration!r}")
        if previous_ts is not None and ts < previous_ts:
            fail(
                f"event #{index} ({name}): ts {ts} < previous {previous_ts} — "
                "dump is not sorted by span start"
            )
        previous_ts = ts
        seen_names.add(name)

    missing = [name for name in args.require_span if name not in seen_names]
    if missing:
        fail(
            f"required spans missing from trace: {', '.join(missing)} "
            f"({len(events)} events, {len(seen_names)} distinct names)"
        )

    print(
        f"check_trace: OK — {len(events)} events, "
        f"{len(seen_names)} distinct span names"
    )


if __name__ == "__main__":
    main()
