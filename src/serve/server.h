// VerdictServer: the network front end over VerdictService — a minimal
// epoll-based TCP server speaking the length-prefixed binary framing of
// serve/frame.h (single + batched lookups). One dedicated event-loop
// thread owns every socket; verdict lookups run inline on it (a lookup is
// a lock-free map probe, ~100 ns — orders of magnitude below the syscall
// cost of moving the bytes), while the StreamEngine keeps ingesting and
// publishing snapshots on its own threads underneath.
//
// Backpressure and admission (docs/SERVING.md):
//  - The accept queue is bounded by listen_backlog (kernel-side) and
//    max_connections (server-side: over the cap, accept-and-close, counted
//    in serve.connections_rejected_total).
//  - Each connection's un-flushed response bytes are the request queue.
//    Past max_pending_response_bytes the server *sheds*: new requests get
//    an immediate kRejected response (no lookups), and a batch in flight
//    is cut short (partial answers — explicit, never padded). Past twice
//    the bound the server stops reading the socket entirely until the
//    peer drains, so a connection's memory is hard-bounded at roughly
//    2 x max_pending_response_bytes + one read buffer.
//  - Staleness SLO: when stale_after_ms > 0 and the answering snapshot is
//    older than that, the response status flips to kStale (the verdicts
//    are still carried — the caller decides whether old data is usable).
//    Answers before the first publication are kStale too: "no data yet"
//    must never masquerade as a fresh all-clear.
//
// Everything is observable through the obs registry (serve.* catalog in
// docs/OBSERVABILITY.md): accepted/rejected/stale totals, request-service
// latency (serve.request_ns), queue depth and connection gauges.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "obs/metrics.h"
#include "serve/frame.h"
#include "stream/verdict.h"

namespace smash::serve {

struct ServeConfig {
  std::string bind_address = "127.0.0.1";
  // 0 = ephemeral; the bound port is readable via VerdictServer::port().
  std::uint16_t port = 0;

  // Bounded accept queue (kernel listen backlog).
  int listen_backlog = 128;
  // Connections held concurrently; over the cap new connections are
  // accepted and immediately closed (counted), so the backlog drains
  // instead of silently growing.
  std::size_t max_connections = 64;

  // Soft bound on one connection's un-flushed response bytes: past it the
  // server sheds requests (kRejected / partial batches) instead of
  // queueing. The hard bound (2x) pauses reads entirely.
  std::size_t max_pending_response_bytes = 256 * 1024;

  // Snapshot-staleness SLO (unit: milliseconds; 0 = disabled): answers
  // from a snapshot older than this are marked kStale.
  double stale_after_ms = 0.0;

  // Test/bench hook: when > 0, SO_SNDBUF is forced this small on accepted
  // sockets so kernel buffers fill deterministically and the shedding
  // path is reachable at test scale. Leave 0 in production.
  int sndbuf_bytes = 0;

  // Registry for the serve.* metrics (and the embedded VerdictService's
  // verdict.* counters). Null = a server-private registry; pass the
  // engine's to get one combined surface.
  std::shared_ptr<obs::Registry> metrics;
};

class VerdictServer {
 public:
  // Binds and listens immediately (throws std::runtime_error on any
  // socket failure), then starts the event-loop thread. `slot` must
  // outlive the server (it lives in the StreamEngine).
  VerdictServer(const stream::SnapshotSlot& slot, ServeConfig config);
  ~VerdictServer();  // stop() + join

  VerdictServer(const VerdictServer&) = delete;
  VerdictServer& operator=(const VerdictServer&) = delete;

  // The bound TCP port (resolves port 0).
  std::uint16_t port() const noexcept { return port_; }

  // Idempotent; wakes the loop, closes every socket, joins the thread.
  void stop();

  // The serve.* / verdict.* metrics surface (docs/OBSERVABILITY.md).
  const std::shared_ptr<obs::Registry>& metrics() const noexcept {
    return metrics_;
  }

 private:
  struct Connection {
    FrameDecoder decoder;
    std::string outbound;          // encoded responses not yet written
    std::size_t flushed = 0;       // prefix of outbound already written
    bool want_write = false;       // EPOLLOUT armed
    bool paused_read = false;      // EPOLLIN dropped at the hard bound
    std::size_t pending_bytes() const noexcept {
      return outbound.size() - flushed;
    }
  };

  void run();
  void handle_accept();
  // Returns false when the connection must be closed (peer hung up,
  // framing violation, write error).
  bool handle_readable(int fd, Connection& conn);
  bool handle_request(Connection& conn, std::string_view payload);
  bool flush(int fd, Connection& conn);
  void update_interest(int fd, Connection& conn);
  void close_connection(int fd);
  void refresh_queue_depth();

  ServeConfig config_;
  std::shared_ptr<obs::Registry> metrics_;
  stream::VerdictService service_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: stop() signal
  std::atomic<bool> stopping_{false};
  std::unordered_map<int, Connection> connections_;

  struct Metrics {
    obs::Counter* connections_opened = nullptr;
    obs::Counter* connections_rejected = nullptr;
    obs::Counter* accepted = nullptr;   // request frames admitted
    obs::Counter* rejected = nullptr;   // request frames shed
    obs::Counter* responses = nullptr;
    obs::Counter* stale = nullptr;      // responses answered past the SLO
    obs::Counter* partial_batches = nullptr;
    obs::Histogram* request_ns = nullptr;
    obs::Gauge* queue_depth = nullptr;  // un-flushed response bytes, summed
    obs::Gauge* connections = nullptr;
  } m_{};

  std::thread loop_;  // last member: joined before anything it reads dies
};

}  // namespace smash::serve
