// Little-endian binary encode/decode helpers shared by the durability
// layer (WAL records, checkpoint blobs) and net::Trace event serialization.
// Encoding appends to a std::string; decoding goes through BinaryReader,
// whose accessors return false instead of reading past the end, so corrupt
// or truncated input is always a detected failure, never UB.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace smash::util {

inline void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

inline void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

// u32 length prefix + raw bytes.
inline void put_bytes(std::string& out, std::string_view bytes) {
  put_u32(out, static_cast<std::uint32_t>(bytes.size()));
  out.append(bytes.data(), bytes.size());
}

// Bounds-checked sequential reader over an immutable byte buffer. Every
// accessor returns false on exhausted input and leaves the output
// untouched; callers treat any false as corruption.
struct BinaryReader {
  std::string_view data;
  std::size_t pos = 0;

  explicit BinaryReader(std::string_view bytes) : data(bytes) {}

  std::size_t remaining() const noexcept { return data.size() - pos; }
  bool done() const noexcept { return pos == data.size(); }

  bool u8(std::uint8_t& v) {
    if (remaining() < 1) return false;
    v = static_cast<std::uint8_t>(data[pos++]);
    return true;
  }

  bool u16(std::uint16_t& v) {
    if (remaining() < 2) return false;
    v = 0;
    for (int i = 0; i < 2; ++i) {
      v = static_cast<std::uint16_t>(
          v | static_cast<std::uint16_t>(static_cast<std::uint8_t>(data[pos + i]))
                  << (8 * i));
    }
    pos += 2;
    return true;
  }

  bool u32(std::uint32_t& v) {
    if (remaining() < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data[pos + i]))
           << (8 * i);
    }
    pos += 4;
    return true;
  }

  bool u64(std::uint64_t& v) {
    if (remaining() < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data[pos + i]))
           << (8 * i);
    }
    pos += 8;
    return true;
  }

  // Counterpart of put_bytes: length-prefixed view into the buffer (no copy).
  bool bytes(std::string_view& v) {
    std::uint32_t len = 0;
    if (!u32(len)) return false;
    if (remaining() < len) return false;
    v = data.substr(pos, len);
    pos += len;
    return true;
  }

  bool str(std::string& v) {
    std::string_view view;
    if (!bytes(view)) return false;
    v.assign(view);
    return true;
  }
};

}  // namespace smash::util
