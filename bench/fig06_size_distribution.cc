// Reproduces paper Fig. 6: CDFs of campaign size (# servers) and client
// count over all inferred campaigns. Paper anchors: ~75% of campaigns have
// fewer than 18 servers; ~75% have a single involved client.
#include <cstdio>

#include "bench_common.h"
#include "util/stats.h"

int main() {
  using namespace smash;
  std::vector<double> sizes;
  std::vector<double> clients;
  for (const char* preset : {"2011day", "2012day"}) {
    const auto& ds = bench::dataset(preset);
    const auto op = bench::run_operating_point(ds);
    for (const auto& campaign : op.result.campaigns) {
      sizes.push_back(static_cast<double>(campaign.servers.size()));
      clients.push_back(static_cast<double>(campaign.involved_clients.size()));
    }
  }

  const auto size_cdf = util::empirical_cdf(sizes);
  const auto client_cdf = util::empirical_cdf(clients);

  util::Table table("Fig. 6: distribution of campaign and client sizes (CDF)");
  table.set_header({"x", "P[#servers <= x]", "P[#clients <= x]"});
  for (const double x : {1.0, 2.0, 4.0, 8.0, 18.0, 32.0, 64.0, 128.0, 600.0}) {
    table.add_row({util::format_fixed(x, 0),
                   util::format_fixed(util::cdf_at(size_cdf, x), 3),
                   util::format_fixed(util::cdf_at(client_cdf, x), 3)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\ncampaigns: %zu; P[size <= 18] = %.2f (paper ~0.75); "
              "P[single client] = %.2f (paper ~0.75)\n",
              sizes.size(), util::cdf_at(size_cdf, 18.0),
              util::cdf_at(client_cdf, 1.0));
  std::puts("Shape target: most campaigns are small; most have one infected");
  std::puts("  client (which defeats client-side clustering detectors).");
  return 0;
}
