// Scenario matrix for detection-quality tracking: composable generators on
// top of stream_gen's event/truth model that produce the adversarial and
// real-world traffic shapes the clean staggered-campaign world lacks —
// slow-burn campaigns straddling window boundaries, CDN/cloud-fronted
// campaigns sharing hosting with benign 2LDs, DGA bursts, flash-crowd
// benign spikes (false-positive pressure), diurnal load curves, jittered
// arrivals. Every scenario carries ScenarioTruth (per-campaign server sets
// + active intervals + benign-only labels) so src/synth/quality.h can score
// precision/recall/F1 and detection latency against it. Deterministic from
// the seed, like every other generator in src/synth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/trace.h"
#include "synth/stream_gen.h"
#include "util/rng.h"
#include "whois/whois.h"

namespace smash::synth {

// Ground truth of one generated scenario. Campaign server names are
// effective 2LDs (what DetectionSnapshot campaigns list), benign_2lds the
// sorted, deduplicated set of labels that must never be flagged.
struct ScenarioTruth {
  std::vector<StreamCampaignTruth> campaigns;
  std::vector<std::string> benign_2lds;
  std::uint64_t duration_s = 0;
};

struct Scenario {
  std::string name;
  std::vector<StreamEvent> events;  // nondecreasing time_s
  whois::Registry whois;
  ScenarioTruth truth;
};

// Arrival-time shaping for benign browsing.
enum class Arrival : std::uint8_t {
  kUniform,  // flat over the stream
  kDiurnal,  // day/night load curve peaking mid-day (rejection-sampled)
};

struct BenignSpec {
  std::uint32_t servers = 300;
  std::uint32_t clients = 200;
  std::uint32_t visits = 4000;  // total page visits across the stream
  double subdomain_fraction = 0.3;
  Arrival arrival = Arrival::kUniform;
  // Fraction of benign servers hosted on the builder's shared cloud pool
  // (enable_cloud_pool), so cloud-fronted campaigns share IPs with benign
  // infrastructure. 0 = every benign server on its own address.
  double cloud_fraction = 0.0;
  std::string host_prefix = "site";  // hosts <prefix><N>.org
};

// A benign popularity spike: many distinct one-off clients co-visiting a
// small set of event sites in a short interval, most arriving through the
// same referrer (a news portal) — the classic false-positive pressure shape.
// Keep `clients` below the consumer's IDF threshold or the spike is simply
// filtered before it can pressure anything.
struct FlashCrowdSpec {
  std::uint64_t start_s = 0;
  std::uint64_t duration_s = 3600;
  std::uint32_t servers = 5;   // co-visited event 2LDs
  std::uint32_t clients = 80;  // distinct clients in the spike
  std::uint32_t visits_per_client = 2;  // visits to each event site
  double referred_fraction = 0.9;       // share arriving via the portal
  // Event sites live on one platform's small address pool (the usual shape
  // of a one-event site cluster). Together with the shared clip filenames
  // this pushes the cluster past the correlation threshold (eq. 9 needs
  // two secondary dimensions to cross score_threshold at this herd size),
  // so only referrer pruning stands between the crowd and a false
  // positive — which is the point of the scenario.
  bool shared_hosting = true;
  std::string host_prefix = "event";    // hosts <prefix><N>.live
};

struct CampaignSpec {
  std::string label;  // names hosts (<label>-s<N>.biz) and bot clients
  std::uint32_t servers = 5;
  std::uint32_t bots = 4;
  std::uint64_t start_s = 0;  // active interval [start_s, end_s)
  std::uint64_t end_s = 0;    // start_s >= end_s: dropped (zero-duration)
  std::uint32_t poll_interval_s = 600;
  // Per-request arrival jitter within a poll tick (clamped to the active
  // interval). 0 = every bot request lands exactly on the tick.
  std::uint64_t request_jitter_s = 0;

  enum class Naming : std::uint8_t {
    kLabeled,  // <label>-s<N>.biz
    kDga,      // zeus-style siblings under one free zone (dns/dga.h)
  };
  Naming naming = Naming::kLabeled;

  // Secondary-dimension signal profile (paper §VI: evading one is cheap,
  // evading all is not).
  bool shared_filename = true;  // common /gate.php vs per-server paths
  bool shared_ips = true;       // per-campaign flux pool vs disjoint hosting
  bool shared_whois = true;     // one registrant record vs none
  // Draw server addresses from the builder's shared cloud pool instead of a
  // campaign-private pool: the IP dimension then links the campaign to
  // benign cloud tenants too. Requires enable_cloud_pool; overrides
  // shared_ips.
  bool cloud_fronted = false;
};

// Composes one scenario from benign background, popularity head, flash
// crowds and campaigns. All randomness flows from the seed through named
// util::Rng forks, so equal (name, seed, specs) rebuild byte-identical
// scenarios regardless of call-site history.
class ScenarioBuilder {
 public:
  ScenarioBuilder(std::string name, std::uint64_t seed,
                  std::uint64_t duration_s);

  // Shared cloud/CDN hosting pool: one set of addresses that benign
  // cloud-hosted servers (BenignSpec::cloud_fraction) and cloud-fronted
  // campaigns both resolve to.
  void enable_cloud_pool(std::uint32_t addresses);

  void add_benign_background(const BenignSpec& spec);
  // Servers contacted by more distinct clients than the consumer's IDF
  // threshold, so the filter has real work.
  void add_popular_head(std::uint32_t servers, std::uint32_t clients);
  void add_flash_crowd(const FlashCrowdSpec& spec);
  void add_campaign(const CampaignSpec& spec);

  Scenario build() &&;

 private:
  std::uint64_t benign_time(util::Rng& rng, Arrival arrival) const;

  std::string name_;
  std::uint64_t seed_;
  std::uint64_t duration_s_;
  Scenario scenario_;
  std::vector<std::string> cloud_pool_;
  std::vector<std::string> benign_hosts_;
  std::uint32_t campaign_ordinal_ = 0;
  std::uint32_t flash_ordinal_ = 0;
  std::uint32_t benign_ordinal_ = 0;
};

// --- the matrix --------------------------------------------------------------

// One scenario plus the engine shape it is evaluated with. Floors live in
// quality.h (floor_for) so metric definitions and pass/fail policy sit
// together.
struct ScenarioCase {
  Scenario scenario;
  std::uint32_t epoch_seconds = 3600;
  std::uint32_t window_epochs = 24;
  std::uint32_t idf_threshold = 200;
};

// The tracked scenario families (docs/QUALITY.md catalogs them):
//   staggered_campaigns      clean baseline, three staggered C&C campaigns
//   slow_burn_window_straddle long-cadence campaign outliving the window
//   cdn_cloud_fronted        campaigns sharing cloud IPs with benign tenants
//   dga_burst                zeus-style sibling burst, no whois signal
//   flash_crowd_benign       benign-only spikes (false-positive pressure)
//   diurnal_jitter           diurnal benign load + jittered campaign polling
//   combined_stress          all of the above in one stream
// `smoke` shrinks durations/populations to CI scale; the family list and
// truth semantics are identical in both shapes.
std::vector<ScenarioCase> scenario_matrix(bool smoke, std::uint64_t seed = 2015);

// The trace a monolithic batch run would see over the whole scenario.
net::Trace to_batch_trace(const Scenario& scenario);

}  // namespace smash::synth
