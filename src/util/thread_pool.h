// Minimal fixed-size thread pool plus a parallel_for helper.
//
// Used to mine the five similarity dimensions concurrently and to shard
// the probe range of the client-dimension join (core/dimensions.cc). The
// pool is deliberately tiny: a locked deque and condition variable are
// plenty when tasks are milliseconds-to-seconds of graph work, and the
// callers only ever need fork-join parallelism over a known index range.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace smash::util {

class ThreadPool {
 public:
  // Spawns `num_threads` workers; 0 is clamped to 1.
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  // Enqueues a task; the future reports completion and rethrows any
  // exception the task raised.
  std::future<void> submit(std::function<void()> task);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

// Runs fn(0), ..., fn(n-1) across the pool and the calling thread, blocking
// until all complete. Rethrows the first exception encountered (remaining
// iterations still run to completion). Iteration order across threads is
// unspecified; callers must make iterations independent.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace smash::util
