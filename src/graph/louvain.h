// Louvain community detection (Blondel, Guillaume, Lambiotte, Lefebvre,
// "Fast unfolding of communities in large networks", J. Stat. Mech. 2008) —
// the clustering algorithm SMASH uses on every similarity graph (paper
// §III-B1, reference [17]).
//
// Two repeated phases:
//   1. Local moving: greedily move nodes to the neighbor community with the
//      highest modularity gain until no move improves modularity.
//   2. Aggregation: collapse each community to one node (intra-community
//      weight becomes a self-loop) and recurse.
//
// Deterministic: node visit order is by id (no RNG), so identical inputs
// produce identical partitions — required for reproducible tables.
//
// Local moving can run in deterministic chunked-parallel sweeps
// (LouvainOptions::num_threads / chunk_size): nodes are partitioned into
// contiguous chunks, candidate moves for a chunk are evaluated concurrently
// against the community state frozen at chunk start, and accepted moves are
// applied serially in node order with a conflict check that re-evaluates any
// node whose frozen gains went stale. The applied trajectory is therefore
// exactly the serial greedy trajectory, so the partition is byte-identical
// for EVERY thread count and chunk size — including the default serial path
// (num_threads <= 1, chunk_size == 0), which is the seed implementation
// unchanged. See docs/ARCHITECTURE.md ("Chunked-sweep determinism").
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace smash::graph {

struct LouvainOptions {
  // Stop a local-moving sweep cycle when a full pass gains less than this.
  double min_modularity_gain = 1e-7;
  // Safety cap on aggregation levels (real traces need < 10).
  int max_levels = 32;
  // Cap on full sweeps per level.
  int max_sweeps_per_level = 64;

  // --- chunked-parallel local moving ---------------------------------------
  // Worker threads for local moving (unit: threads). 0 or 1 = the seed's
  // serial sweep (no pool); > 1 = deterministic chunked sweeps on an
  // internal thread pool. Callers that already size a thread budget
  // (core::SmashConfig) leave this 0 and the pipeline substitutes its own
  // per-dimension thread count. The partition is identical either way.
  unsigned num_threads = 0;
  // Nodes per chunk of the chunked path (unit: nodes; 0 = auto, currently
  // 4096). Setting chunk_size > 0 forces the chunked evaluate/apply path
  // even at one thread — same output, exercised by the differential tests.
  std::uint32_t chunk_size = 0;
};

// Work counters of one louvain()/louvain_refined() call, summed over all
// aggregation levels and refinement passes. The partition never depends on
// threads or chunks; these counters make the execution shape observable:
//  - sweeps / moves / evaluated_nodes are invariant across num_threads AND
//    chunk_size (the chunked path replays the serial trajectory exactly);
//  - chunks and stale_reevals are 0 on the serial path and, on the chunked
//    path, depend on chunk_size but are invariant across num_threads
//    (evaluation is pure per node; the apply order is fixed).
struct LouvainStats {
  std::size_t sweeps = 0;           // local-moving sweeps, all levels
  std::size_t chunks = 0;           // chunk evaluate+apply rounds
  std::size_t evaluated_nodes = 0;  // frozen-state (or serial) evaluations
  std::size_t stale_reevals = 0;    // apply-phase re-evals on stale gains
  std::size_t moves = 0;            // accepted community moves

  LouvainStats& operator+=(const LouvainStats& other) noexcept {
    sweeps += other.sweeps;
    chunks += other.chunks;
    evaluated_nodes += other.evaluated_nodes;
    stale_reevals += other.stale_reevals;
    moves += other.moves;
    return *this;
  }

  friend bool operator==(const LouvainStats&, const LouvainStats&) = default;
};

struct LouvainResult {
  // community_of[node] in [0, num_communities), labels densely renumbered.
  std::vector<std::uint32_t> community_of;
  std::uint32_t num_communities = 0;
  double modularity = 0.0;  // of the final partition on the input graph
  int levels = 0;           // aggregation levels performed
  LouvainStats stats;       // execution-shape counters (see above)

  // Nodes grouped by community, each sorted ascending. Singleton
  // communities are included; callers typically filter them.
  std::vector<std::vector<std::uint32_t>> groups() const;
};

// Runs Louvain on `g`. Isolated nodes end up in singleton communities.
LouvainResult louvain(const Graph& g, const LouvainOptions& options = {});

// Louvain with recursive refinement: after the global pass, each community
// is re-clustered on its *induced subgraph*; communities that split are
// replaced by their parts, recursively, until stable.
//
// Why: plain modularity suffers the resolution limit — in a large sparse
// graph, two small dense groups joined by a single weak edge merge because
// the expected-edge term is ~0. SMASH's similarity graphs are exactly that
// shape (campaign cliques bridged through a shared benign server or a
// doubly-infected client), and eq. (9) weights herds by density, so the
// agglomerated low-density herds would suppress every campaign score. On
// the induced subgraph the total weight m is small, the expected-edge term
// is meaningful, and bridges split off. Cliques are stable under
// refinement, so campaign herds survive intact.
//
// Shares one thread pool across the base pass and every refinement pass
// (num_threads > 1); stats accumulate over all of them.
LouvainResult louvain_refined(const Graph& g, const LouvainOptions& options = {});

// Result of a warm-started (repair-sweep) Louvain run.
struct WarmStartResult {
  LouvainResult result;
  bool fell_back = false;          // ran full louvain_refined instead
  std::size_t repaired_nodes = 0;  // nodes whose community changed vs seed
  std::size_t repair_sweeps = 0;   // repair rounds over the dirty frontier
};

// Warm-start Louvain with localized repair: seeds the partition from
// `seed_community_of` (size must equal g.num_nodes(); labels are arbitrary —
// equal labels mean same seed community) and runs greedy local-move repair
// sweeps starting from `dirty_nodes` (ascending, unique node ids — typically
// the endpoints of edges that changed since the seed partition was computed),
// expanding to the neighbors of every accepted move until no move improves
// modularity. Falls back to a full louvain_refined() when the dirty fraction
// exceeds `fallback_fraction` of the nodes or the seed is unusable.
//
// This is an APPROXIMATE primitive: the repaired partition is deterministic
// for identical inputs and its modularity is never below the seed
// partition's, but it is NOT guaranteed to equal louvain_refined() on the
// same graph. The incremental miner's byte-identical path therefore never
// calls it — it is the opt-in speed mode behind
// core::SmashConfig::delta_approximate_louvain, excluded from the
// incremental-vs-full identity matrix (see docs/ARCHITECTURE.md).
WarmStartResult louvain_warm_start(const Graph& g,
                                   const std::vector<std::uint32_t>& seed_community_of,
                                   const std::vector<std::uint32_t>& dirty_nodes,
                                   double fallback_fraction,
                                   const LouvainOptions& options = {});

// Modularity Q of an arbitrary partition of `g`:
//   Q = sum_c [ in_c / 2m  -  (tot_c / 2m)^2 ]
// where in_c is total intra-community edge weight (each direction counted,
// self-loops twice) and tot_c the sum of weighted degrees.
double modularity(const Graph& g, const std::vector<std::uint32_t>& community_of);

}  // namespace smash::graph
