// Ablation bench (DESIGN.md): SMASH against the three baselines —
// the single-feature-vector k-means the paper dismisses in §III-B, the
// main dimension alone (no correlation), and IDS+blacklists alone.
#include <cstdio>

#include "baseline/baselines.h"
#include "bench_common.h"

int main() {
  using namespace smash;
  const auto& ds = bench::dataset("2011day");

  util::Table table("Ablation: SMASH vs baselines (Data2011day, ground-truth scoring)");
  table.set_header({"Detector", "reported", "truly malicious", "benign/noise",
                    "precision", "recall"});
  const auto add = [&](const std::string& name, const baseline::BaselineScore& score) {
    table.add_row({name, std::to_string(score.reported),
                   std::to_string(score.truly_malicious),
                   std::to_string(score.benign_or_noise),
                   util::format_fixed(score.precision(), 3),
                   util::format_fixed(score.recall(), 3)});
  };

  // SMASH at the paper's operating point (multi 0.8 / single 1.0).
  {
    const auto op = bench::run_operating_point(ds);
    baseline::BaselineResult as_baseline;
    as_baseline.name = "smash";
    for (const auto& campaign : op.result.campaigns) {
      std::vector<std::string> names;
      for (auto member : campaign.servers) {
        names.push_back(op.result.server_name(member));
      }
      as_baseline.campaigns.push_back(std::move(names));
    }
    add("SMASH (0.8/1.0)", baseline::score_baseline(as_baseline, ds.truth));
  }

  const core::SmashConfig config;
  add("client dim only",
      baseline::score_baseline(
          baseline::client_dimension_only(ds.trace, ds.whois, config), ds.truth));
  add("IDS + blacklists",
      baseline::score_baseline(
          baseline::ids_blacklist_only(ds.trace, ds.signatures, ds.blacklist),
          ds.truth));
  baseline::KMeansConfig kmeans;
  add("kmeans features",
      baseline::score_baseline(
          baseline::feature_vector_kmeans(ds.trace, ds.whois, config, kmeans),
          ds.truth));

  std::fputs(table.render().c_str(), stdout);
  std::puts("\nShape targets: SMASH pairs high precision with high recall;");
  std::puts("  client-dim-only floods with benign co-visit groups (precision");
  std::puts("  collapse); IDS+blacklists are precise but see a fraction of the");
  std::puts("  servers; flat k-means cannot trade the dimensions off well.");
  return 0;
}
