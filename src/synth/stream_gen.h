// Timestamped workload for the streaming engine: a day-long (configurable)
// event stream of benign browsing plus malicious campaigns that appear and
// disappear mid-stream, so detection latency — epochs from activation to
// first verdict — is measurable against ground truth. Deterministic from
// the seed, like every other generator in src/synth.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "net/trace.h"
#include "stream/engine.h"
#include "stream/ingest.h"
#include "whois/whois.h"

namespace smash::synth {

// One timestamped edge event.
using StreamEvent = std::variant<stream::RequestEvent, stream::ResolutionEvent,
                                 stream::RedirectEvent>;

inline std::uint64_t event_time(const StreamEvent& event) noexcept {
  return std::visit([](const auto& e) { return e.time_s; }, event);
}

// Routes the event to the matching StreamEngine::ingest overload.
inline void ingest_event(stream::StreamEngine& engine, const StreamEvent& event) {
  std::visit([&engine](const auto& e) { engine.ingest(e); }, event);
}

struct StreamCampaignTruth {
  std::vector<std::string> servers;  // 2LD hostnames
  std::uint64_t start_s = 0;         // active interval [start_s, end_s)
  std::uint64_t end_s = 0;
  std::uint32_t bots = 0;
};

struct StreamScenarioConfig {
  std::uint64_t seed = 1;
  std::uint64_t duration_s = 86400;

  // Benign background: light random browsing over a long tail of servers.
  std::uint32_t benign_servers = 300;
  std::uint32_t benign_clients = 200;
  std::uint32_t benign_visits = 4000;  // total page visits across the stream
  // Fraction of benign requests that go through a www. subdomain, so 2LD
  // aggregation has work to do in every epoch.
  double subdomain_fraction = 0.3;

  // Popular head: servers contacted by more distinct clients than the IDF
  // threshold the consumer runs with (pick idf_threshold < popular_clients
  // in SmashConfig to exercise the filter).
  std::uint32_t popular_servers = 4;
  std::uint32_t popular_clients = 80;

  // Campaigns: `campaign_bots` infected clients polling every server of the
  // campaign on a fixed cadence while active. Activation windows are
  // staggered across the stream so campaigns appear and disappear
  // mid-stream.
  std::uint32_t campaigns = 3;
  std::uint32_t campaign_servers = 5;
  std::uint32_t campaign_bots = 4;
  std::uint32_t poll_interval_s = 600;
  double active_fraction = 0.4;  // of duration_s
};

struct StreamScenario {
  std::vector<StreamEvent> events;  // nondecreasing time_s
  whois::Registry whois;            // shared registrant/email per campaign
  std::vector<StreamCampaignTruth> campaigns;
  std::uint64_t duration_s = 0;
};

StreamScenario generate_stream(const StreamScenarioConfig& config);

// Replays every event into the engine, in order. Does not call finish().
void feed(stream::StreamEngine& engine, const StreamScenario& scenario);

// The trace a monolithic batch run would see over [begin_s, end_s): same
// events, same order, same day indices — the comparator for the
// stream/batch equivalence tests. Finalized.
net::Trace batch_trace(const StreamScenario& scenario, std::uint64_t begin_s,
                       std::uint64_t end_s);

// Same conversion over a bare event vector (scenarios.h builds on this).
net::Trace events_to_trace(const std::vector<StreamEvent>& events,
                           std::uint64_t begin_s, std::uint64_t end_s);

}  // namespace smash::synth
