#include "util/failpoint.h"

#include <cstdlib>
#include <mutex>
#include <unordered_map>

namespace smash::util {

namespace {

struct SiteState {
  FailPoint::Spec spec;
  bool armed = false;
  std::uint64_t hits = 0;
};

struct Registry {
  std::mutex mutex;
  std::unordered_map<std::string, SiteState> sites;
  bool env_parsed = false;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during teardown
  return *r;
}

// Registry-mutating core of FailPoint::arm; callers hold r.mutex.
void arm_locked(Registry& r, const std::string& name, FailPoint::Spec spec) {
  SiteState& site = r.sites[name];
  site.spec = spec;
  site.armed = true;
  site.hits = 0;
}

// Parses one "<site>=<kind>[:<bytes>][@<skip>]" clause; ignores malformed
// clauses rather than aborting — a typo in the env var should surface as
// "failpoint never fired", not as a crash in an unrelated binary.
void arm_clause(Registry& r, std::string_view clause) {
  const auto eq = clause.find('=');
  if (eq == std::string_view::npos || eq == 0) return;
  const std::string name(clause.substr(0, eq));
  std::string_view rest = clause.substr(eq + 1);

  FailPoint::Spec spec;
  if (const auto at = rest.find('@'); at != std::string_view::npos) {
    spec.skip = std::strtoull(std::string(rest.substr(at + 1)).c_str(), nullptr, 10);
    rest = rest.substr(0, at);
  }
  std::string_view kind = rest;
  if (const auto colon = rest.find(':'); colon != std::string_view::npos) {
    kind = rest.substr(0, colon);
    spec.action.bytes =
        std::strtoull(std::string(rest.substr(colon + 1)).c_str(), nullptr, 10);
  }
  if (kind == "error") {
    spec.action.kind = FailAction::Kind::kError;
  } else if (kind == "crash") {
    spec.action.kind = FailAction::Kind::kCrash;
  } else if (kind == "short") {
    spec.action.kind = FailAction::Kind::kShortWrite;
  } else {
    return;
  }
  arm_locked(r, name, spec);
}

void parse_env_locked(Registry& r, bool force) {
  if (r.env_parsed && !force) return;
  r.env_parsed = true;
  const char* env = std::getenv("SMASH_FAILPOINTS");
  if (env == nullptr || *env == '\0') return;
  std::string_view list(env);
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t end = list.find_first_of(",;", start);
    if (end == std::string_view::npos) end = list.size();
    if (end > start) arm_clause(r, list.substr(start, end - start));
    start = end + 1;
  }
}

}  // namespace

void FailPoint::arm(const std::string& name, Spec spec) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  arm_locked(r, name, spec);
}

void FailPoint::disarm(const std::string& name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  if (auto it = r.sites.find(name); it != r.sites.end()) it->second.armed = false;
}

void FailPoint::disarm_all() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.sites.clear();
}

FailAction FailPoint::consume(std::string_view name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  parse_env_locked(r, /*force=*/false);
  auto it = r.sites.find(std::string(name));
  if (it == r.sites.end() || !it->second.armed) return {};
  SiteState& site = it->second;
  const std::uint64_t hit = site.hits++;
  if (hit < site.spec.skip) return {};
  if (site.spec.fire_count != 0 &&
      hit >= site.spec.skip + site.spec.fire_count) {
    return {};
  }
  return site.spec.action;
}

std::uint64_t FailPoint::hits(std::string_view name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.sites.find(std::string(name));
  return it == r.sites.end() ? 0 : it->second.hits;
}

void FailPoint::arm_from_env() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  // Explicit calls re-read the variable (a harness can re-arm after
  // disarm_all); the implicit call from consume() parses only once.
  parse_env_locked(r, /*force=*/true);
}

}  // namespace smash::util
