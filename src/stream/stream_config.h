// Configuration of the streaming subsystem: epoch-windowed ingest over the
// batch SMASH pipeline. The paper mines a full collection window (one day,
// or one week) as a single batch; the streaming engine instead ingests
// timestamped requests continuously, partitions them into fixed epochs, and
// re-mines a sliding window of the last `window_epochs` epochs on every
// epoch close.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/smash_config.h"

namespace smash::obs {
class Registry;
}  // namespace smash::obs

namespace smash::stream {

// Epoch index: event time in seconds divided by StreamConfig::epoch_seconds.
using EpochId = std::uint64_t;

// When to fsync the write-ahead log (mirrors durability::FsyncPolicy —
// kept integer-compatible; stream_config.h stays a leaf header).
enum class WalFsync : std::uint8_t {
  kOff = 0,          // page cache only: fastest, loses the OS-buffered tail
  kOnSeal = 1,       // fsync at each epoch seal: bounded loss of one epoch
  kEveryRecord = 2,  // fsync per event: no acked event ever lost
};

// How a StreamEngine::recover() run rebuilt its state; carried on every
// DetectionSnapshot the recovered engine publishes (zeroed for engines that
// never recovered).
struct RecoveryStats {
  bool recovered = false;        // this engine came from recover()
  bool used_checkpoint = false;  // state seeded from a checkpoint
  std::uint64_t checkpoint_closes = 0;   // closes_total at that checkpoint
  std::uint64_t checkpoints_skipped = 0; // newer checkpoints that failed CRC
  std::uint64_t segments_scanned = 0;
  std::uint64_t records_replayed = 0;  // WAL records applied (events + seals)
  std::uint64_t events_replayed = 0;   // events among them
  std::uint64_t bytes_replayed = 0;
  std::uint64_t bytes_truncated = 0;   // torn tail cut from the last segment
  // recover() replayed a non-empty WAL tail and immediately installed a
  // fresh checkpoint, so a crash-looping process re-replays a bounded tail
  // instead of an ever-growing one.
  bool checkpoint_on_recovery = false;
  double recovery_ms = 0.0;            // wall time of recover()
};

struct StreamConfig {
  // Epoch length (unit: seconds; default 3600 = one hour): long enough for
  // a campaign's bots to accumulate the co-visits the client dimension
  // needs, short enough that detection latency stays within the paper's
  // daily cadence.
  std::uint32_t epoch_seconds = 3600;

  // Sliding window (unit: epochs; default 24 = a full day at the default
  // epoch length): the engine mines the last `window_epochs` closed
  // epochs, matching the batch pipeline's one-day collection window.
  std::uint32_t window_epochs = 24;

  // Events older than the open epoch. When true (default) they are dropped
  // and counted (IngestStats::late_dropped); when false they are folded
  // into the open epoch so no traffic is lost at the cost of epoch purity.
  bool drop_late_events = true;

  // Asynchronous mining: epoch closes hand the window to a dedicated
  // mining thread and ingest returns immediately; closes that arrive while
  // a mine is in flight coalesce into one "latest window" re-mine
  // (skip-to-newest — the queue never grows past one pending job), and
  // snapshots publish in close order with `DetectionSnapshot::sequence()`
  // accounting for every skipped intermediate window. When false (default)
  // the re-mine runs synchronously on the ingest thread, one snapshot per
  // republish, as the batch-equivalence tests drive it.
  bool async_mining = false;

  // Reuse each epoch shard's preprocessed form (cached at seal time,
  // core/preshard.h): every re-mine merges the cached shards instead of
  // re-preprocessing the assembled window, so sliding the window costs
  // O(new epoch) per-request work. Output is byte-identical either way;
  // disable only to cross-check against the assemble-and-preprocess path.
  bool reuse_shard_preprocess = true;

  // Incremental delta re-mining (ROADMAP #1, core/delta_mine.h): each close
  // hands the pipeline a WindowDelta (epochs added/evicted since the last
  // mined window, changed-2LD hint) and the mine reuses per-dimension caches
  // — translated key sets, similarity edges, Louvain partitions — touching
  // only what changed. Off (default) = today's full re-mine per close. With
  // smash.delta_approximate_louvain off (its default), published snapshots
  // are byte-identical to the full path for every thread count, sync or
  // async, across slides and recovery (the differential tests and the
  // stream fuzzer enforce it); fallbacks to a full mine (first close, post
  // recovery, cap/budget interactions, large deltas) are automatic and
  // reported per snapshot via DetectionSnapshot::delta_stats(). Requires
  // reuse_shard_preprocess (validate()): the delta caches key off the
  // merged shard id spaces.
  bool incremental_mining = false;

  // Test/bench hook: artificial delay (unit: milliseconds; default 0 =
  // none) per mine, before snapshot build, used to force epoch closes to
  // pile up behind an in-flight mine so coalescing is deterministic in
  // tests. Leave 0 in production.
  std::uint32_t mine_throttle_ms = 0;

  // Test hook: invoked once per mine at the throttle point (after mining,
  // before snapshot build). An exception it throws takes the mine-failure
  // path: the engine stays drainable and finish()/wait_for_mining() rethrow
  // the error on the writer thread. Leave null in production.
  std::function<void()> mine_test_hook;

  // Test hook: invoked inside DetectionSnapshot::build, after the header
  // fields are staged but before campaign assembly. An exception it throws
  // must leave the previously published snapshot untouched (no torn
  // publish) — tests/stream_test.cc holds the engine to that. Leave null
  // in production.
  std::function<void()> snapshot_test_hook;

  // --- durability ------------------------------------------------------------

  // When non-empty, the engine write-ahead-logs every ingested event and
  // epoch seal into this directory and checkpoints sealed state every
  // `checkpoint_every_epochs` closes; StreamEngine::recover() rebuilds an
  // equivalent engine from the directory after a crash. Empty (default)
  // disables durability entirely. A fresh engine refuses a directory that
  // already holds WAL/checkpoint state — that state is recover()'s input,
  // not scratch to clobber.
  std::string durability_dir;

  // WAL fsync cadence; ignored without durability_dir.
  WalFsync fsync_policy = WalFsync::kOnSeal;

  // Checkpoint cadence (unit: epoch closes; default 8). Smaller = shorter
  // replay after a crash, more checkpoint I/O. Must be >= 1 when
  // durability is on (validate()).
  std::uint32_t checkpoint_every_epochs = 8;

  // --- observability ---------------------------------------------------------

  // Master switch for the engine's metrics registry (docs/OBSERVABILITY.md
  // has the catalog). On (default), the engine maintains counters, gauges
  // and latency histograms for ingest, mining, publication, the WAL and
  // the verdict path; the cost is a few relaxed atomic increments per
  // event (measured <= 2% of ingest+mine in bench/perf_stream.cc). Off,
  // every metrics handle is null and the hot paths skip the updates
  // entirely. Detection output never depends on this switch.
  bool metrics_enabled = true;

  // Registry the engine records into. Null (default) = the engine creates
  // a private registry (inspect via StreamEngine::metrics()); set it to
  // share one surface across engines or with the process-wide
  // obs::Registry::global(). Ignored when metrics_enabled is false.
  std::shared_ptr<obs::Registry> metrics;

  // When non-empty (and metrics are enabled), a background MetricsLogger
  // appends one JSON line of the full registry every metrics_interval_ms
  // to `<metrics_dir>/metrics.jsonl` (tools/smash_stats.cc pretty-prints
  // it). Empty (default) = no periodic logging.
  std::string metrics_dir;
  std::uint32_t metrics_interval_ms = 10000;

  // Pipeline tunables for each window re-mine. smash.num_threads sizes
  // the mining fan-out AND the parallel shard-preprocess merge
  // (core::merge_shard_pres); with async_mining those threads run inside
  // the dedicated mining thread, on top of the ingest thread.
  // smash.join_memory_budget_bytes bounds each re-mine's resident
  // postings memory the same way it does a batch run (docs/MEMORY.md) —
  // the sliding window already bounds input size, so streaming rarely
  // needs it, but long windows over heavy traffic can set both.
  core::SmashConfig smash;

  EpochId epoch_of(std::uint64_t time_s) const noexcept {
    return epoch_seconds == 0 ? 0 : time_s / epoch_seconds;
  }

  // Rejects nonsensical configurations (SMASH_CHECK — fatal in release
  // builds too): zero-length epochs, an empty window, durability with a
  // zero checkpoint cadence. Engine and ingestor constructors call this,
  // so a bad config can never reach the ingest path.
  void validate() const;
};

}  // namespace smash::stream
