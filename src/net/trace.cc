#include "net/trace.h"

#include <fstream>
#include <stdexcept>
#include <unordered_set>

#include "util/binary.h"
#include "util/strings.h"

namespace smash::net {

namespace {
const util::IdSet kEmptySet{};

std::string_view dash_if_empty(std::string_view s) { return s.empty() ? "-" : s; }
std::string undash(std::string_view s) { return s == "-" ? std::string{} : std::string(s); }
}  // namespace

void Trace::finalize() {
  std::uint32_t max_day = 0;
  for (const auto& r : requests_) max_day = std::max(max_day, r.day);
  num_days_ = max_day + 1;
  for (auto& [server, set] : resolutions_) set.normalize();
  finalized_ = true;
}

void Trace::merge_from(const Trace& other) {
  const auto replay_request = [&](const HttpRequest& r) {
    HttpRequest copy = r;
    copy.client = intern_client(other.clients_.name(r.client));
    copy.server = intern_server(other.servers_.name(r.server));
    add_request(std::move(copy));
  };
  const auto replay_resolution = [&](std::uint32_t server, std::uint32_t ip) {
    add_resolution(intern_server(other.servers_.name(server)),
                   intern_ip(other.ips_.name(ip)));
  };
  const auto replay_redirect = [&](std::uint32_t from, std::uint32_t to) {
    add_redirect(intern_server(other.servers_.name(from)),
                 intern_server(other.servers_.name(to)));
  };

  if (other.journal_enabled_) {
    for (const auto& entry : other.journal_) {
      switch (entry.kind) {
        case JournalEntry::Kind::kRequest:
          replay_request(other.requests_[entry.index]);
          break;
        case JournalEntry::Kind::kResolution:
          replay_resolution(other.resolution_log_[entry.index].first,
                            other.resolution_log_[entry.index].second);
          break;
        case JournalEntry::Kind::kRedirect:
          replay_redirect(other.redirect_log_[entry.index].first,
                          other.redirect_log_[entry.index].second);
          break;
      }
    }
    return;
  }
  // No journal: requests in order, then resolutions and redirects by
  // ascending server id (not map order, which would make the merged
  // interner ids run-dependent).
  for (const auto& r : other.requests_) replay_request(r);
  for (std::uint32_t s = 0; s < other.servers_.size(); ++s) {
    if (auto it = other.resolutions_.find(s); it != other.resolutions_.end()) {
      for (auto ip : it->second) replay_resolution(s, ip);
    }
  }
  for (std::uint32_t s = 0; s < other.servers_.size(); ++s) {
    if (auto it = other.redirects_.find(s); it != other.redirects_.end()) {
      replay_redirect(s, it->second);
    }
  }
}

const util::IdSet& Trace::ips_of(std::uint32_t server) const {
  if (!finalized_) throw std::logic_error("Trace::ips_of before finalize()");
  auto it = resolutions_.find(server);
  return it == resolutions_.end() ? kEmptySet : it->second;
}

bool Trace::redirect_target(std::uint32_t server, std::uint32_t& to) const {
  auto it = redirects_.find(server);
  if (it == redirects_.end()) return false;
  to = it->second;
  return true;
}

std::size_t Trace::count_distinct_uri_files() const {
  std::unordered_set<std::string_view> files;
  files.reserve(requests_.size() / 4);
  for (const auto& r : requests_) files.insert(uri_file(r.path));
  return files.size();
}

void Trace::write_tsv(const std::string& file_path) const {
  std::ofstream out(file_path);
  if (!out) throw std::runtime_error("Trace::write_tsv: cannot open " + file_path);
  for (const auto& r : requests_) {
    out << "REQ\t" << clients_.name(r.client) << '\t' << servers_.name(r.server)
        << '\t' << r.day << '\t' << method_name(r.method) << '\t' << r.status
        << '\t' << r.path << '\t' << dash_if_empty(r.user_agent) << '\t'
        << dash_if_empty(r.referrer) << '\n';
  }
  for (const auto& [server, set] : resolutions_) {
    for (auto ip : set) {
      out << "RES\t" << servers_.name(server) << '\t' << ips_.name(ip) << '\n';
    }
  }
  for (const auto& [from, to] : redirects_) {
    out << "RED\t" << servers_.name(from) << '\t' << servers_.name(to) << '\n';
  }
}

Trace Trace::read_tsv(const std::string& file_path) {
  std::ifstream in(file_path);
  if (!in) throw std::runtime_error("Trace::read_tsv: cannot open " + file_path);
  Trace trace;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = util::split(line, '\t');
    const auto bad = [&](const char* why) {
      throw std::runtime_error("Trace::read_tsv: " + file_path + ":" +
                               std::to_string(line_no) + ": " + why);
    };
    if (fields[0] == "REQ") {
      if (fields.size() != 9) bad("REQ record needs 9 fields");
      HttpRequest r;
      r.client = trace.intern_client(fields[1]);
      r.server = trace.intern_server(fields[2]);
      r.day = static_cast<std::uint32_t>(std::stoul(std::string(fields[3])));
      const std::string_view m = fields[4];
      r.method = m == "POST" ? Method::kPost : m == "HEAD" ? Method::kHead : Method::kGet;
      r.status = static_cast<std::uint16_t>(std::stoul(std::string(fields[5])));
      r.path = std::string(fields[6]);
      r.user_agent = undash(fields[7]);
      r.referrer = undash(fields[8]);
      trace.add_request(std::move(r));
    } else if (fields[0] == "RES") {
      if (fields.size() != 3) bad("RES record needs 3 fields");
      trace.add_resolution(trace.intern_server(fields[1]), trace.intern_ip(fields[2]));
    } else if (fields[0] == "RED") {
      if (fields.size() != 3) bad("RED record needs 3 fields");
      trace.add_redirect(trace.intern_server(fields[1]), trace.intern_server(fields[2]));
    } else {
      bad("unknown record type");
    }
  }
  trace.finalize();
  return trace;
}

void Trace::serialize_events(std::string& out) const {
  if (!journal_enabled_) {
    throw std::logic_error("Trace::serialize_events requires a journal");
  }
  util::put_u32(out, static_cast<std::uint32_t>(journal_.size()));
  for (const auto& entry : journal_) {
    util::put_u8(out, static_cast<std::uint8_t>(entry.kind));
    switch (entry.kind) {
      case JournalEntry::Kind::kRequest: {
        const HttpRequest& r = requests_[entry.index];
        util::put_bytes(out, clients_.name(r.client));
        util::put_bytes(out, servers_.name(r.server));
        util::put_u32(out, r.day);
        util::put_u8(out, static_cast<std::uint8_t>(r.method));
        util::put_u16(out, r.status);
        util::put_bytes(out, r.path);
        util::put_bytes(out, r.user_agent);
        util::put_bytes(out, r.referrer);
        break;
      }
      case JournalEntry::Kind::kResolution: {
        const auto& [server, ip] = resolution_log_[entry.index];
        util::put_bytes(out, servers_.name(server));
        util::put_bytes(out, ips_.name(ip));
        break;
      }
      case JournalEntry::Kind::kRedirect: {
        const auto& [from, to] = redirect_log_[entry.index];
        util::put_bytes(out, servers_.name(from));
        util::put_bytes(out, servers_.name(to));
        break;
      }
    }
  }
}

Trace Trace::deserialize_events(std::string_view bytes) {
  const auto bad = [] {
    throw std::runtime_error("Trace::deserialize_events: malformed input");
  };
  Trace trace;
  trace.enable_journal();
  util::BinaryReader in(bytes);
  std::uint32_t count = 0;
  if (!in.u32(count)) bad();
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint8_t kind = 0;
    if (!in.u8(kind)) bad();
    switch (static_cast<JournalEntry::Kind>(kind)) {
      case JournalEntry::Kind::kRequest: {
        HttpRequest r;
        std::string_view client;
        std::string_view server;
        std::uint8_t method = 0;
        if (!in.bytes(client) || !in.bytes(server) || !in.u32(r.day) ||
            !in.u8(method) || !in.u16(r.status) || !in.str(r.path) ||
            !in.str(r.user_agent) || !in.str(r.referrer)) {
          bad();
        }
        if (method > static_cast<std::uint8_t>(Method::kHead)) bad();
        r.method = static_cast<Method>(method);
        r.client = trace.intern_client(client);
        r.server = trace.intern_server(server);
        trace.add_request(std::move(r));
        break;
      }
      case JournalEntry::Kind::kResolution: {
        std::string_view server;
        std::string_view ip;
        if (!in.bytes(server) || !in.bytes(ip)) bad();
        trace.add_resolution(trace.intern_server(server), trace.intern_ip(ip));
        break;
      }
      case JournalEntry::Kind::kRedirect: {
        std::string_view from;
        std::string_view to;
        if (!in.bytes(from) || !in.bytes(to)) bad();
        trace.add_redirect(trace.intern_server(from), trace.intern_server(to));
        break;
      }
      default:
        bad();
    }
  }
  if (!in.done()) bad();
  return trace;
}

Trace slice_day(const Trace& trace, std::uint32_t day) {
  Trace out;
  for (const auto& r : trace.requests()) {
    if (r.day != day) continue;
    HttpRequest copy = r;
    copy.client = out.intern_client(trace.clients().name(r.client));
    copy.server = out.intern_server(trace.servers().name(r.server));
    copy.day = 0;
    out.add_request(std::move(copy));
  }
  // Keep resolutions and redirects for servers that appear on this day.
  for (std::uint32_t s = 0; s < trace.servers().size(); ++s) {
    const auto& name = trace.servers().name(s);
    const auto local = out.servers().find(name);
    if (!local) continue;
    for (auto ip : trace.ips_of(s)) {
      out.add_resolution(*local, out.intern_ip(trace.ips().name(ip)));
    }
    std::uint32_t to = 0;
    if (trace.redirect_target(s, to)) {
      out.add_redirect(*local, out.intern_server(trace.servers().name(to)));
    }
  }
  out.finalize();
  return out;
}

}  // namespace smash::net
