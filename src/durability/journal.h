// DurableJournal: the StreamEngine's write-side durability state machine.
// Owns the open WAL segment, appends event records *before* the engine
// ingests them (write-ahead), writes the epoch-seal marker + rotates the
// segment at every seal, and installs checkpoints atomically (tmp+rename),
// pruning checkpoints and fully-covered segments afterwards.
//
// Failure model is fail-stop: IoError (real EIO or an injected one) and
// util::SimulatedCrash both mark the journal dead before propagating, so
// nothing is written after the "crash" — the on-disk bytes stay exactly as
// the failure left them, which is what the recovery tests replay against.
// The two causes differ on LATER use: after a SimulatedCrash every
// operation is a silent no-op (teardown of an in-process crash test must
// not smear the disk image), while after a real IoError every operation
// throws IoError again — a caller that swallowed the first error can never
// keep ingesting with journaling silently disabled.
//
// The journal also holds an exclusive DirLock on the durability dir for
// its whole lifetime, so two engines (same process or not) can never
// interleave appends into the same segment files.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "durability/checkpoint.h"
#include "durability/options.h"
#include "durability/wal.h"

namespace smash::obs {
class Counter;
class Histogram;
class Registry;
}  // namespace smash::obs

namespace smash::durability {

// Exact WAL position: `offset` bytes into segment `segment`.
struct WalPosition {
  std::uint64_t segment = 1;
  std::uint64_t offset = 0;
};

class DurableJournal {
 public:
  // Fresh journal: creates `dir` if needed and starts at segment 1. The
  // caller (StreamEngine) is responsible for rejecting a dir that already
  // holds WAL/checkpoint state — see dir_has_state().
  DurableJournal(std::string dir, FsyncPolicy policy);

  // Resumed journal (recovery): continues appending to segment
  // `position.segment`, already truncated to `position.offset` valid
  // bytes; `records_logged` restores the lifetime record counter. `lock`,
  // when already held, is adopted (recover() takes it before reading the
  // dir so there is no unlocked window); otherwise acquired here.
  DurableJournal(std::string dir, FsyncPolicy policy, WalPosition position,
                 std::uint64_t records_logged, DirLock lock = DirLock());

  DurableJournal(const DurableJournal&) = delete;
  DurableJournal& operator=(const DurableJournal&) = delete;

  // True when `dir` exists and contains WAL segments or checkpoints —
  // state that a plain constructor would silently clobber and only
  // StreamEngine::recover() may consume.
  static bool dir_has_state(const std::string& dir);

  // Appends one event record (fsync per kEveryRecord). Write-ahead: the
  // engine calls this before mutating any in-memory state.
  void append(const stream::RequestEvent& event);
  void append(const stream::ResolutionEvent& event);
  void append(const stream::RedirectEvent& event);

  // Appends the seal marker for `epoch` as the segment's last record,
  // fsyncs under kOnSeal/kEveryRecord, and rotates: the next append lazily
  // creates the next segment.
  void seal_epoch(stream::EpochId epoch);

  // Fills `state`'s WAL-position fields (replay_segment/replay_offset/
  // records_logged) from the journal's own counters, installs the
  // checkpoint atomically, then prunes: keeps the newest two checkpoints
  // and drops segments older than every retained checkpoint's replay
  // floor.
  void write_checkpoint(CheckpointState state);

  // Position the *next* append would write at.
  WalPosition position() const noexcept;

  std::uint64_t records_logged() const noexcept { return records_logged_; }

  // True once any operation threw (IoError or SimulatedCrash). After a
  // SimulatedCrash further operations are silent no-ops (teardown cannot
  // touch the disk image under test); after a real IoError they throw
  // IoError so a caller can never keep ingesting unjournaled.
  bool dead() const noexcept { return dead_; }
  // True when dead_ came from a util::SimulatedCrash.
  bool crashed() const noexcept { return crashed_; }

  // Points the journal's WAL/checkpoint metrics (wal.records_total,
  // wal.bytes_total, wal.fsync_ms, ckpt.install_ms) at `registry`; null
  // detaches (no metrics, the default). The registry must outlive the
  // journal — the StreamEngine owns both and calls this right after
  // construction. Not thread-safe against concurrent appends; call before
  // ingest starts.
  void set_metrics(obs::Registry* registry);

 private:
  void append_payload(std::string_view payload, bool is_seal);
  void ensure_writer();
  // Enforces the dead-journal contract at every public entry point:
  // returns true when the call must silently no-op (post-SimulatedCrash),
  // throws IoError when the journal died from a real I/O error.
  bool refuse_if_dead() const;

  std::string dir_;
  FsyncPolicy policy_;
  DirLock lock_;
  std::uint64_t segment_ = 1;
  std::uint64_t records_logged_ = 0;
  // Valid bytes already in the open segment when resuming (position()
  // before the lazy reopen); 0 for a fresh or freshly rotated segment.
  std::uint64_t resume_offset_ = 0;
  std::unique_ptr<WalWriter> writer_;
  bool resume_segment_ = false;
  bool dead_ = false;
  bool crashed_ = false;

  // Metric handles (all null until set_metrics; see docs/OBSERVABILITY.md).
  obs::Counter* records_metric_ = nullptr;
  obs::Counter* bytes_metric_ = nullptr;
  obs::Histogram* fsync_ms_metric_ = nullptr;
  obs::Histogram* ckpt_install_ms_metric_ = nullptr;
};

}  // namespace smash::durability
