// StreamEngine: the streaming dataflow over the batch pipeline.
//
//   events -> StreamIngestor (epoch shards, window ring, aggregates)
//          -> on epoch close: assemble window trace (journal replay)
//          -> SmashPipeline::run over the window
//          -> DetectionSnapshot, published RCU-style via SnapshotSlot
//          -> VerdictService (stream/verdict.h) answers without blocking
//
// Threading model: one writer thread calls ingest()/finish(); any number of
// reader threads call snapshot()/VerdictService::lookup concurrently. The
// only shared state is the SnapshotSlot's atomic shared_ptr — readers never
// wait on mining (which happens entirely before publish) and keep their
// snapshot alive until they drop it. See SnapshotSlot for the precise
// (not-quite-lock-free) guarantee.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/pipeline.h"
#include "stream/ingest.h"
#include "stream/snapshot.h"
#include "stream/stream_config.h"
#include "whois/whois.h"

namespace smash::stream {

// RCU-style publication point: the writer stores a new immutable snapshot,
// readers load the current one; the shared_ptr control block keeps old
// snapshots alive for readers mid-lookup. Neither side takes a user-level
// lock and readers never wait on mining, but note that mainstream standard
// libraries implement std::atomic<std::shared_ptr> with a tiny internal
// spinlock (is_lock_free() is false), so load/store briefly contend on a
// refcount update. A hazard-pointer slot would make this truly lock-free
// if that window ever shows up in profiles.
class SnapshotSlot {
 public:
  void publish(std::shared_ptr<const DetectionSnapshot> next) {
    slot_.store(std::move(next), std::memory_order_release);
  }

  [[nodiscard]] std::shared_ptr<const DetectionSnapshot> acquire() const {
    return slot_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::shared_ptr<const DetectionSnapshot>> slot_{};
};

// Timing/outcome record of one snapshot publication (the perf_stream bench
// reports these as epoch-close-to-publish latency).
struct EpochCloseRecord {
  EpochId last_epoch = 0;        // newest epoch in the published window
  std::uint32_t window_epochs = 0;
  std::size_t window_requests = 0;
  std::size_t kept_servers = 0;
  std::size_t campaigns = 0;
  std::size_t malicious_servers = 0;
  double assemble_ms = 0.0;  // shard merge + finalize
  double mine_ms = 0.0;      // SmashPipeline::run
  double snapshot_ms = 0.0;  // DetectionSnapshot::build + publish
  double total_ms = 0.0;     // epoch close -> snapshot visible to readers
  bool postings_budget_exceeded = false;
};

class StreamEngine {
 public:
  // `registry` must outlive the engine (whois data is registration-time
  // state, not traffic, so it is not streamed).
  StreamEngine(StreamConfig config, const whois::Registry& registry);

  // Forwards to the ingestor; when the event closes one or more epochs the
  // window is re-mined and a new snapshot published before the event is
  // admitted to the next epoch. Single writer thread only.
  void ingest(const RequestEvent& event);
  void ingest(const ResolutionEvent& event);
  void ingest(const RedirectEvent& event);

  // Seals the open epoch and publishes a final snapshot; call at stream end
  // (or at a forced checkpoint). No-op before the first event.
  void finish();

  // Current snapshot, or nullptr before the first publication. Callable
  // from any thread; never waits on mining.
  [[nodiscard]] std::shared_ptr<const DetectionSnapshot> snapshot() const {
    return slot_.acquire();
  }
  const SnapshotSlot& slot() const noexcept { return slot_; }

  const StreamIngestor& ingestor() const noexcept { return ingestor_; }
  const StreamConfig& config() const noexcept { return config_; }
  std::uint64_t snapshots_published() const noexcept { return sequence_; }
  const std::vector<EpochCloseRecord>& close_records() const noexcept {
    return close_records_;
  }

  // The current closed window as one trace (what the next publish would
  // mine). Exposed for the stream/batch equivalence tests.
  net::Trace assemble_window() const { return ingestor_.assemble_window(); }

 private:
  void republish();

  StreamConfig config_;
  const whois::Registry& registry_;
  core::SmashPipeline pipeline_;
  StreamIngestor ingestor_;
  SnapshotSlot slot_;
  std::uint64_t sequence_ = 0;
  std::vector<EpochCloseRecord> close_records_;
};

}  // namespace smash::stream
