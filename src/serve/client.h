// BlockingClient: a minimal synchronous client for the verdict server's
// framing — connect, send RequestFrames, read ResponseFrames. Used by the
// server tests and the open-loop load generator (bench/loadgen.cc), which
// splits one client across a paced sender thread (send only) and a
// receiver thread (receive only) — safe, because the two directions touch
// disjoint state (the fd's write side vs its read side + decoder).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "serve/frame.h"

namespace smash::serve {

class BlockingClient {
 public:
  // Throws std::runtime_error when the connection fails.
  BlockingClient(const std::string& address, std::uint16_t port);
  ~BlockingClient();

  BlockingClient(BlockingClient&& other) noexcept;
  BlockingClient& operator=(BlockingClient&&) = delete;
  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  // Writes the whole encoded frame (throws on a broken connection).
  void send(const RequestFrame& request);
  // Writes raw bytes as-is — tests use it to send torn or hostile frames.
  void send_raw(std::string_view bytes);

  // Blocks for the next complete response frame; nullopt on EOF. Throws
  // on a malformed response (the server broke the framing contract).
  std::optional<ResponseFrame> receive();

  // send() + receive() for the simple call-response case.
  std::optional<ResponseFrame> call(const RequestFrame& request);

  int fd() const noexcept { return fd_; }
  void close();

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace smash::serve
