// Reproduces paper Fig. 8: effectiveness of the secondary dimensions —
// the share of detected servers inferred through each combination of
// {URI file, IP set, Whois}. Paper anchors: URI file alone 53.71%, all
// three 15.05%, IP+URI 14.16%, URI+Whois 17.01%.
#include <cstdio>
#include <map>

#include "bench_common.h"

int main() {
  using namespace smash;
  std::map<int, int> combo_counts;
  int total = 0;

  for (const char* preset : {"2011day", "2012day"}) {
    const auto& ds = bench::dataset(preset);
    const auto op = bench::run_operating_point(ds);
    for (const auto& campaign : op.result.campaigns) {
      for (auto member : campaign.servers) {
        ++combo_counts[op.result.correlation.dims_mask[member]];
        ++total;
      }
    }
  }

  const auto combo_name = [](int mask) {
    std::string name;
    if (mask & 1) name += "URI File";
    if (mask & 2) name += name.empty() ? "IP Set" : " + IP Set";
    if (mask & 4) name += name.empty() ? "Whois" : " + Whois";
    return name.empty() ? std::string("(none)") : name;
  };

  util::Table table("Fig. 8: effectiveness of secondary dimensions");
  table.set_header({"Dimension combination", "# servers", "share"});
  for (const auto& [mask, count] : combo_counts) {
    table.add_row({combo_name(mask), std::to_string(count),
                   util::format_fixed(100.0 * count / total, 2) + "%"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nShape targets (paper): URI File alone is the dominant combination");
  std::puts("  (~54%); IP and Whois mostly act as confirmation for URI File");
  std::puts("  (~14% and ~17%); all three together ~15% with zero FPs there.");
  return 0;
}
