#include "ids/ground_truth.h"

#include <stdexcept>

namespace smash::ids {

std::string_view campaign_kind_name(CampaignKind k) noexcept {
  switch (k) {
    case CampaignKind::kCnc: return "C&C";
    case CampaignKind::kWebExploit: return "Web exploit";
    case CampaignKind::kPhishing: return "Phishing";
    case CampaignKind::kDropZone: return "Drop zone";
    case CampaignKind::kOtherMalicious: return "Other malicious servers";
    case CampaignKind::kWebScanner: return "Web scanner";
    case CampaignKind::kIframeInjection: return "Iframe injection";
    case CampaignKind::kNoiseTorrent: return "Torrent (noise)";
    case CampaignKind::kNoiseTeamViewer: return "TeamViewer (noise)";
    case CampaignKind::kBenign: return "Benign";
  }
  return "?";
}

bool kind_is_malicious(CampaignKind k) noexcept {
  switch (k) {
    case CampaignKind::kCnc:
    case CampaignKind::kWebExploit:
    case CampaignKind::kPhishing:
    case CampaignKind::kDropZone:
    case CampaignKind::kOtherMalicious:
    case CampaignKind::kWebScanner:
    case CampaignKind::kIframeInjection:
      return true;
    case CampaignKind::kNoiseTorrent:
    case CampaignKind::kNoiseTeamViewer:
    case CampaignKind::kBenign:
      return false;
  }
  return false;
}

bool kind_is_attacking(CampaignKind k) noexcept {
  return k == CampaignKind::kWebScanner || k == CampaignKind::kIframeInjection;
}

std::uint32_t GroundTruth::add_campaign(CampaignTruth campaign) {
  if (campaign.name.empty()) {
    throw std::invalid_argument("GroundTruth::add_campaign: name required");
  }
  const auto index = static_cast<std::uint32_t>(campaigns_.size());
  for (const auto& server : campaign.servers) {
    // First registration wins: a benign server attacked by two campaigns
    // stays attributed to the first (mirrors the paper's one-label model).
    campaign_of_server_.try_emplace(server, index);
  }
  campaigns_.push_back(std::move(campaign));
  return index;
}

std::optional<std::uint32_t> GroundTruth::campaign_of(std::string_view server) const {
  auto it = campaign_of_server_.find(std::string(server));
  if (it == campaign_of_server_.end()) return std::nullopt;
  return it->second;
}

bool GroundTruth::server_is_malicious(std::string_view server) const {
  const auto idx = campaign_of(server);
  return idx && kind_is_malicious(campaigns_[*idx].kind);
}

bool GroundTruth::server_is_noise(std::string_view server) const {
  const auto idx = campaign_of(server);
  if (!idx) return false;
  const auto k = campaigns_[*idx].kind;
  return k == CampaignKind::kNoiseTorrent || k == CampaignKind::kNoiseTeamViewer;
}

void GroundTruth::mark_dead(std::string_view server) {
  dead_.insert(std::string(server));
}

bool GroundTruth::is_dead(std::string_view server) const {
  return dead_.count(std::string(server)) > 0;
}

std::size_t GroundTruth::num_malicious_servers() const {
  std::size_t count = 0;
  for (const auto& [server, idx] : campaign_of_server_) {
    (void)server;
    if (kind_is_malicious(campaigns_[idx].kind)) ++count;
  }
  return count;
}

}  // namespace smash::ids
