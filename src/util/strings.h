// Small string helpers shared across modules. All functions are pure.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace smash::util {

// Split `s` on `sep`; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string_view> split(std::string_view s, char sep);

// Split, dropping empty fields.
std::vector<std::string_view> split_nonempty(std::string_view s, char sep);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix) noexcept;
bool ends_with(std::string_view s, std::string_view suffix) noexcept;

// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s) noexcept;

// Render a double with fixed decimals (for table output).
std::string format_fixed(double v, int decimals);

// Thousands-separated integer rendering, e.g. 28544473 -> "28,544,473",
// matching the paper's table style.
std::string with_commas(std::uint64_t v);

}  // namespace smash::util
