// Shared streaming-fuzz machinery: the seeded random event schedule, its
// engine config, and deep snapshot equality. Used by the sync/async
// differential harness (tests/fuzz_equivalence_test.cc), the
// crash-recovery matrix (tests/recovery_equivalence_test.cc), and the WAL
// corruption fuzzer. Deterministic from the seed via util::Rng, so a
// failing seed reproduces exactly (docs/TESTING.md).
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "stream/engine.h"
#include "stream/snapshot.h"
#include "synth/stream_gen.h"
#include "util/rng.h"

namespace smash::test {

inline constexpr std::uint32_t kFuzzEpochSeconds = 600;

// Random timestamped schedule: bursts of benign browsing and campaign
// polling with occasional multi-epoch gaps and late (out-of-order) events.
// Time never exceeds ~10 epochs, so sync re-mines stay cheap.
inline std::vector<synth::StreamEvent> random_schedule(std::uint64_t seed) {
  util::Rng rng(seed ^ 0x57fea11ULL);
  std::vector<synth::StreamEvent> events;
  std::uint64_t now = 1;

  const std::uint32_t campaign_servers =
      2 + static_cast<std::uint32_t>(rng.uniform(3));
  const std::uint32_t bots = 2 + static_cast<std::uint32_t>(rng.uniform(3));
  const std::uint64_t total_events = 600 + rng.uniform(400);

  for (std::uint64_t e = 0; e < total_events; ++e) {
    now += rng.uniform(20);
    if (rng.bernoulli(0.01)) {
      now += kFuzzEpochSeconds * (2 + rng.uniform(3));  // multi-epoch gap
    }
    if (now > 10 * kFuzzEpochSeconds) break;

    // 6% of events arrive late: stamped up to two epochs in the past, so
    // some fall behind the open epoch and take the late-drop/fold path.
    std::uint64_t stamp = now;
    if (rng.bernoulli(0.06)) {
      const std::uint64_t back = rng.uniform(2 * kFuzzEpochSeconds);
      stamp = back >= stamp ? 0 : stamp - back;
    }

    const std::uint64_t kind = rng.uniform(100);
    if (kind < 78) {
      stream::RequestEvent req;
      req.time_s = stamp;
      if (rng.bernoulli(0.45)) {  // campaign polling
        const auto c = rng.uniform(campaign_servers);
        req.client = "bot" + std::to_string(rng.uniform(bots));
        req.host = "evil" + std::to_string(c) + ".test";
        req.path = "/beacon.exe";
      } else {  // benign browsing
        req.client = "user" + std::to_string(rng.uniform(30));
        req.host = "site" + std::to_string(rng.uniform(25)) + ".org";
        req.path = "/page" + std::to_string(rng.uniform(6)) + ".html";
      }
      req.user_agent = "UA";
      events.emplace_back(std::move(req));
    } else if (kind < 92) {
      stream::ResolutionEvent res;
      res.time_s = stamp;
      if (rng.bernoulli(0.5)) {
        const auto c = rng.uniform(campaign_servers);
        res.host = "evil" + std::to_string(c) + ".test";
        res.ip = "10.9.0." + std::to_string(c % 3);
      } else {
        const auto s = rng.uniform(25);
        res.host = "site" + std::to_string(s) + ".org";
        res.ip = "192.168.1." + std::to_string(s);
      }
      events.emplace_back(std::move(res));
    } else {
      stream::RedirectEvent redir;
      redir.time_s = stamp;
      redir.from = "site" + std::to_string(rng.uniform(25)) + ".org";
      redir.to = "site" + std::to_string(rng.uniform(25)) + ".org";
      events.emplace_back(std::move(redir));
    }
  }
  return events;
}

inline stream::StreamConfig schedule_config(std::uint64_t seed, bool async) {
  stream::StreamConfig config;
  config.epoch_seconds = kFuzzEpochSeconds;
  config.window_epochs = 3 + static_cast<std::uint32_t>(seed % 3);
  config.drop_late_events = seed % 2 == 0;
  config.async_mining = async;
  config.smash.idf_threshold = 50;
  config.smash.num_threads = seed % 3 == 0 ? 4 : 1;
  return config;
}

// Deep equality of two published snapshots: the verdict index a reader
// sees must be byte-identical, not merely campaign-count equal.
inline void expect_identical_snapshots(const stream::DetectionSnapshot& a,
                                       const stream::DetectionSnapshot& b) {
  EXPECT_EQ(a.first_epoch(), b.first_epoch());
  EXPECT_EQ(a.last_epoch(), b.last_epoch());
  EXPECT_EQ(a.sequence(), b.sequence());
  EXPECT_EQ(a.window_requests(), b.window_requests());
  EXPECT_EQ(a.kept_servers(), b.kept_servers());
  EXPECT_EQ(a.num_malicious_servers(), b.num_malicious_servers());
  EXPECT_EQ(a.postings_budget_exceeded(), b.postings_budget_exceeded());
  EXPECT_EQ(a.louvain_stats(), b.louvain_stats());
  EXPECT_EQ(a.late_dropped(), b.late_dropped());
  EXPECT_EQ(a.late_folded(), b.late_folded());
  // digest() folds in every verdict-bearing field (campaigns plus the
  // sorted per-2LD and per-IP verdict maps), so one comparison covers the
  // whole reader-visible surface.
  EXPECT_EQ(a.digest(), b.digest());
  ASSERT_EQ(a.campaigns().size(), b.campaigns().size());
  for (std::size_t c = 0; c < a.campaigns().size(); ++c) {
    EXPECT_EQ(a.campaigns()[c].servers, b.campaigns()[c].servers);
    EXPECT_EQ(a.campaigns()[c].involved_clients,
              b.campaigns()[c].involved_clients);
    EXPECT_EQ(a.campaigns()[c].single_client, b.campaigns()[c].single_client);
    for (const auto& host : a.campaigns()[c].servers) {
      const auto* va = a.find_host(host);
      const auto* vb = b.find_host(host);
      ASSERT_NE(va, nullptr) << host;
      ASSERT_NE(vb, nullptr) << host;
      EXPECT_EQ(va->campaign, vb->campaign) << host;
      EXPECT_EQ(va->campaign_servers, vb->campaign_servers) << host;
      EXPECT_EQ(va->window_requests, vb->window_requests) << host;
      EXPECT_EQ(va->active_epochs, vb->active_epochs) << host;
    }
  }
}

}  // namespace smash::test
