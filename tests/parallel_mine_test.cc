// mine_all_dimensions with threads=N must return identical DimensionAshes
// to the serial run: dimensions are independent and the sharded client
// join reproduces the serial pair stream exactly.
#include "core/dimensions.h"

#include <gtest/gtest.h>

#include <string>

#include "core/pipeline.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace smash::core {
namespace {

using test::add_request;
using test::resolve;

// A trace with enough structure that every dimension produces herds:
// campaign-style client overlap, shared files, shared IPs, plus benign
// background noise.
net::Trace structured_trace() {
  util::Rng rng(2024);
  net::Trace trace;

  // Three campaigns of 4 servers, each visited by 3 dedicated bots
  // requesting the same exe.
  for (int campaign = 0; campaign < 3; ++campaign) {
    for (int server = 0; server < 4; ++server) {
      const std::string host = "c" + std::to_string(campaign) + "s" +
                               std::to_string(server) + ".com";
      for (int bot = 0; bot < 3; ++bot) {
        const std::string client =
            "bot" + std::to_string(campaign) + "_" + std::to_string(bot);
        add_request(trace, client, host,
                    "/drop" + std::to_string(campaign) + ".exe");
      }
      resolve(trace, host, "10.0." + std::to_string(campaign) + ".7");
    }
  }

  // Benign background: 60 servers with light random traffic.
  for (int server = 0; server < 60; ++server) {
    const std::string host = "site" + std::to_string(server) + ".org";
    const auto visitors = 1 + rng.uniform(4);
    for (std::uint64_t i = 0; i < visitors; ++i) {
      const std::string client = "user" + std::to_string(rng.uniform(40));
      add_request(trace, client, host,
                  "/page" + std::to_string(rng.uniform(6)) + ".html");
    }
    resolve(trace, host,
            "192.168." + std::to_string(server % 8) + "." +
                std::to_string(server));
  }

  trace.finalize();
  return trace;
}

void expect_same_ashes(const DimensionAshes& a, const DimensionAshes& b) {
  EXPECT_EQ(a.dimension, b.dimension);
  EXPECT_EQ(a.ash_of, b.ash_of);
  EXPECT_EQ(a.graph_edges, b.graph_edges);
  EXPECT_DOUBLE_EQ(a.modularity, b.modularity);
  ASSERT_EQ(a.ashes.size(), b.ashes.size());
  for (std::size_t i = 0; i < a.ashes.size(); ++i) {
    EXPECT_EQ(a.ashes[i].members, b.ashes[i].members);
    EXPECT_DOUBLE_EQ(a.ashes[i].density, b.ashes[i].density);
  }
}

TEST(ParallelMining, ThreadsFourMatchesSerial) {
  const net::Trace trace = structured_trace();
  const whois::Registry registry;

  SmashConfig serial_config;
  serial_config.idf_threshold = 100;
  serial_config.num_threads = 1;
  SmashConfig threaded_config = serial_config;
  threaded_config.num_threads = 4;

  const auto pre_serial = preprocess(trace, serial_config);
  const auto pre_threaded = preprocess(trace, threaded_config);
  EXPECT_EQ(pre_serial.kept, pre_threaded.kept);

  const auto serial = mine_all_dimensions(pre_serial, registry, serial_config);
  const auto threaded =
      mine_all_dimensions(pre_threaded, registry, threaded_config);

  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t d = 0; d < serial.size(); ++d) {
    expect_same_ashes(serial[d], threaded[d]);
  }
}

TEST(ParallelMining, ParamDimensionIncludedWhenEnabled) {
  const net::Trace trace = structured_trace();
  const whois::Registry registry;

  SmashConfig config;
  config.idf_threshold = 100;
  config.enable_param_dimension = true;
  config.num_threads = 4;

  const auto pre = preprocess(trace, config);
  const auto dims = mine_all_dimensions(pre, registry, config);
  ASSERT_EQ(dims.size(), static_cast<std::size_t>(kNumDimensions + 1));

  config.num_threads = 1;
  const auto serial = mine_all_dimensions(pre, registry, config);
  for (std::size_t d = 0; d < dims.size(); ++d) {
    expect_same_ashes(serial[d], dims[d]);
  }
}

// The whois and file joins are probe-range sharded like the client join;
// their output must be identical for any thread count.
TEST(ParallelMining, WhoisAndFileJoinShardsMatchSerial) {
  const net::Trace trace = structured_trace();

  // Whois records sharing registrant+email inside each campaign, so the
  // whois join has real pairs to find.
  whois::Registry registry;
  for (int campaign = 0; campaign < 3; ++campaign) {
    whois::Record record;
    record.registrant = "actor" + std::to_string(campaign);
    record.email = "a" + std::to_string(campaign) + "@mail.test";
    for (int server = 0; server < 4; ++server) {
      registry.add("c" + std::to_string(campaign) + "s" +
                       std::to_string(server) + ".com",
                   record);
    }
  }

  SmashConfig serial_config;
  serial_config.idf_threshold = 100;
  serial_config.num_threads = 1;
  const auto pre = preprocess(trace, serial_config);

  for (const auto dimension : {Dimension::kWhois, Dimension::kFile}) {
    const auto serial =
        mine_dimension(dimension, pre, registry, serial_config);
    EXPECT_FALSE(serial.ashes.empty())
        << dimension_name(dimension) << " found no herds; test is vacuous";
    for (const unsigned threads : {2u, 3u, 5u, 8u}) {
      SmashConfig threaded_config = serial_config;
      threaded_config.num_threads = threads;
      const auto threaded =
          mine_dimension(dimension, pre, registry, threaded_config);
      expect_same_ashes(serial, threaded);
      EXPECT_EQ(serial.join_stats, threaded.join_stats)
          << dimension_name(dimension) << " threads=" << threads;
    }
  }
}

// SmashConfig::join_memory_budget_bytes must change memory shape only:
// campaigns and ashes are byte-identical to the unbounded run, the
// bounded-memory sharding provably engaged (more passes than joins), and
// residency observables flow up into SmashResult.
TEST(ParallelMining, BudgetedJoinsMatchUnbounded) {
  const net::Trace trace = structured_trace();
  const whois::Registry registry;

  SmashConfig config;
  config.idf_threshold = 100;
  config.num_threads = 1;
  const auto unbounded = SmashPipeline(config).run(trace, registry);
  const std::size_t joins = unbounded.dims.size();
  EXPECT_EQ(unbounded.join_shard_passes(), joins);  // one pass per join
  EXPECT_GT(unbounded.peak_resident_postings_bytes(), 0u);

  constexpr std::size_t kBudget = 1024;
  for (const unsigned threads : {1u, 4u}) {
    SmashConfig budgeted = config;
    budgeted.num_threads = threads;
    budgeted.join_memory_budget_bytes = kBudget;
    const auto result = SmashPipeline(budgeted).run(trace, registry);

    ASSERT_EQ(result.dims.size(), unbounded.dims.size());
    for (std::size_t d = 0; d < result.dims.size(); ++d) {
      expect_same_ashes(unbounded.dims[d], result.dims[d]);
    }
    ASSERT_EQ(result.campaigns.size(), unbounded.campaigns.size());
    for (std::size_t c = 0; c < result.campaigns.size(); ++c) {
      EXPECT_EQ(result.campaigns[c].servers, unbounded.campaigns[c].servers);
      EXPECT_EQ(result.campaigns[c].involved_clients,
                unbounded.campaigns[c].involved_clients);
    }

    EXPECT_GT(result.join_shard_passes(), joins) << "threads=" << threads;
    // No key in this trace outruns the budget on its own, so residency
    // honors it (the threaded fan-out splits it per dimension, which only
    // tightens the bound).
    EXPECT_LE(result.peak_resident_postings_bytes(), kBudget)
        << "threads=" << threads;
    EXPECT_FALSE(result.postings_budget_exceeded());
  }
}

// A workload whose client join dwarfs every other dimension's: the
// cardinality-weighted budget split should park almost the whole budget on
// the client dimension and spend far fewer total shard passes than the
// even split — with byte-identical mined output either way.
net::Trace skewed_trace() {
  net::Trace trace;
  // 30 servers, each visited by an overlapping window of 80 distinct
  // clients out of a pool of 200: client postings ~2400 entries, while the
  // file/ip dimensions hold ~30 entries each.
  for (int server = 0; server < 30; ++server) {
    const std::string host = "h" + std::to_string(server) + ".com";
    for (int k = 0; k < 80; ++k) {
      const int client = (server * 2 + k) % 200;
      add_request(trace, "c" + std::to_string(client), host, "/x.html");
    }
    resolve(trace, host, "10.1." + std::to_string(server / 4) + ".9");
  }
  trace.finalize();
  return trace;
}

TEST(ParallelMining, WeightedBudgetSplitReducesShardPasses) {
  const net::Trace trace = skewed_trace();
  const whois::Registry registry;

  SmashConfig config;
  config.num_threads = 4;  // concurrent fan-out: the split engages
  const auto pre = preprocess(trace, config);
  const auto unbounded = mine_all_dimensions(pre, registry, config);

  // A budget that fits the client index whole but not a quarter of it.
  config.join_memory_budget_bytes = 16384;

  config.weighted_budget_split = false;
  const auto even = mine_all_dimensions(pre, registry, config);
  config.weighted_budget_split = true;
  const auto weighted = mine_all_dimensions(pre, registry, config);

  ASSERT_EQ(even.size(), weighted.size());
  std::size_t even_passes = 0, weighted_passes = 0;
  for (std::size_t d = 0; d < even.size(); ++d) {
    expect_same_ashes(unbounded[d], even[d]);
    expect_same_ashes(unbounded[d], weighted[d]);
    even_passes += even[d].join_stats.shard_passes;
    weighted_passes += weighted[d].join_stats.shard_passes;
  }
  // The even split starves the dominant client join into extra passes;
  // the weighted split provably avoids them without changing output.
  EXPECT_GT(even_passes, even.size());
  EXPECT_LT(weighted_passes, even_passes);
}

TEST(ParallelMining, WeightedSplitIdenticalAcrossThreadCounts) {
  const net::Trace trace = skewed_trace();
  const whois::Registry registry;

  SmashConfig serial_config;
  serial_config.num_threads = 1;
  const auto serial = SmashPipeline(serial_config).run(trace, registry);

  for (const unsigned threads : {2u, 4u}) {
    SmashConfig config;
    config.num_threads = threads;
    config.join_memory_budget_bytes = 16384;  // weighted split by default
    const auto result = SmashPipeline(config).run(trace, registry);
    ASSERT_EQ(result.dims.size(), serial.dims.size());
    for (std::size_t d = 0; d < result.dims.size(); ++d) {
      expect_same_ashes(serial.dims[d], result.dims[d]);
    }
    ASSERT_EQ(result.campaigns.size(), serial.campaigns.size());
    for (std::size_t c = 0; c < result.campaigns.size(); ++c) {
      EXPECT_EQ(result.campaigns[c].servers, serial.campaigns[c].servers);
    }
  }
}

// LouvainStats ride SmashResult like JoinStats: per-dimension counters are
// populated, the aggregate accessor sums them, and the chunked-parallel
// path (engaged by the threaded client dimension) reports its chunks while
// leaving the mined output untouched.
TEST(ParallelMining, LouvainStatsSurfacedThroughResult) {
  const net::Trace trace = structured_trace();
  const whois::Registry registry;

  SmashConfig config;
  config.idf_threshold = 100;
  config.num_threads = 1;
  const auto serial = SmashPipeline(config).run(trace, registry);
  const auto serial_stats = serial.louvain_stats();
  EXPECT_GT(serial_stats.sweeps, 0u);
  EXPECT_GT(serial_stats.evaluated_nodes, 0u);
  EXPECT_EQ(serial_stats.chunks, 0u);  // every dimension ran serial sweeps

  // 8 threads across 4 dimensions: the client dimension keeps the 5
  // leftover threads, so its Louvain runs the chunked-parallel path.
  config.num_threads = 8;
  const auto threaded = SmashPipeline(config).run(trace, registry);
  const auto threaded_stats = threaded.louvain_stats();
  // The trajectory is shared; only the execution shape may differ.
  EXPECT_EQ(serial_stats.sweeps, threaded_stats.sweeps);
  EXPECT_EQ(serial_stats.moves, threaded_stats.moves);
  EXPECT_EQ(serial_stats.evaluated_nodes, threaded_stats.evaluated_nodes);
  EXPECT_GT(threaded_stats.chunks, 0u);  // the client dimension ran chunked

  std::size_t summed = 0;
  for (const auto& dim : threaded.dims) summed += dim.louvain_stats.sweeps;
  EXPECT_EQ(summed, threaded_stats.sweeps);
}

TEST(ParallelMining, FullPipelineMatchesSerial) {
  const net::Trace trace = structured_trace();
  const whois::Registry registry;

  SmashConfig config;
  config.idf_threshold = 100;
  config.num_threads = 1;
  const auto serial = SmashPipeline(config).run(trace, registry);
  config.num_threads = 4;
  const auto threaded = SmashPipeline(config).run(trace, registry);

  ASSERT_EQ(serial.campaigns.size(), threaded.campaigns.size());
  for (std::size_t c = 0; c < serial.campaigns.size(); ++c) {
    EXPECT_EQ(serial.campaigns[c].servers, threaded.campaigns[c].servers);
    EXPECT_EQ(serial.campaigns[c].involved_clients,
              threaded.campaigns[c].involved_clients);
  }
}

}  // namespace
}  // namespace smash::core
