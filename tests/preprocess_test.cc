#include "core/preprocess.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace smash::core {
namespace {

using test::add_request;
using test::resolve;

TEST(AggregatedTrace, MergesSubdomains) {
  net::Trace trace;
  add_request(trace, "c1", "www.xyz.com", "/a.html");
  add_request(trace, "c2", "cdn.xyz.com", "/b.html");
  add_request(trace, "c3", "other.net", "/c.html");
  trace.finalize();

  const auto agg = AggregatedTrace::build(trace);
  EXPECT_EQ(agg.num_servers_before_aggregation(), 3u);
  EXPECT_EQ(agg.servers().size(), 2u);
  const auto xyz = agg.servers().find("xyz.com");
  ASSERT_TRUE(xyz.has_value());
  EXPECT_EQ(agg.profile(*xyz).clients.size(), 2u);
  EXPECT_EQ(agg.profile(*xyz).requests, 2u);
  EXPECT_EQ(agg.profile(*xyz).files.size(), 2u);
}

TEST(AggregatedTrace, MergesResolutionsAndRedirects) {
  net::Trace trace;
  add_request(trace, "c1", "a.xyz.com", "/");
  add_request(trace, "c1", "b.xyz.com", "/");
  resolve(trace, "a.xyz.com", "1.1.1.1");
  resolve(trace, "b.xyz.com", "2.2.2.2");
  add_request(trace, "c1", "short.cc", "/go", "UA", "", 302);
  trace.add_redirect(trace.intern_server("short.cc"),
                     trace.intern_server("www.land.com"));
  add_request(trace, "c1", "www.land.com", "/l");
  trace.finalize();

  const auto agg = AggregatedTrace::build(trace);
  const auto xyz = *agg.servers().find("xyz.com");
  EXPECT_EQ(agg.profile(xyz).ips.size(), 2u);
  const auto shortener = *agg.servers().find("short.cc");
  ASSERT_TRUE(agg.redirects().count(shortener));
  EXPECT_EQ(agg.server_name(agg.redirects().at(shortener)), "land.com");
}

TEST(AggregatedTrace, TracksUserAgentsPatternsReferrersErrors) {
  net::Trace trace;
  add_request(trace, "c1", "x.com", "/f.php?a=1&b=2", "AgentA", "landing.com", 200);
  add_request(trace, "c2", "x.com", "/f.php?a=9&b=8", "AgentB", "landing.com", 404);
  trace.finalize();

  const auto agg = AggregatedTrace::build(trace);
  const auto& p = agg.profile(*agg.servers().find("x.com"));
  EXPECT_EQ(p.user_agents.size(), 2u);
  EXPECT_EQ(p.param_patterns.size(), 1u);
  EXPECT_EQ(p.param_patterns.count("a=&b="), 1u);
  EXPECT_EQ(p.error_requests, 1u);
  ASSERT_EQ(p.referrer_counts.size(), 1u);
  EXPECT_EQ(p.referrer_counts.begin()->second, 2u);
}

TEST(Preprocess, IdfFilterRemovesPopularServers) {
  net::Trace trace;
  // "popular.com" gets 5 clients, the rest get 1-2.
  for (int c = 0; c < 5; ++c) {
    add_request(trace, "client" + std::to_string(c), "popular.com", "/p.html");
  }
  add_request(trace, "client0", "small.com", "/s.html");
  add_request(trace, "client1", "tiny.org", "/t.html");
  trace.finalize();

  SmashConfig config;
  config.idf_threshold = 4;
  const auto pre = preprocess(trace, config);
  EXPECT_EQ(pre.servers_after_aggregation, 3u);
  EXPECT_EQ(pre.servers_after_filter, 2u);
  EXPECT_EQ(pre.total_requests, 7u);
  EXPECT_EQ(pre.requests_after_filter, 2u);
  for (auto kept : pre.kept) {
    EXPECT_NE(pre.agg.server_name(kept), "popular.com");
  }
  // kept_index_of is consistent with kept.
  for (std::uint32_t i = 0; i < pre.kept.size(); ++i) {
    EXPECT_EQ(pre.kept_index_of[pre.kept[i]], static_cast<std::int32_t>(i));
  }
}

TEST(Preprocess, ThresholdBoundaryIsInclusive) {
  net::Trace trace;
  for (int c = 0; c < 3; ++c) {
    add_request(trace, "c" + std::to_string(c), "edge.com", "/e.html");
  }
  trace.finalize();
  SmashConfig config;
  config.idf_threshold = 3;  // exactly 3 clients: kept (filter is "> thresh")
  EXPECT_EQ(preprocess(trace, config).servers_after_filter, 1u);
  config.idf_threshold = 2;
  EXPECT_EQ(preprocess(trace, config).servers_after_filter, 0u);
}

TEST(Preprocess, ReferrerOnlyHostsAreNotKept) {
  net::Trace trace;
  // "landing.com" appears only as a Referer, never requested.
  add_request(trace, "c1", "embedded.com", "/w.js", "UA", "landing.com");
  trace.finalize();
  const auto pre = preprocess(trace, SmashConfig{});
  EXPECT_EQ(pre.servers_after_filter, 1u);
  EXPECT_EQ(pre.agg.server_name(pre.kept[0]), "embedded.com");
}

}  // namespace
}  // namespace smash::core
