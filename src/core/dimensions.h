// ASH mining (paper §III-B): one similarity graph per dimension over the
// preprocessed servers, Louvain community detection on each, communities
// of size >= 2 become the dimension's Associated Server Herds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/preprocess.h"
#include "core/smash_config.h"
#include "graph/graph.h"
#include "graph/similarity_join.h"
#include "whois/whois.h"

namespace smash::core {

enum class Dimension : std::uint8_t {
  kClient = 0,  // main dimension, eq. (1)
  kFile = 1,    // eqs. (2)-(7)
  kIp = 2,      // eq. (8)
  kWhois = 3,
  // Extension (paper §V-A2 false-negative analysis + §VI Extensions):
  // servers sharing URI *parameter patterns* ("p=&id=&e="). Off by default
  // (SmashConfig::enable_param_dimension) to keep the paper's exact
  // four-dimension configuration; turning it on recovers the Cycbot-shaped
  // misses that share only parameter structure.
  kParam = 4,
};
inline constexpr int kNumDimensions = 4;  // the paper's configuration
inline constexpr int kNumSecondaryDimensions = 3;

std::string_view dimension_name(Dimension d) noexcept;

struct Ash {
  std::vector<std::uint32_t> members;  // kept-indices, ascending
  double density = 0.0;                // w(.) of eq. (9)
};

struct DimensionAshes {
  Dimension dimension = Dimension::kClient;
  std::vector<Ash> ashes;
  // kept-index -> ash index, or -1 when the server is in no herd (isolated
  // or singleton community) for this dimension.
  std::vector<std::int32_t> ash_of;
  // Graph stats, for reports and the micro benches.
  std::size_t graph_edges = 0;
  double modularity = 0.0;
  // Counters of this dimension's candidate-pair join. skipped_keys > 0
  // means the postings cap fired and shared-key counts undercount for the
  // affected pairs — streaming snapshots surface this so a window that
  // exceeded the in-RAM postings budget is observable, not silent.
  // shard_passes / peak_resident_postings_bytes record how hard
  // SmashConfig::join_memory_budget_bytes squeezed this join (1 pass =
  // the whole index fit; more passes = bounded-memory key-range sharding
  // engaged, output unchanged).
  graph::JoinStats join_stats;
  // Execution-shape counters of this dimension's Louvain run (refined;
  // base pass + every refinement pass summed). Like JoinStats, these are
  // observability only: the partition — and therefore the ashes — is
  // byte-identical for every thread count and chunk size. sweeps/moves are
  // invariant across both; chunks/stale_reevals depend on the chunk size
  // (0 on the serial path) but not on the thread count.
  graph::LouvainStats louvain_stats;

  std::size_t num_herded_servers() const;

  bool postings_budget_exceeded() const noexcept {
    return join_stats.skipped_keys > 0;
  }
};

// Builds the similarity graph for `dimension` over pre.kept and extracts
// ASHs. `registry` is only used by the Whois dimension. Honors
// config.num_threads (probe-range-sharded join) and
// config.join_memory_budget_bytes (key-range-sharded bounded-memory join);
// mined output is identical for every thread count and budget.
DimensionAshes mine_dimension(Dimension dimension, const PreprocessResult& pre,
                              const whois::Registry& registry,
                              const SmashConfig& config);

// All dimensions, indexed by Dimension: the paper's four, plus kParam when
// config.enable_param_dimension is set. With config.num_threads > 1 the
// dimensions are mined concurrently (the client join gets the leftover
// threads) and a non-zero join_memory_budget_bytes is divided across the
// concurrently-mined dimensions — in proportion to each dimension's
// estimated postings cardinality by default
// (SmashConfig::weighted_budget_split), or evenly when that is off — so
// total resident postings memory stays within the budget either way. The
// split changes pass counts only, never mined output.
std::vector<DimensionAshes> mine_all_dimensions(const PreprocessResult& pre,
                                                const whois::Registry& registry,
                                                const SmashConfig& config);

}  // namespace smash::core
