#include "core/dimensions.h"

#include <gtest/gtest.h>

#include "core/correlation.h"

#include <set>

#include "test_helpers.h"

namespace smash::core {
namespace {

using test::add_request;
using test::resolve;

SmashConfig small_config() {
  SmashConfig config;
  config.idf_threshold = 100;
  return config;
}

// Collect the set of 2LD names in each ASH of a dimension.
std::vector<std::set<std::string>> ash_names(const PreprocessResult& pre,
                                             const DimensionAshes& dim) {
  std::vector<std::set<std::string>> out;
  for (const auto& ash : dim.ashes) {
    std::set<std::string> names;
    for (auto member : ash.members) {
      names.insert(pre.agg.server_name(pre.kept[member]));
    }
    out.push_back(std::move(names));
  }
  return out;
}

bool has_ash_containing(const std::vector<std::set<std::string>>& ashes,
                        const std::set<std::string>& wanted) {
  for (const auto& ash : ashes) {
    bool all = true;
    for (const auto& name : wanted) all = all && ash.count(name) > 0;
    if (all) return true;
  }
  return false;
}

TEST(ClientDimension, GroupsServersWithSharedClients) {
  net::Trace trace;
  // Campaign: two bots hitting three servers (Fig. 1a shape).
  for (const char* bot : {"bot1", "bot2"}) {
    for (const char* host : {"cnc1.com", "cnc2.com", "cnc3.com"}) {
      add_request(trace, bot, host, "/x.php");
    }
  }
  // Unrelated benign pair with disjoint clients.
  add_request(trace, "user1", "shop.com", "/s.html");
  add_request(trace, "user2", "news.com", "/n.html");
  trace.finalize();

  const auto pre = preprocess(trace, small_config());
  whois::Registry empty_registry;
  const auto dim = mine_dimension(Dimension::kClient, pre, empty_registry,
                                  small_config());
  const auto ashes = ash_names(pre, dim);
  EXPECT_TRUE(has_ash_containing(ashes, {"cnc1.com", "cnc2.com", "cnc3.com"}));
  // The benign servers share no clients: no herd contains them.
  EXPECT_FALSE(has_ash_containing(ashes, {"shop.com", "news.com"}));
}

TEST(ClientDimension, EdgeThresholdSeparatesWeakOverlap) {
  net::Trace trace;
  // a.com and b.com share 1 of their 3 clients each: eq. (1) = (1/3)^2.
  for (const char* c : {"c1", "c2", "shared"}) add_request(trace, c, "a.com", "/a");
  for (const char* c : {"c3", "c4", "shared"}) add_request(trace, c, "b.com", "/b");
  trace.finalize();

  const auto pre = preprocess(trace, small_config());
  whois::Registry registry;
  auto config = small_config();
  config.client_edge_threshold = 0.2;
  auto dim = mine_dimension(Dimension::kClient, pre, registry, config);
  EXPECT_TRUE(dim.ashes.empty());
  config.client_edge_threshold = 0.1;  // (1/3)^2 ~= 0.111 passes now
  dim = mine_dimension(Dimension::kClient, pre, registry, config);
  EXPECT_EQ(dim.ashes.size(), 1u);
}

TEST(IpDimension, GroupsFluxSiblings) {
  net::Trace trace;
  add_request(trace, "c1", "flux1.cc", "/");
  add_request(trace, "c2", "flux2.cc", "/");
  add_request(trace, "c3", "plain.com", "/");
  for (const char* host : {"flux1.cc", "flux2.cc"}) {
    resolve(trace, host, "6.6.6.6");
    resolve(trace, host, "7.7.7.7");
  }
  resolve(trace, "plain.com", "8.8.8.8");
  trace.finalize();

  const auto pre = preprocess(trace, small_config());
  whois::Registry registry;
  const auto dim = mine_dimension(Dimension::kIp, pre, registry, small_config());
  const auto ashes = ash_names(pre, dim);
  EXPECT_TRUE(has_ash_containing(ashes, {"flux1.cc", "flux2.cc"}));
  EXPECT_FALSE(has_ash_containing(ashes, {"plain.com"}));
}

TEST(FileDimension, GroupsSharedShortFilenames) {
  net::Trace trace;
  add_request(trace, "c1", "s1.com", "/a/login.php");
  add_request(trace, "c2", "s2.com", "/b/login.php");  // same file, other path
  add_request(trace, "c3", "s3.com", "/c/other.php");
  trace.finalize();

  const auto pre = preprocess(trace, small_config());
  whois::Registry registry;
  const auto dim = mine_dimension(Dimension::kFile, pre, registry, small_config());
  const auto ashes = ash_names(pre, dim);
  EXPECT_TRUE(has_ash_containing(ashes, {"s1.com", "s2.com"}));
  EXPECT_FALSE(has_ash_containing(ashes, {"s3.com"}));
}

TEST(FileDimension, GroupsObfuscatedLongFilenames) {
  net::Trace trace;
  // Same character multiset, shuffled: cosine 1.0, strings differ (Fig. 4).
  add_request(trace, "c1", "ob1.com", "/x/aabbccddeeffaabbccddeeffaabb12.php");
  add_request(trace, "c2", "ob2.com", "/y/bbaaddccffeebbaaddccffeebbaa21.php");
  trace.finalize();

  const auto pre = preprocess(trace, small_config());
  whois::Registry registry;
  const auto dim = mine_dimension(Dimension::kFile, pre, registry, small_config());
  EXPECT_TRUE(has_ash_containing(ash_names(pre, dim), {"ob1.com", "ob2.com"}));
}

TEST(FileDimension, PopularFileCapSuppressesStopFiles) {
  net::Trace trace;
  for (int s = 0; s < 10; ++s) {
    add_request(trace, "c" + std::to_string(s), "srv" + std::to_string(s) + ".com",
                "/index.html");
  }
  trace.finalize();

  const auto pre = preprocess(trace, small_config());
  whois::Registry registry;
  auto config = small_config();
  config.file_postings_cap = 5;  // index.html shared by 10 > 5: ignored
  auto dim = mine_dimension(Dimension::kFile, pre, registry, config);
  EXPECT_TRUE(dim.ashes.empty());
  config.file_postings_cap = 100;
  dim = mine_dimension(Dimension::kFile, pre, registry, config);
  EXPECT_EQ(dim.ashes.size(), 1u);  // now they all associate
}

TEST(WhoisDimension, RequiresTwoSharedNonProxyFields) {
  net::Trace trace;
  add_request(trace, "c1", "w1.com", "/");
  add_request(trace, "c2", "w2.com", "/");
  add_request(trace, "c3", "w3.com", "/");
  trace.finalize();

  whois::Registry registry;
  registry.add_proxy_value("PROXY");
  whois::Record shared;
  shared.email = "x@y.com";
  shared.phone = "+1.555";
  shared.registrant = "PROXY";
  registry.add("w1.com", shared);
  registry.add("w2.com", shared);
  whois::Record other;
  other.email = "x@y.com";  // only ONE shared field with w1/w2
  other.phone = "+9.999";
  registry.add("w3.com", other);

  const auto pre = preprocess(trace, small_config());
  const auto dim = mine_dimension(Dimension::kWhois, pre, registry, small_config());
  const auto ashes = ash_names(pre, dim);
  EXPECT_TRUE(has_ash_containing(ashes, {"w1.com", "w2.com"}));
  EXPECT_FALSE(has_ash_containing(ashes, {"w3.com"}));
}

TEST(ParamDimension, GroupsSharedParameterPatterns) {
  net::Trace trace;
  // Same parameter structure, different files (the Cycbot FN shape).
  add_request(trace, "c1", "p1.com", "/a/x1.php?p=11&id=22&e=0");
  add_request(trace, "c2", "p2.com", "/b/x2.php?p=99&id=44&e=1");
  add_request(trace, "c3", "p3.com", "/c/x3.php?other=1");
  trace.finalize();

  const auto pre = preprocess(trace, small_config());
  whois::Registry registry;
  const auto dim = mine_dimension(Dimension::kParam, pre, registry, small_config());
  const auto ashes = ash_names(pre, dim);
  EXPECT_TRUE(has_ash_containing(ashes, {"p1.com", "p2.com"}));
  EXPECT_FALSE(has_ash_containing(ashes, {"p3.com"}));
}

TEST(ParamDimension, OffByDefaultOnWhenEnabled) {
  net::Trace trace;
  add_request(trace, "c1", "a.com", "/x.php?p=1");
  trace.finalize();
  const auto pre = preprocess(trace, small_config());
  whois::Registry registry;
  EXPECT_EQ(mine_all_dimensions(pre, registry, small_config()).size(), 4u);
  auto config = small_config();
  config.enable_param_dimension = true;
  const auto dims = mine_all_dimensions(pre, registry, config);
  ASSERT_EQ(dims.size(), 5u);
  EXPECT_EQ(dims[4].dimension, Dimension::kParam);
}

TEST(ParamDimension, RecoversNoSecondaryCampaignEndToEnd) {
  // A herd sharing bots + parameter pattern but nothing else: invisible to
  // the paper's four dimensions, detected with the extension enabled.
  net::Trace trace;
  for (int s = 0; s < 10; ++s) {
    const std::string host = "cy" + std::to_string(s) + ".com";
    for (const char* bot : {"b1", "b2"}) {
      add_request(trace, bot, host,
                  "/u" + std::to_string(s) + "/f" + std::to_string(s) +
                      ".php?hwid=1&ver=2&cnt=3");
    }
  }
  trace.finalize();
  whois::Registry registry;

  auto config = small_config();
  auto pre = preprocess(trace, config);
  auto dims = mine_all_dimensions(pre, registry, config);
  EXPECT_TRUE(correlate(pre, dims, config).groups.empty());

  config.enable_param_dimension = true;
  dims = mine_all_dimensions(pre, registry, config);
  const auto corr = correlate(pre, dims, config);
  ASSERT_EQ(corr.groups.size(), 1u);
  EXPECT_EQ(corr.groups[0].size(), 10u);
}

TEST(MineAllDimensions, ReturnsFourInOrder) {
  net::Trace trace;
  add_request(trace, "c1", "a.com", "/x.php");
  trace.finalize();
  const auto pre = preprocess(trace, small_config());
  whois::Registry registry;
  const auto dims = mine_all_dimensions(pre, registry, small_config());
  ASSERT_EQ(dims.size(), 4u);
  EXPECT_EQ(dims[0].dimension, Dimension::kClient);
  EXPECT_EQ(dims[1].dimension, Dimension::kFile);
  EXPECT_EQ(dims[2].dimension, Dimension::kIp);
  EXPECT_EQ(dims[3].dimension, Dimension::kWhois);
  for (const auto& dim : dims) {
    EXPECT_EQ(dim.ash_of.size(), pre.kept.size());
  }
}

TEST(DimensionAshes, DensityIsOneForCliqueHerds) {
  net::Trace trace;
  for (const char* bot : {"b1", "b2"}) {
    for (const char* host : {"x1.com", "x2.com", "x3.com", "x4.com"}) {
      add_request(trace, bot, host, "/f.php");
    }
  }
  trace.finalize();
  const auto pre = preprocess(trace, small_config());
  whois::Registry registry;
  const auto dim =
      mine_dimension(Dimension::kClient, pre, registry, small_config());
  ASSERT_EQ(dim.ashes.size(), 1u);
  EXPECT_DOUBLE_EQ(dim.ashes[0].density, 1.0);
  EXPECT_EQ(dim.num_herded_servers(), 4u);
}

}  // namespace
}  // namespace smash::core
