// Shared durability knobs, split out so stream/stream_config.h can name
// them without pulling the whole WAL machinery into every stream header.
#pragma once

#include <cstdint>

namespace smash::durability {

// When the write-ahead log forces data to stable storage.
//
//   kEveryRecord — fsync after every appended record: no accepted event is
//                  ever lost, at per-event syscall cost (docs/DURABILITY.md
//                  has measured overheads).
//   kOnSeal      — fsync once per epoch seal and per checkpoint: a crash
//                  loses at most the open (unsealed) epoch's tail.
//   kOff         — never fsync: the OS page cache decides. A process crash
//                  still loses nothing (the kernel has the writes); only a
//                  machine crash can drop the unflushed tail.
enum class FsyncPolicy : std::uint8_t { kOff = 0, kOnSeal = 1, kEveryRecord = 2 };

inline const char* fsync_policy_name(FsyncPolicy policy) noexcept {
  switch (policy) {
    case FsyncPolicy::kOff: return "off";
    case FsyncPolicy::kOnSeal: return "on_seal";
    case FsyncPolicy::kEveryRecord: return "every_record";
  }
  return "?";
}

}  // namespace smash::durability
