// Reproduces paper Tables V and VI: per-day campaign and server counts
// over the one-week trace, using the paper's footnote-9 operating point
// (thresh 0.8 for multi-client, 1.0 for single-client campaigns; the week
// tables aggregate both populations as the paper's do).
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace smash;
  const auto& week = bench::dataset("2012week");

  util::Table campaigns("Table V: number of attack campaigns during Data2012week");
  util::Table servers("Table VI: number of servers in malicious activities during Data2012week");
  std::vector<std::string> header{""};
  for (int d = 1; d <= 7; ++d) header.push_back("Day " + std::to_string(d));
  campaigns.set_header(header);
  servers.set_header(header);

  std::vector<core::CampaignCounts> ccounts;
  std::vector<core::ServerCounts> scounts;
  for (std::uint32_t day = 0; day < week.trace.num_days(); ++day) {
    const auto day_trace = net::slice_day(week.trace, day);
    const core::SmashPipeline pipeline{core::SmashConfig{}};
    const auto result = pipeline.run(day_trace, week.whois);
    const core::Evaluator evaluator(day_trace, week.signatures, week.blacklist,
                                    week.truth);
    const auto multi = evaluator.evaluate(result, false);
    const auto single = evaluator.evaluate(result, true);

    core::CampaignCounts cc = multi.campaign_counts;
    const auto& sc1 = single.campaign_counts;
    cc.smash += sc1.smash;
    cc.ids2012_total += sc1.ids2012_total;
    cc.ids2013_total += sc1.ids2013_total;
    cc.ids2012_partial += sc1.ids2012_partial;
    cc.ids2013_partial += sc1.ids2013_partial;
    cc.blacklist_partial += sc1.blacklist_partial;
    cc.suspicious += sc1.suspicious;
    cc.false_positives += sc1.false_positives;
    cc.fp_updated += sc1.fp_updated;
    ccounts.push_back(cc);

    core::ServerCounts sv = multi.server_counts;
    const auto& sv1 = single.server_counts;
    sv.smash += sv1.smash;
    sv.ids2012 += sv1.ids2012;
    sv.ids2013 += sv1.ids2013;
    sv.blacklist += sv1.blacklist;
    sv.new_servers += sv1.new_servers;
    sv.suspicious += sv1.suspicious;
    sv.false_positives += sv1.false_positives;
    sv.fp_updated += sv1.fp_updated;
    scounts.push_back(sv);
  }

  const auto crow = [&](const std::string& label, auto getter) {
    std::vector<std::string> cells{label};
    for (const auto& c : ccounts) cells.push_back(std::to_string(getter(c)));
    campaigns.add_row(std::move(cells));
  };
  crow("SMASH", [](const core::CampaignCounts& c) { return c.smash; });
  crow("IDS 2013 total", [](const core::CampaignCounts& c) {
    return c.ids2012_total + c.ids2013_total;
  });
  crow("IDS 2013 partial", [](const core::CampaignCounts& c) {
    return c.ids2012_partial + c.ids2013_partial;
  });
  crow("Blacklist", [](const core::CampaignCounts& c) { return c.blacklist_partial; });
  crow("Suspicious", [](const core::CampaignCounts& c) { return c.suspicious; });
  crow("False Positives", [](const core::CampaignCounts& c) { return c.false_positives; });
  crow("FP (Updated)", [](const core::CampaignCounts& c) { return c.fp_updated; });
  std::fputs(campaigns.render().c_str(), stdout);

  const auto srow = [&](const std::string& label, auto getter) {
    std::vector<std::string> cells{label};
    for (const auto& s : scounts) cells.push_back(std::to_string(getter(s)));
    servers.add_row(std::move(cells));
  };
  srow("SMASH", [](const core::ServerCounts& s) { return s.smash; });
  srow("IDS 2013", [](const core::ServerCounts& s) { return s.ids2012 + s.ids2013; });
  srow("Blacklist", [](const core::ServerCounts& s) { return s.blacklist; });
  srow("New Servers", [](const core::ServerCounts& s) { return s.new_servers; });
  srow("Suspicious", [](const core::ServerCounts& s) { return s.suspicious; });
  srow("False Positives", [](const core::ServerCounts& s) { return s.false_positives; });
  srow("FP (Updated)", [](const core::ServerCounts& s) { return s.fp_updated; });
  std::printf("\n%s", servers.render().c_str());
  std::puts("\nShape targets (paper): 31-51 campaigns and ~900-1500 servers per");
  std::puts("  day, steady across the week; blacklist is the largest confirmed row.");
  return 0;
}
