#include "core/file_classifier.h"

#include <cmath>
#include <numeric>

namespace smash::core {

namespace {

std::array<std::uint32_t, 256> char_counts(std::string_view s) {
  std::array<std::uint32_t, 256> counts{};
  for (unsigned char c : s) ++counts[c];
  return counts;
}

// Union-find with path halving.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }
  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[b] = a;
  }

 private:
  std::vector<std::uint32_t> parent_;
};

}  // namespace

double char_frequency_cosine(std::string_view a, std::string_view b) {
  if (a.empty() || b.empty()) return 0.0;
  const auto ca = char_counts(a);
  const auto cb = char_counts(b);
  double dot = 0.0;
  double norm_a = 0.0;
  double norm_b = 0.0;
  for (int i = 0; i < 256; ++i) {
    dot += static_cast<double>(ca[i]) * cb[i];
    norm_a += static_cast<double>(ca[i]) * ca[i];
    norm_b += static_cast<double>(cb[i]) * cb[i];
  }
  return dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
}

bool files_similar(std::string_view a, std::string_view b, std::uint32_t len,
                   double cosine_threshold) {
  if (a.size() <= len || b.size() <= len) return a == b;  // eqs. (2)-(3)
  return char_frequency_cosine(a, b) > cosine_threshold;  // eqs. (4)-(5)
}

FileClassifier::FileClassifier(const util::Interner& files, std::uint32_t len,
                               double cosine_threshold) {
  const std::uint32_t n = files.size();
  UnionFind uf(n);

  std::vector<std::uint32_t> long_files;
  for (std::uint32_t f = 0; f < n; ++f) {
    if (files.name(f).size() > len) long_files.push_back(f);
  }
  num_long_files_ = static_cast<std::uint32_t>(long_files.size());

  // Single-linkage grouping of long files by the cosine relation. Cache the
  // count vectors to avoid recomputing them L^2 times.
  std::vector<std::array<std::uint32_t, 256>> counts;
  counts.reserve(long_files.size());
  for (auto f : long_files) counts.push_back(char_counts(files.name(f)));

  for (std::size_t i = 0; i < long_files.size(); ++i) {
    for (std::size_t j = i + 1; j < long_files.size(); ++j) {
      double dot = 0.0;
      double na = 0.0;
      double nb = 0.0;
      for (int k = 0; k < 256; ++k) {
        dot += static_cast<double>(counts[i][k]) * counts[j][k];
        na += static_cast<double>(counts[i][k]) * counts[i][k];
        nb += static_cast<double>(counts[j][k]) * counts[j][k];
      }
      if (dot > cosine_threshold * std::sqrt(na) * std::sqrt(nb)) {
        uf.unite(long_files[i], long_files[j]);
      }
    }
  }

  // Densely renumber the union-find roots.
  class_of_.assign(n, 0);
  std::vector<std::int64_t> root_class(n, -1);
  for (std::uint32_t f = 0; f < n; ++f) {
    const auto root = uf.find(f);
    if (root_class[root] < 0) root_class[root] = num_classes_++;
    class_of_[f] = static_cast<std::uint32_t>(root_class[root]);
  }
}

}  // namespace smash::core
