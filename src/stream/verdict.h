// VerdictService: the online front-end. Answers per-host / per-request
// verdicts from the engine's current DetectionSnapshot, from any number of
// threads, while the engine keeps publishing newer windows. Lookups never
// wait on mining; see SnapshotSlot (stream/engine.h) for the exact
// publication guarantee.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string_view>

#include "obs/metrics.h"
#include "stream/engine.h"
#include "stream/snapshot.h"

namespace smash::stream {

struct VerdictAnswer {
  bool malicious = false;
  // Valid when malicious.
  ServerVerdict verdict{};
  // Which snapshot answered (0 / false before the first publication).
  bool snapshot_available = false;
  std::uint64_t snapshot_sequence = 0;
  EpochId snapshot_last_epoch = 0;
  // Age of the answering snapshot at lookup time: now - built_at(),
  // computed per lookup from the publish timestamp — never cached — so it
  // keeps growing while mining is stalled (the serve-layer staleness SLO
  // keys off it; tests/stream_test.cc pins the monotonicity). -1 when no
  // snapshot has been published yet.
  double snapshot_age_s = -1.0;
};

struct VerdictServiceStats {
  std::uint64_t queries = 0;
  std::uint64_t hits = 0;  // queries answered "malicious"
  double hit_rate = 0.0;
  double qps = 0.0;             // queries / seconds since service start
  double snapshot_age_s = 0.0;  // now - current snapshot's build time
  std::uint64_t snapshot_sequence = 0;
  bool snapshot_available = false;
};

class VerdictService {
 public:
  // Sampling stride of the verdict.lookup_ns histogram: every
  // kLookupSampleStride-th lookup on each calling thread is timed, the
  // rest pay two relaxed counter increments only. The exporter-consistency
  // gate in bench/perf_stream.cc holds lookup_ns.count to
  // lookups_total / kLookupSampleStride (within a per-thread partial-
  // stride tolerance) — change the stride and that gate, together, and
  // keep docs/OBSERVABILITY.md in step.
  static constexpr std::uint32_t kLookupSampleStride = 64;

  // `slot` must outlive the service (it lives in the StreamEngine).
  //
  // Lookup accounting lives on an obs::Registry (verdict.lookups_total,
  // verdict.hits_total, verdict.lookup_ns — docs/OBSERVABILITY.md) instead
  // of bespoke per-service atomics. `metrics` selects the registry: null
  // (default) = a service-private one, so stats() keeps its per-instance
  // meaning; pass engine.metrics() to land lookups on the engine's surface
  // (then services sharing a registry share the counters, and stats()
  // reports the combined totals).
  explicit VerdictService(const SnapshotSlot& slot,
                          std::shared_ptr<obs::Registry> metrics = nullptr)
      : slot_(slot), start_(std::chrono::steady_clock::now()),
        metrics_(metrics ? std::move(metrics)
                         : std::make_shared<obs::Registry>()),
        lookups_(&metrics_->counter("verdict.lookups_total",
                                    "verdict lookups answered")),
        hits_(&metrics_->counter("verdict.hits_total",
                                 "lookups answered malicious")),
        lookup_ns_(&metrics_->histogram(
            "verdict.lookup_ns", obs::latency_buckets_ns(),
            "sampled (1/kLookupSampleStride) lookup latency")) {}

  // Verdict for a hostname (aggregated to its effective 2LD).
  VerdictAnswer lookup(std::string_view host) const;

  // Verdict for a full request: the Host header, then the contacted server
  // IP (catches requests straight to an IP of a flagged server).
  VerdictAnswer lookup_request(std::string_view host,
                               std::string_view server_ip) const;

  VerdictServiceStats stats() const;

  // The registry the lookup counters land on (the caller-supplied one, or
  // the service-private default). Lets callers — perf_stream's exporter-
  // consistency gate, the serve layer's metrics dump — read
  // verdict.lookups_total / verdict.lookup_ns without guessing which
  // registry this service records into.
  const std::shared_ptr<obs::Registry>& metrics() const noexcept {
    return metrics_;
  }

 private:
  VerdictAnswer answer(const ServerVerdict* verdict,
                       const DetectionSnapshot* snapshot) const;

  const SnapshotSlot& slot_;
  std::chrono::steady_clock::time_point start_;
  // Shared so a caller-supplied registry outlives every handle below even
  // if the caller drops their reference first.
  std::shared_ptr<obs::Registry> metrics_;
  obs::Counter* lookups_;
  obs::Counter* hits_;
  obs::Histogram* lookup_ns_;
};

}  // namespace smash::stream
