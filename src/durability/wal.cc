#include "durability/wal.h"

#include <cstdio>

#include "durability/crc32c.h"
#include "util/binary.h"

namespace smash::durability {

namespace {

// Upper bound on one record's payload: far above any real event (paths and
// user agents are request-header-sized), low enough that a corrupted
// length field cannot make the scanner swallow the rest of the segment as
// "one giant record".
constexpr std::uint32_t kMaxPayload = 64u << 20;

void encode_request(std::string& out, const stream::RequestEvent& e) {
  util::put_u8(out, kRecordRequest);
  util::put_u64(out, e.time_s);
  util::put_u8(out, static_cast<std::uint8_t>(e.method));
  util::put_u16(out, e.status);
  util::put_bytes(out, e.client);
  util::put_bytes(out, e.host);
  util::put_bytes(out, e.path);
  util::put_bytes(out, e.user_agent);
  util::put_bytes(out, e.referrer);
}

void encode_resolution(std::string& out, const stream::ResolutionEvent& e) {
  util::put_u8(out, kRecordResolution);
  util::put_u64(out, e.time_s);
  util::put_bytes(out, e.host);
  util::put_bytes(out, e.ip);
}

void encode_redirect(std::string& out, const stream::RedirectEvent& e) {
  util::put_u8(out, kRecordRedirect);
  util::put_u64(out, e.time_s);
  util::put_bytes(out, e.from);
  util::put_bytes(out, e.to);
}

void encode_seal(std::string& out, const SealMarker& e) {
  util::put_u8(out, kRecordSeal);
  util::put_u64(out, e.epoch);
}

std::optional<WalRecord> decode_request(util::BinaryReader& in) {
  stream::RequestEvent e;
  std::uint8_t method = 0;
  if (!in.u64(e.time_s) || !in.u8(method) || !in.u16(e.status) ||
      !in.str(e.client) || !in.str(e.host) || !in.str(e.path) ||
      !in.str(e.user_agent) || !in.str(e.referrer) || !in.done()) {
    return std::nullopt;
  }
  if (method > static_cast<std::uint8_t>(net::Method::kHead)) return std::nullopt;
  e.method = static_cast<net::Method>(method);
  return WalRecord{std::move(e)};
}

std::optional<WalRecord> decode_resolution(util::BinaryReader& in) {
  stream::ResolutionEvent e;
  if (!in.u64(e.time_s) || !in.str(e.host) || !in.str(e.ip) || !in.done()) {
    return std::nullopt;
  }
  return WalRecord{std::move(e)};
}

std::optional<WalRecord> decode_redirect(util::BinaryReader& in) {
  stream::RedirectEvent e;
  if (!in.u64(e.time_s) || !in.str(e.from) || !in.str(e.to) || !in.done()) {
    return std::nullopt;
  }
  return WalRecord{std::move(e)};
}

std::optional<WalRecord> decode_seal(util::BinaryReader& in) {
  SealMarker e;
  if (!in.u64(e.epoch) || !in.done()) return std::nullopt;
  return WalRecord{e};
}

}  // namespace

std::string encode_record(const WalRecord& record) {
  std::string out;
  std::visit(
      [&out](const auto& e) {
        using T = std::decay_t<decltype(e)>;
        if constexpr (std::is_same_v<T, stream::RequestEvent>) {
          encode_request(out, e);
        } else if constexpr (std::is_same_v<T, stream::ResolutionEvent>) {
          encode_resolution(out, e);
        } else if constexpr (std::is_same_v<T, stream::RedirectEvent>) {
          encode_redirect(out, e);
        } else {
          encode_seal(out, e);
        }
      },
      record);
  return out;
}

std::optional<WalRecord> decode_record(std::string_view payload) {
  util::BinaryReader in(payload);
  std::uint8_t type = 0;
  if (!in.u8(type)) return std::nullopt;
  switch (type) {
    case kRecordRequest: return decode_request(in);
    case kRecordResolution: return decode_resolution(in);
    case kRecordRedirect: return decode_redirect(in);
    case kRecordSeal: return decode_seal(in);
    default: return std::nullopt;
  }
}

std::string segment_file_name(std::uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%012llu.log",
                static_cast<unsigned long long>(seq));
  return buf;
}

std::optional<std::uint64_t> parse_segment_file_name(std::string_view name) {
  constexpr std::string_view prefix = "wal-";
  constexpr std::string_view suffix = ".log";
  if (name.size() != prefix.size() + 12 + suffix.size()) return std::nullopt;
  if (name.substr(0, prefix.size()) != prefix) return std::nullopt;
  if (name.substr(name.size() - suffix.size()) != suffix) return std::nullopt;
  std::uint64_t seq = 0;
  for (const char c : name.substr(prefix.size(), 12)) {
    if (c < '0' || c > '9') return std::nullopt;
    seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return seq;
}

WalWriter::WalWriter(const std::string& dir, std::uint64_t seq, Mode mode)
    : file_(mode == Mode::kCreate
                ? File::create(dir + "/" + segment_file_name(seq), "wal")
                : File::append_to(dir + "/" + segment_file_name(seq), "wal")) {}

void WalWriter::append(std::string_view payload) {
  std::string frame;
  frame.reserve(8 + payload.size());
  util::put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  util::put_u32(frame, crc32c(payload));
  frame.append(payload.data(), payload.size());
  file_.write(frame);
}

ScanResult scan_records(std::string_view data, std::uint64_t from,
                        const std::function<bool(std::string_view payload)>& fn) {
  ScanResult result;
  result.valid_bytes = from;
  std::size_t pos = static_cast<std::size_t>(from);
  while (pos < data.size()) {
    util::BinaryReader header(data.substr(pos));
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    if (!header.u32(len) || !header.u32(crc)) {
      result.clean = false;
      result.error = "torn record header";
      return result;
    }
    if (len == 0 || len > kMaxPayload) {
      result.clean = false;
      result.error = "impossible record length";
      return result;
    }
    if (pos + 8 + len > data.size()) {
      result.clean = false;
      result.error = "torn record body";
      return result;
    }
    const std::string_view payload = data.substr(pos + 8, len);
    if (crc32c(payload) != crc) {
      result.clean = false;
      result.error = "CRC32C mismatch";
      return result;
    }
    if (!fn(payload)) {
      result.clean = false;
      result.error = "record rejected by consumer";
      return result;
    }
    pos += 8 + len;
    result.valid_bytes = pos;
    ++result.records;
  }
  return result;
}

}  // namespace smash::durability
