#include "graph/louvain.h"

#include <gtest/gtest.h>

#include <set>

namespace smash::graph {
namespace {

// Two k-cliques joined by a single weak bridge edge.
Graph two_cliques(std::uint32_t k, double bridge_weight) {
  GraphBuilder builder(2 * k);
  for (std::uint32_t u = 0; u < k; ++u) {
    for (std::uint32_t v = u + 1; v < k; ++v) {
      builder.add_edge(u, v, 1.0);
      builder.add_edge(k + u, k + v, 1.0);
    }
  }
  builder.add_edge(0, k, bridge_weight);
  return std::move(builder).build();
}

TEST(Louvain, SeparatesTwoCliques) {
  const Graph g = two_cliques(6, 0.1);
  const auto result = louvain(g);
  EXPECT_EQ(result.num_communities, 2u);
  // Same community within each clique.
  for (std::uint32_t v = 1; v < 6; ++v) {
    EXPECT_EQ(result.community_of[v], result.community_of[0]);
    EXPECT_EQ(result.community_of[6 + v], result.community_of[6]);
  }
  EXPECT_NE(result.community_of[0], result.community_of[6]);
  EXPECT_GT(result.modularity, 0.4);
}

TEST(Louvain, EdgelessGraphIsAllSingletons) {
  const Graph g = GraphBuilder(5).build();
  const auto result = louvain(g);
  EXPECT_EQ(result.num_communities, 5u);
  EXPECT_DOUBLE_EQ(result.modularity, 0.0);
}

TEST(Louvain, SingleCliqueStaysTogether) {
  const Graph g = two_cliques(5, 0.0001);  // bridge negligible
  GraphBuilder builder(4);
  for (std::uint32_t u = 0; u < 4; ++u) {
    for (std::uint32_t v = u + 1; v < 4; ++v) builder.add_edge(u, v);
  }
  const auto result = louvain(std::move(builder).build());
  EXPECT_EQ(result.num_communities, 1u);
}

TEST(Louvain, Deterministic) {
  const Graph g = two_cliques(8, 0.2);
  const auto a = louvain(g);
  const auto b = louvain(g);
  EXPECT_EQ(a.community_of, b.community_of);
  EXPECT_DOUBLE_EQ(a.modularity, b.modularity);
}

TEST(Modularity, PerfectPartitionBeatsRandom) {
  const Graph g = two_cliques(6, 0.1);
  std::vector<std::uint32_t> good(12);
  std::vector<std::uint32_t> merged(12, 0);
  for (std::uint32_t v = 0; v < 12; ++v) good[v] = v < 6 ? 0 : 1;
  EXPECT_GT(modularity(g, good), modularity(g, merged));
  EXPECT_THROW(modularity(g, std::vector<std::uint32_t>(3, 0)),
               std::invalid_argument);
}

TEST(Modularity, AllInOneCommunityIsNonPositiveQForCompleteGraph) {
  GraphBuilder builder(4);
  for (std::uint32_t u = 0; u < 4; ++u) {
    for (std::uint32_t v = u + 1; v < 4; ++v) builder.add_edge(u, v);
  }
  const Graph g = std::move(builder).build();
  // Q of the trivial one-community partition is 1 - 1 = 0.
  EXPECT_NEAR(modularity(g, std::vector<std::uint32_t>(4, 0)), 0.0, 1e-12);
}

// The resolution-limit scenario that motivates refinement: a long ring of
// small cliques bridged by single edges. Plain modularity merges adjacent
// cliques; refinement must recover the individual cliques.
TEST(LouvainRefined, SplitsRingOfCliques) {
  constexpr std::uint32_t kCliques = 24;
  constexpr std::uint32_t kSize = 4;
  GraphBuilder builder(kCliques * kSize);
  for (std::uint32_t c = 0; c < kCliques; ++c) {
    const std::uint32_t base = c * kSize;
    for (std::uint32_t u = 0; u < kSize; ++u) {
      for (std::uint32_t v = u + 1; v < kSize; ++v) {
        builder.add_edge(base + u, base + v, 1.0);
      }
    }
    // Bridge to the next clique.
    builder.add_edge(base, ((c + 1) % kCliques) * kSize, 0.3);
  }
  const Graph g = std::move(builder).build();

  const auto plain = louvain(g);
  const auto refined = louvain_refined(g);
  // Plain Louvain may agglomerate adjacent cliques (resolution limit) but
  // never does better than one community per clique.
  EXPECT_LE(plain.num_communities, kCliques);
  // Refinement recovers all of them exactly.
  EXPECT_EQ(refined.num_communities, kCliques);
  for (std::uint32_t c = 0; c < kCliques; ++c) {
    const std::uint32_t base = c * kSize;
    for (std::uint32_t v = 1; v < kSize; ++v) {
      EXPECT_EQ(refined.community_of[base + v], refined.community_of[base]);
    }
  }
}

TEST(LouvainRefined, CliqueIsStable) {
  GraphBuilder builder(8);
  for (std::uint32_t u = 0; u < 8; ++u) {
    for (std::uint32_t v = u + 1; v < 8; ++v) builder.add_edge(u, v);
  }
  const auto result = louvain_refined(std::move(builder).build());
  EXPECT_EQ(result.num_communities, 1u);
}

TEST(LouvainRefined, MatchesPlainOnTwoCliques) {
  const Graph g = two_cliques(6, 0.1);
  const auto refined = louvain_refined(g);
  EXPECT_EQ(refined.num_communities, 2u);
}

TEST(LouvainRefined, Deterministic) {
  const Graph g = two_cliques(7, 0.15);
  const auto a = louvain_refined(g);
  const auto b = louvain_refined(g);
  EXPECT_EQ(a.community_of, b.community_of);
}

class LouvainCliqueSizeTest : public ::testing::TestWithParam<std::uint32_t> {};

// Property: for any clique size, both algorithms keep the clique whole and
// groups() partitions the nodes.
TEST_P(LouvainCliqueSizeTest, CliqueNeverSplits) {
  const std::uint32_t k = GetParam();
  GraphBuilder builder(k);
  for (std::uint32_t u = 0; u < k; ++u) {
    for (std::uint32_t v = u + 1; v < k; ++v) builder.add_edge(u, v);
  }
  const Graph g = std::move(builder).build();
  for (const auto& result : {louvain(g), louvain_refined(g)}) {
    EXPECT_EQ(result.num_communities, 1u);
    std::size_t total = 0;
    for (const auto& group : result.groups()) total += group.size();
    EXPECT_EQ(total, k);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LouvainCliqueSizeTest,
                         ::testing::Values(2u, 3u, 5u, 10u, 25u, 60u));

}  // namespace
}  // namespace smash::graph
