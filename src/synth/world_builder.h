// Internal builder shared between world.cc (benign background) and
// campaigns.cc (noise herds + malicious campaigns). Not installed as part
// of the public API; include only from src/synth/*.cc and tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "synth/config.h"
#include "synth/world.h"
#include "util/rng.h"

namespace smash::synth::internal {

// How a campaign behaves across a multi-day trace (Fig. 7 taxonomy).
enum class Dynamics : std::uint8_t {
  kPersistent,  // same servers every day
  kAgile,       // same clients, fresh servers every day
  kNew,         // appears mid-week, persistent afterwards
};

struct GenericCampaignSpec {
  std::string name;
  ids::CampaignKind kind = ids::CampaignKind::kCnc;
  std::uint32_t num_servers = 4;
  std::uint32_t num_clients = 1;
  bool dim_file = true;
  bool dim_ip = false;
  bool dim_whois = false;
  bool long_obfuscated_files = false;  // exercise eqs. (4)-(6)
  Coverage coverage = Coverage::kBlacklistPartial;
  Dynamics dynamics = Dynamics::kPersistent;
};

class WorldBuilder {
 public:
  explicit WorldBuilder(const WorldConfig& config);

  Dataset build() &&;

 private:
  // --- emission helpers -----------------------------------------------------
  void emit(std::uint32_t client, const std::string& host, std::uint32_t day,
            std::string path, std::string user_agent, std::string referrer,
            std::uint16_t status = 200);
  void resolve(const std::string& host, const std::string& ip);
  // Registers a fresh unique IP for `host`.
  void resolve_unique(const std::string& host, util::Rng& rng);
  std::string maybe_subdomain(util::Rng& rng, const std::string& host_2ld);
  std::string benign_user_agent(util::Rng& rng);
  whois::Record random_whois(util::Rng& rng, bool behind_proxy);
  void register_whois(const std::string& domain_2ld, util::Rng& rng);
  // Take n dedicated (not previously taken) client indices.
  std::vector<std::uint32_t> take_clients(std::uint32_t n);
  // A fresh, never-used benign-looking domain.
  std::string fresh_domain(util::Rng& rng, std::string_view tld = "com");
  std::string stop_file(util::Rng& rng) const;
  std::vector<std::uint32_t> active_days(Dynamics dynamics, util::Rng& rng) const;

  // --- benign background (world.cc) ----------------------------------------
  void generate_popular_servers();
  void generate_tail_servers();
  void generate_referrer_groups();
  void generate_redirect_chains();
  void generate_covisit_groups();

  // Creates a benign victim server with its own pages and 1-2 benign
  // clients; returns its 2LD. Used by the attacking-campaign templates.
  std::string make_victim_server(util::Rng& rng, std::vector<std::string>* pages);

  // --- noise + malicious (campaigns.cc) --------------------------------------
  void generate_noise_herds();
  void generate_flagship_campaigns();
  void generate_zeus(util::Rng& rng, std::uint32_t instance);
  void generate_bagle(util::Rng& rng, std::uint32_t instance);
  void generate_sality(util::Rng& rng, std::uint32_t instance);
  void generate_iframe_injection(util::Rng& rng, std::uint32_t instance);
  void generate_scan(util::Rng& rng, std::uint32_t instance);
  void generate_phishing(util::Rng& rng, std::uint32_t instance);
  void generate_dropzone(util::Rng& rng, std::uint32_t instance);
  void generate_web_exploit(util::Rng& rng, std::uint32_t instance);
  void generate_generic_campaigns();
  void build_generic_campaign(const GenericCampaignSpec& spec, util::Rng& rng);

  // Applies the coverage class to a finished campaign: registers IDS
  // signatures / blacklist entries / liveness, possibly rewriting request
  // statuses for dead servers.
  struct CoverageHooks {
    // Extra "exploit check-in" emitted on covered servers so partial IDS
    // signatures have something unique to match.
    std::string sig_uri_file;
    std::string sig_param_pattern;
    std::string sig_user_agent;
  };
  void apply_coverage(Coverage coverage, const std::string& campaign_name,
                      const std::vector<std::string>& servers,
                      const CoverageHooks& hooks, util::Rng& rng);

  const WorldConfig& cfg_;
  Dataset ds_;
  util::Rng root_;
  std::vector<std::string> client_names_;
  std::vector<std::uint32_t> client_order_;  // shuffled; cursor for take_clients
  std::size_t client_cursor_ = 0;
  std::uint64_t domain_counter_ = 0;
  std::uint64_t ip_counter_ = 0;
  std::vector<std::string> benign_uas_;
  int signature_counter_ = 0;
};

}  // namespace smash::synth::internal
