// Reproduces paper Fig. 3 / §V-C1: what the main (client-similarity)
// dimension alone produces. The paper manually classified 50 random
// main-dimension ASHs into referrer groups (60%), redirection groups
// (10%), similar-content groups (8%), unknown groups (18%) and malicious
// ASHs (4%); we classify every multi-client herd by its dominant
// ground-truth tag.
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "core/dimensions.h"

int main() {
  using namespace smash;
  const auto& ds = bench::dataset("2011day");
  const core::SmashConfig config;
  const auto pre = core::preprocess(ds.trace, config);
  const auto main =
      core::mine_dimension(core::Dimension::kClient, pre, ds.whois, config);

  std::map<std::string, int> categories;
  int total = 0;
  for (const auto& ash : main.ashes) {
    // Skip single-client herds, as the paper does for this analysis ("we
    // ignore ASH with only one client"): count clients present on more
    // than half of the herd's members.
    {
      std::map<std::uint32_t, std::size_t> appearances;
      for (auto member : ash.members) {
        for (auto client : pre.agg.profile(pre.kept[member]).clients) {
          ++appearances[client];
        }
      }
      std::size_t involved = 0;
      for (const auto& [client, count] : appearances) {
        (void)client;
        if (count * 2 > ash.members.size()) ++involved;
      }
      if (involved <= 1) continue;
    }
    std::map<std::string, int> tags;
    for (auto member : ash.members) {
      const auto& name = pre.agg.server_name(pre.kept[member]);
      const auto idx = ds.truth.campaign_of(name);
      std::string tag = "unknown";
      if (idx) {
        const auto& campaign = ds.truth.campaigns()[*idx];
        if (campaign.name.starts_with("benign-referrer")) tag = "referrer group";
        else if (campaign.name.starts_with("benign-redirect")) tag = "redirection group";
        else if (campaign.name.starts_with("benign-similar")) tag = "similar content";
        else if (campaign.name.starts_with("benign-unknown")) tag = "unknown group";
        else if (ids::kind_is_malicious(campaign.kind)) tag = "malicious";
        else tag = "noise herd";
      } else {
        tag = "unstructured benign";
      }
      ++tags[tag];
    }
    // Dominant tag of the herd.
    std::string best;
    int best_count = 0;
    for (const auto& [tag, count] : tags) {
      if (count > best_count) { best = tag; best_count = count; }
    }
    ++categories[best];
    ++total;
  }

  util::Table table("Fig. 3 / Sec. V-C1: composition of main-dimension ASHs");
  table.set_header({"Herd category", "# herds", "share"});
  for (const auto& [tag, count] : categories) {
    table.add_row({tag, std::to_string(count),
                   util::format_fixed(100.0 * count / total, 1) + "%"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("  total multi-server herds: %d; modularity %.3f; herded servers %zu\n",
              total, main.modularity, main.num_herded_servers());
  std::puts("\nShape target (paper): benign structured groups (referrer/redirect/");
  std::puts("  similar/unknown) dominate; malicious herds are a small minority —");
  std::puts("  the main dimension separates groups but cannot label them.");
  return 0;
}
