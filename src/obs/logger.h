// MetricsLogger: periodically appends a one-line JSON snapshot of a
// Registry to a JSONL file, so a live engine leaves a machine-readable
// metrics trail (StreamConfig::metrics_dir -> <dir>/metrics.jsonl) without
// any scrape infrastructure. Each line is
//   {"ts_unix_ms":<wall clock>,"metrics":<render_json(registry)>}
// The destructor writes one final line, so even a run shorter than the
// interval leaves a complete snapshot behind.
#pragma once

#include <chrono>
#include <condition_variable>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace smash::obs {

class MetricsLogger {
 public:
  // Appends to `path` (parent directories are created). The registry is
  // shared: it must simply exist; writers may keep updating it.
  MetricsLogger(std::shared_ptr<Registry> registry, std::string path,
                std::chrono::milliseconds interval);
  // Stops the thread and writes a final snapshot line.
  ~MetricsLogger();

  MetricsLogger(const MetricsLogger&) = delete;
  MetricsLogger& operator=(const MetricsLogger&) = delete;

  // Writes one snapshot line now (any thread).
  void flush_now();

  const std::string& path() const noexcept { return path_; }
  std::uint64_t lines_written() const noexcept;

 private:
  void loop();
  void write_line();

  std::shared_ptr<Registry> registry_;
  std::string path_;
  std::chrono::milliseconds interval_;

  mutable std::mutex mutex_;  // guards out_, lines_, stop_
  std::condition_variable cv_;
  std::ofstream out_;
  std::uint64_t lines_ = 0;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace smash::obs
