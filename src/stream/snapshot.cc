#include "stream/snapshot.h"

#include <algorithm>
#include <initializer_list>

#include "dns/domain.h"

namespace smash::stream {

std::shared_ptr<const DetectionSnapshot> DetectionSnapshot::build(
    const core::SmashResult& result, const util::Interner& window_ips,
    std::size_t window_requests, const WindowAggregates& aggregates,
    const IngestStats& ingest, EpochId first_epoch, EpochId last_epoch,
    std::uint64_t sequence, RecoveryStats recovery,
    const std::function<void()>& build_hook) {
  auto snap = std::shared_ptr<DetectionSnapshot>(new DetectionSnapshot());
  snap->first_epoch_ = first_epoch;
  snap->last_epoch_ = last_epoch;
  snap->sequence_ = sequence;
  snap->window_requests_ = window_requests;
  snap->kept_servers_ = result.pre.kept.size();
  snap->postings_budget_exceeded_ = result.postings_budget_exceeded();
  snap->join_shard_passes_ = result.join_shard_passes();
  snap->peak_resident_postings_bytes_ = result.peak_resident_postings_bytes();
  snap->louvain_stats_ = result.louvain_stats();
  snap->ingest_stats_ = ingest;
  snap->recovery_stats_ = recovery;
  snap->delta_stats_ = result.delta;

  // An exception here (or anywhere below) unwinds before the caller ever
  // publishes `snap`: the previously published snapshot stays readable.
  if (build_hook) build_hook();

  for (const auto& campaign : result.campaigns) {
    const auto campaign_index =
        static_cast<std::uint32_t>(snap->campaigns_.size());
    SnapshotCampaign out;
    out.involved_clients =
        static_cast<std::uint32_t>(campaign.involved_clients.size());
    out.single_client = campaign.single_client();

    ServerVerdict verdict;
    verdict.campaign = campaign_index;
    verdict.campaign_servers = static_cast<std::uint32_t>(campaign.servers.size());
    verdict.single_client = out.single_client;

    for (auto kept_idx : campaign.servers) {
      const std::string& name = result.server_name(kept_idx);
      out.servers.push_back(name);
      if (const auto* window_stats = aggregates.find(name)) {
        verdict.window_requests = window_stats->requests;
        verdict.active_epochs = window_stats->active_epochs;
      } else {
        verdict.window_requests = 0;
        verdict.active_epochs = 0;
      }
      snap->by_2ld_.emplace(name, verdict);
      // Index every IP the campaign server resolved to in this window: a
      // request straight to the IP (no Host aggregation possible) still
      // gets a verdict.
      for (auto ip : result.server_profile(kept_idx).ips) {
        snap->by_ip_.emplace(window_ips.name(ip), verdict);
      }
    }
    snap->campaigns_.push_back(std::move(out));
  }

  snap->built_at_ = std::chrono::steady_clock::now();
  return snap;
}

std::string DetectionSnapshot::digest() const {
  std::string out;
  const auto line = [&out](std::initializer_list<std::string> fields) {
    bool first = true;
    for (const auto& f : fields) {
      if (!first) out += '\t';
      out += f;
      first = false;
    }
    out += '\n';
  };
  const auto num = [](std::uint64_t v) { return std::to_string(v); };

  line({"epochs", num(first_epoch_), num(last_epoch_), num(sequence_)});
  line({"window", num(window_requests_), num(kept_servers_),
        num(postings_budget_exceeded_ ? 1 : 0)});
  line({"ingest", num(ingest_stats_.requests), num(ingest_stats_.resolutions),
        num(ingest_stats_.redirects), num(ingest_stats_.late_dropped),
        num(ingest_stats_.late_folded)});
  for (std::size_t i = 0; i < campaigns_.size(); ++i) {
    const auto& c = campaigns_[i];
    std::string servers;
    for (const auto& s : c.servers) {
      if (!servers.empty()) servers += ',';
      servers += s;
    }
    line({"campaign", num(i), num(c.involved_clients),
          num(c.single_client ? 1 : 0), servers});
  }
  const auto verdicts = [&](const char* tag,
                            const std::unordered_map<std::string, ServerVerdict>& by) {
    std::vector<std::string> keys;
    keys.reserve(by.size());
    for (const auto& [key, verdict] : by) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    for (const auto& key : keys) {
      const auto& v = by.at(key);
      line({tag, key, num(v.campaign), num(v.campaign_servers),
            num(v.single_client ? 1 : 0), num(v.window_requests),
            num(v.active_epochs)});
    }
  };
  verdicts("2ld", by_2ld_);
  verdicts("ip", by_ip_);
  return out;
}

const ServerVerdict* DetectionSnapshot::find_host(std::string_view host) const {
  auto it = by_2ld_.find(dns::effective_2ld(host));
  return it == by_2ld_.end() ? nullptr : &it->second;
}

const ServerVerdict* DetectionSnapshot::find_ip(std::string_view ip) const {
  auto it = by_ip_.find(std::string(ip));
  return it == by_ip_.end() ? nullptr : &it->second;
}

}  // namespace smash::stream
