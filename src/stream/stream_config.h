// Configuration of the streaming subsystem: epoch-windowed ingest over the
// batch SMASH pipeline. The paper mines a full collection window (one day,
// or one week) as a single batch; the streaming engine instead ingests
// timestamped requests continuously, partitions them into fixed epochs, and
// re-mines a sliding window of the last `window_epochs` epochs on every
// epoch close.
#pragma once

#include <cstdint>

#include "core/smash_config.h"

namespace smash::stream {

// Epoch index: event time in seconds divided by StreamConfig::epoch_seconds.
using EpochId = std::uint64_t;

struct StreamConfig {
  // Epoch length. One hour by default: long enough for a campaign's bots to
  // accumulate the co-visits the client dimension needs, short enough that
  // detection latency stays within the paper's daily cadence.
  std::uint32_t epoch_seconds = 3600;

  // Sliding window: the engine mines the last `window_epochs` closed epochs
  // (a full day at the default epoch length), matching the batch pipeline's
  // one-day collection window.
  std::uint32_t window_epochs = 24;

  // Events older than the open epoch. When true (default) they are dropped
  // and counted (IngestStats::late_dropped); when false they are folded
  // into the open epoch so no traffic is lost at the cost of epoch purity.
  bool drop_late_events = true;

  // Pipeline tunables for each window re-mine.
  core::SmashConfig smash;

  EpochId epoch_of(std::uint64_t time_s) const noexcept {
    return epoch_seconds == 0 ? 0 : time_s / epoch_seconds;
  }
};

}  // namespace smash::stream
