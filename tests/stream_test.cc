// Streaming subsystem units: epoch bucketing, window ring + incremental
// aggregates, snapshot verdict index, RCU-style snapshot swap, verdict
// service counters, and JoinStats surfacing into snapshots.
#include "stream/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "stream/ingest.h"
#include "stream/verdict.h"
#include "synth/stream_gen.h"

namespace smash::stream {
namespace {

RequestEvent req(std::uint64_t time_s, std::string client, std::string host,
                 std::string path = "/x.html") {
  RequestEvent e;
  e.time_s = time_s;
  e.client = std::move(client);
  e.host = std::move(host);
  e.path = std::move(path);
  e.user_agent = "UA";
  return e;
}

ResolutionEvent res(std::uint64_t time_s, std::string host, std::string ip) {
  ResolutionEvent e;
  e.time_s = time_s;
  e.host = std::move(host);
  e.ip = std::move(ip);
  return e;
}

StreamConfig small_config(std::uint32_t epoch_s = 100,
                          std::uint32_t window = 3) {
  StreamConfig config;
  config.epoch_seconds = epoch_s;
  config.window_epochs = window;
  config.smash.idf_threshold = 50;
  return config;
}

TEST(StreamIngestor, BucketsEventsIntoEpochs) {
  StreamIngestor ingestor(small_config(/*epoch_s=*/100, /*window=*/10));
  EXPECT_FALSE(ingestor.has_open_epoch());

  EXPECT_TRUE(ingestor.ingest(req(10, "c1", "a.com")).accepted);
  EXPECT_TRUE(ingestor.has_open_epoch());
  EXPECT_EQ(ingestor.open_epoch(), 0u);

  // Crossing into epoch 2 closes epochs 0 and 1 (1 is empty).
  const auto result = ingestor.ingest(req(250, "c2", "b.com"));
  EXPECT_TRUE(result.accepted);
  EXPECT_EQ(result.epochs_closed, 2u);
  EXPECT_EQ(ingestor.open_epoch(), 2u);
  ASSERT_EQ(ingestor.window().size(), 2u);
  EXPECT_EQ(ingestor.window()[0]->id(), 0u);
  EXPECT_EQ(ingestor.window()[0]->num_requests(), 1u);
  EXPECT_EQ(ingestor.window()[1]->id(), 1u);
  EXPECT_TRUE(ingestor.window()[1]->empty());
  EXPECT_EQ(ingestor.stats().requests, 2u);
}

TEST(StreamIngestor, DropsOrFoldsLateEvents) {
  StreamIngestor dropping(small_config());
  dropping.ingest(req(250, "c1", "a.com"));  // opens epoch 2
  EXPECT_FALSE(dropping.ingest(req(50, "c2", "b.com")).accepted);
  EXPECT_EQ(dropping.stats().late_dropped, 1u);
  EXPECT_EQ(dropping.stats().requests, 1u);

  StreamConfig folding = small_config();
  folding.drop_late_events = false;
  StreamIngestor folder(folding);
  folder.ingest(req(250, "c1", "a.com"));
  EXPECT_TRUE(folder.ingest(req(50, "c2", "b.com")).accepted);
  EXPECT_EQ(folder.stats().late_folded, 1u);
  EXPECT_EQ(folder.stats().requests, 2u);
}

TEST(StreamIngestor, WindowRingEvictsAndAggregatesIncrementally) {
  // Window of 2 epochs; the same 2LD is hit in epochs 0, 1, 2.
  StreamIngestor ingestor(small_config(/*epoch_s=*/100, /*window=*/2));
  ingestor.ingest(req(10, "c1", "a.com"));
  ingestor.ingest(req(20, "c1", "only-epoch0.com"));
  ingestor.ingest(req(110, "c2", "www.a.com"));  // aggregates to a.com
  ingestor.ingest(req(210, "c3", "a.com"));
  ingestor.close_epoch();  // seal epoch 2; window now epochs [1, 2]

  ASSERT_EQ(ingestor.window().size(), 2u);
  EXPECT_EQ(ingestor.window().front()->id(), 1u);

  const auto* a = ingestor.aggregates().find("a.com");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->requests, 2u);       // epoch 0's hit evicted
  EXPECT_EQ(a->active_epochs, 2u);  // present in epochs 1 and 2
  // Evicted-only server vanishes from the window aggregates entirely.
  EXPECT_EQ(ingestor.aggregates().find("only-epoch0.com"), nullptr);
  EXPECT_EQ(ingestor.aggregates().window_requests(), 2u);
}

TEST(StreamIngestor, FarFutureGapIsBoundedAndEquivalent) {
  // A gap wider than the window fast-forwards instead of closing epochs
  // one by one (a corrupt far-future timestamp must not hang the writer).
  const auto drive = [](StreamIngestor& ingestor, std::uint64_t gap_to) {
    ingestor.ingest(req(10, "c1", "a.com"));
    ingestor.ingest(req(gap_to, "c2", "b.com"));
  };

  // Equivalence at a modest gap: fast path (window=3) vs what the ring
  // must look like afterwards — all-empty window ending just before the
  // new open epoch, no aggregates.
  StreamIngestor ingestor(small_config(/*epoch_s=*/100, /*window=*/3));
  drive(ingestor, 900);  // epoch 9; gap of 9 > window 3
  EXPECT_EQ(ingestor.open_epoch(), 9u);
  ASSERT_EQ(ingestor.window().size(), 3u);
  EXPECT_EQ(ingestor.window().front()->id(), 6u);
  EXPECT_EQ(ingestor.window().back()->id(), 8u);
  for (const auto& shard : ingestor.window()) EXPECT_TRUE(shard->empty());
  EXPECT_EQ(ingestor.aggregates().num_servers(), 0u);

  // The pathological case completes instantly and ingest keeps working.
  StreamIngestor far(small_config(/*epoch_s=*/3600, /*window=*/24));
  drive(far, 4'000'000'000ULL);  // ~126 years in
  EXPECT_EQ(far.open_epoch(), 4'000'000'000ULL / 3600);
  EXPECT_EQ(far.window().size(), 24u);
  EXPECT_TRUE(far.ingest(req(4'000'000'100ULL, "c3", "c.com")).accepted);
  EXPECT_EQ(far.stats().requests, 3u);
}

TEST(StreamIngestor, AssembledWindowMatchesShardContents) {
  StreamIngestor ingestor(small_config(/*epoch_s=*/100, /*window=*/4));
  ingestor.ingest(req(10, "c1", "a.com"));
  ingestor.ingest(res(20, "a.com", "1.1.1.1"));
  ingestor.ingest(req(150, "c2", "b.com"));
  ingestor.ingest(res(160, "b.com", "2.2.2.2"));
  ingestor.close_epoch();

  const net::Trace window = ingestor.assemble_window();
  EXPECT_EQ(window.num_requests(), 2u);
  EXPECT_EQ(window.num_clients(), 2u);
  EXPECT_EQ(window.ips_of(*window.servers().find("a.com")).size(), 1u);
  EXPECT_EQ(window.ips_of(*window.servers().find("b.com")).size(), 1u);
}

// A scenario small enough for unit tests whose campaigns the pipeline
// reliably detects.
synth::StreamScenarioConfig tiny_scenario_config() {
  synth::StreamScenarioConfig config;
  config.seed = 11;
  config.duration_s = 6 * 600;
  config.benign_servers = 60;
  config.benign_clients = 40;
  config.benign_visits = 500;
  config.popular_servers = 2;
  config.popular_clients = 70;
  config.campaigns = 1;
  config.campaign_servers = 5;
  config.campaign_bots = 4;
  config.poll_interval_s = 120;
  config.active_fraction = 0.5;
  return config;
}

StreamConfig tiny_stream_config(unsigned threads = 1) {
  StreamConfig config;
  config.epoch_seconds = 600;
  config.window_epochs = 6;
  config.smash.idf_threshold = 50;  // popular_clients = 70 get filtered
  config.smash.num_threads = threads;
  return config;
}

TEST(StreamEngine, PublishesSnapshotsAndServesVerdicts) {
  const auto scenario = synth::generate_stream(tiny_scenario_config());
  StreamEngine engine(tiny_stream_config(), scenario.whois);
  const VerdictService service(engine.slot());

  // Before any epoch closes there is no snapshot.
  EXPECT_EQ(engine.snapshot(), nullptr);
  EXPECT_FALSE(service.lookup("c0-s0.biz").snapshot_available);

  synth::feed(engine, scenario);
  engine.finish();

  const auto snapshot = engine.snapshot();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_GT(engine.snapshots_published(), 0u);
  // Sequences count epoch closes: the final snapshot accounts for every
  // close, and publications can only lag when windows were skipped.
  EXPECT_EQ(snapshot->sequence(), engine.epochs_closed_total());
  EXPECT_GE(snapshot->sequence(), engine.snapshots_published());
  EXPECT_FALSE(snapshot->campaigns().empty());

  // Every campaign server is flagged, by 2LD, by subdomain, and by IP, and
  // the verdict carries the server's sliding-window activity from the
  // incrementally merged aggregates.
  const auto& truth = scenario.campaigns[0];
  for (const auto& host : truth.servers) {
    const auto answer = service.lookup(host);
    EXPECT_TRUE(answer.malicious) << host;
    EXPECT_TRUE(answer.snapshot_available);
    EXPECT_EQ(answer.verdict.campaign_servers, truth.servers.size());
    EXPECT_GT(answer.verdict.window_requests, 0u) << host;
    EXPECT_GE(answer.verdict.active_epochs, 1u) << host;
  }
  EXPECT_TRUE(service.lookup("www." + truth.servers[0]).malicious);
  EXPECT_TRUE(service.lookup_request("unknown.example", "198.51.0.1").malicious);

  // Benign hosts stay clean.
  EXPECT_FALSE(service.lookup("site3.org").malicious);
  EXPECT_FALSE(service.lookup_request("site4.org", "203.0.0.4").malicious);

  const auto stats = service.stats();
  // The pre-feed lookup plus: one per campaign server, the subdomain
  // lookup, the IP lookup, and the two benign lookups.
  EXPECT_EQ(stats.queries,
            static_cast<std::uint64_t>(truth.servers.size()) + 5);
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(truth.servers.size()) + 2);
  EXPECT_GT(stats.hit_rate, 0.0);
  EXPECT_TRUE(stats.snapshot_available);
  EXPECT_GE(stats.snapshot_age_s, 0.0);

  // Close records carry the latency breakdown for every publication, and
  // their epochs_closed counts account for every close with none skipped
  // silently.
  const auto records = engine.close_records();
  ASSERT_EQ(records.size(), engine.snapshots_published());
  std::uint64_t accounted = 0;
  for (const auto& record : records) {
    EXPECT_GE(record.total_ms,
              record.mine_ms);  // total includes assemble + mine + snapshot
    EXPECT_LE(record.window_epochs, engine.config().window_epochs);
    EXPECT_GE(record.epochs_closed, 1u);
    accounted += record.epochs_closed;
  }
  EXPECT_EQ(accounted, engine.epochs_closed_total());
}

TEST(StreamEngine, SnapshotSwapIsSafeUnderConcurrentReaders) {
  // Readers hammer the slot while the writer publishes snapshot after
  // snapshot; ASan/UBSan (CI) would flag a stale read or torn swap.
  const auto scenario = synth::generate_stream(tiny_scenario_config());
  StreamEngine engine(tiny_stream_config(), scenario.whois);
  const VerdictService service(engine.slot());

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> last_seq{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto answer = service.lookup("c0-s0.biz");
        if (answer.snapshot_available) {
          // Sequences are published in order; a reader may see an older
          // snapshot than another reader but never sequence 0.
          EXPECT_GE(answer.snapshot_sequence, 1u);
          last_seq.store(answer.snapshot_sequence, std::memory_order_relaxed);
        }
      }
    });
  }

  synth::feed(engine, scenario);
  engine.finish();
  stop.store(true);
  for (auto& reader : readers) reader.join();

  EXPECT_GT(service.stats().queries, 0u);
  EXPECT_LE(last_seq.load(), engine.snapshots_published());
}

TEST(StreamEngine, SnapshotAgeGrowsMonotonicallyWhileMinerStalled) {
  // Regression: snapshot age must be computed at read time from the
  // publish timestamp, not cached at publish — a stalled miner then shows
  // up as ever-growing age (what the serve layer's staleness SLO and any
  // alert on stream.snapshot_age_ms key off), never a frozen "fresh" one.
  const auto scenario = synth::generate_stream(tiny_scenario_config());
  StreamConfig config = tiny_stream_config();
  config.async_mining = true;
  std::atomic<int> mines{0};
  std::atomic<bool> release{false};
  config.mine_test_hook = [&] {
    // First mine publishes normally; every later one stalls until
    // released, simulating a miner that has fallen far behind.
    if (mines.fetch_add(1) == 0) return;
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  StreamEngine engine(config, scenario.whois);
  const VerdictService service(engine.slot());

  // Feed everything: publication #1 lands, then the next mine stalls.
  synth::feed(engine, scenario);
  while (engine.snapshots_published() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const auto gauge_age_ms = [&] {
    const auto snapshot = engine.metrics()->snapshot();
    const auto* gauge = snapshot.gauge("stream.snapshot_age_ms");
    EXPECT_NE(gauge, nullptr);
    return gauge ? gauge->value : 0.0;
  };

  // While the miner is stalled, every read shows the same (first)
  // snapshot but a strictly growing age — on the per-lookup answer and on
  // the exported gauge alike.
  // (The first publication's sequence may exceed 1 when early closes
  // coalesced into it; what matters is that it does not advance while the
  // miner is stalled.)
  const auto first = service.lookup("site3.org");
  ASSERT_TRUE(first.snapshot_available);
  ASSERT_GE(first.snapshot_age_s, 0.0);
  const double first_gauge = gauge_age_ms();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto later = service.lookup("site3.org");
  EXPECT_EQ(later.snapshot_sequence, first.snapshot_sequence)
      << "miner is stalled";
  EXPECT_GT(later.snapshot_age_s, first.snapshot_age_s);
  EXPECT_GE(later.snapshot_age_s - first.snapshot_age_s, 0.015)
      << "age must track the stalled wall-clock time";
  EXPECT_GT(gauge_age_ms(), first_gauge);

  // Released, the engine drains and the age restarts from the fresh
  // publication.
  release.store(true);
  engine.finish();
  const auto fresh = service.lookup("site3.org");
  EXPECT_GT(fresh.snapshot_sequence, first.snapshot_sequence);
  EXPECT_LT(fresh.snapshot_age_s, later.snapshot_age_s);
}

TEST(StreamSnapshot, SurfacesPostingsBudgetOverflow) {
  const auto scenario = synth::generate_stream(tiny_scenario_config());

  // A postings cap small enough that the benign client join overflows it.
  StreamConfig strangled = tiny_stream_config();
  strangled.smash.join_postings_cap = 2;
  strangled.smash.file_postings_cap = 2;
  StreamEngine engine(strangled, scenario.whois);
  synth::feed(engine, scenario);
  engine.finish();

  const auto snapshot = engine.snapshot();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_TRUE(snapshot->postings_budget_exceeded());

  // With the default (inert) caps the same window reports a clean budget,
  // and the stats agree with the per-dimension JoinStats.
  StreamEngine healthy(tiny_stream_config(), scenario.whois);
  synth::feed(healthy, scenario);
  healthy.finish();
  ASSERT_NE(healthy.snapshot(), nullptr);
  EXPECT_FALSE(healthy.snapshot()->postings_budget_exceeded());
}

TEST(StreamSnapshot, SurfacesJoinMemoryPressure) {
  const auto scenario = synth::generate_stream(tiny_scenario_config());

  StreamEngine unbounded(tiny_stream_config(), scenario.whois);
  synth::feed(unbounded, scenario);
  unbounded.finish();
  const auto baseline = unbounded.snapshot();
  ASSERT_NE(baseline, nullptr);
  // One pass per dimension join when the budget is unbounded.
  EXPECT_EQ(baseline->join_shard_passes(),
            static_cast<std::size_t>(core::kNumDimensions));
  EXPECT_GT(baseline->peak_resident_postings_bytes(), 0u);

  // A budget below the window's postings footprint forces multi-pass
  // joins; verdicts must be unchanged and the pressure observable.
  StreamConfig squeezed = tiny_stream_config();
  squeezed.smash.join_memory_budget_bytes = 512;
  StreamEngine engine(squeezed, scenario.whois);
  synth::feed(engine, scenario);
  engine.finish();
  const auto snapshot = engine.snapshot();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_GT(snapshot->join_shard_passes(), baseline->join_shard_passes());
  EXPECT_LE(snapshot->peak_resident_postings_bytes(), 512u);
  EXPECT_FALSE(snapshot->postings_budget_exceeded());
  ASSERT_EQ(snapshot->campaigns().size(), baseline->campaigns().size());
  for (std::size_t c = 0; c < snapshot->campaigns().size(); ++c) {
    EXPECT_EQ(snapshot->campaigns()[c].servers,
              baseline->campaigns()[c].servers);
  }
}

TEST(StreamEngine, MultiEpochGapsAreAccountedInSequences) {
  // One ingest step closes epochs 0..2 at once; the single publication must
  // account for all three closes (sequence jump + record.epochs_closed), so
  // skipped intermediate windows are visible, never silent.
  const whois::Registry registry;
  StreamEngine engine(small_config(/*epoch_s=*/100, /*window=*/10), registry);
  engine.ingest(req(10, "c1", "a.com"));
  engine.ingest(req(310, "c1", "a.com"));  // closes epochs 0, 1, 2
  EXPECT_EQ(engine.epochs_closed_total(), 3u);
  EXPECT_EQ(engine.snapshots_published(), 1u);
  auto snapshot = engine.snapshot();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->sequence(), 3u);
  auto records = engine.close_records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].epochs_closed, 3u);

  engine.finish();  // closes epoch 3: second publication, sequence 4
  snapshot = engine.snapshot();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->sequence(), 4u);
  records = engine.close_records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].epochs_closed, 1u);
}

TEST(AsyncStreamMining, MiningFailureSurfacesOnWriterThreadAndEngineRecovers) {
  // An exception escaping the mining thread must not wedge the engine
  // (stuck mine_in_flight_ would deadlock finish()/~StreamEngine) or vanish
  // silently: wait_for_mining() rethrows it on the writer thread and later
  // closes mine again, with every close still accounted.
  const whois::Registry registry;
  StreamConfig config = small_config(/*epoch_s=*/100, /*window=*/4);
  config.async_mining = true;
  std::atomic<int> mines{0};
  config.mine_test_hook = [&mines] {
    if (mines.fetch_add(1) == 0) throw std::runtime_error("injected fault");
  };
  StreamEngine engine(config, registry);
  engine.ingest(req(10, "c1", "a.com"));
  engine.ingest(req(110, "c1", "a.com"));  // closes epoch 0: the failing mine
  EXPECT_THROW(engine.wait_for_mining(), std::runtime_error);
  EXPECT_EQ(engine.snapshots_published(), 0u);

  engine.ingest(req(210, "c1", "a.com"));  // closes epoch 1: mines again
  engine.finish();                         // closes epoch 2, drains cleanly
  const auto snapshot = engine.snapshot();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(engine.epochs_closed_total(), 3u);
  EXPECT_EQ(snapshot->sequence(), 3u);
  // The close whose mine failed is accounted by the next publication.
  std::uint64_t accounted = 0;
  for (const auto& record : engine.close_records()) {
    accounted += record.epochs_closed;
  }
  EXPECT_EQ(accounted, engine.epochs_closed_total());
}

TEST(StreamSnapshot, TornPublishLeavesPreviousSnapshotReadable) {
  // An exception escaping DetectionSnapshot::build mid-assembly must leave
  // the previously published snapshot installed — readers never observe a
  // half-built window — and the engine keeps mining subsequent closes.
  const whois::Registry registry;
  StreamConfig config = small_config(/*epoch_s=*/100, /*window=*/3);
  std::atomic<bool> tear{false};
  config.snapshot_test_hook = [&tear] {
    if (tear.load()) throw std::runtime_error("injected torn publish");
  };
  StreamEngine engine(config, registry);
  engine.ingest(req(10, "c1", "a.com"));
  engine.ingest(req(110, "c1", "a.com"));  // closes epoch 0: publishes #1
  const auto first = engine.snapshot();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->sequence(), 1u);

  tear.store(true);
  EXPECT_THROW(engine.ingest(req(210, "c2", "a.com")), std::runtime_error);
  EXPECT_EQ(engine.snapshot(), first);  // same object, not a torn successor
  EXPECT_EQ(engine.snapshots_published(), 1u);

  tear.store(false);
  engine.ingest(req(310, "c1", "a.com"));  // closes epoch 2: mines again
  engine.finish();                         // closes epoch 3
  const auto final_snap = engine.snapshot();
  ASSERT_NE(final_snap, nullptr);
  EXPECT_EQ(final_snap->sequence(), 4u);
  EXPECT_EQ(engine.epochs_closed_total(), 4u);

  // The aborted build had no side effects: an engine that never tore
  // lands on the same final window.
  StreamConfig plain = small_config(/*epoch_s=*/100, /*window=*/3);
  StreamEngine reference(plain, registry);
  reference.ingest(req(10, "c1", "a.com"));
  reference.ingest(req(110, "c1", "a.com"));
  reference.ingest(req(210, "c2", "a.com"));
  reference.ingest(req(310, "c1", "a.com"));
  reference.finish();
  const auto reference_snap = reference.snapshot();
  ASSERT_NE(reference_snap, nullptr);
  EXPECT_EQ(final_snap->digest(), reference_snap->digest());
}

TEST(AsyncStreamMining, TornPublishOnMiningThreadKeepsOldSnapshot) {
  // Same torn-publish guarantee when the build runs on the mining thread:
  // the old snapshot stays installed, the error surfaces on the writer
  // thread via wait_for_mining(), and later closes publish normally.
  const whois::Registry registry;
  StreamConfig config = small_config(/*epoch_s=*/100, /*window=*/3);
  config.async_mining = true;
  std::atomic<bool> tear{false};
  config.snapshot_test_hook = [&tear] {
    if (tear.load()) throw std::runtime_error("injected torn publish");
  };
  StreamEngine engine(config, registry);
  engine.ingest(req(10, "c1", "a.com"));
  engine.ingest(req(110, "c1", "a.com"));  // closes epoch 0
  engine.wait_for_mining();
  const auto first = engine.snapshot();
  ASSERT_NE(first, nullptr);

  tear.store(true);
  engine.ingest(req(210, "c2", "a.com"));  // closes epoch 1: build tears
  EXPECT_THROW(engine.wait_for_mining(), std::runtime_error);
  EXPECT_EQ(engine.snapshot(), first);
  EXPECT_EQ(engine.snapshots_published(), 1u);

  tear.store(false);
  engine.ingest(req(310, "c1", "a.com"));  // closes epoch 2
  engine.finish();                         // closes epoch 3, drains
  const auto final_snap = engine.snapshot();
  ASSERT_NE(final_snap, nullptr);
  EXPECT_NE(final_snap, first);
  EXPECT_EQ(final_snap->sequence(), 4u);
  EXPECT_EQ(engine.epochs_closed_total(), 4u);
}

TEST(StreamSnapshot, SurfacesLateEventLoss) {
  // Late events are invisible in the verdict maps; the snapshot must carry
  // the ingest counters so the data loss is observable by readers.
  const whois::Registry registry;
  StreamEngine dropping(small_config(/*epoch_s=*/100, /*window=*/4), registry);
  dropping.ingest(req(250, "c1", "a.com"));    // opens epoch 2
  dropping.ingest(req(10, "c2", "late.com"));  // late: dropped
  dropping.ingest(req(20, "c3", "late.com"));  // late: dropped
  dropping.finish();
  auto snapshot = dropping.snapshot();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->late_dropped(), 2u);
  EXPECT_EQ(snapshot->late_folded(), 0u);
  EXPECT_EQ(snapshot->ingest_stats().requests, 1u);

  StreamConfig folding = small_config(/*epoch_s=*/100, /*window=*/4);
  folding.drop_late_events = false;
  StreamEngine folder(folding, registry);
  folder.ingest(req(250, "c1", "a.com"));
  folder.ingest(req(10, "c2", "late.com"));  // late: folded into epoch 2
  folder.finish();
  snapshot = folder.snapshot();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->late_dropped(), 0u);
  EXPECT_EQ(snapshot->late_folded(), 1u);
  EXPECT_EQ(snapshot->ingest_stats().requests, 2u);
}

// Builds a sealed one-epoch shard with `n` requests to x.com.
std::shared_ptr<const EpochShard> shard_with_requests(int n) {
  StreamIngestor ingestor(small_config(/*epoch_s=*/100, /*window=*/4));
  for (int i = 0; i < n; ++i) {
    ingestor.ingest(req(10 + i, "c" + std::to_string(i), "x.com"));
  }
  ingestor.close_epoch();
  return ingestor.window().back();
}

TEST(WindowAggregatesDeathTest, RemoveEpochUnderflowAborts) {
  const auto small = shard_with_requests(1);
  const auto big = shard_with_requests(3);

  WindowAggregates aggregates;
  aggregates.add_epoch(*small);
  // Evicting a delta larger than the accumulated value would underflow the
  // per-2LD counters; the guard must abort instead of serving garbage.
  EXPECT_DEATH(aggregates.remove_epoch(*big), "underflow");
  // Evicting a shard whose 2LD was never added is the same corruption.
  WindowAggregates empty;
  EXPECT_DEATH(empty.remove_epoch(*small), "underflow");

  // The in-bounds path drains the entry and erases it entirely.
  aggregates.remove_epoch(*small);
  EXPECT_EQ(aggregates.find("x.com"), nullptr);
  EXPECT_EQ(aggregates.num_servers(), 0u);
  EXPECT_EQ(aggregates.window_requests(), 0u);
}

TEST(StreamSnapshot, JoinStatsFlowIntoSmashResult) {
  const auto scenario = synth::generate_stream(tiny_scenario_config());
  const net::Trace trace =
      synth::batch_trace(scenario, 0, scenario.duration_s);

  core::SmashConfig config;
  config.idf_threshold = 50;
  const auto result = core::SmashPipeline(config).run(trace, scenario.whois);
  // The client join indexed something and skipped nothing at default caps.
  const auto& client_stats =
      result.dims[static_cast<int>(core::Dimension::kClient)].join_stats;
  EXPECT_GT(client_stats.num_keys, 0u);
  EXPECT_GT(client_stats.postings_entries, 0u);
  EXPECT_EQ(client_stats.skipped_keys, 0u);
  EXPECT_FALSE(result.postings_budget_exceeded());

  core::SmashConfig tiny_cap = config;
  tiny_cap.join_postings_cap = 2;
  tiny_cap.file_postings_cap = 2;
  const auto capped = core::SmashPipeline(tiny_cap).run(trace, scenario.whois);
  EXPECT_TRUE(capped.postings_budget_exceeded());
  EXPECT_GT(capped.dims[static_cast<int>(core::Dimension::kClient)]
                .join_stats.skipped_keys,
            0u);
}

}  // namespace
}  // namespace smash::stream
