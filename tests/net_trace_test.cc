#include "net/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "test_helpers.h"

namespace smash::net {
namespace {

using test::add_request;
using test::resolve;

TEST(Trace, InternsAndCounts) {
  Trace trace;
  add_request(trace, "c1", "a.com", "/x.html");
  add_request(trace, "c1", "a.com", "/y.html");
  add_request(trace, "c2", "b.com", "/x.html");
  trace.finalize();
  EXPECT_EQ(trace.num_clients(), 2u);
  EXPECT_EQ(trace.num_servers(), 2u);
  EXPECT_EQ(trace.num_requests(), 3u);
  EXPECT_EQ(trace.num_days(), 1u);
}

TEST(Trace, CountsDistinctUriFiles) {
  Trace trace;
  add_request(trace, "c1", "a.com", "/p/x.html");
  add_request(trace, "c1", "a.com", "/q/x.html?v=1");  // same file
  add_request(trace, "c1", "a.com", "/p/y.html");
  trace.finalize();
  EXPECT_EQ(trace.count_distinct_uri_files(), 2u);
}

TEST(Trace, ResolutionsNormalizeAndLookup) {
  Trace trace;
  add_request(trace, "c1", "a.com", "/");
  resolve(trace, "a.com", "1.2.3.4");
  resolve(trace, "a.com", "1.2.3.4");  // duplicate
  resolve(trace, "a.com", "5.6.7.8");
  trace.finalize();
  EXPECT_EQ(trace.ips_of(trace.servers().find("a.com").value()).size(), 2u);
  // Unresolved server yields the empty set.
  add_request(trace, "c1", "b.com", "/");
  trace.finalize();
  EXPECT_TRUE(trace.ips_of(trace.servers().find("b.com").value()).empty());
}

TEST(Trace, RedirectTargets) {
  Trace trace;
  add_request(trace, "c1", "short.cc", "/go", "UA", "", 302);
  trace.add_redirect(trace.intern_server("short.cc"), trace.intern_server("land.com"));
  trace.finalize();
  std::uint32_t to = 0;
  ASSERT_TRUE(trace.redirect_target(*trace.servers().find("short.cc"), to));
  EXPECT_EQ(trace.servers().name(to), "land.com");
  EXPECT_FALSE(trace.redirect_target(*trace.servers().find("land.com"), to));
}

TEST(Trace, TsvRoundTrip) {
  Trace trace;
  add_request(trace, "c1", "a.com", "/x.php?p=1", "Agent/1.0", "ref.com", 200);
  add_request(trace, "c2", "b.com", "/y.html", "", "", 404, /*day=*/2);
  resolve(trace, "a.com", "9.9.9.9");
  trace.add_redirect(trace.intern_server("a.com"), trace.intern_server("b.com"));
  trace.finalize();

  const auto path = std::filesystem::temp_directory_path() / "smash_trace_test.tsv";
  trace.write_tsv(path.string());
  const Trace loaded = Trace::read_tsv(path.string());
  std::filesystem::remove(path);

  EXPECT_EQ(loaded.num_requests(), 2u);
  EXPECT_EQ(loaded.num_clients(), 2u);
  EXPECT_EQ(loaded.num_days(), 3u);  // max day 2 -> 3 days
  const auto& r0 = loaded.requests()[0];
  EXPECT_EQ(loaded.clients().name(r0.client), "c1");
  EXPECT_EQ(loaded.servers().name(r0.server), "a.com");
  EXPECT_EQ(r0.path, "/x.php?p=1");
  EXPECT_EQ(r0.user_agent, "Agent/1.0");
  EXPECT_EQ(r0.referrer, "ref.com");
  const auto& r1 = loaded.requests()[1];
  EXPECT_EQ(r1.status, 404);
  EXPECT_EQ(r1.user_agent, "");  // "-" round-trips to empty
  EXPECT_EQ(loaded.ips_of(*loaded.servers().find("a.com")).size(), 1u);
  std::uint32_t to = 0;
  EXPECT_TRUE(loaded.redirect_target(*loaded.servers().find("a.com"), to));
}

TEST(Trace, ReadTsvRejectsMalformed) {
  const auto path = std::filesystem::temp_directory_path() / "smash_bad.tsv";
  {
    std::FILE* f = std::fopen(path.string().c_str(), "w");
    std::fputs("REQ\tonly\tthree\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(Trace::read_tsv(path.string()), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(SliceDay, ExtractsSingleDay) {
  Trace trace;
  add_request(trace, "c1", "a.com", "/x", "UA", "", 200, /*day=*/0);
  add_request(trace, "c1", "b.com", "/y", "UA", "", 200, /*day=*/1);
  add_request(trace, "c2", "b.com", "/z", "UA", "", 200, /*day=*/1);
  resolve(trace, "b.com", "4.4.4.4");
  trace.finalize();

  const Trace day1 = slice_day(trace, 1);
  EXPECT_EQ(day1.num_requests(), 2u);
  EXPECT_EQ(day1.num_clients(), 2u);
  EXPECT_EQ(day1.num_days(), 1u);
  ASSERT_TRUE(day1.servers().find("b.com").has_value());
  EXPECT_FALSE(day1.servers().find("a.com").has_value());
  EXPECT_EQ(day1.ips_of(*day1.servers().find("b.com")).size(), 1u);
}

TEST(Trace, FinalizeIsRefinalizable) {
  Trace trace;
  add_request(trace, "c1", "a.com", "/x", "UA", "", 200, /*day=*/0);
  resolve(trace, "a.com", "1.1.1.1");
  trace.finalize();
  EXPECT_EQ(trace.num_days(), 1u);

  // Mutating after finalize un-finalizes; a second finalize recomputes
  // derived state from scratch.
  add_request(trace, "c2", "a.com", "/y", "UA", "", 200, /*day=*/4);
  resolve(trace, "a.com", "2.2.2.2");
  trace.finalize();
  EXPECT_EQ(trace.num_days(), 5u);
  EXPECT_EQ(trace.ips_of(*trace.servers().find("a.com")).size(), 2u);

  // finalize() is idempotent.
  trace.finalize();
  EXPECT_EQ(trace.num_days(), 5u);
}

TEST(Trace, MergeFromCombinesTraces) {
  Trace a;
  add_request(a, "c1", "a.com", "/x");
  resolve(a, "a.com", "1.1.1.1");
  a.finalize();

  Trace b;
  add_request(b, "c1", "b.com", "/y");
  add_request(b, "c2", "a.com", "/z");
  resolve(b, "a.com", "9.9.9.9");
  b.add_redirect(b.intern_server("b.com"), b.intern_server("a.com"));
  b.finalize();

  Trace merged;
  merged.merge_from(a);
  merged.merge_from(b);
  merged.finalize();

  EXPECT_EQ(merged.num_requests(), 3u);
  EXPECT_EQ(merged.num_clients(), 2u);
  EXPECT_EQ(merged.num_servers(), 2u);
  // Resolutions union across the merged traces.
  EXPECT_EQ(merged.ips_of(*merged.servers().find("a.com")).size(), 2u);
  std::uint32_t to = 0;
  ASSERT_TRUE(merged.redirect_target(*merged.servers().find("b.com"), to));
  EXPECT_EQ(merged.servers().name(to), "a.com");
}

TEST(Trace, JournalReplayPreservesArrivalOrder) {
  // Interleave a resolution between requests: the resolved-only host gets
  // its interner id *before* later-requested hosts. Journal replay must
  // reproduce that exact id assignment; the non-journal fallback cannot
  // (it replays requests first).
  const auto build = [](Trace& trace) {
    add_request(trace, "c1", "a.com", "/x");
    resolve(trace, "early.com", "1.1.1.1");  // interned before b.com
    add_request(trace, "c2", "b.com", "/y");
  };

  Trace direct;
  build(direct);
  direct.finalize();

  Trace journaled;
  journaled.enable_journal();
  build(journaled);
  journaled.finalize();

  Trace replayed;
  replayed.merge_from(journaled);
  replayed.finalize();

  ASSERT_EQ(replayed.num_servers(), direct.num_servers());
  for (std::uint32_t s = 0; s < direct.num_servers(); ++s) {
    EXPECT_EQ(replayed.servers().name(s), direct.servers().name(s));
  }
  ASSERT_EQ(replayed.num_requests(), direct.num_requests());
  for (std::size_t i = 0; i < direct.requests().size(); ++i) {
    EXPECT_EQ(replayed.requests()[i].server, direct.requests()[i].server);
    EXPECT_EQ(replayed.requests()[i].client, direct.requests()[i].client);
  }
}

TEST(Interner, DenseIdsAndLookup) {
  util::Interner interner;
  EXPECT_EQ(interner.intern("a"), 0u);
  EXPECT_EQ(interner.intern("b"), 1u);
  EXPECT_EQ(interner.intern("a"), 0u);
  EXPECT_EQ(interner.size(), 2u);
  EXPECT_EQ(interner.name(1), "b");
  EXPECT_FALSE(interner.find("zzz").has_value());
  EXPECT_THROW(interner.name(5), std::out_of_range);
}

}  // namespace
}  // namespace smash::net
