// DetectionSnapshot: an immutable verdict index built from one mined
// window, published RCU-style (stream/engine.h) and read wait-free of the
// mining path by the
// VerdictService. Once built, a snapshot is never mutated; readers hold a
// shared_ptr so a snapshot stays alive until the last in-flight lookup
// drops it, no matter how many newer windows have been published since.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/pipeline.h"
#include "stream/ingest.h"
#include "stream/stream_config.h"

namespace smash::stream {

// Verdict for one malicious server (2LD) or server IP.
struct ServerVerdict {
  std::uint32_t campaign = 0;          // index into campaigns()
  std::uint32_t campaign_servers = 0;  // size of that campaign
  bool single_client = false;          // Appendix C population
  // Sliding-window activity of this 2LD, from the ingestor's incrementally
  // merged WindowAggregates (how loud the server was, and in how many of
  // the window's epochs).
  std::uint64_t window_requests = 0;
  std::uint32_t active_epochs = 0;
};

// One inferred campaign, resolved to names for serving.
struct SnapshotCampaign {
  std::vector<std::string> servers;  // 2LD names, in kept-index order
  std::uint32_t involved_clients = 0;
  bool single_client = false;
};

class DetectionSnapshot {
 public:
  // Builds the index from a mined window. `window_ips` must be the IP
  // interner of the window the result was mined from (the assembled
  // trace's, or the shard merge's — identical by construction);
  // `aggregates` the sliding-window per-2LD stats for the same window and
  // `ingest` the ingest counters at the close that produced it. `sequence`
  // counts epoch closes, not publications: a jump of more than one records
  // intermediate windows skipped by a multi-epoch gap or by async-mining
  // coalescing. `recovery` is carried verbatim (all-zero for engines that
  // never recovered). `build_hook`, when set, runs after the header fields
  // are staged but before campaign assembly (StreamConfig::
  // snapshot_test_hook); an exception it throws aborts the build before
  // anything is published.
  static std::shared_ptr<const DetectionSnapshot> build(
      const core::SmashResult& result, const util::Interner& window_ips,
      std::size_t window_requests, const WindowAggregates& aggregates,
      const IngestStats& ingest, EpochId first_epoch, EpochId last_epoch,
      std::uint64_t sequence, RecoveryStats recovery = {},
      const std::function<void()>& build_hook = {});

  // Verdict for any requested hostname (aggregated to its effective 2LD
  // first, mirroring preprocessing), or nullptr when not flagged.
  const ServerVerdict* find_host(std::string_view host) const;

  // Verdict for a server IP observed in the window's resolutions.
  const ServerVerdict* find_ip(std::string_view ip) const;

  const std::vector<SnapshotCampaign>& campaigns() const noexcept {
    return campaigns_;
  }
  std::size_t num_malicious_servers() const noexcept { return by_2ld_.size(); }

  EpochId first_epoch() const noexcept { return first_epoch_; }
  EpochId last_epoch() const noexcept { return last_epoch_; }
  std::uint64_t sequence() const noexcept { return sequence_; }
  std::chrono::steady_clock::time_point built_at() const noexcept {
    return built_at_;
  }

  // Window facts carried for reporting.
  std::size_t window_requests() const noexcept { return window_requests_; }
  std::size_t kept_servers() const noexcept { return kept_servers_; }

  // True when any dimension's join hit the postings cap while mining this
  // window: the window exceeded the in-RAM postings budget and similarity
  // counts may undercount (JoinStats), so verdicts may miss associations.
  bool postings_budget_exceeded() const noexcept {
    return postings_budget_exceeded_;
  }

  // Join memory pressure while mining this window (SmashResult
  // aggregates): total key-range passes across the dimension joins (more
  // passes than joins = SmashConfig::join_memory_budget_bytes forced
  // bounded-memory sharding) and the largest single-join resident
  // postings footprint in bytes. Operators can watch these instead of
  // waiting for the undercount flag above.
  std::size_t join_shard_passes() const noexcept { return join_shard_passes_; }
  std::size_t peak_resident_postings_bytes() const noexcept {
    return peak_resident_postings_bytes_;
  }

  // Louvain execution shape while mining this window, summed across the
  // dimensions (SmashResult::louvain_stats()): sweeps/moves describe how
  // hard community detection converged, chunks/stale_reevals how much of
  // it ran on the chunked-parallel path (both 0 when local moving was
  // serial). Like the join counters above, pure observability — verdicts
  // are byte-identical for every thread count and chunk size.
  const graph::LouvainStats& louvain_stats() const noexcept {
    return louvain_stats_;
  }

  // Ingest counters at the close that produced this snapshot — data loss
  // (late-dropped events) is observable next to the verdicts it may have
  // affected, never silent.
  const IngestStats& ingest_stats() const noexcept { return ingest_stats_; }
  std::uint64_t late_dropped() const noexcept {
    return ingest_stats_.late_dropped;
  }
  std::uint64_t late_folded() const noexcept {
    return ingest_stats_.late_folded;
  }

  // How this engine's state was rebuilt, when it came from
  // StreamEngine::recover(); all-zero otherwise.
  const RecoveryStats& recovery_stats() const noexcept { return recovery_stats_; }

  // Incremental-mining counters of the mine that produced this snapshot
  // (core/delta_mine.h); enabled == false when the window was mined by the
  // full path. Pure observability: excluded from digest() — the
  // incremental-vs-full differential tests compare snapshots that
  // legitimately differ only here.
  const core::DeltaStats& delta_stats() const noexcept { return delta_stats_; }

  // Deterministic, humanly diffable rendering of every verdict-bearing
  // field (campaigns, per-2LD and per-IP verdicts sorted by key, window
  // facts, ingest counters). Two snapshots over identical windows digest
  // identically even across processes — the crash-recovery matrix compares
  // pre-kill and post-recovery runs through this.
  std::string digest() const;

 private:
  DetectionSnapshot() = default;

  std::unordered_map<std::string, ServerVerdict> by_2ld_;
  std::unordered_map<std::string, ServerVerdict> by_ip_;
  std::vector<SnapshotCampaign> campaigns_;
  EpochId first_epoch_ = 0;
  EpochId last_epoch_ = 0;
  std::uint64_t sequence_ = 0;
  std::size_t window_requests_ = 0;
  std::size_t kept_servers_ = 0;
  bool postings_budget_exceeded_ = false;
  std::size_t join_shard_passes_ = 0;
  std::size_t peak_resident_postings_bytes_ = 0;
  graph::LouvainStats louvain_stats_{};
  IngestStats ingest_stats_{};
  RecoveryStats recovery_stats_{};
  core::DeltaStats delta_stats_{};
  std::chrono::steady_clock::time_point built_at_{};
};

}  // namespace smash::stream
