// Configuration for the synthetic ISP workload (the stand-in for the
// paper's residential-ADSL traces, §IV-A). Every knob is explicit so tests
// can build tiny deterministic worlds and benches can build paper-scale
// ones. Counts are per day unless noted.
#pragma once

#include <cstdint>
#include <string>

namespace smash::synth {

struct BenignConfig {
  // Head of the popularity curve; each gets > idf-threshold clients so the
  // preprocessing filter removes them (paper Appendix A).
  std::uint32_t num_popular_servers = 250;
  std::uint32_t popular_min_clients = 250;
  std::uint32_t popular_max_clients = 4000;
  double popular_zipf_exponent = 1.1;

  // Long tail of unpopular benign servers.
  std::uint32_t num_tail_servers = 22000;
  std::uint32_t tail_min_clients = 1;
  std::uint32_t tail_max_clients = 6;
  std::uint32_t tail_min_pages = 5;
  std::uint32_t tail_max_pages = 40;

  // Fraction of benign servers that also serve stop-files (index.html,
  // favicon.ico, ...) — these produce the very long postings lists the
  // file dimension's popularity cap must neutralize.
  double stop_file_fraction = 0.35;

  // Fraction of benign requests that go to a subdomain (www./cdn./m.) so
  // 2LD aggregation has work to do (paper: ~60% server reduction).
  double subdomain_fraction = 0.6;

  // Structured benign groups the paper's main-dimension study found
  // (§V-C1: 60% referrer, 10% redirection, 8% similar content, 18% unknown).
  std::uint32_t num_referrer_groups = 120;
  std::uint32_t referrer_group_min_size = 3;
  std::uint32_t referrer_group_max_size = 9;
  std::uint32_t num_redirect_chains = 25;
  std::uint32_t redirect_chain_max_len = 3;
  std::uint32_t num_similar_content_groups = 18;
  std::uint32_t num_unknown_groups = 40;
  std::uint32_t covisit_group_min_clients = 2;
  std::uint32_t covisit_group_max_clients = 5;
};

struct NoiseConfig {
  // Torrent tracker herd: few P2P clients x many trackers, all requesting
  // scrape.php (paper §V-A1's first FP category).
  std::uint32_t torrent_clients = 3;
  std::uint32_t torrent_trackers = 45;
  // TeamViewer-style pool: many distinct-2LD servers serving one path to
  // the same tool users (second FP category).
  std::uint32_t teamviewer_clients = 4;
  std::uint32_t teamviewer_servers = 30;
};

// How a campaign's servers can be confirmed by the ground-truth apparatus;
// drives the Table II/III row classification.
enum class Coverage : std::uint8_t {
  kIds2012Total,    // every server matched by 2012 signatures
  kIds2012Partial,  // some servers matched by 2012 signatures
  kIds2013Partial,  // some matched only by 2013 signatures ("zero-day")
  kBlacklistPartial,
  kSuspicious,      // unconfirmed; most servers dead / erroring
  kUnconfirmed,     // alive, unconfirmed: counted as false positive
};

struct MaliciousConfig {
  // Flagship case-study campaigns (Tables VII-X). Counts are "instances".
  std::uint32_t num_zeus = 1;        // DGA flux C&C, Table X
  std::uint32_t zeus_domains = 8;
  std::uint32_t num_bagle = 1;       // two-tier download + C&C, Table VII
  std::uint32_t bagle_download_servers = 40;
  std::uint32_t bagle_cnc_servers = 54;
  std::uint32_t num_sality = 1;      // Table VIII
  std::uint32_t num_iframe = 1;      // WordPress injection, Table IX
  std::uint32_t iframe_targets = 600;
  std::uint32_t num_scans = 2;       // ZmEu-style scanning (Fig. 1b)
  std::uint32_t scan_min_targets = 120;
  std::uint32_t scan_max_targets = 300;
  std::uint32_t num_phishing = 1;
  std::uint32_t num_dropzone = 1;
  std::uint32_t num_web_exploit = 1;  // obfuscated long filenames, Fig. 4

  // Generic C&C/communication campaigns filling out the population; their
  // secondary-dimension combinations are drawn from the Fig. 8 mix.
  std::uint32_t num_generic_multi_client = 14;   // >= 2 infected clients
  std::uint32_t num_generic_single_client = 70;  // exactly 1 client
  std::uint32_t generic_min_servers = 3;
  std::uint32_t generic_max_servers = 24;

  // Campaigns sharing *no* secondary dimension (only parameter patterns) —
  // deliberate false negatives reproducing the Cycbot/FakeAV analysis of
  // §V-A2's false-negative discussion.
  std::uint32_t num_no_secondary = 2;
};

struct WorldConfig {
  std::string name = "synthetic";
  std::uint64_t seed = 1;
  std::uint32_t num_days = 1;
  std::uint32_t num_clients = 14649;  // paper Table I, Data2011day

  BenignConfig benign;
  NoiseConfig noise;
  MaliciousConfig malicious;

  // Week-trace dynamics (ignored for 1-day traces): fraction of malicious
  // campaigns that keep their servers all week (persistent) vs rotating
  // them daily (agile); remainder start mid-week (new). Fig. 7.
  double persistent_fraction = 0.25;
  double agile_fraction = 0.55;

  // Returns a copy with all population counts multiplied by `factor`
  // (>= 1/1000). Used by unit tests to build tiny worlds quickly.
  WorldConfig scaled(double factor) const;
};

// Dataset presets mirroring paper Table I. Sizes are ~40x smaller in
// request volume than the paper's traces (documented in DESIGN.md); client
// counts are kept at paper scale so the IDF filter semantics carry over.
WorldConfig data2011day();
WorldConfig data2012day();
WorldConfig data2012week();
// Small fast world for unit tests (hundreds of servers, < 50ms to build).
WorldConfig tiny_world(std::uint64_t seed = 7);

}  // namespace smash::synth
