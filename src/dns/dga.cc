#include "dns/dga.h"

#include <stdexcept>

namespace smash::dns {

namespace {
constexpr std::string_view kAlnum = "abcdefghijklmnopqrstuvwxyz0123456789";
constexpr std::string_view kConsonants = "bcdfghklmnprstvz";
constexpr std::string_view kVowels = "aeiou";

char pick(util::Rng& rng, std::string_view alphabet) {
  return alphabet[rng.uniform(alphabet.size())];
}
}  // namespace

std::vector<std::string> zeus_style_family(util::Rng& rng, std::size_t count,
                                           std::string_view zone) {
  if (count == 0) return {};
  // Scaffold: <stem><NN><tail-char>.<zone>, NN varying per sibling.
  std::string stem;
  const std::size_t stem_len = 4 + rng.uniform(3);
  for (std::size_t i = 0; i < stem_len; ++i) stem.push_back(pick(rng, kAlnum));
  const char tail = pick(rng, kAlnum);

  std::vector<std::string> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t nn = 11 * (i + 1);  // 11, 22, 33, ... like 4k0t1NNm
    out.push_back(stem + std::to_string(nn) + tail + "." + std::string(zone));
  }
  return out;
}

std::string random_word_domain(util::Rng& rng, std::string_view tld) {
  std::string label;
  const std::size_t syllables = 2 + rng.uniform(3);
  for (std::size_t i = 0; i < syllables; ++i) {
    label.push_back(pick(rng, kConsonants));
    label.push_back(pick(rng, kVowels));
    if (rng.bernoulli(0.4)) label.push_back(pick(rng, kConsonants));
  }
  return label + "." + std::string(tld);
}

std::string random_alnum_domain(util::Rng& rng, std::size_t label_len,
                                std::string_view tld) {
  if (label_len == 0) throw std::invalid_argument("random_alnum_domain: empty label");
  std::string label;
  label.reserve(label_len);
  // First char alphabetic so the name is a valid hostname label.
  label.push_back(pick(rng, kConsonants));
  for (std::size_t i = 1; i < label_len; ++i) label.push_back(pick(rng, kAlnum));
  return label + "." + std::string(tld);
}

std::string random_ipv4(util::Rng& rng) {
  const auto octet = [&](std::uint64_t lo, std::uint64_t hi) {
    return std::to_string(lo + rng.uniform(hi - lo + 1));
  };
  return octet(1, 223) + "." + octet(0, 255) + "." + octet(0, 255) + "." + octet(1, 254);
}

std::vector<std::string> obfuscated_filename_family(util::Rng& rng,
                                                    std::size_t count,
                                                    std::size_t min_len) {
  // All family members are permutations-with-repetition over the same small
  // alphabet with the same length, so their character-frequency vectors are
  // nearly identical (cosine > 0.8) while the strings differ.
  std::string alphabet;
  for (int i = 0; i < 6; ++i) alphabet.push_back(pick(rng, kAlnum));
  const std::size_t len = min_len + rng.uniform(16);

  std::vector<std::string> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Same multiset of characters, shuffled: cosine similarity exactly 1.
    std::string name;
    name.reserve(len);
    for (std::size_t j = 0; j < len; ++j) name.push_back(alphabet[j % alphabet.size()]);
    std::vector<char> chars(name.begin(), name.end());
    rng.shuffle(chars);
    out.emplace_back(chars.begin(), chars.end());
    out.back() += ".php";
  }
  return out;
}

FluxIpPool::FluxIpPool(util::Rng rng, std::size_t pool_size) : rng_(rng) {
  if (pool_size == 0) throw std::invalid_argument("FluxIpPool: empty pool");
  pool_.reserve(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i) pool_.push_back(random_ipv4(rng_));
}

std::vector<std::string> FluxIpPool::draw(std::size_t per_domain) {
  per_domain = std::min(per_domain, pool_.size());
  const auto idx = rng_.sample_without_replacement(
      static_cast<std::uint32_t>(pool_.size()),
      static_cast<std::uint32_t>(per_domain));
  std::vector<std::string> out;
  out.reserve(per_domain);
  for (auto i : idx) out.push_back(pool_[i]);
  return out;
}

}  // namespace smash::dns
