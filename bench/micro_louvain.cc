// Microbenchmark: Louvain vs refined Louvain on planted-clique graphs of
// the shape the SMASH dimensions produce (many small cliques with sparse
// bridges). Refinement costs one extra pass per community but recovers the
// planted structure the scoring step depends on.
#include <benchmark/benchmark.h>

#include "graph/louvain.h"
#include "util/rng.h"

namespace {

using namespace smash::graph;

Graph planted_cliques(std::uint32_t cliques, std::uint32_t size,
                      double bridge_probability, std::uint64_t seed) {
  smash::util::Rng rng(seed);
  GraphBuilder builder(cliques * size);
  for (std::uint32_t c = 0; c < cliques; ++c) {
    const std::uint32_t base = c * size;
    for (std::uint32_t u = 0; u < size; ++u) {
      for (std::uint32_t v = u + 1; v < size; ++v) {
        builder.add_edge(base + u, base + v, 1.0);
      }
    }
  }
  for (std::uint32_t c = 0; c + 1 < cliques; ++c) {
    if (rng.bernoulli(bridge_probability)) {
      builder.add_edge(c * size, (c + 1) * size, 0.3);
    }
  }
  return std::move(builder).build();
}

void BM_Louvain(benchmark::State& state) {
  const auto cliques = static_cast<std::uint32_t>(state.range(0));
  const Graph g = planted_cliques(cliques, 8, 0.5, 11);
  double modularity = 0;
  for (auto _ : state) {
    const auto result = louvain(g);
    modularity = result.modularity;
    benchmark::DoNotOptimize(result);
  }
  state.counters["Q"] = modularity;
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_Louvain)->Arg(100)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_LouvainRefined(benchmark::State& state) {
  const auto cliques = static_cast<std::uint32_t>(state.range(0));
  const Graph g = planted_cliques(cliques, 8, 0.5, 11);
  std::uint32_t communities = 0;
  for (auto _ : state) {
    const auto result = louvain_refined(g);
    communities = result.num_communities;
    benchmark::DoNotOptimize(result);
  }
  state.counters["communities"] = communities;
  state.counters["planted"] = cliques;
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_LouvainRefined)->Arg(100)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
