// Public-blacklist substrate (paper §IV-B "Online Blacklist").
//
// The paper consults several primary blacklists (Malware Domain List,
// Phishtank, ZeuS Tracker, ...) where a single listing confirms a server,
// plus one aggregator (WhatIsMyIPAddress, wrapping 78 feeds) where at
// least two feeds must agree. We model both confirmation rules.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace smash::ids {

class Blacklist {
 public:
  // A primary source: one listing is a confirmation.
  void add_primary_source(std::string_view source_name);
  // An aggregated source: listings count toward the >= 2 rule.
  void add_aggregated_source(std::string_view source_name);

  // List `domain` (an effective 2LD) on `source_name`.
  void list(std::string_view source_name, std::string_view domain);

  // Confirmed if listed by any primary source, or by >= 2 aggregated feeds.
  bool confirmed(std::string_view domain) const;

  // Sources that list the domain (for reports).
  std::vector<std::string> sources_listing(std::string_view domain) const;

  std::size_t num_sources() const noexcept {
    return primary_.size() + aggregated_.size();
  }

 private:
  struct SourceData {
    std::unordered_set<std::string> domains;
  };
  std::unordered_map<std::string, SourceData> primary_;
  std::unordered_map<std::string, SourceData> aggregated_;
};

}  // namespace smash::ids
