#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace smash::obs {

namespace {

// Small dense per-thread id for the Chrome "tid" field (std::thread::id
// hashes are neither small nor stable across runs).
std::uint32_t current_tid() noexcept {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

Tracer& Tracer::global() {
  static Tracer instance;
  return instance;
}

void Tracer::enable(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  ring_ = std::vector<Slot>(capacity);
  head_.store(1, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::clear() {
  for (auto& slot : ring_) slot.seq.store(0, std::memory_order_relaxed);
  head_.store(1, std::memory_order_relaxed);
}

void Tracer::record(const char* name, const char* detail,
                    std::uint64_t start_ns, std::uint64_t end_ns) noexcept {
  if (!enabled() || ring_.empty()) return;
  const std::uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring_[seq % ring_.size()];
  // Mark the slot in-progress so a concurrent reader skips it, fill the
  // payload, then publish the sequence number.
  slot.seq.store(0, std::memory_order_release);
  slot.name.store(name, std::memory_order_relaxed);
  slot.detail.store(detail, std::memory_order_relaxed);
  slot.start_ns.store(start_ns, std::memory_order_relaxed);
  slot.dur_ns.store(end_ns >= start_ns ? end_ns - start_ns : 0,
                    std::memory_order_relaxed);
  slot.tid.store(current_tid(), std::memory_order_relaxed);
  slot.seq.store(seq, std::memory_order_release);
}

std::uint64_t Tracer::dropped() const noexcept {
  const std::uint64_t total = recorded();
  return total > ring_.size() ? total - ring_.size() : 0;
}

std::vector<SpanRecord> Tracer::events() const {
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  for (const auto& slot : ring_) {
    const std::uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
    if (seq_before == 0) continue;  // empty or mid-write
    SpanRecord record;
    record.name = slot.name.load(std::memory_order_relaxed);
    record.detail = slot.detail.load(std::memory_order_relaxed);
    record.start_ns = slot.start_ns.load(std::memory_order_relaxed);
    record.dur_ns = slot.dur_ns.load(std::memory_order_relaxed);
    record.tid = slot.tid.load(std::memory_order_relaxed);
    record.seq = seq_before;
    if (slot.seq.load(std::memory_order_acquire) != seq_before) continue;
    out.push_back(record);
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.seq < b.seq;
            });
  return out;
}

std::string Tracer::dump_chrome_json() const {
  const auto spans = events();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[160];
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const auto& s = spans[i];
    if (i > 0) out.push_back(',');
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"smash\",\"ph\":\"X\","
                  "\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f",
                  s.name, s.tid,
                  static_cast<double>(s.start_ns) / 1000.0,
                  static_cast<double>(s.dur_ns) / 1000.0);
    out += buf;
    if (s.detail != nullptr) {
      out += ",\"args\":{\"detail\":\"";
      out += s.detail;
      out += "\"}";
    }
    out.push_back('}');
  }
  out += "]}";
  return out;
}

}  // namespace smash::obs
