// Micro perf baseline: the two hot kernels (co-occurrence join, Louvain)
// timed against reference implementations, written to BENCH_micro.json so
// later PRs have a trajectory to compare against.
//
// Usage: perf_micro [output.json] [--full]   (default: BENCH_micro.json)
//
// The join comparison at 10k items / 32 keys-per-item is the acceptance
// workload for the dense-counter rewrite: "dense" (flat CSR postings +
// probe-side scoring array) must beat "hashmap" (the seed's packed-pair
// unordered_map, kept as cooccurrence_join_reference) by >= 3x.
//
// The Louvain section times serial local moving against the deterministic
// chunked-parallel path (1 and 4 threads) and FAILS (exit 2) if any
// variant's partition diverges from serial — the same guard the join
// section applies. --full adds the million-node graph (125000 cliques of
// 8), too slow for every CI run but the scale the chunked path exists for.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_common.h"
#include "graph/louvain.h"
#include "graph/similarity_join.h"

namespace {

using smash::graph::cooccurrence_join;
using smash::graph::cooccurrence_join_parallel;
using smash::graph::cooccurrence_join_reference;
using smash::graph::LouvainOptions;
using smash::graph::LouvainResult;

// Set when any join variant disagrees on pair counts; main() turns it into
// a nonzero exit so CI fails on kernel divergence instead of shipping it.
bool g_join_mismatch = false;
// Set when any chunked-parallel Louvain partition diverges from serial.
bool g_louvain_mismatch = false;

void bench_join(smash::bench::JsonReporter& report, std::uint32_t items,
                std::uint32_t keys_per_item, int repeats) {
  // Key space scales with items (sparse, ISP-like overlap structure) —
  // same generator and seed as bench/micro_similarity.cc.
  const auto data =
      smash::bench::random_key_sets(items, keys_per_item, items * 2, 7);
  const std::string suffix =
      std::to_string(items) + "x" + std::to_string(keys_per_item);

  // Each variant keeps its own pair count so a divergence between
  // implementations shows up in the JSON instead of being overwritten.
  smash::graph::JoinStats stats;
  std::size_t dense_pairs = 0;
  const double dense_ms = smash::bench::time_best_ms(repeats, [&] {
    dense_pairs = cooccurrence_join(data, 1, {}, &stats).size();
  });
  std::size_t hashmap_pairs = 0;
  const double hashmap_ms = smash::bench::time_best_ms(repeats, [&] {
    hashmap_pairs = cooccurrence_join_reference(data).size();
  });
  std::size_t parallel_pairs = 0;
  const double parallel_ms = smash::bench::time_best_ms(repeats, [&] {
    parallel_pairs = cooccurrence_join_parallel(data, 1, {}, 4).size();
  });

  report.add("join/hashmap/" + suffix, hashmap_ms,
             {{"pairs", static_cast<double>(hashmap_pairs)}});
  report.add("join/dense/" + suffix, dense_ms,
             {{"pairs", static_cast<double>(dense_pairs)},
              {"speedup_vs_hashmap", hashmap_ms / dense_ms},
              {"candidate_pairs", static_cast<double>(stats.candidate_pairs)},
              {"peak_postings_length",
               static_cast<double>(stats.peak_postings_length)}});
  report.add("join/dense_parallel4/" + suffix, parallel_ms,
             {{"pairs", static_cast<double>(parallel_pairs)},
              {"speedup_vs_hashmap", hashmap_ms / parallel_ms}});
  std::printf("join %-9s hashmap %9.3f ms   dense %9.3f ms (%.2fx)   parallel4 %9.3f ms\n",
              suffix.c_str(), hashmap_ms, dense_ms, hashmap_ms / dense_ms,
              parallel_ms);
  if (dense_pairs != hashmap_pairs || parallel_pairs != hashmap_pairs) {
    std::fprintf(stderr,
                 "join %s: pair-count mismatch (hashmap %zu, dense %zu, "
                 "parallel %zu)\n",
                 suffix.c_str(), hashmap_pairs, dense_pairs, parallel_pairs);
    g_join_mismatch = true;
  }
}

void bench_louvain(smash::bench::JsonReporter& report, std::uint32_t cliques,
                   int repeats) {
  // Same generator and seed as bench/micro_louvain.cc.
  const auto g = smash::bench::planted_clique_graph(cliques, 8, 0.5, 11);
  const std::string suffix = std::to_string(cliques) + "x8";

  LouvainResult serial;
  const double plain_ms = smash::bench::time_best_ms(repeats, [&] {
    serial = smash::graph::louvain(g);
  });
  std::uint32_t communities = 0;
  const double refined_ms = smash::bench::time_best_ms(repeats, [&] {
    communities = smash::graph::louvain_refined(g).num_communities;
  });

  // Chunked-parallel local moving, same auto chunk size at 1 and 4
  // threads: chunked_t1 isolates the evaluate/apply overhead (no pool),
  // chunked_t4 is the deployment shape. Both must be byte-identical to
  // serial — measured results are worthless if the kernel diverged.
  const auto bench_chunked = [&](unsigned threads) {
    LouvainOptions options;
    options.num_threads = threads;
    options.chunk_size = threads == 1 ? 4096 : 0;  // force the path at t=1
    LouvainResult chunked;
    const double ms = smash::bench::time_best_ms(repeats, [&] {
      chunked = smash::graph::louvain(g, options);
    });
    if (chunked.community_of != serial.community_of) {
      std::fprintf(stderr, "louvain %s: chunked t=%u partition mismatch\n",
                   suffix.c_str(), threads);
      g_louvain_mismatch = true;
    }
    report.add("louvain/chunked_t" + std::to_string(threads) + "/" + suffix,
               ms,
               {{"speedup_vs_serial", plain_ms / ms},
                {"chunks", static_cast<double>(chunked.stats.chunks)},
                {"evaluated_nodes",
                 static_cast<double>(chunked.stats.evaluated_nodes)},
                {"stale_reevals",
                 static_cast<double>(chunked.stats.stale_reevals)},
                {"sweeps", static_cast<double>(chunked.stats.sweeps)}});
    return ms;
  };
  const double chunked1_ms = bench_chunked(1);
  const double chunked4_ms = bench_chunked(4);

  report.add("louvain/plain/" + suffix, plain_ms, {{"Q", serial.modularity}});
  report.add("louvain/refined/" + suffix, refined_ms,
             {{"communities", static_cast<double>(communities)},
              {"planted", static_cast<double>(cliques)}});
  std::printf(
      "louvain %-9s plain %9.3f ms   refined %9.3f ms   chunked_t1 %9.3f ms   "
      "chunked_t4 %9.3f ms (%.2fx)\n",
      suffix.c_str(), plain_ms, refined_ms, chunked1_ms, chunked4_ms,
      plain_ms / chunked4_ms);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_micro.json";
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else {
      out_path = argv[i];
    }
  }
  smash::bench::JsonReporter report("micro");

  bench_join(report, 1000, 16, 5);
  bench_join(report, 10000, 32, 3);  // the acceptance workload
  bench_louvain(report, 200, 5);
  bench_louvain(report, 2000, 3);
  bench_louvain(report, 20000, 2);  // 160k nodes
  if (full) bench_louvain(report, 125000, 1);  // the million-node graph

  if (!report.write(out_path)) return 1;
  std::printf("wrote %s\n", out_path.c_str());
  if (g_join_mismatch) return 2;
  return g_louvain_mismatch ? 2 : 0;
}
