// Reproduces paper Fig. 10 (Appendix B): the filename-length distribution
// over files served by IDS-confirmed malicious servers, which justifies
// the len = 25 short/long cut-off of the URI-file similarity.
#include <cstdio>

#include "bench_common.h"
#include "core/preprocess.h"
#include "util/stats.h"

int main() {
  using namespace smash;
  const auto& ds = bench::dataset("2011day");
  const auto agg = core::AggregatedTrace::build(ds.trace);
  const auto labels = ds.signatures.label(ds.trace, ids::Vintage::k2013);

  std::vector<double> lengths;
  double longest = 0;
  for (std::uint32_t s = 0; s < agg.servers().size(); ++s) {
    if (!labels.labeled(agg.server_name(s))) continue;
    for (auto file : agg.profile(s).files) {
      const auto len = static_cast<double>(agg.files().name(file).size());
      lengths.push_back(len);
      longest = std::max(longest, len);
    }
  }

  if (lengths.empty()) {
    std::puts("Fig. 10: no IDS-labeled servers in this world (unexpected)");
    return 1;
  }
  const auto cdf = util::empirical_cdf(lengths);

  util::Table table("Fig. 10: filename length CDF on IDS-labeled servers");
  table.set_header({"length <= x", "fraction"});
  for (const double x : {5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 40.0, 60.0}) {
    table.add_row({util::format_fixed(x, 0),
                   util::format_fixed(util::cdf_at(cdf, x), 3)});
  }
  std::fputs(table.render().c_str(), stdout);

  util::Histogram histogram(0, 64, 16);
  for (double v : lengths) histogram.add(v);
  std::printf("\n%s", histogram.ascii(40).c_str());
  std::printf("files on labeled servers: %zu; longest filename: %.0f chars; "
              "P[len <= 25] = %.2f\n",
              lengths.size(), longest, util::cdf_at(cdf, 25.0));
  std::puts("Shape targets (paper): ~85% of filenames are short (< 25 chars);");
  std::puts("  a long tail of obfuscated names motivates the cosine branch.");
  return 0;
}
