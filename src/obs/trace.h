// Flight-recorder tracing: SMASH_SPAN("stream.mine") records a completed
// span (name, thread, start, duration) into a fixed-size lock-free ring,
// dumpable as Chrome trace-event JSON that loads directly in
// chrome://tracing or Perfetto — one epoch's whole dataflow (ingest, epoch
// seal, WAL fsync, preshard merge, per-dimension joins, Louvain sweeps,
// snapshot build, RCU publish) on a single timeline.
//
// Cost model: tracing is OFF by default. A span on a disabled tracer is
// one relaxed atomic load; an enabled span is two steady_clock reads plus
// a handful of relaxed atomic stores into a pre-allocated slot — no locks,
// no allocation, writers never block. The ring holds the newest `capacity`
// spans (older ones are overwritten; dropped() counts them), so tracing is
// safe to leave on in production as a crash-scene flight recorder.
//
// Concurrency: record() claims a slot with a relaxed fetch_add and writes
// every field through atomics, publishing the slot's sequence number with
// release order last; readers (events()/dump_chrome_json(), any thread)
// validate the sequence before and after reading a slot and skip slots
// being overwritten mid-read. enable()/disable()/clear() are NOT safe
// concurrent with in-flight spans — flip tracing only while the traced
// subsystems are quiescent.
//
// Span names must be string literals (or otherwise outlive the tracer):
// slots store the pointer, not a copy. The optional `detail` literal lands
// in the Chrome event's args ({"args":{"detail":"client"}}) — used for
// per-dimension labels.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace smash::obs {

// One completed span, as read back out of the ring.
struct SpanRecord {
  const char* name = nullptr;
  const char* detail = nullptr;  // optional; nullptr when absent
  std::uint64_t start_ns = 0;    // since Tracer::enable()
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;  // small per-thread id, stable within the process
  std::uint64_t seq = 0;  // global record order (1-based)
};

class Tracer {
 public:
  static Tracer& global();

  // (Re)allocates the ring and starts recording; the time origin resets to
  // now. Call only while no spans are in flight.
  void enable(std::size_t capacity = 1 << 16);
  // Stops recording (in-flight spans land in the still-allocated ring).
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  // Drops all recorded spans, keeps the ring and enabled state.
  void clear();

  // Nanoseconds since enable().
  std::uint64_t now_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  void record(const char* name, const char* detail, std::uint64_t start_ns,
              std::uint64_t end_ns) noexcept;

  // Spans recorded ever / overwritten by ring wrap.
  std::uint64_t recorded() const noexcept {
    return head_.load(std::memory_order_relaxed) - 1;
  }
  std::uint64_t dropped() const noexcept;

  // Valid spans currently in the ring, sorted by start time.
  std::vector<SpanRecord> events() const;

  // Chrome trace-event JSON ("X" complete events, ts/dur in microseconds),
  // sorted by timestamp. Load via chrome://tracing or https://ui.perfetto.dev.
  std::string dump_chrome_json() const;

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  // 0 = empty / being written
    std::atomic<const char*> name{nullptr};
    std::atomic<const char*> detail{nullptr};
    std::atomic<std::uint64_t> start_ns{0};
    std::atomic<std::uint64_t> dur_ns{0};
    std::atomic<std::uint32_t> tid{0};
  };

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> head_{1};  // next sequence number to claim
  std::vector<Slot> ring_;
  std::chrono::steady_clock::time_point epoch_{};
};

// RAII span: captures the start time at construction (if the global tracer
// is enabled) and records on destruction. A nullptr name is an inert span
// (used for sampling hot paths).
class Span {
 public:
  explicit Span(const char* name, const char* detail = nullptr) noexcept {
    if (name != nullptr && Tracer::global().enabled()) {
      name_ = name;
      detail_ = detail;
      start_ns_ = Tracer::global().now_ns();
    }
  }
  ~Span() { finish(); }

  // Records the span now instead of at scope exit (idempotent).
  void finish() noexcept {
    if (name_ != nullptr) {
      auto& tracer = Tracer::global();
      tracer.record(name_, detail_, start_ns_, tracer.now_ns());
      name_ = nullptr;
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  const char* detail_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

#define SMASH_SPAN_CONCAT_INNER(a, b) a##b
#define SMASH_SPAN_CONCAT(a, b) SMASH_SPAN_CONCAT_INNER(a, b)
// SMASH_SPAN("name") / SMASH_SPAN("name", "detail"): scoped span on the
// global tracer. Arguments must be string literals.
#define SMASH_SPAN(...) \
  ::smash::obs::Span SMASH_SPAN_CONCAT(smash_span_, __LINE__)(__VA_ARGS__)

}  // namespace smash::obs
