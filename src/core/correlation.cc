#include "core/correlation.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <unordered_map>

#include "util/stats.h"

namespace smash::core {

namespace {

// |A ∩ B| for sorted member vectors.
std::uint32_t sorted_intersection_size(const std::vector<std::uint32_t>& a,
                                       const std::vector<std::uint32_t>& b) {
  std::uint32_t count = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) ++ia;
    else if (*ib < *ia) ++ib;
    else { ++count; ++ia; ++ib; }
  }
  return count;
}

}  // namespace

CorrelationResult correlate(const PreprocessResult& pre,
                            const std::vector<DimensionAshes>& dims,
                            const SmashConfig& config) {
  if (dims.size() < kNumDimensions ||
      dims[0].dimension != Dimension::kClient) {
    throw std::invalid_argument(
        "correlate: expected the main dimension plus all secondaries");
  }
  const auto& main = dims[static_cast<int>(Dimension::kClient)];
  const std::size_t n = pre.kept.size();

  CorrelationResult out;
  out.score.assign(n, 0.0);
  out.dims_mask.assign(n, 0);
  out.herd_clients.assign(n, 0);

  // Shared-client count per main herd (union of member client sets would
  // overcount drive-by visitors; the herd's *common* involvement is what
  // footnote 9's single-client rule is about). We count clients that appear
  // in more than half of the herd's members.
  std::vector<std::uint32_t> herd_client_count(main.ashes.size(), 0);
  for (std::size_t h = 0; h < main.ashes.size(); ++h) {
    std::unordered_map<std::uint32_t, std::uint32_t> appearances;
    for (auto member : main.ashes[h].members) {
      for (auto client : pre.agg.profile(pre.kept[member]).clients) {
        ++appearances[client];
      }
    }
    const auto majority = main.ashes[h].members.size() / 2;
    std::uint32_t involved = 0;
    for (const auto& [client, count] : appearances) {
      (void)client;
      if (count > majority) ++involved;
    }
    herd_client_count[h] = std::max<std::uint32_t>(involved, 1);
  }

  // Cache of phi(|main_ash ∩ secondary_ash|) terms keyed by the ash pair.
  std::unordered_map<std::uint64_t, double> intersection_cache;

  for (std::uint32_t i = 0; i < n; ++i) {
    const auto main_ash = main.ash_of[i];
    if (main_ash < 0) continue;  // dropped by main-dimension processing
    out.herd_clients[i] = herd_client_count[main_ash];

    for (int d = 1; d < static_cast<int>(dims.size()); ++d) {
      const auto& dim = dims[d];
      const auto sec_ash = dim.ash_of[i];
      if (sec_ash < 0) continue;

      const std::uint64_t key =
          (static_cast<std::uint64_t>(d) << 60) |
          (static_cast<std::uint64_t>(main_ash) << 30) |
          static_cast<std::uint64_t>(sec_ash);
      auto it = intersection_cache.find(key);
      if (it == intersection_cache.end()) {
        const auto inter = sorted_intersection_size(
            main.ashes[main_ash].members, dim.ashes[sec_ash].members);
        it = intersection_cache
                 .emplace(key, util::phi_erf(static_cast<double>(inter),
                                             config.mu, config.sigma))
                 .first;
      }
      const double phi = it->second;
      // eq. (9): w_d(C^d) * w_m(C^m) * phi(|C^d ∩ C^m|).
      const double term =
          dim.ashes[sec_ash].density * main.ashes[main_ash].density * phi;
      if (term > 0.0) {
        out.score[i] += term;
        out.dims_mask[i] |= static_cast<std::uint8_t>(1u << (d - 1));
      }
    }
  }

  // Removal: per-server threshold depends on the herd's client count
  // (paper footnote 9), then groups with fewer than two survivors die.
  std::map<std::int32_t, std::vector<std::uint32_t>> survivors_by_herd;
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto main_ash = main.ash_of[i];
    if (main_ash < 0) continue;
    const double thresh = out.herd_clients[i] <= 1
                              ? config.single_client_score_threshold
                              : config.score_threshold;
    if (out.score[i] >= thresh) survivors_by_herd[main_ash].push_back(i);
  }
  for (auto& [herd, members] : survivors_by_herd) {
    (void)herd;
    if (members.size() >= 2) out.groups.push_back(std::move(members));
  }
  return out;
}

}  // namespace smash::core
