// Streaming SMASH end to end: generate a timestamped day of edge traffic
// with campaigns that appear mid-stream, ingest it epoch by epoch, and
// watch snapshots publish and verdicts change as the sliding window moves.
//
//   stream -> StreamEngine (epoch ring, re-mine, snapshot swap)
//          -> VerdictService (lookups that never wait on mining)
//
// The engine's metrics registry (docs/OBSERVABILITY.md) is live the whole
// time: every publication line is followed by a one-line registry readout,
// and the run ends with the full Prometheus text exposition — exactly what
// a /metrics endpoint would serve.
#include <cstdio>

#include "obs/metrics.h"
#include "stream/engine.h"
#include "stream/verdict.h"
#include "synth/stream_gen.h"

int main() {
  smash::synth::StreamScenarioConfig scenario_config;
  scenario_config.seed = 7;
  scenario_config.duration_s = 12 * 1800;  // six hours, 1800 s epochs
  scenario_config.benign_servers = 250;
  scenario_config.benign_clients = 180;
  scenario_config.benign_visits = 6000;
  scenario_config.popular_clients = 220;
  scenario_config.campaigns = 2;
  scenario_config.poll_interval_s = 300;
  scenario_config.active_fraction = 0.3;
  const auto scenario = smash::synth::generate_stream(scenario_config);

  smash::stream::StreamConfig config;
  config.epoch_seconds = 1800;
  config.window_epochs = 6;
  config.smash.idf_threshold = 200;

  smash::stream::StreamEngine engine(config, scenario.whois);
  // Sharing the engine's registry folds the service's verdict.* counters
  // into the same export as the stream.* / pipeline.* / wal.* metrics.
  const smash::stream::VerdictService service(engine.slot(), engine.metrics());

  std::printf("streaming %zu events over %llu s (epoch %u s, window %u epochs)\n\n",
              scenario.events.size(),
              static_cast<unsigned long long>(scenario.duration_s),
              config.epoch_seconds, config.window_epochs);
  std::printf("%-7s %-9s %-9s %-10s %-10s %s\n", "epoch", "window", "kept",
              "campaigns", "flagged", "close->publish");

  std::uint64_t seen = 0;
  const auto report = [&] {
    if (engine.snapshots_published() == seen) return;
    seen = engine.snapshots_published();
    const auto snapshot = engine.snapshot();
    const auto record = engine.close_records().back();
    std::printf("%-7llu %-9zu %-9zu %-10zu %-10zu %6.1f ms%s\n",
                static_cast<unsigned long long>(snapshot->last_epoch()),
                snapshot->window_requests(), snapshot->kept_servers(),
                snapshot->campaigns().size(), snapshot->num_malicious_servers(),
                record.total_ms,
                snapshot->postings_budget_exceeded() ? "  [postings cap hit]"
                                                     : "");
    const auto metrics = engine.metrics()->snapshot();
    const auto* events = metrics.counter("stream.events_total");
    const auto* close = metrics.histogram("stream.close_to_publish_ms");
    const auto* mine = metrics.histogram("stream.mine_ms");
    std::printf("        [obs] %llu events in, close->publish %0.1f ms mean, "
                "mine %0.1f ms mean over %llu publications\n",
                events != nullptr
                    ? static_cast<unsigned long long>(events->value)
                    : 0ull,
                close != nullptr && close->count > 0
                    ? close->sum / static_cast<double>(close->count)
                    : 0.0,
                mine != nullptr && mine->count > 0
                    ? mine->sum / static_cast<double>(mine->count)
                    : 0.0,
                close != nullptr
                    ? static_cast<unsigned long long>(close->count)
                    : 0ull);
  };

  for (const auto& event : scenario.events) {
    smash::synth::ingest_event(engine, event);
    report();
  }
  engine.finish();
  report();

  std::printf("\nverdict lookups against the final snapshot:\n");
  for (const auto& truth : scenario.campaigns) {
    const auto answer = service.lookup(truth.servers[0]);
    std::printf("  %-14s -> %s\n", truth.servers[0].c_str(),
                answer.malicious ? "MALICIOUS" : "clean");
  }
  std::printf("  %-14s -> %s\n", "site1.org",
              service.lookup("site1.org").malicious ? "MALICIOUS" : "clean");

  const auto stats = service.stats();
  std::printf("\nservice: %llu queries, %llu hits, snapshot seq %llu (age %.2f s)\n",
              static_cast<unsigned long long>(stats.queries),
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.snapshot_sequence),
              stats.snapshot_age_s);

  std::printf("\n--- registry, Prometheus text exposition ---\n%s",
              engine.metrics()->render_prometheus().c_str());
  return 0;
}
