// Ground-truth registry populated by the synthetic workload generator.
//
// Each injected campaign records its kind, its servers (effective 2LDs)
// and its clients. A liveness oracle stands in for the paper's active
// probing (§V-A1: campaigns whose servers mostly return errors or no
// longer exist are classified "suspicious" rather than false positive).
// The evaluation harness never reads ground truth directly to make
// detection decisions — only to score them, exactly as the paper scores
// against IDS/blacklists.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace smash::ids {

// Paper Table IV taxonomy plus the two "noisy campaign" FP categories the
// paper calls out (Torrent, TeamViewer) and plain benign background.
enum class CampaignKind : std::uint8_t {
  kCnc = 0,             // command & control  (communication activity)
  kWebExploit,          // exploit kit / drive-by
  kPhishing,
  kDropZone,
  kOtherMalicious,      // downloading tiers, generic malicious servers
  kWebScanner,          // attacking activity: scanned benign servers
  kIframeInjection,     // attacking activity: injected benign servers
  kNoiseTorrent,        // benign-but-correlated: torrent trackers
  kNoiseTeamViewer,     // benign-but-correlated: TeamViewer-style pools
  kBenign,              // ordinary background
};

std::string_view campaign_kind_name(CampaignKind k) noexcept;
bool kind_is_malicious(CampaignKind k) noexcept;
bool kind_is_attacking(CampaignKind k) noexcept;  // scanner / iframe

struct CampaignTruth {
  std::string name;  // e.g. "zeus-flux-0"
  CampaignKind kind = CampaignKind::kBenign;
  std::vector<std::string> servers;  // effective 2LDs involved
  std::vector<std::string> clients;
  // Days (0-based) on which the campaign was active; {0} for 1-day traces.
  std::vector<std::uint32_t> active_days{0};
};

class GroundTruth {
 public:
  // Returns the campaign index.
  std::uint32_t add_campaign(CampaignTruth campaign);

  const std::vector<CampaignTruth>& campaigns() const noexcept { return campaigns_; }

  // Campaign index that owns `server`, if any malicious/noise campaign does.
  std::optional<std::uint32_t> campaign_of(std::string_view server) const;

  bool server_is_malicious(std::string_view server) const;

  // Noise servers (torrent/TeamViewer) — benign, but correlated enough to
  // fool SMASH; the paper excludes them in its "FP (Updated)" rows.
  bool server_is_noise(std::string_view server) const;

  // --- liveness oracle ------------------------------------------------------
  void mark_dead(std::string_view server);
  bool is_dead(std::string_view server) const;

  std::size_t num_malicious_servers() const;

 private:
  std::vector<CampaignTruth> campaigns_;
  std::unordered_map<std::string, std::uint32_t> campaign_of_server_;
  std::unordered_set<std::string> dead_;
};

}  // namespace smash::ids
