// ASCII table rendering for the benchmark harness. Every bench binary that
// reproduces a paper table prints through this so the output layout matches
// the paper's row/column structure.
#pragma once

#include <string>
#include <vector>

namespace smash::util {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  // The header row; must be set before adding rows.
  void set_header(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  // Insert a horizontal separator before the next row.
  void add_separator();

  std::string render() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector == separator
};

}  // namespace smash::util
