#include "util/rng.h"

#include <algorithm>
#include <unordered_set>

namespace smash::util {

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n,
                                                           std::uint32_t k) {
  if (k > n) throw std::invalid_argument("sample_without_replacement: k > n");
  std::vector<std::uint32_t> out;
  out.reserve(k);
  if (k == 0) return out;
  // Dense case: partial Fisher-Yates over an index vector.
  if (k * 3 >= n) {
    std::vector<std::uint32_t> idx(n);
    for (std::uint32_t i = 0; i < n; ++i) idx[i] = i;
    for (std::uint32_t i = 0; i < k; ++i) {
      const std::uint64_t j = i + uniform(n - i);
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
    return out;
  }
  // Sparse case: rejection sampling into a set.
  std::unordered_set<std::uint32_t> chosen;
  chosen.reserve(k * 2);
  while (chosen.size() < k) {
    const auto v = static_cast<std::uint32_t>(uniform(n));
    if (chosen.insert(v).second) out.push_back(v);
  }
  return out;
}

ZipfSampler::ZipfSampler(std::uint32_t n, double s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  if (s < 0) throw std::invalid_argument("ZipfSampler: exponent must be >= 0");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::uint32_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r) + 1.0, s);
    cdf_[r] = acc;
  }
  for (auto& v : cdf_) v /= acc;
  cdf_.back() = 1.0;  // guard against rounding
}

std::uint32_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint32_t>(it - cdf_.begin());
}

double ZipfSampler::probability(std::uint32_t rank) const {
  if (rank >= cdf_.size()) throw std::out_of_range("ZipfSampler::probability");
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace smash::util
