// VerdictService: the online front-end. Answers per-host / per-request
// verdicts from the engine's current DetectionSnapshot, from any number of
// threads, while the engine keeps publishing newer windows. Lookups never
// wait on mining; see SnapshotSlot (stream/engine.h) for the exact
// publication guarantee.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string_view>

#include "stream/engine.h"
#include "stream/snapshot.h"

namespace smash::stream {

struct VerdictAnswer {
  bool malicious = false;
  // Valid when malicious.
  ServerVerdict verdict{};
  // Which snapshot answered (0 / false before the first publication).
  bool snapshot_available = false;
  std::uint64_t snapshot_sequence = 0;
  EpochId snapshot_last_epoch = 0;
};

struct VerdictServiceStats {
  std::uint64_t queries = 0;
  std::uint64_t hits = 0;  // queries answered "malicious"
  double hit_rate = 0.0;
  double qps = 0.0;             // queries / seconds since service start
  double snapshot_age_s = 0.0;  // now - current snapshot's build time
  std::uint64_t snapshot_sequence = 0;
  bool snapshot_available = false;
};

class VerdictService {
 public:
  // `slot` must outlive the service (it lives in the StreamEngine).
  explicit VerdictService(const SnapshotSlot& slot)
      : slot_(slot), start_(std::chrono::steady_clock::now()) {}

  // Verdict for a hostname (aggregated to its effective 2LD).
  VerdictAnswer lookup(std::string_view host) const;

  // Verdict for a full request: the Host header, then the contacted server
  // IP (catches requests straight to an IP of a flagged server).
  VerdictAnswer lookup_request(std::string_view host,
                               std::string_view server_ip) const;

  VerdictServiceStats stats() const;

 private:
  VerdictAnswer answer(const ServerVerdict* verdict,
                       const DetectionSnapshot* snapshot) const;

  const SnapshotSlot& slot_;
  std::chrono::steady_clock::time_point start_;
  mutable std::atomic<std::uint64_t> queries_{0};
  mutable std::atomic<std::uint64_t> hits_{0};
};

}  // namespace smash::stream
