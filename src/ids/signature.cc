#include "ids/signature.h"

#include <stdexcept>

#include "dns/domain.h"
#include "net/http.h"

namespace smash::ids {

bool Signature::matches(const net::HttpRequest& request) const {
  if (!uri_file.empty() && net::uri_file(request.path) != uri_file) return false;
  if (!user_agent.empty() && request.user_agent != user_agent) return false;
  if (!param_pattern.empty() && net::param_pattern(request.path) != param_pattern) {
    return false;
  }
  return true;
}

void SignatureEngine::add(Signature signature) {
  if (signature.threat_id.empty()) {
    throw std::invalid_argument("Signature: threat_id must be set");
  }
  if (signature.uri_file.empty() && signature.user_agent.empty() &&
      signature.param_pattern.empty()) {
    throw std::invalid_argument("Signature: at least one criterion must be set");
  }
  signatures_.push_back(std::move(signature));
}

IdsLabels SignatureEngine::label(const net::Trace& trace, Vintage vintage) const {
  IdsLabels labels;
  for (const auto& request : trace.requests()) {
    for (const auto& sig : signatures_) {
      // 2013 runs include the surviving 2012 rules (sets only grow).
      if (vintage == Vintage::k2012 && sig.vintage != Vintage::k2012) continue;
      if (!sig.matches(request)) continue;
      const std::string server_2ld =
          dns::effective_2ld(trace.servers().name(request.server));
      labels.threats[server_2ld].insert(sig.threat_id);
    }
  }
  return labels;
}

}  // namespace smash::ids
