#include "dns/domain.h"

#include <array>
#include <cctype>

#include "util/strings.h"

namespace smash::dns {

namespace {

// Embedded subset of the public-suffix list covering every suffix that
// appears in the paper's case studies and in our synthetic workloads, plus
// dynamic-DNS providers the paper calls out in §VI as aggregation hazards.
constexpr std::array<std::string_view, 26> kSingleLabelSuffixes = {
    "com", "net",  "org", "info", "biz", "edu", "gov", "mil", "int",
    "it",  "sk",   "nl",  "uk",   "cz",  "cc",  "de",  "fr",  "ru",
    "cn",  "br",   "io",  "co",   "us",  "eu",  "tv",  "me"};

constexpr std::array<std::string_view, 12> kMultiLabelSuffixes = {
    "co.uk",      "org.uk",   "ac.uk",     "gov.uk",
    "com.br",     "com.cn",   "com.ru",
    // Free/dynamic hosting zones where every registrant gets a third-level
    // name; aggregating these to the zone would merge unrelated parties.
    "cz.cc",      "co.cc",    "dyndns.org", "no-ip.org", "blogspot.com"};

}  // namespace

bool is_ipv4_literal(std::string_view host) noexcept {
  int dots = 0;
  int digits_in_octet = 0;
  int octet_value = 0;
  for (char c : host) {
    if (c == '.') {
      if (digits_in_octet == 0) return false;
      ++dots;
      digits_in_octet = 0;
      octet_value = 0;
    } else if (c >= '0' && c <= '9') {
      if (++digits_in_octet > 3) return false;
      octet_value = octet_value * 10 + (c - '0');
      if (octet_value > 255) return false;
    } else {
      return false;
    }
  }
  return dots == 3 && digits_in_octet > 0;
}

bool is_public_suffix(std::string_view suffix) noexcept {
  for (auto s : kMultiLabelSuffixes) {
    if (s == suffix) return true;
  }
  for (auto s : kSingleLabelSuffixes) {
    if (s == suffix) return true;
  }
  return false;
}

std::string effective_2ld(std::string_view host) {
  if (is_ipv4_literal(host)) return std::string(host);
  const auto labels = util::split(host, '.');
  if (labels.size() <= 1) return std::string(host);

  // Find the longest public suffix that is a proper suffix of `host`.
  // We check 2-label suffixes first, then 1-label ones.
  std::size_t suffix_labels = 0;
  if (labels.size() >= 2) {
    const std::string two = std::string(labels[labels.size() - 2]) + "." +
                            std::string(labels.back());
    bool two_is_suffix = false;
    for (auto s : kMultiLabelSuffixes) {
      if (s == two) { two_is_suffix = true; break; }
    }
    if (two_is_suffix) suffix_labels = 2;
  }
  if (suffix_labels == 0 && is_public_suffix(labels.back())) suffix_labels = 1;
  if (suffix_labels == 0) suffix_labels = 1;  // unknown TLD: treat as 1 label

  const std::size_t keep = suffix_labels + 1;
  if (labels.size() <= keep) return std::string(host);

  std::string out;
  for (std::size_t i = labels.size() - keep; i < labels.size(); ++i) {
    if (!out.empty()) out.push_back('.');
    out.append(labels[i]);
  }
  return out;
}

bool is_valid_hostname(std::string_view host) noexcept {
  if (host.empty() || host.front() == '.' || host.back() == '.') return false;
  bool label_started = false;
  for (char c : host) {
    if (c == '.') {
      if (!label_started) return false;
      label_started = false;
    } else if (std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_') {
      label_started = true;
    } else {
      return false;
    }
  }
  return label_started;
}

}  // namespace smash::dns
