// Stream/batch equivalence: a StreamEngine fed N epochs one at a time must
// produce byte-identical campaigns to one batch SmashPipeline::run over the
// concatenated window — for 1 and 4 mining threads, for a full-stream
// window and for a slid (evicting) window. Plus the detection-latency
// guarantee: a campaign activating mid-stream is flagged within one epoch
// of activation, and unflagged once the window slides past it.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/pipeline.h"
#include "stream/engine.h"
#include "stream/verdict.h"
#include "synth/stream_gen.h"

namespace smash::stream {
namespace {

synth::StreamScenarioConfig scenario_config() {
  synth::StreamScenarioConfig config;
  config.seed = 23;
  config.duration_s = 8 * 600;
  config.benign_servers = 70;
  config.benign_clients = 50;
  config.benign_visits = 700;
  config.popular_servers = 2;
  config.popular_clients = 70;
  config.campaigns = 2;
  config.campaign_servers = 5;
  config.campaign_bots = 4;
  config.poll_interval_s = 120;
  config.active_fraction = 0.35;
  return config;
}

StreamConfig stream_config(unsigned threads, std::uint32_t window_epochs) {
  StreamConfig config;
  config.epoch_seconds = 600;
  config.window_epochs = window_epochs;
  config.smash.idf_threshold = 50;
  config.smash.num_threads = threads;
  return config;
}

void expect_identical_campaigns(const core::SmashResult& a,
                                const core::SmashResult& b) {
  EXPECT_EQ(a.pre.kept, b.pre.kept);
  ASSERT_EQ(a.campaigns.size(), b.campaigns.size());
  for (std::size_t c = 0; c < a.campaigns.size(); ++c) {
    EXPECT_EQ(a.campaigns[c].servers, b.campaigns[c].servers);
    EXPECT_EQ(a.campaigns[c].involved_clients, b.campaigns[c].involved_clients);
  }
}

void expect_snapshot_matches_result(const DetectionSnapshot& snapshot,
                                    const core::SmashResult& result) {
  ASSERT_EQ(snapshot.campaigns().size(), result.campaigns.size());
  for (std::size_t c = 0; c < result.campaigns.size(); ++c) {
    const auto& mined = result.campaigns[c];
    const auto& served = snapshot.campaigns()[c];
    ASSERT_EQ(served.servers.size(), mined.servers.size());
    for (std::size_t s = 0; s < mined.servers.size(); ++s) {
      EXPECT_EQ(served.servers[s], result.server_name(mined.servers[s]));
    }
    EXPECT_EQ(served.involved_clients, mined.involved_clients.size());
    EXPECT_EQ(served.single_client, mined.single_client());
  }
}

class StreamBatchEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(StreamBatchEquivalence, FullStreamWindow) {
  const unsigned threads = GetParam();
  const auto scenario = synth::generate_stream(scenario_config());

  // Window covers the whole stream: 8 epochs of data, window of 8.
  const StreamConfig config = stream_config(threads, 8);
  StreamEngine engine(config, scenario.whois);
  synth::feed(engine, scenario);
  engine.finish();

  // The assembled window replays shard journals in arrival order, so it
  // must be request-for-request identical to the batch-built trace.
  const net::Trace window = engine.assemble_window();
  const net::Trace batch =
      synth::batch_trace(scenario, 0, scenario.duration_s);
  ASSERT_EQ(window.num_requests(), batch.num_requests());
  ASSERT_EQ(window.num_servers(), batch.num_servers());
  for (std::size_t i = 0; i < batch.requests().size(); ++i) {
    const auto& w = window.requests()[i];
    const auto& b = batch.requests()[i];
    ASSERT_EQ(w.client, b.client) << "request " << i;
    ASSERT_EQ(w.server, b.server) << "request " << i;
    ASSERT_EQ(w.path, b.path) << "request " << i;
    ASSERT_EQ(w.day, b.day) << "request " << i;
  }

  // And the mined output is byte-identical.
  const core::SmashPipeline pipeline(config.smash);
  const auto stream_result = pipeline.run(window, scenario.whois);
  const auto batch_result = pipeline.run(batch, scenario.whois);
  expect_identical_campaigns(stream_result, batch_result);
  EXPECT_FALSE(batch_result.campaigns.empty());

  // The published snapshot serves exactly the batch campaigns.
  const auto snapshot = engine.snapshot();
  ASSERT_NE(snapshot, nullptr);
  expect_snapshot_matches_result(*snapshot, batch_result);
}

TEST_P(StreamBatchEquivalence, SlidWindowAfterEviction) {
  const unsigned threads = GetParam();
  const auto scenario = synth::generate_stream(scenario_config());

  // Window of 5 epochs over an 8-epoch stream: the first epochs have been
  // evicted by the time the stream ends.
  const StreamConfig config = stream_config(threads, 5);
  StreamEngine engine(config, scenario.whois);
  synth::feed(engine, scenario);
  engine.finish();

  ASSERT_EQ(engine.ingestor().window().size(), 5u);
  const std::uint64_t window_begin_s =
      engine.ingestor().window().front()->id() * config.epoch_seconds;

  const net::Trace window = engine.assemble_window();
  const net::Trace batch =
      synth::batch_trace(scenario, window_begin_s, scenario.duration_s);
  ASSERT_EQ(window.num_requests(), batch.num_requests());

  const core::SmashPipeline pipeline(config.smash);
  expect_identical_campaigns(pipeline.run(window, scenario.whois),
                             pipeline.run(batch, scenario.whois));
}

INSTANTIATE_TEST_SUITE_P(Threads, StreamBatchEquivalence,
                         ::testing::Values(1u, 4u),
                         [](const auto& info) {
                           return "threads" + std::to_string(info.param);
                         });

// Deep equality of two published snapshots: the verdict index a reader
// sees must be byte-identical, not merely campaign-count equal.
void expect_identical_snapshots(const DetectionSnapshot& a,
                                const DetectionSnapshot& b) {
  EXPECT_EQ(a.first_epoch(), b.first_epoch());
  EXPECT_EQ(a.last_epoch(), b.last_epoch());
  EXPECT_EQ(a.sequence(), b.sequence());
  EXPECT_EQ(a.window_requests(), b.window_requests());
  EXPECT_EQ(a.kept_servers(), b.kept_servers());
  EXPECT_EQ(a.num_malicious_servers(), b.num_malicious_servers());
  EXPECT_EQ(a.postings_budget_exceeded(), b.postings_budget_exceeded());
  ASSERT_EQ(a.campaigns().size(), b.campaigns().size());
  for (std::size_t c = 0; c < a.campaigns().size(); ++c) {
    EXPECT_EQ(a.campaigns()[c].servers, b.campaigns()[c].servers);
    EXPECT_EQ(a.campaigns()[c].involved_clients,
              b.campaigns()[c].involved_clients);
    EXPECT_EQ(a.campaigns()[c].single_client, b.campaigns()[c].single_client);
    for (const auto& host : a.campaigns()[c].servers) {
      const auto* va = a.find_host(host);
      const auto* vb = b.find_host(host);
      ASSERT_NE(va, nullptr) << host;
      ASSERT_NE(vb, nullptr) << host;
      EXPECT_EQ(va->campaign, vb->campaign) << host;
      EXPECT_EQ(va->campaign_servers, vb->campaign_servers) << host;
      EXPECT_EQ(va->window_requests, vb->window_requests) << host;
      EXPECT_EQ(va->active_epochs, vb->active_epochs) << host;
    }
  }
}

class AsyncStreamEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(AsyncStreamEquivalence, FinalSnapshotMatchesSyncEngine) {
  const unsigned threads = GetParam();
  const auto scenario = synth::generate_stream(scenario_config());

  const StreamConfig sync_config = stream_config(threads, 5);
  StreamEngine sync_engine(sync_config, scenario.whois);
  synth::feed(sync_engine, scenario);
  sync_engine.finish();

  StreamConfig async_config = sync_config;
  async_config.async_mining = true;
  StreamEngine async_engine(async_config, scenario.whois);
  synth::feed(async_engine, scenario);
  async_engine.finish();  // drains the mining thread

  // finish() accounted every close, so the final async snapshot mines the
  // same window with the same sequence as the synchronous engine — and the
  // verdict index must be byte-identical, whether or not intermediate
  // windows were coalesced along the way.
  EXPECT_EQ(async_engine.epochs_closed_total(),
            sync_engine.epochs_closed_total());
  const auto sync_snapshot = sync_engine.snapshot();
  const auto async_snapshot = async_engine.snapshot();
  ASSERT_NE(sync_snapshot, nullptr);
  ASSERT_NE(async_snapshot, nullptr);
  expect_identical_snapshots(*async_snapshot, *sync_snapshot);
  EXPECT_FALSE(sync_snapshot->campaigns().empty());

  // Publications never exceed closes, and every close is accounted.
  EXPECT_LE(async_engine.snapshots_published(),
            async_engine.epochs_closed_total());
  std::uint64_t accounted = 0;
  for (const auto& record : async_engine.close_records()) {
    accounted += record.epochs_closed;
  }
  EXPECT_EQ(accounted, async_engine.epochs_closed_total());
}

INSTANTIATE_TEST_SUITE_P(Threads, AsyncStreamEquivalence,
                         ::testing::Values(1u, 4u),
                         [](const auto& info) {
                           return "threads" + std::to_string(info.param);
                         });

TEST(AsyncStreamCoalescing, BurstOfClosesSkipsToNewestWindow) {
  auto scenario_cfg = scenario_config();
  scenario_cfg.duration_s = 12 * 600;  // 12 epochs of data
  const auto scenario = synth::generate_stream(scenario_cfg);

  StreamConfig config = stream_config(/*threads=*/1, /*window=*/4);
  config.async_mining = true;
  // Throttle each mine well past the feed time of an epoch, so closes pile
  // up behind the in-flight mine and must coalesce.
  config.mine_throttle_ms = 150;
  StreamEngine engine(config, scenario.whois);
  synth::feed(engine, scenario);
  engine.finish();

  // The burst coalesced: strictly fewer publications than closes, at least
  // one pending job replaced by a newer window, and nothing unaccounted.
  EXPECT_EQ(engine.epochs_closed_total(), 12u);
  EXPECT_LT(engine.snapshots_published(), engine.epochs_closed_total());
  EXPECT_GE(engine.windows_coalesced(), 1u);

  const auto records = engine.close_records();
  ASSERT_EQ(records.size(), engine.snapshots_published());
  std::uint64_t accounted = 0;
  EpochId last_epoch = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    accounted += records[i].epochs_closed;
    if (i > 0) EXPECT_GT(records[i].last_epoch, last_epoch);  // newest wins
    last_epoch = records[i].last_epoch;
  }
  EXPECT_EQ(accounted, engine.epochs_closed_total());

  // The final snapshot is the newest window with a monotone sequence equal
  // to the total closes, identical to what a synchronous engine publishes.
  const auto snapshot = engine.snapshot();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->sequence(), engine.epochs_closed_total());
  EXPECT_EQ(snapshot->last_epoch(), 11u);

  StreamConfig sync_config = stream_config(/*threads=*/1, /*window=*/4);
  StreamEngine sync_engine(sync_config, scenario.whois);
  synth::feed(sync_engine, scenario);
  sync_engine.finish();
  const auto sync_snapshot = sync_engine.snapshot();
  ASSERT_NE(sync_snapshot, nullptr);
  expect_identical_snapshots(*snapshot, *sync_snapshot);
}

TEST(StreamDetectionLatency, CampaignFlaggedWithinOneEpochOfActivation) {
  auto scenario_cfg = scenario_config();
  scenario_cfg.campaigns = 1;
  scenario_cfg.duration_s = 10 * 600;
  scenario_cfg.active_fraction = 0.25;  // active epochs ~[3, 5]
  const auto scenario = synth::generate_stream(scenario_cfg);
  const auto& truth = scenario.campaigns[0];

  const StreamConfig config = stream_config(/*threads=*/1, /*window=*/3);
  StreamEngine engine(config, scenario.whois);
  const VerdictService service(engine.slot());

  const EpochId activation_epoch = truth.start_s / config.epoch_seconds;
  const EpochId end_epoch = (truth.end_s - 1) / config.epoch_seconds;

  // Drive the stream event by event; after every snapshot publication,
  // probe the campaign's first server.
  std::uint64_t seen_publications = 0;
  EpochId first_flagged = 0, last_flagged = 0;
  bool flagged_before_activation = false, ever_flagged = false;
  for (const auto& event : scenario.events) {
    synth::ingest_event(engine, event);
    if (engine.snapshots_published() == seen_publications) continue;
    seen_publications = engine.snapshots_published();
    const auto snapshot = engine.snapshot();
    ASSERT_NE(snapshot, nullptr);
    if (service.lookup(truth.servers[0]).malicious) {
      if (!ever_flagged) first_flagged = snapshot->last_epoch();
      ever_flagged = true;
      last_flagged = snapshot->last_epoch();
      if (snapshot->last_epoch() + 1 <= activation_epoch) {
        flagged_before_activation = true;
      }
    }
  }
  engine.finish();

  ASSERT_TRUE(ever_flagged);
  EXPECT_FALSE(flagged_before_activation);
  // Detected in the snapshot closing the activation epoch, or one later.
  EXPECT_LE(first_flagged, activation_epoch + 1);

  // Once the window slides fully past the campaign, the verdict clears.
  const auto final_snapshot = engine.snapshot();
  ASSERT_NE(final_snapshot, nullptr);
  EXPECT_GT(final_snapshot->first_epoch(), end_epoch);
  for (const auto& host : truth.servers) {
    EXPECT_FALSE(service.lookup(host).malicious) << host;
  }
  EXPECT_GE(last_flagged, end_epoch);
}

}  // namespace
}  // namespace smash::stream
