// Evasion study (paper §VI, "Evasions"): what happens when an attacker who
// knows SMASH strips correlation signals one dimension at a time.
//
// We synthesize a family of otherwise-identical 12-server / 3-bot C&C
// campaigns inside a fixed benign background, varying which secondary
// dimensions the campaign exhibits, and measure whether SMASH still
// detects it at each `thresh`. The paper's argument: evading one
// secondary dimension is cheap, evading all of them simultaneously is
// not — and the main dimension (shared bots) cannot be evaded without
// buying more infrastructure.
#include <cstdio>
#include <set>
#include <string>

#include "bench_common.h"
#include "dns/dga.h"
#include "util/rng.h"

namespace {

using namespace smash;

struct Scenario {
  std::string name;
  bool share_files = false;
  bool share_ips = false;
  bool share_whois = false;
};

// Builds a small world: benign tail + one campaign with the given signal
// profile. Returns the fraction of campaign servers detected.
double detection_rate(const Scenario& scenario, double thresh,
                      std::uint64_t seed) {
  util::Rng rng(seed);
  net::Trace trace;
  whois::Registry registry;

  // Benign background: 300 tail servers, 200 clients.
  for (int s = 0; s < 300; ++s) {
    const std::string host = dns::random_word_domain(rng) ;
    const auto visitors = rng.sample_without_replacement(200, 1 + rng.uniform(3));
    for (auto c : visitors) {
      net::HttpRequest req;
      req.client = trace.intern_client("c" + std::to_string(c));
      req.server = trace.intern_server(host);
      req.path = "/t" + std::to_string(s) + "/p" + std::to_string(rng.uniform(9)) +
                 "s" + std::to_string(s) + ".html";
      req.user_agent = "UA";
      trace.add_request(std::move(req));
    }
    trace.add_resolution(trace.intern_server(host),
                         trace.intern_ip(dns::random_ipv4(rng)));
  }

  // The campaign: 12 servers, 3 dedicated bots.
  dns::FluxIpPool flux(rng.fork("flux"), 4);
  whois::Record shared_whois;
  shared_whois.email = "herd@mail.example";
  shared_whois.phone = "+1.202555";
  shared_whois.name_servers = "ns1.bullet.example,ns2.bullet.example";
  std::set<std::string> campaign_servers;
  for (int s = 0; s < 12; ++s) {
    const std::string host = dns::random_alnum_domain(rng, 10, "info");
    campaign_servers.insert(host);
    const std::string file = scenario.share_files
                                 ? std::string("gate.php")
                                 : "g" + std::to_string(s) + "x.php";
    for (int b = 0; b < 3; ++b) {
      net::HttpRequest req;
      req.client = trace.intern_client("bot" + std::to_string(b));
      req.server = trace.intern_server(host);
      req.path = "/m/" + file + "?id=" + std::to_string(rng.next() % 10000);
      req.user_agent = "BotUA";
      trace.add_request(std::move(req));
    }
    if (scenario.share_ips) {
      for (const auto& ip : flux.draw(2)) {
        trace.add_resolution(trace.intern_server(host), trace.intern_ip(ip));
      }
    } else {
      trace.add_resolution(trace.intern_server(host),
                           trace.intern_ip(dns::random_ipv4(rng)));
    }
    if (scenario.share_whois) {
      registry.add(host, shared_whois);
    }
  }
  trace.finalize();

  core::SmashConfig config;
  config.idf_threshold = 60;
  config = config.with_threshold(thresh);
  const auto result = core::SmashPipeline(config).run(trace, registry);

  int detected = 0;
  for (const auto& campaign : result.campaigns) {
    for (auto member : campaign.servers) {
      detected += campaign_servers.count(result.server_name(member));
    }
  }
  return static_cast<double>(detected) / static_cast<double>(campaign_servers.size());
}

}  // namespace

int main() {
  const Scenario scenarios[] = {
      {"all signals (files+ips+whois)", true, true, true},
      {"evade whois (privacy proxy)", true, true, false},
      {"evade IPs (disjoint hosting)", true, false, true},
      {"evade files (per-server names)", false, true, true},
      {"evade files+ips", false, false, true},
      {"evade files+whois", false, true, false},
      {"evade ips+whois", true, false, false},
      {"evade everything", false, false, false},
  };

  smash::util::Table table("Evasion study: detection rate vs evaded dimensions");
  std::vector<std::string> header{"attacker strategy"};
  for (double t : smash::bench::kThresholds) {
    header.push_back("thresh " + smash::util::format_fixed(t, 1));
  }
  table.set_header(header);
  for (const auto& scenario : scenarios) {
    std::vector<std::string> row{scenario.name};
    for (double thresh : smash::bench::kThresholds) {
      row.push_back(smash::util::format_fixed(
          100.0 * detection_rate(scenario, thresh, 99), 0) + "%");
    }
    table.add_row(row);
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nTargets (paper Sec. VI): dropping one secondary dimension keeps the");
  std::puts("  campaign detectable (remaining dimensions cover); only stripping");
  std::puts("  ALL secondary signals evades SMASH — and that forces per-server");
  std::puts("  filenames, disjoint hosting and clean registration, i.e. cost.");
  return 0;
}
