// Bounded-memory key-range-sharded join: the plan must respect the byte
// budget (except the reported degenerate one-key case), and the join's
// output must be BYTE-IDENTICAL to the in-RAM cooccurrence_join for every
// shard count, budget, and thread count — min_shared applied after the
// cross-pass merge, postings-cap semantics on full key lengths.
#include "graph/similarity_join.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace smash::graph {
namespace {

using util::IdSet;

// 14 keys, each held by exactly 4 of the 14 items (a circulant layout), so
// every key costs the same 2 * sizeof(size_t) + 4 * sizeof(uint32_t) = 32
// bytes and shard counts are exactly predictable from the budget.
std::vector<IdSet> circulant_sets(std::uint32_t num_items = 14,
                                  std::uint32_t num_keys = 14,
                                  std::uint32_t key_span = 4) {
  std::vector<IdSet> items(num_items);
  for (std::uint32_t key = 0; key < num_keys; ++key) {
    for (std::uint32_t j = 0; j < key_span; ++j) {
      items[(key + j) % num_items].insert(key);
    }
  }
  for (auto& item : items) item.normalize();
  return items;
}

std::vector<IdSet> random_sets(std::uint32_t num_items, std::uint32_t max_keys,
                               std::uint32_t key_space, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<IdSet> items(num_items);
  for (auto& item : items) {
    const auto count = rng.uniform(max_keys);
    for (std::uint64_t i = 0; i < count; ++i) {
      item.insert(static_cast<std::uint32_t>(rng.uniform(key_space)));
    }
    item.normalize();
  }
  return items;
}

// The budget that makes the greedy planner put exactly `keys_per_range`
// circulant keys in each range.
constexpr std::size_t budget_for_keys(std::uint32_t keys_per_range,
                                      std::uint32_t key_span = 4) {
  return postings_bytes(0, 0) +
         keys_per_range * (2 * sizeof(std::size_t) +
                           key_span * sizeof(std::uint32_t));
}

void expect_same_join(std::span<const IdSet> items, std::uint32_t min_shared,
                      const JoinOptions& options, std::size_t budget,
                      unsigned num_threads, std::size_t expected_passes = 0) {
  JoinStats in_ram_stats;
  const auto in_ram = cooccurrence_join(items, min_shared, options, &in_ram_stats);

  JoinStats sharded_stats;
  const auto sharded = cooccurrence_join_sharded(
      items, min_shared, options, budget, num_threads, &sharded_stats);

  ASSERT_EQ(sharded, in_ram) << "budget=" << budget
                             << " threads=" << num_threads;

  // Every counter except the pass/residency pair is strategy-invariant.
  EXPECT_EQ(sharded_stats.num_keys, in_ram_stats.num_keys);
  EXPECT_EQ(sharded_stats.postings_entries, in_ram_stats.postings_entries);
  EXPECT_EQ(sharded_stats.peak_postings_length,
            in_ram_stats.peak_postings_length);
  EXPECT_EQ(sharded_stats.skipped_keys, in_ram_stats.skipped_keys);
  EXPECT_EQ(sharded_stats.skipped_entries, in_ram_stats.skipped_entries);
  EXPECT_EQ(sharded_stats.candidate_pairs, in_ram_stats.candidate_pairs);
  EXPECT_EQ(sharded_stats.emitted_pairs, in_ram_stats.emitted_pairs);
  EXPECT_EQ(sharded_stats.emitted_pairs, sharded.size());

  EXPECT_EQ(sharded_stats.shard_passes,
            plan_key_shards(items, budget).ranges.size());
  if (expected_passes > 0) {
    EXPECT_EQ(sharded_stats.shard_passes, expected_passes);
  }
}

TEST(KeyShardPlan, UnboundedAndExactFitAreOnePass) {
  const auto items = circulant_sets();
  const auto unbounded = plan_key_shards(items, 0);
  ASSERT_EQ(unbounded.ranges.size(), 1u);
  EXPECT_EQ(unbounded.ranges[0].begin, 0u);
  EXPECT_EQ(unbounded.ranges[0].end, 14u);
  EXPECT_EQ(unbounded.peak_bytes, unbounded.total_bytes);
  EXPECT_EQ(unbounded.total_bytes, postings_bytes(14, 14 * 4));

  // A budget of exactly the whole index is still one pass.
  const auto exact = plan_key_shards(items, unbounded.total_bytes);
  EXPECT_EQ(exact.ranges.size(), 1u);
  EXPECT_EQ(exact.peak_bytes, exact.total_bytes);
}

TEST(KeyShardPlan, BudgetsProduceExpectedShardCounts) {
  const auto items = circulant_sets();
  // 7 keys per range -> 2 shards; 2 keys per range -> 7 shards.
  const auto two = plan_key_shards(items, budget_for_keys(7));
  ASSERT_EQ(two.ranges.size(), 2u);
  const auto seven = plan_key_shards(items, budget_for_keys(2));
  ASSERT_EQ(seven.ranges.size(), 7u);

  // Ranges are ascending, disjoint, covering, and within budget.
  for (const auto& plan : {two, seven}) {
    std::uint32_t expect_begin = 0;
    for (const auto& range : plan.ranges) {
      EXPECT_EQ(range.begin, expect_begin);
      EXPECT_GT(range.end, range.begin);
      EXPECT_LE(range.bytes, plan.peak_bytes);
      expect_begin = range.end;
    }
    EXPECT_EQ(expect_begin, 14u);
  }
  EXPECT_LE(two.peak_bytes, budget_for_keys(7));
  EXPECT_LE(seven.peak_bytes, budget_for_keys(2));
}

TEST(KeyShardPlan, EmptyInputHasNoRanges) {
  const std::vector<IdSet> empty;
  const auto plan = plan_key_shards(empty, 128);
  EXPECT_TRUE(plan.ranges.empty());
  EXPECT_EQ(plan.peak_bytes, 0u);
}

// The acceptance matrix: shard counts {1, 2, 7} x budgets {tiny,
// exact-fit, unbounded} x thread counts {1, 4}, byte-identical output.
TEST(ShardedJoin, MatchesInRamAcrossShardBudgetThreadMatrix) {
  const auto items = circulant_sets();
  const std::size_t exact_fit = plan_key_shards(items, 0).total_bytes;

  struct Case {
    std::size_t budget;
    std::size_t expected_passes;
  };
  const Case cases[] = {
      {0, 1},                     // unbounded
      {exact_fit, 1},             // exact fit
      {budget_for_keys(7), 2},    // two passes
      {budget_for_keys(2), 7},    // tiny: seven passes
  };
  for (const auto& c : cases) {
    for (const unsigned threads : {1u, 4u}) {
      for (const std::uint32_t min_shared : {1u, 2u}) {
        expect_same_join(items, min_shared, {}, c.budget, threads,
                         c.expected_passes);
      }
    }
  }
}

TEST(ShardedJoin, MatchesInRamOnRandomSets) {
  for (const std::uint64_t seed : {3u, 17u, 99u}) {
    const auto items = random_sets(/*num_items=*/120, /*max_keys=*/10,
                                   /*key_space=*/80, seed);
    const std::size_t full = plan_key_shards(items, 0).total_bytes;
    for (const std::size_t budget : {std::size_t{0}, full, full / 2, full / 5,
                                     std::size_t{100}}) {
      for (const unsigned threads : {1u, 4u}) {
        for (const std::uint32_t min_shared : {1u, 2u}) {
          expect_same_join(items, min_shared, {}, budget, threads);
        }
      }
    }
  }
}

TEST(ShardedJoin, ProbeParallelismEngagesOnLargeInputs) {
  // > 4 * 256 items, so the within-pass probe really fans out to 4 workers
  // (smaller inputs collapse to a serial probe).
  const auto items = random_sets(/*num_items=*/1200, /*max_keys=*/12,
                                 /*key_space=*/600, /*seed=*/42);
  const std::size_t full = plan_key_shards(items, 0).total_bytes;
  ASSERT_GT(plan_key_shards(items, full / 3).ranges.size(), 1u);
  expect_same_join(items, 1, {}, full / 3, 4);
}

TEST(ShardedJoin, OneKeyExceedingBudgetGetsReportedOversizedPass) {
  // Key 0 is held by 50 items: its postings alone cost 8 + 16 + 200 bytes,
  // far over a 64-byte budget. The join must still complete exactly, with
  // the overshoot visible in peak_resident_postings_bytes.
  std::vector<IdSet> items(50);
  for (std::uint32_t i = 0; i < items.size(); ++i) {
    items[i].insert(0);
    items[i].insert(1 + (i % 7));
    items[i].normalize();
  }
  constexpr std::size_t budget = 64;
  const auto plan = plan_key_shards(items, budget);
  ASSERT_GT(plan.ranges.size(), 1u);
  EXPECT_EQ(plan.ranges[0].begin, 0u);
  EXPECT_EQ(plan.ranges[0].end, 1u);  // the hub key rides alone
  EXPECT_GT(plan.ranges[0].bytes, budget);
  EXPECT_GT(plan.peak_bytes, budget);

  expect_same_join(items, 1, {}, budget, 1);
  expect_same_join(items, 2, {}, budget, 4);

  JoinStats stats;
  cooccurrence_join_sharded(items, 1, {}, budget, 1, &stats);
  EXPECT_EQ(stats.peak_resident_postings_bytes, plan.peak_bytes);
  EXPECT_GT(stats.peak_resident_postings_bytes, budget);
}

TEST(ShardedJoin, PeakResidencyStaysWithinBudgetOtherwise) {
  const auto items = random_sets(200, 8, 100, 7);
  const std::size_t full = plan_key_shards(items, 0).total_bytes;
  const std::size_t budget = full / 4;
  JoinStats stats;
  cooccurrence_join_sharded(items, 1, {}, budget, 1, &stats);
  EXPECT_GT(stats.shard_passes, 1u);
  EXPECT_LE(stats.peak_resident_postings_bytes, budget);
}

TEST(ShardedJoin, PostingsCapFiresOnFullKeyLength) {
  // A hub key over max_postings_length must be skipped identically in the
  // sharded join — its length is its FULL postings length even when the
  // budget isolates it into its own pass.
  std::vector<IdSet> items(30);
  for (std::uint32_t i = 0; i < items.size(); ++i) {
    items[i].insert(5);              // hub key: length 30
    items[i].insert(10 + (i % 4));   // informative keys
    items[i].normalize();
  }
  JoinOptions options;
  options.max_postings_length = 10;
  for (const std::size_t budget : {std::size_t{0}, std::size_t{80}}) {
    expect_same_join(items, 1, options, budget, 1);
  }
  JoinStats stats;
  cooccurrence_join_sharded(items, 1, options, 80, 1, &stats);
  EXPECT_EQ(stats.skipped_keys, 1u);
  EXPECT_EQ(stats.skipped_entries, 30u);
}

TEST(ShardedJoin, MinSharedCountsKeysAcrossPassBoundaries) {
  // Items 0 and 1 share keys 0 and 13, which a 2-keys-per-range plan puts
  // in the first and last pass; min_shared=2 must still see both.
  auto items = circulant_sets();
  items.emplace_back(std::vector<std::uint32_t>{0, 13});
  items.emplace_back(std::vector<std::uint32_t>{0, 13});
  const std::size_t budget = budget_for_keys(2, /*key_span=*/5);
  ASSERT_GT(plan_key_shards(items, budget).ranges.size(), 2u);

  JoinStats stats;
  const auto pairs =
      cooccurrence_join_sharded(items, 2, {}, budget, 1, &stats);
  const auto in_ram = cooccurrence_join(items, 2);
  EXPECT_EQ(pairs, in_ram);
  const CooccurrencePair tail_pair{14, 15, 2};
  EXPECT_NE(std::find(pairs.begin(), pairs.end(), tail_pair), pairs.end());
}

TEST(ShardedJoin, RejectsBadArguments) {
  const auto items = circulant_sets();
  EXPECT_THROW(cooccurrence_join_sharded(items, 0, {}, 64, 1),
               std::invalid_argument);
  std::vector<IdSet> unnormalized(1);
  unnormalized[0].insert(3);
  EXPECT_THROW(cooccurrence_join_sharded(unnormalized, 1, {}, 64, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace smash::graph
