// CRC32C (Castagnoli, reflected polynomial 0x82F63B78): the checksum
// guarding every WAL record and checkpoint blob. Software table
// implementation — the WAL's costs are dominated by fsync, not by the
// checksum — chosen over CRC32 for its better burst-error detection and
// because it is what comparable logs (LevelDB, Kafka) use, so test vectors
// are easy to cross-check.
#pragma once

#include <cstdint>
#include <string_view>

namespace smash::durability {

// CRC of `data` continuing from `seed` (pass the previous crc to chain
// buffers; 0 starts a fresh checksum).
std::uint32_t crc32c(std::string_view data, std::uint32_t seed = 0);

}  // namespace smash::durability
