#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/strings.h"

namespace smash::util {

double mean(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("mean: empty input");
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size());
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of range");
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  const double pos = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> samples) {
  if (samples.empty()) return {};
  std::sort(samples.begin(), samples.end());
  std::vector<CdfPoint> out;
  const double n = static_cast<double>(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const bool last_of_value = i + 1 == samples.size() || samples[i + 1] != samples[i];
    if (last_of_value) {
      out.push_back({samples[i], static_cast<double>(i + 1) / n});
    }
  }
  return out;
}

double cdf_at(const std::vector<CdfPoint>& cdf, double x) {
  double best = 0.0;
  for (const auto& p : cdf) {
    if (p.x <= x) best = p.fraction;
    else break;
  }
  return best;
}

Histogram::Histogram(double lo_, double hi_, std::size_t bins)
    : lo(lo_), hi(hi_), counts(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
}

void Histogram::add(double x) {
  if (x < lo) {
    ++underflow;
  } else if (x >= hi) {
    ++overflow;
  }
  const double t = (x - lo) / (hi - lo);
  auto bin = static_cast<std::int64_t>(t * static_cast<double>(counts.size()));
  bin = std::clamp<std::int64_t>(bin, 0, static_cast<std::int64_t>(counts.size()) - 1);
  ++counts[static_cast<std::size_t>(bin)];
}

std::uint64_t Histogram::total() const {
  std::uint64_t acc = 0;
  for (auto c : counts) acc += c;
  return acc;
}

std::string Histogram::ascii(int width, int label_decimals) const {
  std::uint64_t max_count = 1;
  for (auto c : counts) max_count = std::max(max_count, c);
  std::string out;
  const double bin_width = (hi - lo) / static_cast<double>(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double left = lo + bin_width * static_cast<double>(i);
    const auto bar_len = static_cast<int>(
        static_cast<double>(counts[i]) / static_cast<double>(max_count) * width);
    out += "[" + format_fixed(left, label_decimals) + ", " +
           format_fixed(left + bin_width, label_decimals) + ") ";
    out.append(static_cast<std::size_t>(bar_len), '#');
    out += " " + std::to_string(counts[i]) + "\n";
  }
  if (underflow > 0 || overflow > 0) {
    out += "clamped: " + std::to_string(underflow) + " below " +
           format_fixed(lo, label_decimals) + ", " + std::to_string(overflow) +
           " at/above " + format_fixed(hi, label_decimals) + "\n";
  }
  return out;
}

double phi_erf(double x, double mu, double sigma) {
  if (sigma <= 0.0) throw std::invalid_argument("phi_erf: sigma must be > 0");
  return 0.5 * (1.0 + std::erf((x - mu) / sigma));
}

}  // namespace smash::util
