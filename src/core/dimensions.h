// ASH mining (paper §III-B): one similarity graph per dimension over the
// preprocessed servers, Louvain community detection on each, communities
// of size >= 2 become the dimension's Associated Server Herds.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/preprocess.h"
#include "core/smash_config.h"
#include "graph/graph.h"
#include "graph/similarity_join.h"
#include "util/interner.h"
#include "whois/whois.h"

namespace smash::core {

enum class Dimension : std::uint8_t {
  kClient = 0,  // main dimension, eq. (1)
  kFile = 1,    // eqs. (2)-(7)
  kIp = 2,      // eq. (8)
  kWhois = 3,
  // Extension (paper §V-A2 false-negative analysis + §VI Extensions):
  // servers sharing URI *parameter patterns* ("p=&id=&e="). Off by default
  // (SmashConfig::enable_param_dimension) to keep the paper's exact
  // four-dimension configuration; turning it on recovers the Cycbot-shaped
  // misses that share only parameter structure.
  kParam = 4,
};
inline constexpr int kNumDimensions = 4;  // the paper's configuration
inline constexpr int kNumSecondaryDimensions = 3;

std::string_view dimension_name(Dimension d) noexcept;

// Span / latency-histogram names of one dimension's mine (string literals —
// trace slots store the pointer, registry keys must be stable).
const char* dimension_mine_span_name(Dimension d) noexcept;
const char* dimension_mine_histogram_name(Dimension d) noexcept;

// Per-dimension probe-thread budget of a mining path: the client, file and
// whois joins are the large ones and get the configured threads; ip and
// param stay serial.
unsigned dimension_join_threads(Dimension dimension,
                                const SmashConfig& config) noexcept;

// The effective per-dimension configs of mine_all_dimensions: identity
// copies of `config` on the serial path (num_threads <= 1); on the
// concurrent fan-out every dimension but the client one is pinned to one
// thread, the client dimension gets the leftover threads, and a non-zero
// join_memory_budget_bytes is split across the slots (weighted by estimated
// postings cardinality by default). Exposed so the incremental miner runs
// each dimension under the exact config the full path would — Louvain
// chunk/stale counters depend on the effective thread budget, and the
// incremental-vs-full differential compares them.
std::vector<SmashConfig> per_dimension_mining_configs(
    const PreprocessResult& pre, const whois::Registry& registry,
    const SmashConfig& config, int dimensions);

struct Ash {
  std::vector<std::uint32_t> members;  // kept-indices, ascending
  double density = 0.0;                // w(.) of eq. (9)
};

struct DimensionAshes {
  Dimension dimension = Dimension::kClient;
  std::vector<Ash> ashes;
  // kept-index -> ash index, or -1 when the server is in no herd (isolated
  // or singleton community) for this dimension.
  std::vector<std::int32_t> ash_of;
  // Graph stats, for reports and the micro benches.
  std::size_t graph_edges = 0;
  double modularity = 0.0;
  // Counters of this dimension's candidate-pair join. skipped_keys > 0
  // means the postings cap fired and shared-key counts undercount for the
  // affected pairs — streaming snapshots surface this so a window that
  // exceeded the in-RAM postings budget is observable, not silent.
  // shard_passes / peak_resident_postings_bytes record how hard
  // SmashConfig::join_memory_budget_bytes squeezed this join (1 pass =
  // the whole index fit; more passes = bounded-memory key-range sharding
  // engaged, output unchanged).
  graph::JoinStats join_stats;
  // Execution-shape counters of this dimension's Louvain run (refined;
  // base pass + every refinement pass summed). Like JoinStats, these are
  // observability only: the partition — and therefore the ashes — is
  // byte-identical for every thread count and chunk size. sweeps/moves are
  // invariant across both; chunks/stale_reevals depend on the chunk size
  // (0 on the serial path) but not on the thread count.
  graph::LouvainStats louvain_stats;

  std::size_t num_herded_servers() const;

  bool postings_budget_exceeded() const noexcept {
    return join_stats.skipped_keys > 0;
  }
};

// Canonical mining order: indices into pre.kept sorted by server name
// (unique within a window). Every dimension graph is built and partitioned
// in this order — stable across window slides for unchanged content, which
// is what lets the incremental miner reuse cached edges and Louvain
// partitions — and the ashes are remapped back to kept-index space at the
// end. The batch and streaming paths share this, so their outputs stay
// byte-identical.
std::vector<std::uint32_t> canonical_mining_order(const PreprocessResult& pre);

// Name sources for the incremental miner's stable-id change detection:
// resolve window-local key ids to canonical names that survive window
// re-interning. Only the streaming delta path supplies this; the batch
// path leaves it null and skips the (small) name materialization.
struct DimensionKeyNameSources {
  const util::Interner* clients = nullptr;  // window client interner
  const util::Interner* ips = nullptr;      // window ip interner
};

// One dimension's join-stage input, factored out of the mining paths so
// the full and incremental pipelines are guaranteed to join identical key
// sets. Nodes are in canonical (name-sorted) order; key ids are
// window-local (dense, re-interned per window).
struct DimensionJoinInput {
  Dimension dimension = Dimension::kClient;
  // canon_to_kept[c] = index into pre.kept of canonical node c; ascending
  // by server name.
  std::vector<std::uint32_t> canon_to_kept;
  std::vector<std::string_view> canon_names;  // aligned; backed by pre.agg
  std::vector<util::IdSet> key_sets;          // per canonical node
  std::uint32_t min_shared = 1;
  double edge_threshold = 0.0;  // unused by the union-weight (whois) form
  std::uint32_t postings_cap = 0;
  bool union_weight = false;    // whois: w = shared / union, no threshold
  unsigned join_threads = 1;
  // Window key id -> canonical key name (client/ip names, lexicographically
  // smallest member filename of a file class, the param/whois key string).
  // Filled only when a DimensionKeyNameSources was supplied.
  std::vector<std::string> key_names;
};

DimensionJoinInput build_dimension_join_input(
    Dimension dimension, const PreprocessResult& pre,
    const whois::Registry& registry, const SmashConfig& config,
    std::vector<std::uint32_t> canon_to_kept, unsigned join_threads,
    const DimensionKeyNameSources* names = nullptr);

// Thresholded similarity edges (canonical space, ascending (u, v)) from
// the join's co-occurrence pairs, under this dimension's weight form.
std::vector<graph::Edge> weight_dimension_pairs(
    const DimensionJoinInput& input,
    std::span<const graph::CooccurrencePair> pairs);

// Louvain + herd extraction over canonical-space edges. The result is in
// canonical space (members / ash_of indexed by canonical node);
// join_stats is left default.
DimensionAshes extract_canonical_ashes(const DimensionJoinInput& input,
                                       std::span<const graph::Edge> edges,
                                       const SmashConfig& config);

// Remaps a canonical-space result to kept-index space (members ascending).
DimensionAshes remap_ashes_to_kept(DimensionAshes canonical,
                                   std::span<const std::uint32_t> canon_to_kept);

// Full join + weighting + Louvain over a built input — the tail every
// full-mine path runs. When the incremental miner needs to seed its cache
// it passes `canon_edges_out` / `canonical_out` to capture the
// canonical-space edges and (pre-remap) ashes.
DimensionAshes mine_joined_dimension(
    const DimensionJoinInput& input, const SmashConfig& config,
    std::vector<graph::Edge>* canon_edges_out = nullptr,
    DimensionAshes* canonical_out = nullptr);

// Builds the similarity graph for `dimension` over pre.kept and extracts
// ASHs. `registry` is only used by the Whois dimension. Honors
// config.num_threads (probe-range-sharded join) and
// config.join_memory_budget_bytes (key-range-sharded bounded-memory join);
// mined output is identical for every thread count and budget.
DimensionAshes mine_dimension(Dimension dimension, const PreprocessResult& pre,
                              const whois::Registry& registry,
                              const SmashConfig& config);

// All dimensions, indexed by Dimension: the paper's four, plus kParam when
// config.enable_param_dimension is set. With config.num_threads > 1 the
// dimensions are mined concurrently (the client join gets the leftover
// threads) and a non-zero join_memory_budget_bytes is divided across the
// concurrently-mined dimensions — in proportion to each dimension's
// estimated postings cardinality by default
// (SmashConfig::weighted_budget_split), or evenly when that is off — so
// total resident postings memory stays within the budget either way. The
// split changes pass counts only, never mined output.
std::vector<DimensionAshes> mine_all_dimensions(const PreprocessResult& pre,
                                                const whois::Registry& registry,
                                                const SmashConfig& config);

}  // namespace smash::core
