// Preprocessing (paper §III-A): 2LD aggregation and IDF popularity filter.
//
// Aggregation maps every requested hostname to its effective 2LD and
// merges per-server state; the IDF filter then removes servers contacted
// by more than `idf_threshold` distinct clients. What remains is the
// server population the four dimensions operate on.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/smash_config.h"
#include "net/trace.h"
#include "util/id_set.h"
#include "util/interner.h"

namespace smash::core {

// Everything the dimensions and the evaluation need to know about one
// aggregated (2LD) server.
struct ServerProfile {
  util::IdSet clients;  // distinct trace client ids
  util::IdSet ips;      // trace ip ids the server resolved to
  util::IdSet days;     // days with at least one request
  // Distinct URI files observed in requests to this server (global file
  // interner ids; the empty filename of "/" is interned like any other).
  util::IdSet files;
  std::unordered_set<std::string> user_agents;
  std::unordered_set<std::string> param_patterns;
  // Aggregated referrer host -> number of requests carrying it.
  std::unordered_map<std::uint32_t, std::uint32_t> referrer_counts;
  std::uint32_t requests = 0;
  std::uint32_t error_requests = 0;  // 4xx/5xx
};

class AggregatedTrace {
 public:
  // Builds profiles for every 2LD server in the trace.
  static AggregatedTrace build(const net::Trace& trace);

  // Assembles an AggregatedTrace from already-merged parts (the streaming
  // engine's per-epoch preprocessed shards, core/preshard.h). `servers` is
  // the 2LD interner, `profiles` parallel to it; `raw_servers` the hostname
  // count before aggregation. The caller guarantees the parts are exactly
  // what build() would have produced for the assembled window.
  static AggregatedTrace from_parts(
      util::Interner servers, util::Interner files,
      std::vector<ServerProfile> profiles,
      std::unordered_map<std::uint32_t, std::uint32_t> redirects,
      std::uint32_t raw_servers);

  const util::Interner& servers() const noexcept { return servers_; }
  const util::Interner& files() const noexcept { return files_; }
  const std::vector<ServerProfile>& profiles() const noexcept { return profiles_; }
  const ServerProfile& profile(std::uint32_t server) const { return profiles_.at(server); }
  const std::string& server_name(std::uint32_t server) const {
    return servers_.name(server);
  }

  // Aggregated redirect edges: 2LD server -> 2LD redirect target.
  const std::unordered_map<std::uint32_t, std::uint32_t>& redirects() const noexcept {
    return redirects_;
  }

  std::uint32_t num_servers_before_aggregation() const noexcept {
    return raw_servers_;
  }

 private:
  util::Interner servers_;  // 2LD names
  util::Interner files_;    // URI file strings
  std::vector<ServerProfile> profiles_;
  std::unordered_map<std::uint32_t, std::uint32_t> redirects_;
  std::uint32_t raw_servers_ = 0;
};

struct PreprocessResult {
  AggregatedTrace agg;
  // Aggregated server ids that survive the IDF filter, ascending.
  std::vector<std::uint32_t> kept;
  // kept-index of each aggregated server, or -1 if filtered.
  std::vector<std::int32_t> kept_index_of;

  // Stats for Table I-style reporting and the Fig. 9 bench.
  std::uint64_t total_requests = 0;
  std::uint64_t requests_after_filter = 0;
  std::uint32_t servers_before_aggregation = 0;
  std::uint32_t servers_after_aggregation = 0;
  std::uint32_t servers_after_filter = 0;

  std::uint32_t kept_id(std::uint32_t kept_idx) const { return kept.at(kept_idx); }
};

PreprocessResult preprocess(const net::Trace& trace, const SmashConfig& config);

// The filter tail of preprocess(): fills the aggregation stats and the
// kept/kept_index_of IDF-filter output from `out.agg`. Shared by
// preprocess() and the streaming shard merge (core/preshard.h) so both
// paths keep identical semantics. Expects `out.agg` (and total_requests)
// to be set; overwrites the rest.
void apply_idf_filter(PreprocessResult& out, const SmashConfig& config);

}  // namespace smash::core
