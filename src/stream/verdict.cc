#include "stream/verdict.h"

namespace smash::stream {

VerdictAnswer VerdictService::answer(const ServerVerdict* verdict,
                                     const DetectionSnapshot* snapshot) const {
  queries_.fetch_add(1, std::memory_order_relaxed);
  VerdictAnswer out;
  if (snapshot != nullptr) {
    out.snapshot_available = true;
    out.snapshot_sequence = snapshot->sequence();
    out.snapshot_last_epoch = snapshot->last_epoch();
  }
  if (verdict != nullptr) {
    out.malicious = true;
    out.verdict = *verdict;
    hits_.fetch_add(1, std::memory_order_relaxed);
  }
  return out;
}

VerdictAnswer VerdictService::lookup(std::string_view host) const {
  const auto snapshot = slot_.acquire();
  if (!snapshot) return answer(nullptr, nullptr);
  return answer(snapshot->find_host(host), snapshot.get());
}

VerdictAnswer VerdictService::lookup_request(std::string_view host,
                                             std::string_view server_ip) const {
  const auto snapshot = slot_.acquire();
  if (!snapshot) return answer(nullptr, nullptr);
  const ServerVerdict* verdict = snapshot->find_host(host);
  if (verdict == nullptr && !server_ip.empty()) {
    verdict = snapshot->find_ip(server_ip);
  }
  return answer(verdict, snapshot.get());
}

VerdictServiceStats VerdictService::stats() const {
  VerdictServiceStats out;
  out.queries = queries_.load(std::memory_order_relaxed);
  out.hits = hits_.load(std::memory_order_relaxed);
  out.hit_rate = out.queries == 0
                     ? 0.0
                     : static_cast<double>(out.hits) /
                           static_cast<double>(out.queries);
  const auto now = std::chrono::steady_clock::now();
  const double elapsed_s =
      std::chrono::duration<double>(now - start_).count();
  out.qps = elapsed_s > 0.0 ? static_cast<double>(out.queries) / elapsed_s : 0.0;
  if (const auto snapshot = slot_.acquire()) {
    out.snapshot_available = true;
    out.snapshot_sequence = snapshot->sequence();
    out.snapshot_age_s =
        std::chrono::duration<double>(now - snapshot->built_at()).count();
  }
  return out;
}

}  // namespace smash::stream
