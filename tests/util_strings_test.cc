#include "util/strings.h"

#include <gtest/gtest.h>

namespace smash::util {
namespace {

TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Split, SingleFieldNoSeparator) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Split, EmptyInputYieldsOneEmptyField) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Split, TrailingSeparator) {
  const auto parts = split("a,b,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "");
}

TEST(SplitNonempty, DropsEmpties) {
  const auto parts = split_nonempty(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(Join, BasicAndEmpty) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(ToLower, MixedCase) { EXPECT_EQ(to_lower("AbC.Com"), "abc.com"); }

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("foo", "foobar"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_FALSE(ends_with("bar", "foobar"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_TRUE(ends_with("x", ""));
}

TEST(Trim, Whitespace) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim("\t\n x \r"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(FormatFixed, Decimals) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(1.0, 0), "1");
  EXPECT_EQ(format_fixed(0.064, 3), "0.064");
}

class WithCommasTest
    : public ::testing::TestWithParam<std::pair<std::uint64_t, std::string>> {};

TEST_P(WithCommasTest, Formats) {
  EXPECT_EQ(with_commas(GetParam().first), GetParam().second);
}

INSTANTIATE_TEST_SUITE_P(
    Values, WithCommasTest,
    ::testing::Values(std::pair<std::uint64_t, std::string>{0, "0"},
                      std::pair<std::uint64_t, std::string>{7, "7"},
                      std::pair<std::uint64_t, std::string>{999, "999"},
                      std::pair<std::uint64_t, std::string>{1000, "1,000"},
                      std::pair<std::uint64_t, std::string>{28544473, "28,544,473"},
                      std::pair<std::uint64_t, std::string>{1521249, "1,521,249"}));

}  // namespace
}  // namespace smash::util
