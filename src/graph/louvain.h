// Louvain community detection (Blondel, Guillaume, Lambiotte, Lefebvre,
// "Fast unfolding of communities in large networks", J. Stat. Mech. 2008) —
// the clustering algorithm SMASH uses on every similarity graph (paper
// §III-B1, reference [17]).
//
// Two repeated phases:
//   1. Local moving: greedily move nodes to the neighbor community with the
//      highest modularity gain until no move improves modularity.
//   2. Aggregation: collapse each community to one node (intra-community
//      weight becomes a self-loop) and recurse.
//
// Deterministic: node visit order is by id (no RNG), so identical inputs
// produce identical partitions — required for reproducible tables.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace smash::graph {

struct LouvainOptions {
  // Stop a local-moving sweep cycle when a full pass gains less than this.
  double min_modularity_gain = 1e-7;
  // Safety cap on aggregation levels (real traces need < 10).
  int max_levels = 32;
  // Cap on full sweeps per level.
  int max_sweeps_per_level = 64;
};

struct LouvainResult {
  // community_of[node] in [0, num_communities), labels densely renumbered.
  std::vector<std::uint32_t> community_of;
  std::uint32_t num_communities = 0;
  double modularity = 0.0;  // of the final partition on the input graph
  int levels = 0;           // aggregation levels performed

  // Nodes grouped by community, each sorted ascending. Singleton
  // communities are included; callers typically filter them.
  std::vector<std::vector<std::uint32_t>> groups() const;
};

// Runs Louvain on `g`. Isolated nodes end up in singleton communities.
LouvainResult louvain(const Graph& g, const LouvainOptions& options = {});

// Louvain with recursive refinement: after the global pass, each community
// is re-clustered on its *induced subgraph*; communities that split are
// replaced by their parts, recursively, until stable.
//
// Why: plain modularity suffers the resolution limit — in a large sparse
// graph, two small dense groups joined by a single weak edge merge because
// the expected-edge term is ~0. SMASH's similarity graphs are exactly that
// shape (campaign cliques bridged through a shared benign server or a
// doubly-infected client), and eq. (9) weights herds by density, so the
// agglomerated low-density herds would suppress every campaign score. On
// the induced subgraph the total weight m is small, the expected-edge term
// is meaningful, and bridges split off. Cliques are stable under
// refinement, so campaign herds survive intact.
LouvainResult louvain_refined(const Graph& g, const LouvainOptions& options = {});

// Modularity Q of an arbitrary partition of `g`:
//   Q = sum_c [ in_c / 2m  -  (tot_c / 2m)^2 ]
// where in_c is total intra-community edge weight (each direction counted,
// self-loops twice) and tot_c the sum of weighted degrees.
double modularity(const Graph& g, const std::vector<std::uint32_t>& community_of);

}  // namespace smash::graph
