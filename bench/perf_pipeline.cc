// End-to-end perf baseline: full SMASH pipeline (preprocess -> mine ->
// correlate -> prune -> campaigns) per dataset preset, serial vs threaded
// mining, written to BENCH_pipeline.json.
//
// The week-scale section exercises the bounded-memory sharded join on the
// monolithic 2012week window three ways: the default-cap status quo
// (whose stop-file cap trips postings_budget_exceeded at week scale and
// undercounts), an exact in-RAM reference with inert caps, and a
// join_memory_budget_bytes a quarter of the exact run's observed peak
// (which must complete EXACTLY — byte-identical campaigns — within the
// budget). Exactness is checked, so this binary doubles as a smoke test;
// a budgeted-vs-exact mismatch exits non-zero.
//
// Usage: perf_pipeline [output.json] [--smoke]
//   default output: BENCH_pipeline.json
//   --smoke: skip the day presets and run the week section on a scaled-down
//            week world (seconds, for CI).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>

#include "bench_common.h"
#include "synth/world.h"

namespace {

void bench_preset(smash::bench::JsonReporter& report,
                  const std::string& preset, int repeats) {
  const auto& ds = smash::bench::dataset(preset);

  for (const unsigned threads : {1u, 4u}) {
    smash::core::SmashConfig config;
    config.num_threads = threads;
    const smash::core::SmashPipeline pipeline(config);

    std::size_t campaigns = 0;
    std::size_t servers = 0;
    const double ms = smash::bench::time_best_ms(repeats, [&] {
      const auto result = pipeline.run(ds.trace, ds.whois);
      campaigns = result.campaigns.size();
      servers = result.pre.kept.size();
    });
    report.add("pipeline/" + preset + "/threads" + std::to_string(threads), ms,
               {{"campaigns", static_cast<double>(campaigns)},
                {"kept_servers", static_cast<double>(servers)},
                {"threads", static_cast<double>(threads)}});
    std::printf("pipeline %-9s threads=%u  %9.1f ms  (%zu campaigns, %zu kept servers)\n",
                preset.c_str(), threads, ms, campaigns, servers);
  }
}

// Full campaign equality (servers + involved_clients are Campaign's only
// fields), plus the kept-server set the campaigns index into.
bool same_campaigns(const smash::core::SmashResult& a,
                    const smash::core::SmashResult& b) {
  if (a.pre.kept != b.pre.kept) return false;
  if (a.campaigns.size() != b.campaigns.size()) return false;
  for (std::size_t c = 0; c < a.campaigns.size(); ++c) {
    if (a.campaigns[c].servers != b.campaigns[c].servers) return false;
    if (a.campaigns[c].involved_clients != b.campaigns[c].involved_clients) {
      return false;
    }
  }
  return true;
}

// Returns false when the budgeted run fails exactness (CI smoke signal).
bool bench_week_budget(smash::bench::JsonReporter& report, bool smoke,
                       int repeats) {
  using smash::core::SmashConfig;
  using smash::core::SmashPipeline;
  using smash::core::SmashResult;

  // --smoke runs a scaled-down week world so CI finishes in seconds; the
  // full section uses the canonical 2012week preset.
  smash::synth::Dataset scaled_ds;
  const smash::synth::Dataset* ds = nullptr;
  std::string label = "2012week";
  if (smoke) {
    scaled_ds = smash::synth::generate_world(
        smash::synth::data2012week().scaled(0.12));
    ds = &scaled_ds;
    label = "2012week-smoke";
  } else {
    ds = &smash::bench::dataset("2012week");
  }

  // 1) The pre-budget status quo: default caps. At week scale the
  //    uri-file stop-file cap fires (postings lists outgrow 1500 servers),
  //    so the run reports postings_budget_exceeded and undercounts — the
  //    ROADMAP gap this bench documents.
  SmashConfig legacy;
  legacy.num_threads = 1;
  SmashResult legacy_result;
  const double legacy_ms = smash::bench::time_best_ms(repeats, [&] {
    legacy_result = SmashPipeline(legacy).run(ds->trace, ds->whois);
  });
  report.add(
      "pipeline/" + label + "/default_caps", legacy_ms,
      {{"campaigns", static_cast<double>(legacy_result.campaigns.size())},
       {"postings_budget_exceeded",
        legacy_result.postings_budget_exceeded() ? 1.0 : 0.0},
       {"peak_postings_bytes",
        static_cast<double>(legacy_result.peak_resident_postings_bytes())}});
  std::printf(
      "pipeline %-14s default-caps %9.1f ms  (%zu campaigns, "
      "budget_exceeded=%d <- the undercounting status quo)\n",
      label.c_str(), legacy_ms, legacy_result.campaigns.size(),
      legacy_result.postings_budget_exceeded() ? 1 : 0);

  // 2) Exact reference: caps inert (no skipping, no undercount), join
  //    fully in RAM. This is the output the budgeted runs must reproduce
  //    byte-identically, and its residency is what the budget divides.
  SmashConfig base;
  base.num_threads = 1;
  base.join_postings_cap = std::numeric_limits<std::uint32_t>::max();
  base.file_postings_cap = std::numeric_limits<std::uint32_t>::max();
  SmashResult unbounded;
  const double unbounded_ms = smash::bench::time_best_ms(repeats, [&] {
    unbounded = SmashPipeline(base).run(ds->trace, ds->whois);
  });
  const std::size_t peak_bytes = unbounded.peak_resident_postings_bytes();
  report.add("pipeline/" + label + "/inram_exact", unbounded_ms,
             {{"campaigns", static_cast<double>(unbounded.campaigns.size())},
              {"kept_servers", static_cast<double>(unbounded.pre.kept.size())},
              {"peak_postings_bytes", static_cast<double>(peak_bytes)},
              {"shard_passes", static_cast<double>(unbounded.join_shard_passes())}});
  std::printf(
      "pipeline %-14s inram-exact  %9.1f ms  (%zu campaigns, peak postings "
      "%zu B, %zu passes, budget_exceeded=%d)\n",
      label.c_str(), unbounded_ms, unbounded.campaigns.size(), peak_bytes,
      unbounded.join_shard_passes(),
      unbounded.postings_budget_exceeded() ? 1 : 0);

  // 3) Bounded-memory sharded join at a quarter of the exact run's peak,
  //    caps still inert, serial and threaded: must reproduce the exact
  //    reference within budget with no cap firing — week-scale completes
  //    exactly where the status quo had to undercount.
  const std::size_t budget = std::max<std::size_t>(peak_bytes / 4, 1);
  bool exact = true;
  for (const unsigned threads : {1u, 4u}) {
    SmashConfig budgeted = base;
    budgeted.num_threads = threads;
    budgeted.join_memory_budget_bytes = budget;
    SmashResult result;
    const double ms = smash::bench::time_best_ms(repeats, [&] {
      result = SmashPipeline(budgeted).run(ds->trace, ds->whois);
    });
    const bool matches = same_campaigns(result, unbounded);
    const bool within = result.peak_resident_postings_bytes() <= budget;
    exact = exact && matches && within &&
            !result.postings_budget_exceeded();
    report.add(
        "pipeline/" + label + "/budget_quarter/threads" + std::to_string(threads),
        ms,
        {{"campaigns", static_cast<double>(result.campaigns.size())},
         {"budget_bytes", static_cast<double>(budget)},
         {"peak_postings_bytes",
          static_cast<double>(result.peak_resident_postings_bytes())},
         {"shard_passes", static_cast<double>(result.join_shard_passes())},
         {"exact", matches ? 1.0 : 0.0},
         {"threads", static_cast<double>(threads)}});
    std::printf(
        "pipeline %-14s budget/4  %9.1f ms  (threads=%u, %zu campaigns, "
        "%zu passes, peak %zu B <= budget %zu B: %s, exact: %s)\n",
        label.c_str(), ms, threads, result.campaigns.size(),
        result.join_shard_passes(), result.peak_resident_postings_bytes(),
        budget, within ? "yes" : "NO", matches ? "yes" : "NO");
  }
  if (!exact) {
    std::fprintf(stderr,
                 "FAIL: budgeted week-scale run diverged from the in-RAM "
                 "join or overran its budget\n");
  }
  return exact;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_pipeline.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\nusage: %s [output.json] [--smoke]\n",
                   argv[i], argv[0]);
      return 1;
    } else {
      out_path = argv[i];
    }
  }

  smash::bench::JsonReporter report("pipeline");

  if (!smoke) {
    bench_preset(report, "2011day", 3);
    bench_preset(report, "2012day", 3);
  }
  const bool exact = bench_week_budget(report, smoke, smoke ? 1 : 2);

  if (!report.write(out_path)) return 1;
  std::printf("wrote %s\n", out_path.c_str());
  return exact ? 0 : 1;
}
