#!/usr/bin/env python3
"""Out-of-process crash-recovery matrix over the durability layer.

For every (mining threads x fsync policy x crash point) cell this harness:

  1. runs ``crash_driver run`` with SMASH_FAILPOINTS armed so the process
     dies (_Exit(42), no destructors -- a stand-in for SIGKILL) at a chosen
     WAL/checkpoint injection site,
  2. runs ``crash_driver resume`` on the surviving directory, feeding the
     rest of the schedule,
  3. runs ``crash_driver reference`` (no durability, never crashed),

and requires the resumed and reference processes to print byte-identical
final snapshot digests. Unlike tests/recovery_equivalence_test.cc this
crosses a real process boundary: nothing survives the crash except what
the durability layer put on disk.

Crash points mirror the in-process matrix:
  * wal.write crash       -- record lost mid-epoch; the client re-feeds it
  * wal.write short write -- torn record; replay truncates it, re-feed
  * wal.fsync crash       -- at an epoch seal (kOnSeal only: every fsync
                             there IS a seal); the sealing event re-feeds
  * ckpt.rename crash     -- mid-checkpoint install; the interrupted event
                             was already journaled, so no re-feed

Usage: crash_matrix.py --driver ./build/crash_driver [--seed N]
"""

import argparse
import os
import shutil
import subprocess
import sys
import tempfile

# (name, failpoint clause, refeed_crashed_event, on_seal_only)
CRASH_POINTS = [
    ("mid_epoch", "wal.write=crash@120", True, False),
    ("torn_write", "wal.write=short:6@120", True, False),
    ("deep_epoch", "wal.write=crash@700", True, False),
    ("on_seal", "wal.fsync=crash@1", True, True),
    ("mid_checkpoint", "ckpt.rename=crash@1", False, False),
]
POLICIES = ["off", "on_seal", "every_record"]
THREADS = [1, 4]


def run(argv, env=None, check=False):
    result = subprocess.run(
        argv, env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True
    )
    if check and result.returncode != 0:
        sys.stderr.write(result.stdout + result.stderr)
        raise SystemExit(f"{' '.join(argv)} exited {result.returncode}")
    return result


def parse_digest(stdout, label):
    begin = stdout.find("digest-begin\n")
    end = stdout.find("digest-end")
    if begin < 0 or end < 0:
        raise SystemExit(f"{label}: no digest block in output:\n{stdout}")
    return stdout[begin + len("digest-begin\n") : end]


def parse_kv(stdout, key):
    for line in stdout.splitlines():
        if line.startswith(key + "="):
            return int(line.split("=", 1)[1])
    return None


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--driver", required=True)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    base = [args.driver]
    failures = 0
    crashed_cells = 0
    cells = 0

    for threads in THREADS:
        for policy in POLICIES:
            reference = run(
                base
                + ["reference", "--seed", str(args.seed), "--policy", policy,
                   "--threads", str(threads)],
                check=True,
            )
            want = parse_digest(reference.stdout, "reference")

            for name, clause, refeed, on_seal_only in CRASH_POINTS:
                if on_seal_only and policy != "on_seal":
                    continue
                cells += 1
                label = f"{name} policy={policy} threads={threads}"
                workdir = tempfile.mkdtemp(prefix="smash_crash_matrix_")
                try:
                    common = [
                        "--seed", str(args.seed), "--policy", policy,
                        "--threads", str(threads),
                    ]
                    env = dict(os.environ, SMASH_FAILPOINTS=clause)
                    crashed = run(base + ["run", workdir] + common, env=env)
                    if crashed.returncode == 42:
                        crashed_cells += 1
                        crashed_at = parse_kv(crashed.stdout, "crashed_at")
                        start = crashed_at if refeed else crashed_at + 1
                    elif crashed.returncode == 0:
                        # Failpoint never reached (schedule too short for the
                        # skip): the cell degenerates to clean restartability.
                        start = None
                    else:
                        sys.stderr.write(crashed.stdout + crashed.stderr)
                        raise SystemExit(
                            f"{label}: run exited {crashed.returncode}"
                        )

                    if start is not None:
                        resumed = run(
                            base + ["resume", workdir, "--start", str(start)]
                            + common,
                            check=True,
                        )
                        got = parse_digest(resumed.stdout, label)
                        if got != want:
                            failures += 1
                            print(f"FAIL {label}\n  want:\n{want}  got:\n{got}")
                            continue
                    print(f"ok   {label}")
                finally:
                    shutil.rmtree(workdir, ignore_errors=True)

    if crashed_cells == 0:
        raise SystemExit("no cell actually crashed: the matrix is vacuous")
    print(f"{cells} cells, {crashed_cells} crashed+recovered, {failures} failures")
    if failures:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
