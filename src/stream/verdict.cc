#include "stream/verdict.h"

namespace smash::stream {

namespace {

// 1-in-kLookupSampleStride sampling of lookup latency: hot lookups stay
// two relaxed increments; the sampled ones add two steady_clock reads.
// Thread-local so concurrent readers never contend on the sampling state,
// and stride-aligned (every full stride contributes exactly one sample, a
// thread's partial tail stride contributes none) so lookup_ns.count ==
// sum over threads of floor(thread_lookups / stride): never more than
// lookups_total / stride, and short at most one sample per thread. The
// exporter-consistency gate in bench/perf_stream.cc relies on that bound.
bool sample_lookup() noexcept {
  thread_local std::uint32_t n = 0;
  return ++n % VerdictService::kLookupSampleStride == 0;
}

}  // namespace

VerdictAnswer VerdictService::answer(const ServerVerdict* verdict,
                                     const DetectionSnapshot* snapshot) const {
  lookups_->inc();
  VerdictAnswer out;
  if (snapshot != nullptr) {
    out.snapshot_available = true;
    out.snapshot_sequence = snapshot->sequence();
    out.snapshot_last_epoch = snapshot->last_epoch();
    // Read-time age from the immutable publish timestamp: two lookups a
    // second apart report ages a second apart even if no snapshot has
    // been published in between (a stalled miner must look stale, not
    // fresh).
    out.snapshot_age_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() -
                             snapshot->built_at())
                             .count();
  }
  if (verdict != nullptr) {
    out.malicious = true;
    out.verdict = *verdict;
    hits_->inc();
  }
  return out;
}

VerdictAnswer VerdictService::lookup(std::string_view host) const {
  const bool timed = sample_lookup();
  const auto start = timed ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point{};
  const auto snapshot = slot_.acquire();
  VerdictAnswer out = snapshot ? answer(snapshot->find_host(host), snapshot.get())
                               : answer(nullptr, nullptr);
  if (timed) {
    lookup_ns_->observe(std::chrono::duration<double, std::nano>(
                            std::chrono::steady_clock::now() - start)
                            .count());
  }
  return out;
}

VerdictAnswer VerdictService::lookup_request(std::string_view host,
                                             std::string_view server_ip) const {
  const bool timed = sample_lookup();
  const auto start = timed ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point{};
  VerdictAnswer out;
  const auto snapshot = slot_.acquire();
  if (!snapshot) {
    out = answer(nullptr, nullptr);
  } else {
    const ServerVerdict* verdict = snapshot->find_host(host);
    if (verdict == nullptr && !server_ip.empty()) {
      verdict = snapshot->find_ip(server_ip);
    }
    out = answer(verdict, snapshot.get());
  }
  if (timed) {
    lookup_ns_->observe(std::chrono::duration<double, std::nano>(
                            std::chrono::steady_clock::now() - start)
                            .count());
  }
  return out;
}

VerdictServiceStats VerdictService::stats() const {
  VerdictServiceStats out;
  out.queries = lookups_->value();
  out.hits = hits_->value();
  out.hit_rate = out.queries == 0
                     ? 0.0
                     : static_cast<double>(out.hits) /
                           static_cast<double>(out.queries);
  const auto now = std::chrono::steady_clock::now();
  const double elapsed_s =
      std::chrono::duration<double>(now - start_).count();
  out.qps = elapsed_s > 0.0 ? static_cast<double>(out.queries) / elapsed_s : 0.0;
  if (const auto snapshot = slot_.acquire()) {
    out.snapshot_available = true;
    out.snapshot_sequence = snapshot->sequence();
    out.snapshot_age_s =
        std::chrono::duration<double>(now - snapshot->built_at()).count();
  }
  return out;
}

}  // namespace smash::stream
