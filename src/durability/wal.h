// Per-epoch write-ahead log: length-prefixed, CRC32C-checksummed records
// for every ingested event and epoch-seal marker.
//
// On-disk framing, per record:
//
//   [u32 payload_len][u32 crc32c(payload)][payload]
//   payload = [u8 record_type][record body, little-endian]
//
// Segments: records append to wal-<seq>.log; the segment rotates at every
// epoch-seal marker (the seal record is always a segment's last record),
// so a segment holds one epoch's arrivals — including the first event of
// the *next* epoch, which arrives before the seal is processed and is what
// forces checkpoints to carry an exact (segment, byte-offset) position
// rather than a segment boundary. Segment files are created lazily on the
// first append after rotation, so a quiet tail never litters the dir.
//
// Scan semantics (recovery, docs/DURABILITY.md): records are valid up to
// the first framing violation — short header, impossible length, CRC
// mismatch, or unknown/undecodable type. A torn tail in the *last* segment
// truncates to the valid prefix; the same damage in an earlier segment is
// real corruption (later records exist beyond it) and must fail loudly.
// That classification is the caller's job; scan_records only reports where
// and why validity ended.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

#include "durability/file.h"
#include "durability/options.h"
#include "stream/ingest.h"

namespace smash::durability {

// --- record codec ------------------------------------------------------------

inline constexpr std::uint8_t kRecordRequest = 1;
inline constexpr std::uint8_t kRecordResolution = 2;
inline constexpr std::uint8_t kRecordRedirect = 3;
inline constexpr std::uint8_t kRecordSeal = 4;

// Epoch-seal marker: epoch `epoch` was sealed (implicitly by a later
// event's arrival, or explicitly by StreamEngine::finish()).
struct SealMarker {
  stream::EpochId epoch = 0;
};

using WalRecord = std::variant<stream::RequestEvent, stream::ResolutionEvent,
                               stream::RedirectEvent, SealMarker>;

// Encodes the record payload (type byte + body, no framing).
std::string encode_record(const WalRecord& record);

// Decodes a payload; nullopt when the type is unknown or the body is
// malformed (CRC-valid but undecodable payloads are writer bugs or
// deliberate tampering — callers fail loudly, they do not truncate).
std::optional<WalRecord> decode_record(std::string_view payload);

// --- segment files -----------------------------------------------------------

// wal-<seq>.log (seq rendered fixed-width so lexical sort = numeric sort).
std::string segment_file_name(std::uint64_t seq);
// Parses a segment file name; nullopt for anything else.
std::optional<std::uint64_t> parse_segment_file_name(std::string_view name);

// Appends framed records to one segment file.
class WalWriter {
 public:
  enum class Mode : std::uint8_t { kCreate, kResume };

  // Creates `dir`/wal-<seq>.log (kCreate) or reopens it for appending
  // (kResume — recovery, after truncating the segment to its valid
  // prefix). Failpoint site: "wal".
  WalWriter(const std::string& dir, std::uint64_t seq, Mode mode = Mode::kCreate);

  // Frames (length + CRC32C) and appends one encoded payload.
  void append(std::string_view payload);
  void sync() { file_.sync(); }
  void close() { file_.close(); }

  std::uint64_t offset() const noexcept { return file_.offset(); }

 private:
  File file_;
};

// --- scanning ----------------------------------------------------------------

struct ScanResult {
  // Byte offset of the end of the last valid record (== scan start when no
  // record was valid).
  std::uint64_t valid_bytes = 0;
  std::uint64_t records = 0;
  // True when the buffer ended exactly at a record boundary with every
  // record valid; false means a torn or corrupt record cut the scan short.
  bool clean = true;
  // Human-readable reason when !clean.
  std::string error;
};

// Scans framed records in `data` from `from`, invoking `fn(payload)` for
// each CRC-valid record. `fn` returns false to abort the scan (reported as
// !clean with its own reason). Never throws on malformed input.
ScanResult scan_records(std::string_view data, std::uint64_t from,
                        const std::function<bool(std::string_view payload)>& fn);

}  // namespace smash::durability
