// End-to-end perf baseline: full SMASH pipeline (preprocess -> mine ->
// correlate -> prune -> campaigns) per dataset preset, serial vs threaded
// mining, written to BENCH_pipeline.json.
//
// Usage: perf_pipeline [output.json]   (default: BENCH_pipeline.json)
#include <cstdio>
#include <string>

#include "bench_common.h"

namespace {

void bench_preset(smash::bench::JsonReporter& report,
                  const std::string& preset, int repeats) {
  const auto& ds = smash::bench::dataset(preset);

  for (const unsigned threads : {1u, 4u}) {
    smash::core::SmashConfig config;
    config.num_threads = threads;
    const smash::core::SmashPipeline pipeline(config);

    std::size_t campaigns = 0;
    std::size_t servers = 0;
    const double ms = smash::bench::time_best_ms(repeats, [&] {
      const auto result = pipeline.run(ds.trace, ds.whois);
      campaigns = result.campaigns.size();
      servers = result.pre.kept.size();
    });
    report.add("pipeline/" + preset + "/threads" + std::to_string(threads), ms,
               {{"campaigns", static_cast<double>(campaigns)},
                {"kept_servers", static_cast<double>(servers)},
                {"threads", static_cast<double>(threads)}});
    std::printf("pipeline %-9s threads=%u  %9.1f ms  (%zu campaigns, %zu kept servers)\n",
                preset.c_str(), threads, ms, campaigns, servers);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_pipeline.json";
  smash::bench::JsonReporter report("pipeline");

  bench_preset(report, "2011day", 3);
  bench_preset(report, "2012day", 3);

  if (!report.write(out_path)) return 1;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
