// Reproduces paper Fig. 9 (Appendix A): the IDF (distinct-client-count)
// distribution of all servers vs IDS-confirmed malicious servers, which
// justifies the popularity threshold of 200.
#include <cstdio>

#include "bench_common.h"
#include "core/preprocess.h"
#include "util/stats.h"

int main() {
  using namespace smash;
  const auto& ds = bench::dataset("2011day");
  const core::SmashConfig config;
  const auto agg = core::AggregatedTrace::build(ds.trace);
  const auto labels = ds.signatures.label(ds.trace, ids::Vintage::k2012);

  std::vector<double> all_counts;
  std::vector<double> malicious_counts;
  for (std::uint32_t s = 0; s < agg.servers().size(); ++s) {
    const auto& profile = agg.profile(s);
    if (profile.requests == 0) continue;
    const auto clients = static_cast<double>(profile.clients.size());
    all_counts.push_back(clients);
    if (labels.labeled(agg.server_name(s))) malicious_counts.push_back(clients);
  }

  const auto all_cdf = util::empirical_cdf(all_counts);
  const auto mal_cdf = util::empirical_cdf(malicious_counts);

  util::Table table("Fig. 9: IDF (distinct clients per server) distribution");
  table.set_header({"clients <= x", "all servers", "IDS-labeled servers"});
  for (const double x : {1.0, 2.0, 5.0, 10.0, 50.0, 127.0, 200.0, 1000.0}) {
    table.add_row({util::format_fixed(x, 0),
                   util::format_fixed(util::cdf_at(all_cdf, x), 3),
                   malicious_counts.empty()
                       ? "n/a"
                       : util::format_fixed(util::cdf_at(mal_cdf, x), 3)});
  }
  std::fputs(table.render().c_str(), stdout);

  double max_malicious = 0;
  for (double v : malicious_counts) max_malicious = std::max(max_malicious, v);
  std::printf("\nservers: %zu; IDS-labeled: %zu; max IDF among labeled: %.0f\n",
              all_counts.size(), malicious_counts.size(), max_malicious);
  std::printf("threshold 200 keeps %.1f%% of all servers\n",
              100.0 * util::cdf_at(all_cdf, 200.0));
  std::puts("Shape targets (paper): ~90% of malicious servers have IDF < 10,");
  std::puts("  max labeled IDF 127; threshold 200 keeps ~99% of servers while");
  std::puts("  removing the popular head.");
  return 0;
}
