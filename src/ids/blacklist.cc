#include "ids/blacklist.h"

#include <stdexcept>

namespace smash::ids {

void Blacklist::add_primary_source(std::string_view source_name) {
  primary_.try_emplace(std::string(source_name));
}

void Blacklist::add_aggregated_source(std::string_view source_name) {
  aggregated_.try_emplace(std::string(source_name));
}

void Blacklist::list(std::string_view source_name, std::string_view domain) {
  const std::string key(source_name);
  if (auto it = primary_.find(key); it != primary_.end()) {
    it->second.domains.insert(std::string(domain));
    return;
  }
  if (auto it = aggregated_.find(key); it != aggregated_.end()) {
    it->second.domains.insert(std::string(domain));
    return;
  }
  throw std::invalid_argument("Blacklist::list: unknown source " + key);
}

bool Blacklist::confirmed(std::string_view domain) const {
  const std::string key(domain);
  for (const auto& [name, data] : primary_) {
    (void)name;
    if (data.domains.count(key)) return true;
  }
  int aggregated_hits = 0;
  for (const auto& [name, data] : aggregated_) {
    (void)name;
    if (data.domains.count(key) && ++aggregated_hits >= 2) return true;
  }
  return false;
}

std::vector<std::string> Blacklist::sources_listing(std::string_view domain) const {
  const std::string key(domain);
  std::vector<std::string> out;
  for (const auto& [name, data] : primary_) {
    if (data.domains.count(key)) out.push_back(name);
  }
  for (const auto& [name, data] : aggregated_) {
    if (data.domains.count(key)) out.push_back(name);
  }
  return out;
}

}  // namespace smash::ids
