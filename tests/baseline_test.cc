#include "baseline/baselines.h"

#include <gtest/gtest.h>

#include "core/evaluation.h"
#include "core/pipeline.h"
#include "synth/world.h"

namespace smash::baseline {
namespace {

class BaselinesOnTinyWorld : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new synth::Dataset(synth::generate_world(synth::tiny_world()));
    config_ = new core::SmashConfig();
    config_->idf_threshold = 60;
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete config_;
    dataset_ = nullptr;
    config_ = nullptr;
  }
  static synth::Dataset* dataset_;
  static core::SmashConfig* config_;
};

synth::Dataset* BaselinesOnTinyWorld::dataset_ = nullptr;
core::SmashConfig* BaselinesOnTinyWorld::config_ = nullptr;

TEST_F(BaselinesOnTinyWorld, ClientOnlyHasTerriblePrecision) {
  const auto result =
      client_dimension_only(dataset_->trace, dataset_->whois, *config_);
  EXPECT_GT(result.campaigns.size(), 10u);
  const auto score = score_baseline(result, dataset_->truth);
  // The main dimension alone herds benign co-visited groups wholesale
  // (paper §V-C1: only ~4% of main-dimension ASHs are malicious).
  EXPECT_LT(score.precision(), 0.5);
  EXPECT_GT(score.recall(), 0.5);  // but it sees most campaign servers
}

TEST_F(BaselinesOnTinyWorld, IdsBlacklistOnlyMissesMostServers) {
  const auto result = ids_blacklist_only(dataset_->trace, dataset_->signatures,
                                         dataset_->blacklist);
  const auto score = score_baseline(result, dataset_->truth);
  EXPECT_GT(score.precision(), 0.9);  // signatures rarely lie
  EXPECT_LT(score.recall(), 0.6);     // ...but cover a fraction of the truth
}

TEST_F(BaselinesOnTinyWorld, SmashBeatsIdsOnlyRecallAtComparablePrecision) {
  const core::SmashPipeline pipeline(*config_);
  const auto smash = pipeline.run(dataset_->trace, dataset_->whois);
  std::size_t smash_malicious = 0;
  for (const auto& campaign : smash.campaigns) {
    for (auto member : campaign.servers) {
      smash_malicious +=
          dataset_->truth.server_is_malicious(smash.server_name(member));
    }
  }
  const auto ids_only = ids_blacklist_only(dataset_->trace, dataset_->signatures,
                                           dataset_->blacklist);
  const auto ids_score = score_baseline(ids_only, dataset_->truth);
  // The paper's headline at ISP scale is ~7x; the tiny test world has much
  // denser IDS/blacklist coverage, so we assert a conservative 1.5x.
  EXPECT_GT(2 * smash_malicious, 3 * ids_score.truly_malicious);
}

TEST_F(BaselinesOnTinyWorld, KMeansRunsAndUnderperforms) {
  KMeansConfig kmeans;
  kmeans.k = 32;
  const auto result =
      feature_vector_kmeans(dataset_->trace, dataset_->whois, *config_, kmeans);
  const auto score = score_baseline(result, dataset_->truth);
  // The single-feature-vector approach either reports loose clusters
  // (poor precision) or cohesive-only clusters (poor recall); it must not
  // dominate SMASH on both axes.
  const core::SmashPipeline pipeline(*config_);
  const auto smash = pipeline.run(dataset_->trace, dataset_->whois);
  std::size_t smash_reported = 0;
  std::size_t smash_malicious = 0;
  for (const auto& campaign : smash.campaigns) {
    for (auto member : campaign.servers) {
      ++smash_reported;
      smash_malicious +=
          dataset_->truth.server_is_malicious(smash.server_name(member));
    }
  }
  const double smash_precision =
      smash_reported == 0 ? 0 : double(smash_malicious) / smash_reported;
  const double smash_recall =
      double(smash_malicious) / dataset_->truth.num_malicious_servers();
  EXPECT_FALSE(score.precision() >= smash_precision &&
               score.recall() >= smash_recall)
      << "kmeans precision " << score.precision() << " recall " << score.recall()
      << " vs smash " << smash_precision << "/" << smash_recall;
}

TEST_F(BaselinesOnTinyWorld, KMeansIsDeterministic) {
  KMeansConfig kmeans;
  kmeans.k = 16;
  const auto a =
      feature_vector_kmeans(dataset_->trace, dataset_->whois, *config_, kmeans);
  const auto b =
      feature_vector_kmeans(dataset_->trace, dataset_->whois, *config_, kmeans);
  EXPECT_EQ(a.campaigns, b.campaigns);
}

TEST(BaselineResult, NumServersDeduplicates) {
  BaselineResult result;
  result.campaigns = {{"a.com", "b.com"}, {"b.com", "c.com"}};
  EXPECT_EQ(result.num_servers(), 3u);
}

}  // namespace
}  // namespace smash::baseline
