// Connected components over the CSR graph.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace smash::graph {

struct Components {
  // component_of[node] in [0, count)
  std::vector<std::uint32_t> component_of;
  std::uint32_t count = 0;

  // Nodes grouped by component, each group sorted ascending.
  std::vector<std::vector<std::uint32_t>> groups() const;
};

Components connected_components(const Graph& g);

}  // namespace smash::graph
