// Shard-mergeable preprocessed state for the streaming engine.
//
// Batch preprocessing (core/preprocess.h) walks every request of the window
// trace: it parses the URI file and parameter pattern, maps hostnames and
// referrers to effective 2LDs, and interns strings — per request, per
// window, on every epoch close. `ShardPre` caches that per-request work
// once, at epoch seal time, in the shard's own id space;
// `merge_shard_pres` then assembles a window `PreprocessResult` from the
// cached shards in time proportional to the number of *distinct* entities
// per shard (servers, clients, files, ...), never re-touching requests.
//
// The merge is byte-identical to `preprocess(assembled_window_trace)`:
// window interner ids are assigned by first appearance across shards in
// epoch order, exactly as journal-replay window assembly would assign
// them, and 2LD aggregation follows the same raw-interner order as
// `AggregatedTrace::build`. tests/preshard_test.cc enforces the deep
// equality; the stream/batch equivalence suite rests on it.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/preprocess.h"
#include "core/smash_config.h"
#include "net/trace.h"
#include "util/id_set.h"
#include "util/interner.h"

namespace smash::core {

// Per-2LD contribution of one epoch shard, in shard-local id space.
// Client/ip ids are the shard trace's interner ids; file ids index
// ShardPre::file_names; referrer_counts keys index ShardPre::referrer_2lds.
struct ShardServerDelta {
  util::IdSet clients;
  util::IdSet ips;
  util::IdSet days;
  util::IdSet files;
  std::unordered_set<std::string> user_agents;
  std::unordered_set<std::string> param_patterns;
  std::unordered_map<std::uint32_t, std::uint32_t> referrer_counts;
  std::uint32_t requests = 0;
  std::uint32_t error_requests = 0;
};

// Everything expensive about preprocessing one shard, computed exactly once
// when the epoch is sealed. Name lists are ordered by first appearance so
// the merge can rebuild window interners deterministically.
struct ShardPre {
  // Effective 2LD of every shard server id (parallel to the shard trace's
  // server interner).
  std::vector<std::string> server_2lds;
  // Shard server id -> index into delta_2lds / deltas.
  std::vector<std::uint32_t> delta_of_server;
  // Distinct 2LDs, in shard-server-id order, and their deltas.
  std::vector<std::string> delta_2lds;
  std::vector<ShardServerDelta> deltas;
  // Distinct URI files, in request (first-appearance) order.
  std::vector<std::string> file_names;
  // Distinct referrer 2LDs, in request (first-appearance) order.
  std::vector<std::string> referrer_2lds;
};

// Builds the cached preprocessed form of one finalized shard trace.
// O(shard requests); this is the only place per-request parsing happens.
ShardPre build_shard_pre(const net::Trace& shard);

// Order-independent content hash of a ShardPre. Recovery rebuilds each
// checkpointed shard's ShardPre from its deserialized trace and
// cross-checks this fingerprint against the one recorded at checkpoint
// time; a mismatch means the rebuild diverged from the pre-crash cache.
// Unordered containers contribute commutatively (summed element hashes),
// so the value is stable across hash-table iteration orders.
std::uint64_t shard_pre_fingerprint(const ShardPre& pre);

// One shard's inputs to the merge: its trace (for interner name lists and
// resolution/redirect state) plus its cached ShardPre.
struct ShardPreRef {
  const net::Trace* trace = nullptr;
  const ShardPre* pre = nullptr;
};

// A window's preprocessed state assembled from cached shards. `pre` feeds
// SmashPipeline::run_preprocessed; `ips` is the window IP interner the
// profile `ips` id-sets resolve against (what `assembled_trace.ips()`
// would have been), and `clients` likewise for the profile `clients`
// id-sets — the incremental miner translates both to stable ids that
// survive window re-interning.
struct WindowPre {
  PreprocessResult pre;
  util::Interner ips;
  util::Interner clients;
};

// Merges cached shards (window order: oldest epoch first) into the window's
// PreprocessResult, byte-identical to `preprocess(assembled_window,
// config)`. Cost is proportional to distinct entities per shard, not
// requests. The delta-merge phase is parallelized by window-2LD interner
// range across config.num_threads workers (interning itself is inherently
// sequential and stays serial); output is byte-identical for every thread
// count, per-profile delta order included.
WindowPre merge_shard_pres(const std::vector<ShardPreRef>& shards,
                           const SmashConfig& config);

}  // namespace smash::core
