// Differential suite for the deterministic chunked-parallel Louvain local
// moving: for every tested thread count and chunk size — including the
// degenerate chunk of one node and a chunk covering the whole graph — the
// partition must be byte-identical to the serial seed implementation, on
// seeded random graphs and on the classic edge-case graphs. Conventions
// (seeds, env knobs, reproduction) in docs/TESTING.md.
#include "graph/louvain.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "test_helpers.h"

namespace smash::graph {
namespace {

using test::fuzz_seeds;
using test::random_clustered_graph;
using test::random_weighted_graph;

constexpr unsigned kThreadCounts[] = {1u, 2u, 4u, 8u};

// The tested chunk sizes: single-node chunks (every node applied against
// fully fresh state), a mid-size chunk, and one chunk spanning the whole
// graph (maximum staleness pressure on the apply-phase conflict check).
std::vector<std::uint32_t> chunk_sizes(const Graph& g) {
  return {1u, 64u, std::max(g.num_nodes(), 1u)};
}

void expect_same_result(const LouvainResult& serial, const LouvainResult& other,
                        const std::string& context) {
  EXPECT_EQ(serial.community_of, other.community_of) << context;
  EXPECT_EQ(serial.num_communities, other.num_communities) << context;
  EXPECT_EQ(serial.levels, other.levels) << context;
  EXPECT_EQ(serial.modularity, other.modularity) << context;  // bitwise
  // The chunked path replays the serial trajectory, so the trajectory
  // counters agree with the serial run no matter how it was executed.
  EXPECT_EQ(serial.stats.sweeps, other.stats.sweeps) << context;
  EXPECT_EQ(serial.stats.moves, other.stats.moves) << context;
  EXPECT_EQ(serial.stats.evaluated_nodes, other.stats.evaluated_nodes) << context;
}

// Runs the full thread x chunk matrix against the serial result.
void expect_matrix_matches_serial(const Graph& g, const std::string& context,
                                  bool refined = false) {
  const LouvainOptions serial_options;
  const LouvainResult serial =
      refined ? louvain_refined(g, serial_options) : louvain(g, serial_options);
  EXPECT_EQ(serial.stats.chunks, 0u) << context;        // serial path ran
  EXPECT_EQ(serial.stats.stale_reevals, 0u) << context;

  for (const unsigned threads : kThreadCounts) {
    for (const std::uint32_t chunk : chunk_sizes(g)) {
      LouvainOptions options;
      options.num_threads = threads;
      options.chunk_size = chunk;
      const LouvainResult result =
          refined ? louvain_refined(g, options) : louvain(g, options);
      expect_same_result(serial, result,
                         context + " threads=" + std::to_string(threads) +
                             " chunk=" + std::to_string(chunk));
    }
  }
}

TEST(LouvainParallel, SerialDefaultsUnchanged) {
  const Graph g = random_clustered_graph(12, 8, 0.8, 7);
  // Default options and an explicit num_threads=1/chunk_size=0 are the
  // same code path: the seed's serial sweep, chunk counters untouched.
  const LouvainResult a = louvain(g);
  LouvainOptions options;
  options.num_threads = 1;
  options.chunk_size = 0;
  const LouvainResult b = louvain(g, options);
  expect_same_result(a, b, "explicit serial options");
  EXPECT_EQ(a.stats.chunks, 0u);
  EXPECT_GT(a.stats.sweeps, 0u);
  EXPECT_GT(a.stats.evaluated_nodes, 0u);
}

TEST(LouvainParallel, ChunkSizeForcesChunkedPathEvenSingleThreaded) {
  const Graph g = random_clustered_graph(12, 8, 0.8, 7);
  const LouvainResult serial = louvain(g);

  LouvainOptions options;
  options.num_threads = 1;
  options.chunk_size = 16;
  const LouvainResult chunked = louvain(g, options);
  expect_same_result(serial, chunked, "threads=1 chunk=16");
  EXPECT_GT(chunked.stats.chunks, 0u);  // the chunked path actually ran
}

TEST(LouvainParallel, EmptyGraph) {
  GraphBuilder builder(0);
  const Graph g = std::move(builder).build();
  expect_matrix_matches_serial(g, "empty");
  const LouvainResult result = louvain(g);
  EXPECT_EQ(result.num_communities, 0u);
}

TEST(LouvainParallel, SingletonAndIsolatedNodes) {
  {
    GraphBuilder builder(1);
    expect_matrix_matches_serial(std::move(builder).build(), "singleton");
  }
  {
    // Edgeless graph: everyone stays a singleton community.
    GraphBuilder builder(17);
    const Graph g = std::move(builder).build();
    expect_matrix_matches_serial(g, "edgeless");
    EXPECT_EQ(louvain(g).num_communities, 17u);
  }
  {
    // A clique plus isolated stragglers.
    GraphBuilder builder(12);
    for (std::uint32_t i = 0; i < 6; ++i) {
      for (std::uint32_t j = i + 1; j < 6; ++j) builder.add_edge(i, j, 1.0);
    }
    expect_matrix_matches_serial(std::move(builder).build(),
                                 "clique+isolated");
  }
}

TEST(LouvainParallel, StarGraph) {
  GraphBuilder builder(33);
  for (std::uint32_t leaf = 1; leaf < 33; ++leaf) {
    builder.add_edge(0, leaf, 1.0);
  }
  expect_matrix_matches_serial(std::move(builder).build(), "star");
}

TEST(LouvainParallel, CliqueGraph) {
  GraphBuilder builder(24);
  for (std::uint32_t i = 0; i < 24; ++i) {
    for (std::uint32_t j = i + 1; j < 24; ++j) {
      builder.add_edge(i, j, 1.0 + 0.01 * static_cast<double>(i));
    }
  }
  const Graph g = std::move(builder).build();
  expect_matrix_matches_serial(g, "clique");
  const LouvainResult result = louvain(g);
  EXPECT_EQ(result.num_communities, 1u);  // a clique never splits
}

TEST(LouvainParallel, RandomGraphsMatchSerial) {
  for (const auto seed : fuzz_seeds(8)) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const Graph g = random_weighted_graph(
        /*n=*/150 + static_cast<std::uint32_t>(seed % 5) * 37,
        /*edges=*/600, seed);
    expect_matrix_matches_serial(g, "random seed=" + std::to_string(seed));
  }
}

TEST(LouvainParallel, ClusteredGraphsMatchSerial) {
  for (const auto seed : fuzz_seeds(8)) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const Graph g = random_clustered_graph(
        /*clusters=*/16 + static_cast<std::uint32_t>(seed % 4) * 4,
        /*cluster_size=*/8, /*intra_p=*/0.7, seed);
    expect_matrix_matches_serial(g, "clustered seed=" + std::to_string(seed));
  }
}

TEST(LouvainParallel, RefinedMatchesSerial) {
  for (const auto seed : fuzz_seeds(4)) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const Graph g = random_clustered_graph(12, 10, 0.75, seed ^ 0xbeefULL);
    expect_matrix_matches_serial(g, "refined seed=" + std::to_string(seed),
                                 /*refined=*/true);
  }
}

TEST(LouvainParallel, StatsInvariantAcrossThreadCounts) {
  // At a fixed chunk size, evaluation is pure per node and the apply order
  // is fixed, so even the chunk/stale counters cannot depend on the thread
  // count.
  const Graph g = random_clustered_graph(20, 8, 0.7, 42);
  LouvainOptions base;
  base.chunk_size = 32;
  base.num_threads = 1;
  const LouvainResult reference = louvain_refined(g, base);
  EXPECT_GT(reference.stats.chunks, 0u);

  for (const unsigned threads : {2u, 4u, 8u}) {
    LouvainOptions options = base;
    options.num_threads = threads;
    const LouvainResult result = louvain_refined(g, options);
    EXPECT_EQ(reference.stats, result.stats) << "threads=" << threads;
    EXPECT_EQ(reference.community_of, result.community_of)
        << "threads=" << threads;
  }
}

TEST(LouvainParallel, TrajectoryCountersInvariantAcrossChunkSizes) {
  // sweeps/moves/evaluated_nodes describe the (shared) serial trajectory;
  // only chunks and stale_reevals may differ with the chunk size.
  const Graph g = random_clustered_graph(20, 8, 0.7, 43);
  const LouvainResult serial = louvain(g);
  for (const std::uint32_t chunk : chunk_sizes(g)) {
    LouvainOptions options;
    options.num_threads = 4;
    options.chunk_size = chunk;
    const LouvainResult result = louvain(g, options);
    EXPECT_EQ(serial.stats.sweeps, result.stats.sweeps) << "chunk=" << chunk;
    EXPECT_EQ(serial.stats.moves, result.stats.moves) << "chunk=" << chunk;
    EXPECT_EQ(serial.stats.evaluated_nodes, result.stats.evaluated_nodes)
        << "chunk=" << chunk;
    EXPECT_EQ(serial.community_of, result.community_of) << "chunk=" << chunk;
  }
}

}  // namespace
}  // namespace smash::graph
