// Robustness and property tests: degenerate inputs through the full
// pipeline, and cross-seed invariants of the synthetic-world + pipeline
// combination.
#include <gtest/gtest.h>

#include "core/evaluation.h"
#include "core/pipeline.h"
#include "synth/world.h"
#include "test_helpers.h"

namespace smash::core {
namespace {

using test::add_request;

TEST(Robustness, EmptyTrace) {
  net::Trace trace;
  trace.finalize();
  whois::Registry registry;
  const auto result = SmashPipeline{}.run(trace, registry);
  EXPECT_EQ(result.pre.servers_after_filter, 0u);
  EXPECT_TRUE(result.campaigns.empty());
}

TEST(Robustness, SingleRequestTrace) {
  net::Trace trace;
  add_request(trace, "c1", "only.com", "/x.html");
  trace.finalize();
  whois::Registry registry;
  const auto result = SmashPipeline{}.run(trace, registry);
  EXPECT_EQ(result.pre.servers_after_filter, 1u);
  EXPECT_TRUE(result.campaigns.empty());  // nothing to associate with
}

TEST(Robustness, AllServersPopularYieldsNothing) {
  net::Trace trace;
  for (int s = 0; s < 3; ++s) {
    for (int c = 0; c < 10; ++c) {
      add_request(trace, "c" + std::to_string(c), "pop" + std::to_string(s) + ".com",
                  "/p.html");
    }
  }
  trace.finalize();
  whois::Registry registry;
  SmashConfig config;
  config.idf_threshold = 5;
  const auto result = SmashPipeline(config).run(trace, registry);
  EXPECT_EQ(result.pre.servers_after_filter, 0u);
  EXPECT_TRUE(result.campaigns.empty());
}

TEST(Robustness, MissingWhoisRegistryIsFine) {
  net::Trace trace;
  for (const char* bot : {"b1", "b2"}) {
    for (int s = 0; s < 10; ++s) {
      add_request(trace, bot, "m" + std::to_string(s) + ".com", "/gate.php");
    }
  }
  trace.finalize();
  whois::Registry empty;  // no records at all
  SmashConfig config;
  config.idf_threshold = 100;
  const auto result = SmashPipeline(config).run(trace, empty);
  EXPECT_EQ(result.campaigns.size(), 1u);  // file dimension carries it
}

TEST(Robustness, IpLiteralServersSurviveAggregation) {
  net::Trace trace;
  for (const char* bot : {"b1", "b2"}) {
    for (int s = 0; s < 9; ++s) {
      add_request(trace, bot, "10.9.8." + std::to_string(s), "/sh.php");
    }
  }
  trace.finalize();
  whois::Registry registry;
  SmashConfig config;
  config.idf_threshold = 100;
  const auto result = SmashPipeline(config).run(trace, registry);
  ASSERT_EQ(result.campaigns.size(), 1u);
  EXPECT_EQ(result.campaigns[0].servers.size(), 9u);
  EXPECT_EQ(result.server_name(result.campaigns[0].servers[0]).substr(0, 7),
            "10.9.8.");
}

TEST(Robustness, DuplicateRequestsDoNotInflateAnything) {
  net::Trace a;
  net::Trace b;
  for (const char* bot : {"b1", "b2"}) {
    for (int s = 0; s < 8; ++s) {
      const std::string host = "d" + std::to_string(s) + ".com";
      add_request(a, bot, host, "/x.php");
      for (int rep = 0; rep < 5; ++rep) add_request(b, bot, host, "/x.php");
    }
  }
  a.finalize();
  b.finalize();
  whois::Registry registry;
  SmashConfig config;
  config.idf_threshold = 100;
  const auto ra = SmashPipeline(config).run(a, registry);
  const auto rb = SmashPipeline(config).run(b, registry);
  ASSERT_EQ(ra.campaigns.size(), rb.campaigns.size());
  ASSERT_EQ(ra.campaigns.size(), 1u);
  EXPECT_EQ(ra.campaigns[0].servers.size(), rb.campaigns[0].servers.size());
}

// Cross-seed properties of the full synthetic-world pipeline.
class SeedPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedPropertyTest, PipelineInvariantsHoldForAnySeed) {
  const synth::Dataset ds = synth::generate_world(synth::tiny_world(GetParam()));
  SmashConfig config;
  config.idf_threshold = 60;
  const auto result = SmashPipeline(config).run(ds.trace, ds.whois);

  // Invariant 1: every campaign has >= 2 servers and >= 1 involved client.
  for (const auto& campaign : result.campaigns) {
    EXPECT_GE(campaign.servers.size(), 2u);
    EXPECT_GE(campaign.involved_clients.size(), 1u);
  }
  // Invariant 2: no server appears in two campaigns (main herds partition).
  std::set<std::uint32_t> seen;
  for (const auto& campaign : result.campaigns) {
    for (auto member : campaign.servers) {
      EXPECT_TRUE(seen.insert(member).second) << "server in two campaigns";
    }
  }
  // Invariant 3: detections never include unstructured benign servers.
  for (const auto& campaign : result.campaigns) {
    for (auto member : campaign.servers) {
      EXPECT_TRUE(ds.truth.campaign_of(result.server_name(member)).has_value());
    }
  }
  // Invariant 4: scores are finite and non-negative; masks only use bits
  // of dimensions that exist.
  for (std::size_t i = 0; i < result.correlation.score.size(); ++i) {
    EXPECT_GE(result.correlation.score[i], 0.0);
    EXPECT_LT(result.correlation.score[i],
              static_cast<double>(result.dims.size()));
    EXPECT_EQ(result.correlation.dims_mask[i] & ~0b111, 0);
  }
  // Invariant 5: evaluation partitions every detected server into exactly
  // one verdict bucket.
  const Evaluator evaluator(ds.trace, ds.signatures, ds.blacklist, ds.truth);
  for (const bool single : {false, true}) {
    const auto eval = evaluator.evaluate(result, single);
    const auto& c = eval.server_counts;
    EXPECT_EQ(c.smash, c.ids2012 + c.ids2013 + c.blacklist + c.new_servers +
                           c.suspicious + c.false_positives);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedPropertyTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

}  // namespace
}  // namespace smash::core
