#include "obs/logger.h"

#include <filesystem>

namespace smash::obs {

MetricsLogger::MetricsLogger(std::shared_ptr<Registry> registry,
                             std::string path,
                             std::chrono::milliseconds interval)
    : registry_(std::move(registry)), path_(std::move(path)),
      interval_(interval) {
  const auto parent = std::filesystem::path(path_).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  out_.open(path_, std::ios::app);
  thread_ = std::thread([this] { loop(); });
}

MetricsLogger::~MetricsLogger() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  write_line();  // final snapshot: short-lived engines still leave one line
}

void MetricsLogger::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (cv_.wait_for(lock, interval_, [this] { return stop_; })) return;
    lock.unlock();
    write_line();
    lock.lock();
  }
}

void MetricsLogger::write_line() {
  const auto ts_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count();
  // Render outside the lock: snapshotting sums every shard and must not
  // serialize against the interval thread's wakeup.
  const std::string metrics = registry_->render_json();
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!out_.is_open()) return;
  out_ << "{\"ts_unix_ms\":" << ts_ms << ",\"metrics\":" << metrics << "}\n";
  out_.flush();
  ++lines_;
}

void MetricsLogger::flush_now() { write_line(); }

std::uint64_t MetricsLogger::lines_written() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

}  // namespace smash::obs
