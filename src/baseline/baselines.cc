#include "baseline/baselines.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "core/dimensions.h"
#include "core/file_classifier.h"
#include "core/preprocess.h"
#include "util/rng.h"

namespace smash::baseline {

std::size_t BaselineResult::num_servers() const {
  std::unordered_set<std::string> names;
  for (const auto& campaign : campaigns) {
    names.insert(campaign.begin(), campaign.end());
  }
  return names.size();
}

namespace {

constexpr std::uint32_t kBucketsPerBlock = 64;

// Feature hashing: each dimension's keys are folded into a fixed block of
// buckets; blocks are concatenated and block-weighted. This is the honest
// way to "assign each server a feature vector" across incommensurable
// dimensions, which is precisely the design §III-B argues against.
std::vector<double> hashed_features(const core::PreprocessResult& pre,
                                    const whois::Registry& registry,
                                    const core::SmashConfig& smash_config,
                                    const KMeansConfig& config,
                                    std::uint32_t kept_idx) {
  std::vector<double> out(4 * kBucketsPerBlock, 0.0);
  const auto& profile = pre.agg.profile(pre.kept[kept_idx]);

  const auto add = [&out](int block, std::uint64_t key, double weight) {
    out[block * kBucketsPerBlock + key % kBucketsPerBlock] += weight;
  };
  for (auto client : profile.clients) add(0, client, config.client_weight);
  for (auto file : profile.files) add(1, file, config.file_weight);
  for (auto ip : profile.ips) add(2, ip, config.ip_weight);

  if (const whois::Record* rec = registry.find(pre.agg.server_name(pre.kept[kept_idx]))) {
    for (int f = 0; f < whois::kNumFields; ++f) {
      const auto& value = rec->value(static_cast<whois::Field>(f));
      if (value.empty() || registry.is_proxy_value(value)) continue;
      add(3, util::fnv1a(value), config.whois_weight);
    }
  }
  (void)smash_config;

  // L2-normalize so k-means distances are cosine-like.
  double norm = 0.0;
  for (double v : out) norm += v * v;
  if (norm > 0.0) {
    norm = std::sqrt(norm);
    for (double& v : out) v /= norm;
  }
  return out;
}

double squared_distance(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace

BaselineResult feature_vector_kmeans(const net::Trace& trace,
                                     const whois::Registry& registry,
                                     const core::SmashConfig& smash_config,
                                     const KMeansConfig& config) {
  BaselineResult result;
  result.name = "feature-vector-kmeans";

  const auto pre = core::preprocess(trace, smash_config);
  const auto n = static_cast<std::uint32_t>(pre.kept.size());
  if (n == 0) return result;
  const std::uint32_t k = std::min(config.k, n);

  std::vector<std::vector<double>> features;
  features.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    features.push_back(hashed_features(pre, registry, smash_config, config, i));
  }

  // k-means with Forgy initialization from a deterministic RNG.
  util::Rng rng(config.seed);
  std::vector<std::vector<double>> centroids;
  for (auto idx : rng.sample_without_replacement(n, k)) {
    centroids.push_back(features[idx]);
  }

  std::vector<std::uint32_t> assignment(n, 0);
  for (int iter = 0; iter < config.max_iterations; ++iter) {
    bool changed = false;
    for (std::uint32_t i = 0; i < n; ++i) {
      double best = squared_distance(features[i], centroids[assignment[i]]);
      for (std::uint32_t c = 0; c < k; ++c) {
        const double d = squared_distance(features[i], centroids[c]);
        if (d < best) {
          best = d;
          assignment[i] = c;
          changed = true;
        }
      }
    }
    if (!changed) break;

    std::vector<std::vector<double>> sums(k, std::vector<double>(features[0].size(), 0.0));
    std::vector<std::uint32_t> counts(k, 0);
    for (std::uint32_t i = 0; i < n; ++i) {
      ++counts[assignment[i]];
      for (std::size_t d = 0; d < features[i].size(); ++d) {
        sums[assignment[i]][d] += features[i][d];
      }
    }
    for (std::uint32_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      for (auto& v : sums[c]) v /= counts[c];
      centroids[c] = std::move(sums[c]);
    }
  }

  // Report clusters whose members sit close to their centroid (cohesive
  // clusters). Loose agglomerations — the common failure of this baseline —
  // are rejected here, which costs it most of its recall.
  std::vector<std::vector<std::uint32_t>> clusters(k);
  for (std::uint32_t i = 0; i < n; ++i) clusters[assignment[i]].push_back(i);
  for (std::uint32_t c = 0; c < k; ++c) {
    if (clusters[c].size() < 2) continue;
    double mean_similarity = 0.0;
    for (auto i : clusters[c]) {
      // Cosine to centroid (features are unit vectors; centroid is not).
      double dot = 0.0;
      double cnorm = 0.0;
      for (std::size_t d = 0; d < features[i].size(); ++d) {
        dot += features[i][d] * centroids[c][d];
        cnorm += centroids[c][d] * centroids[c][d];
      }
      mean_similarity += cnorm > 0 ? dot / std::sqrt(cnorm) : 0.0;
    }
    mean_similarity /= static_cast<double>(clusters[c].size());
    if (mean_similarity < config.report_cohesion) continue;

    std::vector<std::string> names;
    for (auto i : clusters[c]) names.push_back(pre.agg.server_name(pre.kept[i]));
    result.campaigns.push_back(std::move(names));
  }
  return result;
}

BaselineResult client_dimension_only(const net::Trace& trace,
                                     const whois::Registry& registry,
                                     const core::SmashConfig& config) {
  BaselineResult result;
  result.name = "client-dimension-only";

  const auto pre = core::preprocess(trace, config);
  const auto main =
      core::mine_dimension(core::Dimension::kClient, pre, registry, config);
  for (const auto& ash : main.ashes) {
    std::vector<std::string> names;
    for (auto member : ash.members) {
      names.push_back(pre.agg.server_name(pre.kept[member]));
    }
    result.campaigns.push_back(std::move(names));
  }
  return result;
}

BaselineResult ids_blacklist_only(const net::Trace& trace,
                                  const ids::SignatureEngine& signatures,
                                  const ids::Blacklist& blacklist) {
  BaselineResult result;
  result.name = "ids+blacklist";

  // Group IDS hits by threat id (the paper's false-negative grouping), and
  // collect blacklist-confirmed servers as one extra pool.
  const auto labels = signatures.label(trace, ids::Vintage::k2012);
  std::unordered_map<std::string, std::vector<std::string>> by_threat;
  std::unordered_set<std::string> seen;
  for (const auto& [server, threats] : labels.threats) {
    for (const auto& threat : threats) by_threat[threat].push_back(server);
    seen.insert(server);
  }
  for (auto& [threat, servers] : by_threat) {
    (void)threat;
    std::sort(servers.begin(), servers.end());
    result.campaigns.push_back(std::move(servers));
  }

  std::vector<std::string> blacklisted;
  std::unordered_set<std::string> checked;
  for (const auto& req_name : seen) checked.insert(req_name);
  // Blacklists are consulted per aggregated server seen in the trace.
  const auto agg = core::AggregatedTrace::build(trace);
  for (std::uint32_t s = 0; s < agg.servers().size(); ++s) {
    const auto& name = agg.server_name(s);
    if (checked.count(name)) continue;
    if (blacklist.confirmed(name)) blacklisted.push_back(name);
  }
  if (!blacklisted.empty()) {
    std::sort(blacklisted.begin(), blacklisted.end());
    result.campaigns.push_back(std::move(blacklisted));
  }
  return result;
}

BaselineScore score_baseline(const BaselineResult& result,
                             const ids::GroundTruth& truth) {
  BaselineScore score;
  std::unordered_set<std::string> reported;
  for (const auto& campaign : result.campaigns) {
    reported.insert(campaign.begin(), campaign.end());
  }
  score.reported = reported.size();
  for (const auto& name : reported) {
    if (truth.server_is_malicious(name)) ++score.truly_malicious;
    else ++score.benign_or_noise;
  }
  score.total_malicious_in_truth = truth.num_malicious_servers();
  return score;
}

}  // namespace smash::baseline
