// Out-of-process crash/recovery driver for the CI kill/restart matrix
// (tools/crash_matrix.py). Three modes over one deterministic synthetic
// scenario (seeded, shared by all modes):
//
//   crash_driver run <dir> [flags]        fresh durable engine, feed the
//       whole schedule, finish, print the final snapshot digest. When an
//       armed failpoint (SMASH_FAILPOINTS) fires, prints "crashed_at=<i>"
//       and _Exits(42) without unwinding — destructors never run, so the
//       on-disk state is exactly what a SIGKILL would have left.
//   crash_driver resume <dir> --start <i> [flags]   StreamEngine::recover,
//       feed events [i..), finish, print the digest.
//   crash_driver reference [flags]        no durability, feed everything,
//       finish, print the digest the other two must reproduce.
//
// Flags: --seed N  --policy off|on_seal|every_record  --threads N
//        --ckpt N (checkpoint cadence, default 2)
//
// The digest is printed raw between "digest-begin"/"digest-end" marker
// lines; the harness string-compares the block across processes.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <string>

#include "stream/engine.h"
#include "synth/stream_gen.h"
#include "util/failpoint.h"

namespace {

struct Options {
  std::string mode;
  std::string dir;
  std::uint64_t seed = 1;
  std::string policy = "off";
  unsigned threads = 1;
  std::uint32_t ckpt_every = 2;
  std::size_t start = 0;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: crash_driver run|resume|reference [<dir>] [--seed N] "
               "[--policy off|on_seal|every_record] [--threads N] [--ckpt N] "
               "[--start I]\n");
  std::exit(2);
}

smash::synth::StreamScenarioConfig scenario_config(std::uint64_t seed) {
  smash::synth::StreamScenarioConfig config;
  config.seed = seed;
  config.duration_s = 2 * 3600;
  config.benign_servers = 60;
  config.benign_clients = 50;
  config.benign_visits = 1500;
  config.popular_servers = 1;
  config.popular_clients = 80;
  config.campaigns = 2;
  config.campaign_servers = 4;
  config.campaign_bots = 3;
  config.poll_interval_s = 300;
  config.active_fraction = 0.35;
  return config;
}

smash::stream::StreamConfig stream_config(const Options& opt) {
  smash::stream::StreamConfig config;
  config.epoch_seconds = 600;
  config.window_epochs = 4;
  config.smash.idf_threshold = 50;
  config.smash.num_threads = opt.threads;
  config.checkpoint_every_epochs = opt.ckpt_every;
  if (opt.policy == "off") {
    config.fsync_policy = smash::stream::WalFsync::kOff;
  } else if (opt.policy == "on_seal") {
    config.fsync_policy = smash::stream::WalFsync::kOnSeal;
  } else if (opt.policy == "every_record") {
    config.fsync_policy = smash::stream::WalFsync::kEveryRecord;
  } else {
    usage();
  }
  return config;
}

void print_final(const smash::stream::StreamEngine& engine) {
  const auto snapshot = engine.snapshot();
  std::printf("epochs_closed=%llu\n",
              static_cast<unsigned long long>(engine.epochs_closed_total()));
  // digest() is newline-terminated; "(empty)" matches that shape.
  std::printf("digest-begin\n%sdigest-end\n",
              snapshot ? snapshot->digest().c_str() : "(empty)\n");
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--seed") {
      opt.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--policy") {
      opt.policy = next();
    } else if (arg == "--threads") {
      opt.threads = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--ckpt") {
      opt.ckpt_every = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--start") {
      opt.start = std::strtoull(next(), nullptr, 10);
    } else if (positional == 0) {
      opt.mode = arg;
      ++positional;
    } else if (positional == 1) {
      opt.dir = arg;
      ++positional;
    } else {
      usage();
    }
  }
  if (opt.mode.empty()) usage();
  if (opt.mode != "reference" && opt.dir.empty()) usage();

  const auto scenario = smash::synth::generate_stream(scenario_config(opt.seed));
  auto config = stream_config(opt);

  try {
    if (opt.mode == "reference") {
      smash::stream::StreamEngine engine(config, scenario.whois);
      for (const auto& event : scenario.events) {
        smash::synth::ingest_event(engine, event);
      }
      engine.finish();
      print_final(engine);
      return 0;
    }
    config.durability_dir = opt.dir;
    if (opt.mode == "run") {
      smash::stream::StreamEngine engine(config, scenario.whois);
      for (std::size_t i = 0; i < scenario.events.size(); ++i) {
        try {
          smash::synth::ingest_event(engine, scenario.events[i]);
        } catch (const smash::util::SimulatedCrash&) {
          // Die like the kernel would: report where, skip every destructor.
          std::printf("crashed_at=%zu\n", i);
          std::fflush(stdout);
          std::_Exit(42);
        }
      }
      engine.finish();
      print_final(engine);
      return 0;
    }
    if (opt.mode == "resume") {
      auto engine = smash::stream::StreamEngine::recover(config, scenario.whois);
      std::printf("events_replayed=%llu\n",
                  static_cast<unsigned long long>(
                      engine->recovery_stats().events_replayed));
      for (std::size_t i = opt.start; i < scenario.events.size(); ++i) {
        smash::synth::ingest_event(*engine, scenario.events[i]);
      }
      engine->finish();
      print_final(*engine);
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "crash_driver: %s\n", e.what());
    return 3;
  }
  usage();
}
