#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace smash::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 4);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng parent(99);
  Rng fork_before = parent.fork("stream");
  parent.next();
  parent.next();
  // fork() derives from the seed state, so consuming the parent after
  // forking must not change what an identical fork would have produced.
  Rng parent2(99);
  Rng fork_again = parent2.fork("stream");
  EXPECT_EQ(fork_before.next(), fork_again.next());
}

TEST(Rng, ForkDistinctTagsDistinctStreams) {
  Rng parent(7);
  Rng a = parent.fork("a");
  Rng b = parent.fork("b");
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform(bound), bound);
  }
}

TEST(Rng, UniformZeroBoundThrows) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform(0), std::invalid_argument);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(v, shuffled);
}

class SampleWithoutReplacementTest
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {};

TEST_P(SampleWithoutReplacementTest, DistinctAndInRange) {
  const auto [n, k] = GetParam();
  Rng rng(n * 1000 + k);
  const auto sample = rng.sample_without_replacement(n, k);
  EXPECT_EQ(sample.size(), k);
  std::set<std::uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), k);
  for (auto v : sample) EXPECT_LT(v, n);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SampleWithoutReplacementTest,
    ::testing::Values(std::pair{1u, 0u}, std::pair{1u, 1u}, std::pair{10u, 3u},
                      std::pair{10u, 10u}, std::pair{1000u, 5u},
                      std::pair{1000u, 900u}, std::pair{50u, 49u}));

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(1);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(ZipfSampler, ProbabilitiesSumToOne) {
  ZipfSampler zipf(100, 1.0);
  double sum = 0.0;
  for (std::uint32_t r = 0; r < 100; ++r) sum += zipf.probability(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfSampler, HeadIsMoreLikelyThanTail) {
  ZipfSampler zipf(1000, 1.2);
  EXPECT_GT(zipf.probability(0), zipf.probability(1));
  EXPECT_GT(zipf.probability(1), zipf.probability(999));
}

TEST(ZipfSampler, SamplesFollowRankOrder) {
  ZipfSampler zipf(50, 1.0);
  Rng rng(42);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[49]);
}

TEST(ZipfSampler, ExponentZeroIsUniformish) {
  ZipfSampler zipf(10, 0.0);
  for (std::uint32_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(zipf.probability(r), 0.1, 1e-9);
  }
}

TEST(ZipfSampler, RejectsBadArguments) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -1.0), std::invalid_argument);
}

TEST(Fnv1a, StableKnownValue) {
  // FNV-1a of empty string is the offset basis.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
}

}  // namespace
}  // namespace smash::util
