// Streaming ingest: timestamped events are parsed once into per-epoch
// Trace shards; a ring of the last W closed shards forms the sliding
// window, and per-2LD window aggregates are maintained incrementally
// (epoch deltas added on close, subtracted on eviction) so sliding the
// window never re-parses or re-scans old epochs.
//
// Shard traces are journaled (net::Trace::enable_journal), so window
// assembly replays events in exact arrival order: the assembled window
// trace is byte-identical to a batch trace built from the same event
// stream, which is what makes the streaming engine's output provably equal
// to a batch SmashPipeline::run over the same window.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/preshard.h"
#include "net/http.h"
#include "net/trace.h"
#include "stream/stream_config.h"

namespace smash::stream {

// --- timestamped edge events -------------------------------------------------

struct RequestEvent {
  std::uint64_t time_s = 0;  // seconds since the stream origin
  std::string client;
  std::string host;
  std::string path;
  std::string user_agent;
  std::string referrer;
  net::Method method = net::Method::kGet;
  std::uint16_t status = 200;

  bool operator==(const RequestEvent&) const = default;
};

struct ResolutionEvent {
  std::uint64_t time_s = 0;
  std::string host;
  std::string ip;

  bool operator==(const ResolutionEvent&) const = default;
};

struct RedirectEvent {
  std::uint64_t time_s = 0;
  std::string from;
  std::string to;

  bool operator==(const RedirectEvent&) const = default;
};

// --- per-epoch shard ---------------------------------------------------------

// Per-2LD counters; used both as one epoch's delta and as the sliding
// window's accumulated value.
struct ServerWindowStats {
  std::uint64_t requests = 0;
  std::uint64_t error_requests = 0;  // 4xx/5xx
  std::uint32_t active_epochs = 0;   // window epochs with >= 1 request

  bool empty() const noexcept {
    return requests == 0 && error_requests == 0 && active_epochs == 0;
  }
};

// One epoch's worth of traffic, parsed exactly once at ingest time. The
// trace is journaled and finalized when the epoch is sealed; sealing also
// caches the shard's preprocessed form (core/preshard.h) and derives the
// per-2LD delta from it, so window slides and re-mines never touch the
// requests again. A sealed shard is immutable: the window ring and any
// in-flight mining task share it by shared_ptr.
class EpochShard {
 public:
  explicit EpochShard(EpochId id = 0);

  // Recovery: rebuilds a sealed shard from a deserialized journaled trace,
  // sealing it exactly as the original seal did (finalize, ShardPre
  // rebuild, per-2LD delta) — all deterministic functions of the trace.
  static EpochShard restore_sealed(EpochId id, net::Trace trace);
  // Recovery: rebuilds the open (unsealed) shard from its checkpointed
  // trace; WAL-tail replay appends to it.
  static EpochShard restore_open(EpochId id, net::Trace trace);

  EpochId id() const noexcept { return id_; }
  const net::Trace& trace() const noexcept { return trace_; }
  std::size_t num_requests() const noexcept { return trace_.num_requests(); }
  bool empty() const noexcept { return trace_.num_requests() == 0; }

  // Per-2LD delta of this epoch (valid after seal).
  const std::unordered_map<std::string, ServerWindowStats>& per_2ld() const noexcept {
    return per_2ld_;
  }

  // Cached preprocessed form (valid after seal); merged across the window
  // by the mining path instead of re-preprocessing the assembled trace.
  const core::ShardPre& pre() const noexcept { return pre_; }

 private:
  friend class StreamIngestor;

  void add(const RequestEvent& event);
  void add(const ResolutionEvent& event);
  void add(const RedirectEvent& event);
  void seal();

  EpochId id_ = 0;
  net::Trace trace_;
  core::ShardPre pre_;
  std::unordered_map<std::string, ServerWindowStats> per_2ld_;
  bool sealed_ = false;
};

// --- incrementally merged window aggregates ---------------------------------

// Sliding-window per-2LD aggregate maintained by adding the delta of each
// newly closed epoch and subtracting the delta of each evicted one — O(epoch)
// per slide, independent of window length. Removal enforces (SMASH_CHECK,
// fatal in release builds too) that the evicted delta never exceeds the
// accumulated value and erases entries whose stats drain to empty, so the
// map can never underflow into garbage verdict stats or leak evicted 2LDs.
class WindowAggregates {
 public:
  void add_epoch(const EpochShard& shard);
  void remove_epoch(const EpochShard& shard);

  // Stats for `host_2ld` over the current window, or nullptr if unseen.
  const ServerWindowStats* find(std::string_view host_2ld) const;

  std::size_t num_servers() const noexcept { return by_2ld_.size(); }
  std::uint64_t window_requests() const noexcept { return window_requests_; }

  // Every (2LD, stats) entry sorted by 2LD — the deterministic listing
  // checkpoints serialize and recovery cross-checks against.
  std::vector<std::pair<std::string, ServerWindowStats>> sorted_entries() const;

 private:
  std::unordered_map<std::string, ServerWindowStats> by_2ld_;
  std::uint64_t window_requests_ = 0;
};

// --- ingestor ----------------------------------------------------------------

struct IngestStats {
  std::uint64_t requests = 0;
  std::uint64_t resolutions = 0;
  std::uint64_t redirects = 0;
  std::uint64_t late_dropped = 0;
  std::uint64_t late_folded = 0;  // late events folded into the open epoch
};

struct IngestResult {
  // Epochs sealed as a side effect of this event (the event belonged to a
  // later epoch than the one that was open). The engine re-mines when > 0.
  std::uint32_t epochs_closed = 0;
  bool accepted = true;  // false: late event dropped
};

// Buckets timestamped events into epoch shards and maintains the window
// ring plus its aggregates. Single-writer: one thread ingests; published
// snapshots (stream/engine.h) carry results to concurrent readers.
class StreamIngestor {
 public:
  explicit StreamIngestor(StreamConfig config);

  // Recovery: adopts a rebuilt position — `window` holds sealed shards
  // oldest-first, `open_shard` the unsealed epoch in progress. Aggregates
  // are rebuilt from the window shards (the caller cross-checks them
  // against the checkpointed copy).
  static StreamIngestor restore(StreamConfig config, bool started,
                                EpochId open_epoch, EpochShard open_shard,
                                std::deque<std::shared_ptr<const EpochShard>> window,
                                IngestStats stats);

  IngestResult ingest(const RequestEvent& event);
  IngestResult ingest(const ResolutionEvent& event);
  IngestResult ingest(const RedirectEvent& event);

  // Seals the open epoch into the window ring (evicting the shard that
  // falls out of the window) and opens the next epoch. No-op before the
  // first event.
  void close_epoch();

  bool has_open_epoch() const noexcept { return started_; }
  EpochId open_epoch() const noexcept { return open_epoch_; }
  bool open_epoch_empty() const noexcept { return open_shard_.empty(); }
  // The unsealed epoch in progress (checkpoints serialize its trace).
  const EpochShard& open_shard() const noexcept { return open_shard_; }

  // Closed shards currently in the window, oldest first (at most
  // config.window_epochs of them; empty epochs included). Shards are
  // immutable once sealed and shared by pointer, so an off-thread mining
  // task keeps its window alive across evictions.
  const std::deque<std::shared_ptr<const EpochShard>>& window() const noexcept {
    return window_;
  }

  const WindowAggregates& aggregates() const noexcept { return aggregates_; }
  const IngestStats& stats() const noexcept { return stats_; }
  const StreamConfig& config() const noexcept { return config_; }

  // Merges the window's closed shards into one analyzable trace, replaying
  // each shard's journal so arrival order (and therefore interner id
  // assignment) matches a batch trace built from the same events. The
  // returned trace is finalized.
  net::Trace assemble_window() const;

 private:
  // Seals epochs until `epoch` is the open one. Returns epochs closed.
  std::uint32_t advance_to(EpochId epoch);
  // Shared prologue: opens the first epoch, advances past closed epochs,
  // classifies late events. accepted == false means drop the event.
  IngestResult position(std::uint64_t time_s);

  StreamConfig config_;
  bool started_ = false;
  EpochId open_epoch_ = 0;
  EpochShard open_shard_;
  std::deque<std::shared_ptr<const EpochShard>> window_;
  WindowAggregates aggregates_;
  IngestStats stats_;
};

}  // namespace smash::stream
