// Reproduces paper Fig. 7: persistent vs agile campaigns across the week
// trace. Day 1 is the benchmark; each later day's detected servers and
// involved clients are split into old-server / new-server-old-client /
// new-server-new-client, relative to everything seen on previous days.
#include <cstdio>
#include <set>

#include "bench_common.h"

int main() {
  using namespace smash;
  const auto& week = bench::dataset("2012week");

  util::Table table("Fig. 7: persistent vs dynamic campaigns (Data2012week)");
  table.set_header({"Day", "servers", "old server", "new srv/old client",
                    "new srv/new client", "clients"});

  std::set<std::string> seen_servers;
  std::set<std::uint32_t> seen_clients;  // client ids are stable across slices?
  std::set<std::string> seen_client_names;
  for (std::uint32_t day = 0; day < week.trace.num_days(); ++day) {
    const auto day_trace = net::slice_day(week.trace, day);
    const core::SmashPipeline pipeline{core::SmashConfig{}};
    const auto result = pipeline.run(day_trace, week.whois);

    std::set<std::string> today_servers;
    std::set<std::string> today_clients;
    int old_server = 0;
    int new_server_old_client = 0;
    int new_server_new_client = 0;
    for (const auto& campaign : result.campaigns) {
      std::set<std::string> campaign_clients;
      for (auto c : campaign.involved_clients) {
        campaign_clients.insert(day_trace.clients().name(c));
        today_clients.insert(day_trace.clients().name(c));
      }
      const bool any_old_client = [&] {
        for (const auto& c : campaign_clients) {
          if (seen_client_names.count(c)) return true;
        }
        return false;
      }();
      for (auto member : campaign.servers) {
        const auto& name = result.server_name(member);
        today_servers.insert(name);
        if (seen_servers.count(name)) ++old_server;
        else if (any_old_client && day > 0) ++new_server_old_client;
        else if (day > 0) ++new_server_new_client;
      }
    }
    table.add_row({std::to_string(day + 1),
                   std::to_string(today_servers.size()),
                   day == 0 ? "benchmark" : std::to_string(old_server),
                   day == 0 ? "-" : std::to_string(new_server_old_client),
                   day == 0 ? "-" : std::to_string(new_server_new_client),
                   std::to_string(today_clients.size())});
    seen_servers.insert(today_servers.begin(), today_servers.end());
    seen_client_names.insert(today_clients.begin(), today_clients.end());
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nShape target (paper): most detected servers on later days are NEW");
  std::puts("  servers contacted by ALREADY-KNOWN clients (agile campaigns that");
  std::puts("  rotate domains daily); a stable core persists; some brand-new");
  std::puts("  campaigns appear mid-week.");
  return 0;
}
