#include "obs/metrics.h"

#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace smash::obs {

namespace {

// Locale-independent, round-trip-stable-enough rendering for exporter
// output: integers print without a decimal point, everything else %.9g.
std::string format_double(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  return buf;
}

// Prometheus metric name: "smash_" prefix, every byte outside
// [a-zA-Z0-9_:] mapped to '_'.
std::string prometheus_name(std::string_view name) {
  std::string out = "smash_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

std::size_t metric_shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return index;
}

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  SMASH_CHECK(!bounds_.empty(), "Histogram: needs at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    SMASH_CHECK(bounds_[i - 1] < bounds_[i],
                "Histogram: bucket bounds must be strictly ascending");
  }
  for (auto& shard : shards_) {
    shard.counts =
        std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t b = 0; b <= bounds_.size(); ++b) shard.counts[b] = 0;
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  for (const auto& shard : shards_) {
    for (std::size_t b = 0; b < out.size(); ++b) {
      out[b] += shard.counts[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto c : bucket_counts()) total += c;
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const auto& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

const std::vector<double>& latency_buckets_ms() {
  static const std::vector<double> bounds = {
      0.01, 0.025, 0.05, 0.1,  0.25, 0.5,  1.0,    2.5,    5.0,    10.0,
      25.0, 50.0,  100., 250., 500., 1000., 2500.0, 5000.0, 10000.0, 30000.0};
  return bounds;
}

const std::vector<double>& latency_buckets_ns() {
  static const std::vector<double> bounds = {
      50.,    100.,   200.,    400.,    800.,    1600.,  3200.,
      6400.,  12800., 25600.,  51200.,  102400., 204800., 409600.,
      819200., 1638400.};
  return bounds;
}

// --- MetricsSnapshot ---------------------------------------------------------

namespace {
template <typename Vec>
auto find_by_name(const Vec& v, std::string_view name) ->
    typename Vec::const_pointer {
  for (const auto& s : v) {
    if (s.name == name) return &s;
  }
  return nullptr;
}
}  // namespace

const CounterSnapshot* MetricsSnapshot::counter(std::string_view name) const noexcept {
  return find_by_name(counters, name);
}
const GaugeSnapshot* MetricsSnapshot::gauge(std::string_view name) const noexcept {
  return find_by_name(gauges, name);
}
const HistogramSnapshot* MetricsSnapshot::histogram(std::string_view name) const noexcept {
  return find_by_name(histograms, name);
}

// --- exporters ---------------------------------------------------------------

std::string render_prometheus(const MetricsSnapshot& snapshot) {
  // The per-kind vectors are each name-sorted; merge them into one
  // name-sorted exposition so output is stable regardless of registration
  // order. Walk the three lists with a three-way min-merge.
  std::string out;
  std::size_t ci = 0, gi = 0, hi = 0;
  const auto next_name = [&]() -> const std::string* {
    const std::string* best = nullptr;
    if (ci < snapshot.counters.size()) best = &snapshot.counters[ci].name;
    if (gi < snapshot.gauges.size() &&
        (best == nullptr || snapshot.gauges[gi].name < *best)) {
      best = &snapshot.gauges[gi].name;
    }
    if (hi < snapshot.histograms.size() &&
        (best == nullptr || snapshot.histograms[hi].name < *best)) {
      best = &snapshot.histograms[hi].name;
    }
    return best;
  };
  const auto help_line = [&](const std::string& pname, const std::string& help,
                             const char* type) {
    if (!help.empty()) out += "# HELP " + pname + " " + help + "\n";
    out += "# TYPE " + pname + " " + type + "\n";
  };
  while (const std::string* name = next_name()) {
    if (ci < snapshot.counters.size() && &snapshot.counters[ci].name == name) {
      const auto& c = snapshot.counters[ci++];
      const auto pname = prometheus_name(c.name);
      help_line(pname, c.help, "counter");
      out += pname + " " + std::to_string(c.value) + "\n";
    } else if (gi < snapshot.gauges.size() &&
               &snapshot.gauges[gi].name == name) {
      const auto& g = snapshot.gauges[gi++];
      const auto pname = prometheus_name(g.name);
      help_line(pname, g.help, "gauge");
      out += pname + " " + format_double(g.value) + "\n";
    } else {
      const auto& h = snapshot.histograms[hi++];
      const auto pname = prometheus_name(h.name);
      help_line(pname, h.help, "histogram");
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < h.bounds.size(); ++b) {
        cumulative += h.counts[b];
        out += pname + "_bucket{le=\"" + format_double(h.bounds[b]) + "\"} " +
               std::to_string(cumulative) + "\n";
      }
      cumulative += h.counts.back();
      out += pname + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
      out += pname + "_sum " + format_double(h.sum) + "\n";
      out += pname + "_count " + std::to_string(h.count) + "\n";
    }
  }
  return out;
}

std::string render_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out.push_back(',');
    append_json_string(out, snapshot.counters[i].name);
    out.push_back(':');
    out += std::to_string(snapshot.counters[i].value);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) out.push_back(',');
    append_json_string(out, snapshot.gauges[i].name);
    out.push_back(':');
    out += format_double(snapshot.gauges[i].value);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    if (i > 0) out.push_back(',');
    append_json_string(out, h.name);
    out += ":{\"bounds\":[";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) out.push_back(',');
      out += format_double(h.bounds[b]);
    }
    out += "],\"counts\":[";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) out.push_back(',');
      out += std::to_string(h.counts[b]);
    }
    out += "],\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + format_double(h.sum) + "}";
  }
  out += "}}";
  return out;
}

// --- Registry ----------------------------------------------------------------

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(std::string_view name, std::string_view help) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry{Kind::kCounter, std::string(help),
                std::unique_ptr<Counter>(new Counter()), nullptr, {}, nullptr};
    it = metrics_.emplace(std::string(name), std::move(entry)).first;
  }
  SMASH_CHECK(it->second.kind == Kind::kCounter,
              "Registry: name already registered as a different metric kind");
  return *it->second.counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry{Kind::kGauge, std::string(help), nullptr,
                std::unique_ptr<Gauge>(new Gauge()), {}, nullptr};
    it = metrics_.emplace(std::string(name), std::move(entry)).first;
  }
  SMASH_CHECK(it->second.kind == Kind::kGauge,
              "Registry: name already registered as a different metric kind");
  return *it->second.gauge;
}

void Registry::gauge_callback(std::string_view name,
                              std::function<double()> provider,
                              std::string_view help) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    // Replace-on-reregister: a recovered engine takes over the gauge its
    // predecessor registered on a shared registry.
    SMASH_CHECK(it->second.kind == Kind::kCallbackGauge,
                "Registry: name already registered as a different metric kind");
    it->second.provider = std::move(provider);
    return;
  }
  Entry entry{Kind::kCallbackGauge, std::string(help), nullptr, nullptr,
              std::move(provider), nullptr};
  metrics_.emplace(std::string(name), std::move(entry));
}

Histogram& Registry::histogram(std::string_view name, std::vector<double> bounds,
                               std::string_view help) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry{Kind::kHistogram, std::string(help), nullptr, nullptr, {},
                std::unique_ptr<Histogram>(new Histogram(std::move(bounds)))};
    it = metrics_.emplace(std::string(name), std::move(entry)).first;
    return *it->second.histogram;
  }
  SMASH_CHECK(it->second.kind == Kind::kHistogram,
              "Registry: name already registered as a different metric kind");
  SMASH_CHECK(it->second.histogram->bounds() == bounds,
              "Registry: histogram re-registered with different bounds");
  return *it->second.histogram;
}

Histogram& Registry::latency_histogram_ms(std::string_view name,
                                          std::string_view help) {
  return histogram(name, latency_buckets_ms(), help);
}

void Registry::remove(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = metrics_.find(name);
  if (it != metrics_.end()) metrics_.erase(it);
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot out;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case Kind::kCounter:
        out.counters.push_back({name, entry.help, entry.counter->value()});
        break;
      case Kind::kGauge:
        out.gauges.push_back({name, entry.help, entry.gauge->value()});
        break;
      case Kind::kCallbackGauge:
        out.gauges.push_back({name, entry.help, entry.provider()});
        break;
      case Kind::kHistogram: {
        const auto& h = *entry.histogram;
        HistogramSnapshot hs{name, entry.help, h.bounds(), h.bucket_counts(),
                             0, h.sum()};
        for (const auto c : hs.counts) hs.count += c;
        out.histograms.push_back(std::move(hs));
        break;
      }
    }
  }
  return out;
}

}  // namespace smash::obs
