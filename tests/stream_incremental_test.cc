// Incremental delta re-mining through the stream engine (core/delta_mine.h):
// paired full-vs-incremental engines must publish byte-identical snapshots
// at EVERY close — across thread counts, window slides (eviction), async
// coalescing, and crash recovery — while DeltaStats report the cache
// behavior (first-close fallback, delta-mined dimensions, evicted epochs)
// honestly on each snapshot.
#include "stream/engine.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "stream/snapshot.h"
#include "stream_fuzz_helpers.h"
#include "synth/stream_gen.h"
#include "whois/whois.h"

namespace smash::stream {
namespace {

using test::expect_identical_snapshots;

RequestEvent req(std::uint64_t time_s, std::string client, std::string host,
                 std::string path = "/x.html") {
  RequestEvent e;
  e.time_s = time_s;
  e.client = std::move(client);
  e.host = std::move(host);
  e.path = std::move(path);
  e.user_agent = "UA";
  return e;
}

ResolutionEvent res(std::uint64_t time_s, std::string host, std::string ip) {
  ResolutionEvent e;
  e.time_s = time_s;
  e.host = std::move(host);
  e.ip = std::move(ip);
  return e;
}

constexpr std::uint32_t kEpochSeconds = 100;

StreamConfig incremental_config(unsigned threads, std::uint32_t window = 3) {
  StreamConfig config;
  config.epoch_seconds = kEpochSeconds;
  config.window_epochs = window;
  config.smash.idf_threshold = 50;
  config.smash.num_threads = threads;
  config.incremental_mining = true;
  return config;
}

// Campaign polling + benign browsing inside epoch `epoch`. `campaign`
// toggles the malicious traffic; the benign background always runs so the
// window never goes empty. `site_salt` varies which benign sites the epoch
// touches, keeping per-epoch deltas small (most 2LDs unchanged).
void fill_epoch(std::vector<synth::StreamEvent>& events, std::uint64_t epoch,
                bool campaign, std::uint32_t site_salt) {
  const std::uint64_t base = epoch * kEpochSeconds;
  for (std::uint32_t s = 0; s < 12; ++s) {
    const std::string host = "site" + std::to_string(s) + ".org";
    events.push_back(req(base + 1 + s % 7, "user" + std::to_string((s + site_salt) % 9),
                         host, "/page" + std::to_string(s % 4) + ".html"));
    events.push_back(res(base + 2 + s % 7, host, "192.168.1." + std::to_string(s)));
  }
  // A couple of epoch-specific 2LDs so every epoch genuinely adds nodes.
  const std::string fresh =
      "fresh" + std::to_string(epoch) + "-" + std::to_string(site_salt) + ".org";
  events.push_back(req(base + 10, "user1", fresh));
  if (!campaign) return;
  for (std::uint32_t s = 0; s < 3; ++s) {
    const std::string host = "evil" + std::to_string(s) + ".test";
    for (std::uint32_t b = 0; b < 4; ++b) {
      events.push_back(
          req(base + 20 + s, "bot" + std::to_string(b), host, "/beacon.exe"));
    }
    events.push_back(res(base + 30 + s, host, "10.9.0.1"));
  }
}

// Whois records tying the campaign servers to one registrant. Together with
// the shared payload, bots, and IP this gives the campaign three
// secondary-dimension correlation terms — comfortably above the score
// threshold, so detection assertions don't sit on the knife's edge.
whois::Registry campaign_registry() {
  whois::Registry registry;
  whois::Record record;
  record.registrant = "actor0";
  record.email = "actor0@mail.test";
  for (std::uint32_t s = 0; s < 3; ++s) {
    registry.add("evil" + std::to_string(s) + ".test", record);
  }
  return registry;
}

// Feeds `events` to a full-mine and an incremental engine in lockstep and
// deep-compares the published snapshots after every event (sync engines
// publish during ingest, so the counts always agree). Returns the
// incremental engine's per-publication delta stats for assertions.
std::vector<core::DeltaStats> run_paired(
    const std::vector<synth::StreamEvent>& events, const StreamConfig& config,
    const whois::Registry& registry) {
  StreamConfig full_config = config;
  full_config.incremental_mining = false;
  StreamEngine full(full_config, registry);
  StreamEngine incremental(config, registry);

  std::vector<core::DeltaStats> stats;
  std::uint64_t seen = 0;
  const auto compare_published = [&] {
    ASSERT_EQ(full.snapshots_published(), incremental.snapshots_published());
    if (incremental.snapshots_published() == seen) return;
    seen = incremental.snapshots_published();
    const auto a = full.snapshot();
    const auto b = incremental.snapshot();
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    expect_identical_snapshots(*a, *b);
    EXPECT_FALSE(a->delta_stats().enabled);
    EXPECT_TRUE(b->delta_stats().enabled);
    stats.push_back(b->delta_stats());
  };

  for (const auto& event : events) {
    synth::ingest_event(full, event);
    synth::ingest_event(incremental, event);
    compare_published();
    if (::testing::Test::HasFatalFailure()) return stats;
  }
  full.finish();
  incremental.finish();
  compare_published();
  return stats;
}

TEST(StreamIncremental, GrowingWindowPublishesIdenticalSnapshots) {
  const whois::Registry registry = campaign_registry();
  std::vector<synth::StreamEvent> events;
  for (std::uint64_t epoch = 0; epoch < 3; ++epoch) {
    fill_epoch(events, epoch, /*campaign=*/true, /*site_salt=*/0);
  }
  for (const unsigned threads : {1u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const auto stats = run_paired(events, incremental_config(threads), registry);
    ASSERT_GE(stats.size(), 3u);
    // First close: no cache — every dimension full-mines, loudly.
    EXPECT_FALSE(stats[0].attempted);
    EXPECT_EQ(stats[0].fallback_no_state, stats[0].dims_full);
    EXPECT_GT(stats[0].dims_full, 0u);
    EXPECT_EQ(stats[0].dims_delta, 0u);
    // Later closes: caches exist and the small per-epoch delta keeps at
    // least some dimensions on the delta path.
    bool delta_mined = false;
    for (std::size_t i = 1; i < stats.size(); ++i) {
      EXPECT_TRUE(stats[i].attempted);
      EXPECT_GE(stats[i].epochs_added, 1u);
      if (stats[i].dims_delta > 0) delta_mined = true;
    }
    EXPECT_TRUE(delta_mined);
  }
}

TEST(StreamIncremental, SlidingWindowEvictionPurgesCachedCampaignState) {
  // Campaign only in epochs 0-1; window of 2 slides past it. Stale cached
  // postings or partitions for the evicted evil* 2LDs would keep scoring
  // their pairs — the per-close identity comparison against the full
  // engine catches any residue, and the verdicts must actually disappear.
  const whois::Registry registry = campaign_registry();
  std::vector<synth::StreamEvent> events;
  fill_epoch(events, 0, /*campaign=*/true, 0);
  fill_epoch(events, 1, /*campaign=*/true, 1);
  fill_epoch(events, 2, /*campaign=*/false, 0);
  fill_epoch(events, 3, /*campaign=*/false, 1);
  fill_epoch(events, 4, /*campaign=*/false, 2);

  for (const unsigned threads : {1u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    StreamConfig config = incremental_config(threads, /*window=*/2);
    StreamConfig full_config = config;
    full_config.incremental_mining = false;
    StreamEngine full(full_config, registry);
    StreamEngine incremental(config, registry);

    bool saw_campaign = false;
    bool saw_eviction = false;
    std::uint64_t seen = 0;
    for (const auto& event : events) {
      synth::ingest_event(full, event);
      synth::ingest_event(incremental, event);
      ASSERT_EQ(full.snapshots_published(), incremental.snapshots_published());
      if (incremental.snapshots_published() == seen) continue;
      seen = incremental.snapshots_published();
      const auto a = full.snapshot();
      const auto b = incremental.snapshot();
      ASSERT_NE(b, nullptr);
      expect_identical_snapshots(*a, *b);
      if (b->num_malicious_servers() > 0) saw_campaign = true;
      if (b->delta_stats().epochs_evicted > 0) saw_eviction = true;
    }
    full.finish();
    incremental.finish();
    const auto final_full = full.snapshot();
    const auto final_inc = incremental.snapshot();
    ASSERT_NE(final_inc, nullptr);
    expect_identical_snapshots(*final_full, *final_inc);
    EXPECT_TRUE(saw_campaign);   // the campaign was detected while in-window
    EXPECT_TRUE(saw_eviction);   // the slide actually exercised eviction
    // After the window slid past the campaign epochs no verdict survives.
    EXPECT_EQ(final_inc->num_malicious_servers(), 0u);
    EXPECT_EQ(final_inc->find_host("evil0.test"), nullptr);
  }
}

TEST(StreamIncremental, AsyncIncrementalMatchesSyncFull) {
  const whois::Registry registry = campaign_registry();
  std::vector<synth::StreamEvent> events;
  for (std::uint64_t epoch = 0; epoch < 4; ++epoch) {
    fill_epoch(events, epoch, /*campaign=*/epoch < 3, epoch % 2);
  }

  StreamConfig sync_config = incremental_config(1);
  sync_config.incremental_mining = false;
  StreamEngine full(sync_config, registry);
  for (const auto& event : events) synth::ingest_event(full, event);
  full.finish();

  StreamConfig async_config = incremental_config(1);
  async_config.async_mining = true;
  StreamEngine incremental(async_config, registry);
  for (const auto& event : events) synth::ingest_event(incremental, event);
  incremental.finish();

  EXPECT_EQ(full.epochs_closed_total(), incremental.epochs_closed_total());
  const auto a = full.snapshot();
  const auto b = incremental.snapshot();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  expect_identical_snapshots(*a, *b);
  EXPECT_TRUE(b->delta_stats().enabled);
}

TEST(StreamIncremental, RecoveredEngineFullMinesOnceThenMatchesUninterrupted) {
  // Crash/recover with incremental mining on: the recovered engine's miner
  // has no caches, so its republish transparently full-mines
  // (fallback_no_state), then rebuilds the caches — and every snapshot it
  // publishes stays byte-identical to an engine that never crashed.
  const whois::Registry registry = campaign_registry();
  std::vector<synth::StreamEvent> events;
  for (std::uint64_t epoch = 0; epoch < 4; ++epoch) {
    fill_epoch(events, epoch, /*campaign=*/true, epoch % 3);
  }
  const std::size_t cut = events.size() / 2;

  StreamConfig config = incremental_config(1);
  config.durability_dir =
      (std::filesystem::temp_directory_path() / "smash_incremental_recovery")
          .string();
  config.fsync_policy = WalFsync::kOff;
  std::filesystem::remove_all(config.durability_dir);

  {  // Crash mid-stream: no finish(), like a hard kill.
    StreamEngine engine(config, registry);
    for (std::size_t i = 0; i < cut; ++i) synth::ingest_event(engine, events[i]);
  }

  auto recovered = StreamEngine::recover(config, registry);
  const auto post_recovery = recovered->snapshot();
  if (post_recovery != nullptr) {
    // The recovery republish mined with an empty cache: all full, no delta.
    EXPECT_TRUE(post_recovery->delta_stats().enabled);
    EXPECT_GT(post_recovery->delta_stats().fallback_no_state, 0u);
    EXPECT_EQ(post_recovery->delta_stats().dims_delta, 0u);
  }
  for (std::size_t i = cut; i < events.size(); ++i) {
    synth::ingest_event(*recovered, events[i]);
  }
  recovered->finish();
  const auto recovered_snapshot = recovered->snapshot();
  ASSERT_NE(recovered_snapshot, nullptr);
  // Post-recovery closes get back on the delta path once the cache exists.
  EXPECT_GT(recovered_snapshot->delta_stats().dims_delta, 0u);

  // Uninterrupted incremental reference over the whole schedule.
  StreamConfig reference_config = incremental_config(1);
  StreamEngine reference(reference_config, registry);
  for (const auto& event : events) synth::ingest_event(reference, event);
  reference.finish();
  const auto reference_snapshot = reference.snapshot();
  ASSERT_NE(reference_snapshot, nullptr);
  EXPECT_EQ(recovered_snapshot->digest(), reference_snapshot->digest());

  // And the full-mine engine agrees with both.
  StreamConfig full_config = incremental_config(1);
  full_config.incremental_mining = false;
  StreamEngine full(full_config, registry);
  for (const auto& event : events) synth::ingest_event(full, event);
  full.finish();
  ASSERT_NE(full.snapshot(), nullptr);
  EXPECT_EQ(recovered_snapshot->digest(), full.snapshot()->digest());

  std::filesystem::remove_all(config.durability_dir);
}

TEST(StreamIncremental, ApproximateLouvainModeStillDetectsCampaigns) {
  // delta_approximate_louvain trades the byte-identity guarantee for
  // warm-start partition repair; it must still run end-to-end and keep
  // finding the (unambiguous) campaign structure.
  const whois::Registry registry = campaign_registry();
  std::vector<synth::StreamEvent> events;
  for (std::uint64_t epoch = 0; epoch < 4; ++epoch) {
    fill_epoch(events, epoch, /*campaign=*/true, epoch % 2);
  }
  StreamConfig config = incremental_config(1);
  config.smash.delta_approximate_louvain = true;
  StreamEngine engine(config, registry);
  for (const auto& event : events) synth::ingest_event(engine, event);
  engine.finish();
  const auto snapshot = engine.snapshot();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_TRUE(snapshot->delta_stats().enabled);
  EXPECT_GT(snapshot->num_malicious_servers(), 0u);
  EXPECT_NE(snapshot->find_host("evil0.test"), nullptr);
}

TEST(StreamIncremental, DeltaMetricsFlowIntoTheRegistry) {
  const whois::Registry registry = campaign_registry();
  std::vector<synth::StreamEvent> events;
  for (std::uint64_t epoch = 0; epoch < 3; ++epoch) {
    fill_epoch(events, epoch, /*campaign=*/true, 0);
  }
  StreamEngine engine(incremental_config(1), registry);
  for (const auto& event : events) synth::ingest_event(engine, event);
  engine.finish();
  ASSERT_NE(engine.metrics(), nullptr);
  const auto rendered = engine.metrics()->render_prometheus();
  EXPECT_NE(rendered.find("smash_pipeline_delta_changed_2lds_total"),
            std::string::npos);
  EXPECT_NE(rendered.find("smash_pipeline_delta_full_fallbacks_total"),
            std::string::npos);
  EXPECT_NE(rendered.find("smash_pipeline_delta_mine_ms"), std::string::npos);
}

TEST(StreamIncrementalDeath, ValidateRejectsIncrementalWithoutShardReuse) {
  StreamConfig config = incremental_config(1);
  config.reuse_shard_preprocess = false;
  EXPECT_DEATH(config.validate(), "reuse_shard_preprocess");

  StreamConfig bad_fraction = incremental_config(1);
  bad_fraction.smash.delta_max_changed_fraction = 1.5;
  EXPECT_DEATH(bad_fraction.validate(), "delta_max_changed_fraction");
}

}  // namespace
}  // namespace smash::stream
