#include "synth/stream_gen.h"

#include <algorithm>
#include <string>

#include "util/rng.h"

namespace smash::synth {

namespace {

StreamEvent request_at(std::uint64_t time_s, std::string client,
                       std::string host, std::string path,
                       std::string user_agent = "Mozilla/5.0",
                       std::string referrer = "") {
  stream::RequestEvent event;
  event.time_s = time_s;
  event.client = std::move(client);
  event.host = std::move(host);
  event.path = std::move(path);
  event.user_agent = std::move(user_agent);
  event.referrer = std::move(referrer);
  return event;
}

StreamEvent resolution_at(std::uint64_t time_s, std::string host,
                          std::string ip) {
  stream::ResolutionEvent event;
  event.time_s = time_s;
  event.host = std::move(host);
  event.ip = std::move(ip);
  return event;
}

void add_benign(const StreamScenarioConfig& config, util::Rng& rng,
                std::vector<StreamEvent>& events) {
  // One resolution per server, early in the stream so the window always has
  // it regardless of where the first request lands.
  for (std::uint32_t s = 0; s < config.benign_servers; ++s) {
    const std::string host = "site" + std::to_string(s) + ".org";
    events.push_back(resolution_at(
        rng.uniform(std::max<std::uint64_t>(config.duration_s / 8, 1)), host,
        "203.0." + std::to_string(s / 250) + "." + std::to_string(s % 250)));
  }
  for (std::uint32_t v = 0; v < config.benign_visits; ++v) {
    const auto server = rng.uniform(config.benign_servers);
    const std::string base = "site" + std::to_string(server) + ".org";
    const std::string host =
        rng.bernoulli(config.subdomain_fraction) ? "www." + base : base;
    events.push_back(request_at(
        rng.uniform(config.duration_s),
        "user" + std::to_string(rng.uniform(config.benign_clients)), host,
        "/page" + std::to_string(rng.uniform(6)) + ".html"));
  }
}

void add_popular(const StreamScenarioConfig& config, util::Rng& rng,
                 std::vector<StreamEvent>& events) {
  for (std::uint32_t s = 0; s < config.popular_servers; ++s) {
    const std::string host = "cdn" + std::to_string(s) + ".com";
    events.push_back(resolution_at(rng.uniform(config.duration_s / 8 + 1),
                                   host, "198.18.0." + std::to_string(s)));
    for (std::uint32_t c = 0; c < config.popular_clients; ++c) {
      events.push_back(request_at(rng.uniform(config.duration_s),
                                  "cdnuser" + std::to_string(c), host,
                                  "/asset" + std::to_string(rng.uniform(8)) +
                                      ".js"));
    }
  }
}

void add_campaigns(const StreamScenarioConfig& config, util::Rng& rng,
                   StreamScenario& scenario) {
  const auto active_s = static_cast<std::uint64_t>(
      static_cast<double>(config.duration_s) * config.active_fraction);
  for (std::uint32_t k = 0; k < config.campaigns; ++k) {
    StreamCampaignTruth truth;
    truth.bots = config.campaign_bots;
    // Staggered activations so campaigns appear (and end) mid-stream.
    truth.start_s = config.campaigns == 0
                        ? 0
                        : (k + 1) * config.duration_s / (config.campaigns + 2);
    truth.end_s = std::min(config.duration_s, truth.start_s + active_s);

    const std::string shared_ip = "198.51." + std::to_string(k) + ".1";
    whois::Record record;
    record.registrant = "actor-" + std::to_string(k);
    record.email = "actor" + std::to_string(k) + "@mail.test";

    for (std::uint32_t s = 0; s < config.campaign_servers; ++s) {
      const std::string host =
          "c" + std::to_string(k) + "-s" + std::to_string(s) + ".biz";
      truth.servers.push_back(host);
      scenario.whois.add(host, record);
    }

    // Each bot polls every campaign server on the configured cadence, with
    // a small per-request jitter that never crosses the next poll tick.
    // Servers are re-resolved every tick (bots re-query DNS), so any window
    // overlapping the active interval sees the shared IP — not just the
    // window containing the activation epoch.
    const std::uint64_t jitter =
        std::max<std::uint64_t>(config.poll_interval_s / 4, 1);
    for (std::uint64_t t = truth.start_s; t < truth.end_s;
         t += config.poll_interval_s) {
      for (const auto& host : truth.servers) {
        scenario.events.push_back(resolution_at(t, host, shared_ip));
      }
      for (std::uint32_t b = 0; b < config.campaign_bots; ++b) {
        const std::string bot =
            "bot" + std::to_string(k) + "-" + std::to_string(b);
        for (const auto& host : truth.servers) {
          const auto when =
              std::min(t + rng.uniform(jitter), truth.end_s - 1);
          scenario.events.push_back(request_at(
              when, bot, host,
              "/gate.php?id=" + std::to_string(b) + "&c=" + std::to_string(k),
              "-"));
        }
      }
    }
    scenario.campaigns.push_back(std::move(truth));
  }
}

}  // namespace

StreamScenario generate_stream(const StreamScenarioConfig& config) {
  StreamScenario scenario;
  scenario.duration_s = config.duration_s;

  util::Rng base(config.seed);
  util::Rng benign_rng = base.fork("stream-benign");
  util::Rng popular_rng = base.fork("stream-popular");
  util::Rng campaign_rng = base.fork("stream-campaigns");

  add_benign(config, benign_rng, scenario.events);
  add_popular(config, popular_rng, scenario.events);
  add_campaigns(config, campaign_rng, scenario);

  // Benign servers get distinct registrations so whois only associates the
  // campaigns.
  for (std::uint32_t s = 0; s < config.benign_servers; s += 7) {
    whois::Record record;
    record.registrant = "owner-" + std::to_string(s);
    record.email = "owner" + std::to_string(s) + "@mail.test";
    scenario.whois.add("site" + std::to_string(s) + ".org", record);
  }

  // Stable by time: events at the same second keep generation order, so the
  // stream is fully deterministic.
  std::stable_sort(scenario.events.begin(), scenario.events.end(),
                   [](const StreamEvent& a, const StreamEvent& b) {
                     return event_time(a) < event_time(b);
                   });
  return scenario;
}

void feed(stream::StreamEngine& engine, const StreamScenario& scenario) {
  for (const auto& event : scenario.events) ingest_event(engine, event);
}

net::Trace batch_trace(const StreamScenario& scenario, std::uint64_t begin_s,
                       std::uint64_t end_s) {
  return events_to_trace(scenario.events, begin_s, end_s);
}

net::Trace events_to_trace(const std::vector<StreamEvent>& events,
                           std::uint64_t begin_s, std::uint64_t end_s) {
  net::Trace trace;
  for (const auto& event : events) {
    const auto t = event_time(event);
    if (t < begin_s || t >= end_s) continue;
    if (const auto* e = std::get_if<stream::RequestEvent>(&event)) {
      net::HttpRequest req;
      req.client = trace.intern_client(e->client);
      req.server = trace.intern_server(e->host);
      req.day = static_cast<std::uint32_t>(t / 86400);
      req.method = e->method;
      req.status = e->status;
      req.path = e->path;
      req.user_agent = e->user_agent;
      req.referrer = e->referrer;
      trace.add_request(std::move(req));
    } else if (const auto* r = std::get_if<stream::ResolutionEvent>(&event)) {
      trace.add_resolution(trace.intern_server(r->host),
                           trace.intern_ip(r->ip));
    } else if (const auto* d = std::get_if<stream::RedirectEvent>(&event)) {
      trace.add_redirect(trace.intern_server(d->from),
                         trace.intern_server(d->to));
    }
  }
  trace.finalize();
  return trace;
}

}  // namespace smash::synth
