// Preprocessing reuse: merging the window's cached per-epoch preprocessed
// shards (core/preshard.h) must reproduce `preprocess(assembled_window)`
// EXACTLY — interner orders, profile contents, redirects, filter output —
// because the mining tail's byte-identical stream/batch equivalence rests
// on the merged state being indistinguishable from a fresh preprocess.
#include "core/preshard.h"

#include <gtest/gtest.h>

#include <string>
#include <variant>
#include <vector>

#include "core/pipeline.h"
#include "core/preprocess.h"
#include "stream/ingest.h"
#include "synth/stream_gen.h"

namespace smash::core {
namespace {

stream::StreamConfig small_config(std::uint32_t epoch_s, std::uint32_t window,
                                  std::uint32_t idf = 50) {
  stream::StreamConfig config;
  config.epoch_seconds = epoch_s;
  config.window_epochs = window;
  config.smash.idf_threshold = idf;
  return config;
}

void feed_ingestor(stream::StreamIngestor& ingestor,
                   const std::vector<synth::StreamEvent>& events) {
  for (const auto& event : events) {
    std::visit([&ingestor](const auto& e) { ingestor.ingest(e); }, event);
  }
}

std::vector<ShardPreRef> window_refs(const stream::StreamIngestor& ingestor) {
  std::vector<ShardPreRef> refs;
  refs.reserve(ingestor.window().size());
  for (const auto& shard : ingestor.window()) {
    refs.push_back({&shard->trace(), &shard->pre()});
  }
  return refs;
}

void expect_identical_profiles(const ServerProfile& a, const ServerProfile& b,
                               const std::string& host) {
  EXPECT_EQ(a.clients, b.clients) << host;
  EXPECT_EQ(a.ips, b.ips) << host;
  EXPECT_EQ(a.days, b.days) << host;
  EXPECT_EQ(a.files, b.files) << host;
  EXPECT_EQ(a.user_agents, b.user_agents) << host;
  EXPECT_EQ(a.param_patterns, b.param_patterns) << host;
  EXPECT_EQ(a.referrer_counts, b.referrer_counts) << host;
  EXPECT_EQ(a.requests, b.requests) << host;
  EXPECT_EQ(a.error_requests, b.error_requests) << host;
}

// Deep equality of the merged window preprocess against the batch path
// over the assembled window trace.
void expect_merge_matches_batch(const stream::StreamIngestor& ingestor,
                                const SmashConfig& config) {
  const WindowPre merged = merge_shard_pres(window_refs(ingestor), config);
  const net::Trace window = ingestor.assemble_window();
  const PreprocessResult batch = preprocess(window, config);

  // Window IP interner: ids in profile `ips` sets resolve to the same
  // names in the same order as the assembled trace's interner.
  EXPECT_EQ(merged.ips.names(), window.ips().names());

  // Aggregation: identical 2LD interner order, file interner order,
  // profiles, redirects, and pre-aggregation server count.
  const AggregatedTrace& a = merged.pre.agg;
  const AggregatedTrace& b = batch.agg;
  ASSERT_EQ(a.servers().names(), b.servers().names());
  EXPECT_EQ(a.files().names(), b.files().names());
  EXPECT_EQ(a.redirects(), b.redirects());
  EXPECT_EQ(a.num_servers_before_aggregation(),
            b.num_servers_before_aggregation());
  ASSERT_EQ(a.profiles().size(), b.profiles().size());
  for (std::size_t s = 0; s < a.profiles().size(); ++s) {
    expect_identical_profiles(a.profiles()[s], b.profiles()[s],
                              a.server_name(static_cast<std::uint32_t>(s)));
  }

  // Filter output and reporting stats.
  EXPECT_EQ(merged.pre.kept, batch.kept);
  EXPECT_EQ(merged.pre.kept_index_of, batch.kept_index_of);
  EXPECT_EQ(merged.pre.total_requests, batch.total_requests);
  EXPECT_EQ(merged.pre.requests_after_filter, batch.requests_after_filter);
  EXPECT_EQ(merged.pre.servers_before_aggregation,
            batch.servers_before_aggregation);
  EXPECT_EQ(merged.pre.servers_after_aggregation,
            batch.servers_after_aggregation);
  EXPECT_EQ(merged.pre.servers_after_filter, batch.servers_after_filter);
}

stream::RequestEvent req(std::uint64_t time_s, std::string client,
                         std::string host, std::string path,
                         std::uint16_t status = 200,
                         std::string referrer = "") {
  stream::RequestEvent e;
  e.time_s = time_s;
  e.client = std::move(client);
  e.host = std::move(host);
  e.path = std::move(path);
  e.user_agent = "UA";
  e.referrer = std::move(referrer);
  e.status = status;
  return e;
}

TEST(PreshardMerge, EdgeCaseStreamMatchesBatchExactly) {
  // Hand-built stream covering what the synth scenarios do not: referrers
  // (both to window servers and referrer-only hosts), cross- and same-2LD
  // redirects with cross-epoch overwrites, error statuses, empty epochs,
  // empty-path files, and 2LDs recurring across epochs under different
  // subdomains.
  stream::StreamIngestor ingestor(small_config(/*epoch_s=*/100, /*window=*/6));

  // Epoch 0: basic traffic + referrer to a host never requested.
  ingestor.ingest(req(10, "c1", "a.com", "/x.html"));
  ingestor.ingest(req(20, "c2", "www.a.com", "/x.html", 404));
  ingestor.ingest(req(30, "c1", "b.com", "/", 200, "news.portal.example"));
  ingestor.ingest(stream::ResolutionEvent{40, "a.com", "1.1.1.1"});
  ingestor.ingest(stream::RedirectEvent{50, "b.com", "a.com"});

  // Epoch 1: empty (gap).
  // Epoch 2: same 2LDs again via other subdomains, same-2LD redirect (must
  // be skipped, not erased), params, referrer naming a window server.
  ingestor.ingest(req(210, "c3", "cdn.a.com", "/gate.php?id=7&x=1"));
  ingestor.ingest(req(220, "c2", "b.com", "/x.html", 500, "a.com"));
  ingestor.ingest(stream::RedirectEvent{230, "www.b.com", "b.com"});
  ingestor.ingest(stream::ResolutionEvent{240, "a.com", "2.2.2.2"});
  ingestor.ingest(stream::ResolutionEvent{250, "c.com", "3.3.3.3"});  // no requests

  // Epoch 3: redirect overwrite (b.com now points elsewhere), new server.
  ingestor.ingest(req(310, "c1", "d.net", "/x.html"));
  ingestor.ingest(stream::RedirectEvent{320, "b.com", "d.net"});
  ingestor.close_epoch();  // seal epoch 3

  expect_merge_matches_batch(ingestor, small_config(100, 6).smash);
}

TEST(PreshardMerge, ScenarioWindowsMatchBatchFullAndSlid) {
  synth::StreamScenarioConfig scenario_cfg;
  scenario_cfg.seed = 23;
  scenario_cfg.duration_s = 8 * 600;
  scenario_cfg.benign_servers = 70;
  scenario_cfg.benign_clients = 50;
  scenario_cfg.benign_visits = 700;
  scenario_cfg.popular_servers = 2;
  scenario_cfg.popular_clients = 70;
  scenario_cfg.campaigns = 2;
  scenario_cfg.campaign_servers = 5;
  scenario_cfg.campaign_bots = 4;
  scenario_cfg.poll_interval_s = 120;
  scenario_cfg.active_fraction = 0.35;
  const auto scenario = synth::generate_stream(scenario_cfg);

  // Full-stream window (8 epochs of data in a window of 8) and a slid
  // window (5) whose first epochs have been evicted.
  for (const std::uint32_t window_epochs : {8u, 5u}) {
    stream::StreamIngestor ingestor(small_config(600, window_epochs));
    feed_ingestor(ingestor, scenario.events);
    ingestor.close_epoch();
    expect_merge_matches_batch(ingestor, small_config(600, window_epochs).smash);
  }

  // And the mined tail agrees end to end: run_preprocessed over the merge
  // produces the same campaigns as a fresh run over the assembled window.
  stream::StreamIngestor ingestor(small_config(600, 5));
  feed_ingestor(ingestor, scenario.events);
  ingestor.close_epoch();
  WindowPre merged = merge_shard_pres(window_refs(ingestor),
                                      small_config(600, 5).smash);
  const net::Trace window = ingestor.assemble_window();
  const SmashPipeline pipeline(small_config(600, 5).smash);
  const SmashResult from_merge =
      pipeline.run_preprocessed(std::move(merged.pre), scenario.whois);
  const SmashResult from_trace = pipeline.run(window, scenario.whois);
  EXPECT_EQ(from_merge.pre.kept, from_trace.pre.kept);
  ASSERT_EQ(from_merge.campaigns.size(), from_trace.campaigns.size());
  EXPECT_FALSE(from_trace.campaigns.empty());
  for (std::size_t c = 0; c < from_merge.campaigns.size(); ++c) {
    EXPECT_EQ(from_merge.campaigns[c].servers, from_trace.campaigns[c].servers);
    EXPECT_EQ(from_merge.campaigns[c].involved_clients,
              from_trace.campaigns[c].involved_clients);
  }
}

// The interner-range-parallel delta merge must be byte-identical to the
// serial one for any thread count — each comparison runs against the batch
// preprocess, which is thread-free, so any divergence in the parallel
// range walk (ordering, partitioning, normalization) fails the deep
// equality.
TEST(PreshardMerge, ParallelMergeMatchesSerialAcrossThreadCounts) {
  synth::StreamScenarioConfig scenario_cfg;
  scenario_cfg.seed = 31;
  scenario_cfg.duration_s = 6 * 600;
  scenario_cfg.benign_servers = 60;
  scenario_cfg.benign_clients = 40;
  scenario_cfg.benign_visits = 500;
  scenario_cfg.campaigns = 2;
  scenario_cfg.campaign_servers = 4;
  scenario_cfg.campaign_bots = 3;
  scenario_cfg.poll_interval_s = 120;
  const auto scenario = synth::generate_stream(scenario_cfg);

  stream::StreamIngestor ingestor(small_config(600, 6));
  feed_ingestor(ingestor, scenario.events);
  ingestor.close_epoch();

  SmashConfig serial_cfg = small_config(600, 6).smash;
  serial_cfg.num_threads = 1;
  const WindowPre serial = merge_shard_pres(window_refs(ingestor), serial_cfg);

  for (const unsigned threads : {2u, 3u, 4u, 8u}) {
    SmashConfig threaded_cfg = serial_cfg;
    threaded_cfg.num_threads = threads;
    // Full deep equality against the thread-free batch path...
    expect_merge_matches_batch(ingestor, threaded_cfg);
    // ...and profile-for-profile equality against the serial merge.
    const WindowPre threaded =
        merge_shard_pres(window_refs(ingestor), threaded_cfg);
    EXPECT_EQ(threaded.ips.names(), serial.ips.names());
    ASSERT_EQ(threaded.pre.agg.profiles().size(),
              serial.pre.agg.profiles().size());
    for (std::size_t s = 0; s < serial.pre.agg.profiles().size(); ++s) {
      expect_identical_profiles(
          threaded.pre.agg.profiles()[s], serial.pre.agg.profiles()[s],
          serial.pre.agg.server_name(static_cast<std::uint32_t>(s)));
    }
    EXPECT_EQ(threaded.pre.kept, serial.pre.kept);
  }
}

}  // namespace
}  // namespace smash::core
