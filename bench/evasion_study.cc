// Evasion study (paper §VI, "Evasions"): what happens when an attacker who
// knows SMASH strips correlation signals one dimension at a time.
//
// The worlds are built with the shared scenario library
// (src/synth/scenarios.h): a fixed benign background plus one 12-server /
// 3-bot C&C campaign whose CampaignSpec signal profile varies per row —
// the same generators the quality matrix tracks, so this study and the
// tracked precision/recall trajectory can never drift apart. We measure
// whether a batch SmashPipeline still detects the campaign at each
// `thresh`. The paper's argument: evading one secondary dimension is
// cheap, evading all of them simultaneously is not — and the main
// dimension (shared bots) cannot be evaded without buying more
// infrastructure.
#include <cstdio>
#include <set>
#include <string>

#include "bench_common.h"
#include "synth/scenarios.h"

namespace {

using namespace smash;

struct EvasionProfile {
  std::string name;
  bool share_files = false;
  bool share_ips = false;
  bool share_whois = false;
};

// Builds a small world: benign tail + one campaign with the given signal
// profile. Returns the fraction of campaign servers detected.
double detection_rate(const EvasionProfile& profile, double thresh,
                      std::uint64_t seed) {
  synth::ScenarioBuilder builder("evasion", seed, 86400);

  synth::BenignSpec benign;
  benign.servers = 300;
  benign.clients = 200;
  benign.visits = 700;
  benign.subdomain_fraction = 0.0;
  builder.add_benign_background(benign);

  synth::CampaignSpec campaign;
  campaign.label = "herd";
  campaign.servers = 12;
  campaign.bots = 3;
  campaign.start_s = 0;
  campaign.end_s = 86400;
  campaign.poll_interval_s = 86400;  // one tick: each bot hits each server once
  campaign.shared_filename = profile.share_files;
  campaign.shared_ips = profile.share_ips;
  campaign.shared_whois = profile.share_whois;
  builder.add_campaign(campaign);

  const synth::Scenario scenario = std::move(builder).build();
  const net::Trace trace = synth::to_batch_trace(scenario);

  std::set<std::string> campaign_servers;
  for (const auto& truth : scenario.truth.campaigns) {
    campaign_servers.insert(truth.servers.begin(), truth.servers.end());
  }

  core::SmashConfig config;
  config.idf_threshold = 60;
  config = config.with_threshold(thresh);
  const auto result = core::SmashPipeline(config).run(trace, scenario.whois);

  int detected = 0;
  for (const auto& found : result.campaigns) {
    for (auto member : found.servers) {
      detected += campaign_servers.count(result.server_name(member));
    }
  }
  return static_cast<double>(detected) /
         static_cast<double>(campaign_servers.size());
}

}  // namespace

int main() {
  const EvasionProfile profiles[] = {
      {"all signals (files+ips+whois)", true, true, true},
      {"evade whois (privacy proxy)", true, true, false},
      {"evade IPs (disjoint hosting)", true, false, true},
      {"evade files (per-server names)", false, true, true},
      {"evade files+ips", false, false, true},
      {"evade files+whois", false, true, false},
      {"evade ips+whois", true, false, false},
      {"evade everything", false, false, false},
  };

  smash::util::Table table("Evasion study: detection rate vs evaded dimensions");
  std::vector<std::string> header{"attacker strategy"};
  for (double t : smash::bench::kThresholds) {
    header.push_back("thresh " + smash::util::format_fixed(t, 1));
  }
  table.set_header(header);
  for (const auto& profile : profiles) {
    std::vector<std::string> row{profile.name};
    for (double thresh : smash::bench::kThresholds) {
      row.push_back(smash::util::format_fixed(
          100.0 * detection_rate(profile, thresh, 99), 0) + "%");
    }
    table.add_row(row);
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nTargets (paper Sec. VI): dropping one secondary dimension keeps the");
  std::puts("  campaign detectable (remaining dimensions cover); only stripping");
  std::puts("  ALL secondary signals evades SMASH — and that forces per-server");
  std::puts("  filenames, disjoint hosting and clean registration, i.e. cost.");
  return 0;
}
