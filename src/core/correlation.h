// ASH correlation (paper §III-C): intersect each server's main-dimension
// herd with its secondary-dimension herds, score with eq. (9), and remove
// low-scoring servers and singleton groups.
#pragma once

#include <cstdint>
#include <vector>

#include "core/dimensions.h"
#include "core/smash_config.h"

namespace smash::core {

struct CorrelationResult {
  // Per kept-index suspiciousness score S(Si), eq. (9); 0 for servers with
  // no main-dimension herd.
  std::vector<double> score;
  // Bitmask over secondary dimensions whose term in eq. (9) is non-zero:
  // bit 0 = file, bit 1 = ip, bit 2 = whois. Drives the Fig. 8 bench.
  std::vector<std::uint8_t> dims_mask;
  // Number of clients shared by a server's main herd — used to decide which
  // `thresh` applies (single-client herds use the stricter one, paper
  // footnote 9).
  std::vector<std::uint32_t> herd_clients;

  // Candidate groups after removal: surviving servers grouped by their
  // main-dimension herd (the paper's campaign-inference merge key), groups
  // of size >= 2 only. Sorted by first member.
  std::vector<std::vector<std::uint32_t>> groups;
};

// `dims` must be the vector from mine_all_dimensions (indexed by Dimension).
CorrelationResult correlate(const PreprocessResult& pre,
                            const std::vector<DimensionAshes>& dims,
                            const SmashConfig& config);

}  // namespace smash::core
