// Reproduces paper Tables XI and XII (Appendix C): campaigns with a single
// involved client, across the same `thresh` sweep. The paper operates
// these at thresh = 1.0 because rare benign servers visited by the same
// lone client mix into single-client herds.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace smash;
  const auto campaigns = bench::campaign_sweep_table(
      "Table XI: number of attack campaigns with single client",
      {"2011day", "2012day"}, /*single_client=*/true);
  std::fputs(campaigns.render().c_str(), stdout);

  const auto servers = bench::server_sweep_table(
      "Table XII: number of servers in single-client campaigns",
      {"2011day", "2012day"}, /*single_client=*/true);
  std::printf("\n%s", servers.render().c_str());

  std::puts("\nShape targets (paper): more campaigns than the multi-client case,");
  std::puts("  higher FP at low thresh (hence the 1.0 operating point), counts");
  std::puts("  falling monotonically with thresh.");
  return 0;
}
