#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace smash::serve {

BlockingClient::BlockingClient(const std::string& address, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    throw std::runtime_error("BlockingClient: bad address " + address);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    throw std::runtime_error("connect: " + err);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

BlockingClient::~BlockingClient() { close(); }

BlockingClient::BlockingClient(BlockingClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), decoder_(std::move(other.decoder_)) {}

void BlockingClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void BlockingClient::send(const RequestFrame& request) {
  std::string bytes;
  encode_request(bytes, request);
  send_raw(bytes);
}

void BlockingClient::send_raw(std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::write(fd_, bytes.data() + sent, bytes.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("write: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::optional<ResponseFrame> BlockingClient::receive() {
  std::string payload;
  while (!decoder_.next(payload)) {
    if (decoder_.failed()) {
      throw std::runtime_error("BlockingClient: " + decoder_.error());
    }
    char buf[16 * 1024];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n == 0) return std::nullopt;  // server hung up
    if (n < 0) {
      if (errno == EINTR) continue;
      // The server resets connections it rejected or that broke framing;
      // surface that as EOF, not an exception — callers treat both as
      // "this connection is done".
      if (errno == ECONNRESET) return std::nullopt;
      throw std::runtime_error(std::string("read: ") + std::strerror(errno));
    }
    decoder_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
  std::string error;
  auto response = decode_response(payload, &error);
  if (!response) {
    throw std::runtime_error("BlockingClient: malformed response: " + error);
  }
  return response;
}

std::optional<ResponseFrame> BlockingClient::call(const RequestFrame& request) {
  send(request);
  return receive();
}

}  // namespace smash::serve
