#include "core/preprocess.h"

#include "dns/domain.h"
#include "net/http.h"

namespace smash::core {

AggregatedTrace AggregatedTrace::build(const net::Trace& trace) {
  AggregatedTrace out;
  out.raw_servers_ = trace.servers().size();

  // hostname id -> aggregated id, computed once per hostname.
  std::vector<std::uint32_t> agg_of(trace.servers().size());
  for (std::uint32_t s = 0; s < trace.servers().size(); ++s) {
    agg_of[s] = out.servers_.intern(dns::effective_2ld(trace.servers().name(s)));
  }
  out.profiles_.resize(out.servers_.size());

  for (const auto& req : trace.requests()) {
    ServerProfile& p = out.profiles_[agg_of[req.server]];
    p.clients.insert(req.client);
    p.days.insert(req.day);
    p.files.insert(out.files_.intern(net::uri_file(req.path)));
    p.user_agents.insert(req.user_agent);
    const std::string pattern = net::param_pattern(req.path);
    if (!pattern.empty()) p.param_patterns.insert(pattern);
    if (!req.referrer.empty()) {
      ++p.referrer_counts[out.servers_.intern(dns::effective_2ld(req.referrer))];
    }
    ++p.requests;
    if (net::is_error_status(req.status)) ++p.error_requests;
  }
  // A referrer-only host may have grown the interner past profiles_.
  out.profiles_.resize(out.servers_.size());

  for (std::uint32_t s = 0; s < trace.servers().size(); ++s) {
    for (auto ip : trace.ips_of(s)) out.profiles_[agg_of[s]].ips.insert(ip);
    std::uint32_t to = 0;
    if (trace.redirect_target(s, to)) {
      const auto from_agg = agg_of[s];
      const auto to_agg = agg_of[to];
      if (from_agg != to_agg) out.redirects_[from_agg] = to_agg;
    }
  }

  for (auto& p : out.profiles_) {
    p.clients.normalize();
    p.ips.normalize();
    p.days.normalize();
    p.files.normalize();
  }
  return out;
}

AggregatedTrace AggregatedTrace::from_parts(
    util::Interner servers, util::Interner files,
    std::vector<ServerProfile> profiles,
    std::unordered_map<std::uint32_t, std::uint32_t> redirects,
    std::uint32_t raw_servers) {
  AggregatedTrace out;
  out.servers_ = std::move(servers);
  out.files_ = std::move(files);
  out.profiles_ = std::move(profiles);
  out.redirects_ = std::move(redirects);
  out.raw_servers_ = raw_servers;
  out.profiles_.resize(out.servers_.size());
  return out;
}

void apply_idf_filter(PreprocessResult& out, const SmashConfig& config) {
  const auto& agg = out.agg;
  out.servers_before_aggregation = agg.num_servers_before_aggregation();
  out.servers_after_aggregation = agg.servers().size();

  out.kept.clear();
  out.requests_after_filter = 0;
  out.kept_index_of.assign(agg.servers().size(), -1);
  for (std::uint32_t s = 0; s < agg.servers().size(); ++s) {
    const auto& p = agg.profile(s);
    if (p.requests == 0) continue;  // referrer-only host, never requested
    if (p.clients.size() > config.idf_threshold) continue;  // popular
    out.kept_index_of[s] = static_cast<std::int32_t>(out.kept.size());
    out.kept.push_back(s);
    out.requests_after_filter += p.requests;
  }
  out.servers_after_filter = static_cast<std::uint32_t>(out.kept.size());
}

PreprocessResult preprocess(const net::Trace& trace, const SmashConfig& config) {
  PreprocessResult out{AggregatedTrace::build(trace), {}, {}};
  out.total_requests = trace.num_requests();
  apply_idf_filter(out, config);
  return out;
}

}  // namespace smash::core
