// String interning: maps strings to dense uint32_t ids and back.
//
// All hot-path structures in SMASH (similarity joins, Louvain, ASH sets)
// operate on dense ids; strings appear only at the I/O boundary and in
// reports.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace smash::util {

class Interner {
 public:
  // Returns the id for `s`, inserting it if new. Ids are assigned densely
  // in insertion order starting at 0.
  std::uint32_t intern(std::string_view s) {
    auto it = ids_.find(std::string(s));
    if (it != ids_.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(strings_.size());
    strings_.emplace_back(s);
    ids_.emplace(strings_.back(), id);
    return id;
  }

  // Lookup without insertion.
  std::optional<std::uint32_t> find(std::string_view s) const {
    auto it = ids_.find(std::string(s));
    if (it == ids_.end()) return std::nullopt;
    return it->second;
  }

  const std::string& name(std::uint32_t id) const {
    if (id >= strings_.size()) throw std::out_of_range("Interner::name: bad id");
    return strings_[id];
  }

  std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(strings_.size());
  }

  bool empty() const noexcept { return strings_.empty(); }

  const std::vector<std::string>& names() const noexcept { return strings_; }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, std::uint32_t> ids_;
};

}  // namespace smash::util
