// All tunables of the SMASH pipeline in one place. Defaults follow the
// paper where it gives values (IDF threshold 200, filename len 25, cosine
// 0.8, mu = 4, sigma = 5.5, thresh 0.8 multi-client / 1.0 single-client);
// per-dimension graph edge cut-offs are our choices (the paper leaves them
// unspecified) and are documented in README.md.
#pragma once

#include <cstdint>

#include "graph/louvain.h"

namespace smash::core {

struct SmashConfig {
  // --- preprocessing (paper §III-A, Appendix A) -----------------------------
  // Servers contacted by more than this many distinct clients are removed
  // as "popular".
  std::uint32_t idf_threshold = 200;

  // --- dimension graphs (paper §III-B) --------------------------------------
  // Minimum eq. (1) client similarity for a main-dimension edge.
  double client_edge_threshold = 0.2;
  // Minimum URI-file-class similarity (bidirectional form of eq. (7)).
  double file_edge_threshold = 0.04;
  // Minimum eq. (8) IP-set similarity.
  double ip_edge_threshold = 0.25;
  // Whois: minimum shared non-proxy fields (paper: 2).
  int whois_min_shared_fields = 2;

  // URI-file similarity, eqs. (2)-(6): filenames longer than `len` are
  // compared by character-frequency cosine instead of equality.
  std::uint32_t filename_len_threshold = 25;  // Appendix B
  double filename_cosine_threshold = 0.8;

  // Safety caps for the inverted-index joins. A URI file served by more
  // servers than `file_postings_cap` is treated as a stop-file (index.html
  // and friends); eq. (7)'s normalization makes such files uninformative
  // anyway.
  std::uint32_t file_postings_cap = 1500;
  std::uint32_t join_postings_cap = 20000;

  // --- correlation (paper §III-C, eq. (9)) ----------------------------------
  double mu = 4.0;     // promotes groups larger than 4
  double sigma = 5.5;  // steepness of the erf curve
  // `thresh`: servers scoring below are removed. The paper sweeps
  // {0.5, 0.8, 1.0, 1.5} and operates at 0.8 for campaigns with >= 2
  // clients and 1.0 for single-client campaigns (§V-A, footnote 9).
  double score_threshold = 0.8;
  double single_client_score_threshold = 1.0;

  // --- extensions (paper §VI) --------------------------------------------------
  // Adds the parameter-pattern secondary dimension (recovers the paper's
  // §V-A2 false negatives that share only "p=&id=&e="-style structure).
  bool enable_param_dimension = false;
  double param_edge_threshold = 0.15;
  // Patterns shared by more servers than this are structural noise
  // ("id=" alone) and are skipped, like the URI-file stop-file cap.
  std::uint32_t param_postings_cap = 1500;

  // --- execution ---------------------------------------------------------------
  // Worker threads for ASH mining: dimensions are mined concurrently and
  // the client-dimension join is probe-range sharded. Results are
  // identical for any thread count (each dimension is independent and the
  // sharded join reproduces the serial output exactly); 1 = fully serial.
  unsigned num_threads = 1;

  // --- pruning (paper §III-D) -------------------------------------------------
  // A server is "referred by" a host if at least this fraction of its
  // requests carry that Referer; a group is a referrer group if every
  // member shares the same dominant referrer.
  double referrer_dominance = 0.8;

  graph::LouvainOptions louvain;

  // Convenience: same threshold for both campaign classes (used by the
  // table benches when sweeping `thresh`).
  SmashConfig with_threshold(double thresh) const {
    SmashConfig out = *this;
    out.score_threshold = thresh;
    out.single_client_score_threshold = thresh;
    return out;
  }
};

}  // namespace smash::core
