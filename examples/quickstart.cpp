// Quickstart: generate a small synthetic ISP day, run the full SMASH
// pipeline, and print what it found.
//
//   ./quickstart [seed]
//
// This is the five-minute tour of the public API: synth::generate_world
// builds a trace + ground-truth apparatus, core::SmashPipeline infers
// campaigns, core::Evaluator scores them the way the paper does.
#include <cstdio>
#include <cstdlib>

#include "core/evaluation.h"
#include "core/pipeline.h"
#include "synth/world.h"

int main(int argc, char** argv) {
  using namespace smash;

  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  synth::Dataset dataset = synth::generate_world(synth::tiny_world(seed));
  std::printf("world: %u clients, %u hostnames, %zu requests\n",
              dataset.trace.num_clients(), dataset.trace.num_servers(),
              dataset.trace.num_requests());

  // The tiny world has ~400 clients, so the popularity cut-off must shrink
  // with it (the paper's 200 assumes ~15k clients).
  core::SmashConfig config;
  config.idf_threshold = 60;

  const core::SmashPipeline pipeline(config);
  const core::SmashResult result = pipeline.run(dataset.trace, dataset.whois);

  std::printf("preprocessing: %u raw -> %u aggregated -> %u kept servers\n",
              result.pre.servers_before_aggregation,
              result.pre.servers_after_aggregation,
              result.pre.servers_after_filter);
  for (const auto& dim : result.dims) {
    std::printf("dimension %-8s: %zu edges, %zu herds, %zu herded servers, Q=%.3f\n",
                std::string(core::dimension_name(dim.dimension)).c_str(),
                dim.graph_edges, dim.ashes.size(), dim.num_herded_servers(),
                dim.modularity);
  }
  std::printf("correlation survivors: %zu groups; pruned to %zu; campaigns: %zu\n",
              result.correlation.groups.size(), result.pruned.groups.size(),
              result.campaigns.size());

  const core::Evaluator evaluator(dataset.trace, dataset.signatures,
                                  dataset.blacklist, dataset.truth);
  for (const bool single_client : {false, true}) {
    const auto eval = evaluator.evaluate(result, single_client);
    std::printf(
        "\n%s campaigns: %d  (IDS total %d/%d, partial %d/%d, blacklist %d, "
        "suspicious %d, FP %d, FP-updated %d)\n",
        single_client ? "single-client" : "multi-client",
        eval.campaign_counts.smash, eval.campaign_counts.ids2012_total,
        eval.campaign_counts.ids2013_total, eval.campaign_counts.ids2012_partial,
        eval.campaign_counts.ids2013_partial, eval.campaign_counts.blacklist_partial,
        eval.campaign_counts.suspicious, eval.campaign_counts.false_positives,
        eval.campaign_counts.fp_updated);
    std::printf(
        "  servers: %d  (IDS2012 %d, IDS2013 %d, blacklist %d, new %d, "
        "suspicious %d, FP %d) | truly-malicious %d, noise %d, benign %d\n",
        eval.server_counts.smash, eval.server_counts.ids2012,
        eval.server_counts.ids2013, eval.server_counts.blacklist,
        eval.server_counts.new_servers, eval.server_counts.suspicious,
        eval.server_counts.false_positives, eval.detected_truly_malicious,
        eval.detected_noise, eval.detected_benign);
  }

  // Show the three largest campaigns with a few member names.
  auto campaigns = result.campaigns;
  std::sort(campaigns.begin(), campaigns.end(),
            [](const auto& a, const auto& b) { return a.size() > b.size(); });
  std::printf("\nlargest campaigns:\n");
  for (std::size_t i = 0; i < campaigns.size() && i < 3; ++i) {
    std::printf("  #%zu: %zu servers, %zu involved clients:", i + 1,
                campaigns[i].size(), campaigns[i].involved_clients.size());
    for (std::size_t s = 0; s < campaigns[i].servers.size() && s < 4; ++s) {
      std::printf(" %s", result.server_name(campaigns[i].servers[s]).c_str());
    }
    std::printf("%s\n", campaigns[i].size() > 4 ? " ..." : "");
  }
  return 0;
}
