// Streaming perf baseline: a day-long timestamped scenario driven through
// the StreamEngine twice — synchronous mining (the re-mine runs on the
// ingest thread at epoch close) and asynchronous mining (the close hands
// the window to the mining thread and ingest returns immediately; bursts
// coalesce to the newest window). Measures end-to-end
// epoch-close-to-snapshot-publish latency (merge / mine / snapshot
// breakdown), the max per-event ingest stall in each mode (the async
// acceptance bar: ingest must never block on mining), detection latency
// against campaign ground truth, VerdictService lookup throughput, and the
// durability tax: ingest overhead of write-ahead logging under each fsync
// policy plus the wall-time to recover the finished log. Written to
// BENCH_stream.json.
//
// Also measures the observability tax: the same durable feed with the
// metrics registry and span tracer off vs on (acceptance bar: <= 2%), with
// in-bench consistency gates tying the exported histograms to the bench's
// own counts. `--obs-dump <dir>` saves the obs-on run's Prometheus text,
// registry JSON, periodic JSONL, and Chrome trace JSON (Perfetto-loadable)
// for tools/check_trace.py and manual inspection.
//
// Usage: perf_stream [output.json] [--smoke] [--obs-dump <dir>]
//   --smoke: minutes-long scenario for CI bitrot checks (same code paths,
//            tiny population).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/engine.h"
#include "stream/verdict.h"
#include "synth/stream_gen.h"

namespace {

using smash::stream::EpochId;

smash::synth::StreamScenarioConfig scenario_config(bool smoke) {
  smash::synth::StreamScenarioConfig config;
  config.seed = 2015;
  if (smoke) {
    config.duration_s = 2 * 3600;
    config.benign_servers = 150;
    config.benign_clients = 120;
    config.benign_visits = 2500;
    config.popular_servers = 2;
    config.popular_clients = 250;
    config.campaigns = 2;
  } else {
    config.duration_s = 86400;
    config.benign_servers = 1200;
    config.benign_clients = 800;
    config.benign_visits = 40000;
    config.popular_servers = 6;
    config.popular_clients = 250;
    config.campaigns = 6;
  }
  config.campaign_servers = 6;
  config.campaign_bots = 5;
  config.poll_interval_s = 300;
  config.active_fraction = 0.35;
  return config;
}

smash::stream::StreamConfig stream_config(bool smoke, bool async) {
  smash::stream::StreamConfig config;
  config.epoch_seconds = smoke ? 600 : 3600;
  config.window_epochs = smoke ? 12 : 24;
  config.smash.idf_threshold = 200;  // popular_clients = 250 get filtered
  config.async_mining = async;
  return config;
}

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

double max_of(const std::vector<double>& v) {
  return v.empty() ? 0.0 : *std::max_element(v.begin(), v.end());
}

struct FeedResult {
  double feed_ms = 0.0;
  double stall_max_ms = 0.0;   // worst single ingest() call
  double stall_mean_ms = 0.0;  // mean ingest() call
};

// Feeds every event, timing each ingest call individually; `on_publish`
// (may be empty) runs whenever the publication counter advanced.
template <typename OnPublish>
FeedResult feed_timed(smash::stream::StreamEngine& engine,
                      const smash::synth::StreamScenario& scenario,
                      OnPublish&& on_publish) {
  FeedResult out;
  std::uint64_t seen_publications = 0;
  double stall_sum_ms = 0.0;
  const auto feed_start = std::chrono::steady_clock::now();
  for (const auto& event : scenario.events) {
    const auto start = std::chrono::steady_clock::now();
    smash::synth::ingest_event(engine, event);
    const double stall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    stall_sum_ms += stall_ms;
    out.stall_max_ms = std::max(out.stall_max_ms, stall_ms);
    if (engine.snapshots_published() != seen_publications) {
      seen_publications = engine.snapshots_published();
      on_publish();
    }
  }
  engine.finish();
  on_publish();
  out.feed_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - feed_start)
                    .count();
  out.stall_mean_ms =
      scenario.events.empty()
          ? 0.0
          : stall_sum_ms / static_cast<double>(scenario.events.size());
  return out;
}

void report_close_records(smash::bench::JsonReporter& report,
                          const smash::stream::StreamEngine& engine,
                          const FeedResult& feed, const char* prefix) {
  const auto records = engine.close_records();
  std::vector<double> total_ms, assemble_ms, mine_ms, snapshot_ms;
  std::size_t peak_window_requests = 0;
  for (const auto& record : records) {
    total_ms.push_back(record.total_ms);
    assemble_ms.push_back(record.assemble_ms);
    mine_ms.push_back(record.mine_ms);
    snapshot_ms.push_back(record.snapshot_ms);
    peak_window_requests = std::max(peak_window_requests, record.window_requests);
  }
  report.add(std::string(prefix) + "/epoch_close_to_publish", mean(total_ms),
             {{"max_ms", max_of(total_ms)},
              {"assemble_ms", mean(assemble_ms)},
              {"mine_ms", mean(mine_ms)},
              {"snapshot_ms", mean(snapshot_ms)},
              {"publications", static_cast<double>(records.size())},
              {"epochs_closed", static_cast<double>(engine.epochs_closed_total())},
              {"windows_coalesced", static_cast<double>(engine.windows_coalesced())},
              {"peak_window_requests", static_cast<double>(peak_window_requests)},
              {"feed_total_ms", feed.feed_ms}});
  report.add(std::string(prefix) + "/ingest_stall", feed.stall_max_ms,
             {{"mean_ms", feed.stall_mean_ms},
              {"mine_mean_ms", mean(mine_ms)}});
  std::printf(
      "%-13s %zu closes, %zu publications (%llu coalesced)  close->publish "
      "%0.1f ms mean / %0.1f ms max  (merge %0.2f, mine %0.1f, snapshot "
      "%0.2f)  ingest stall %0.3f ms max / %0.4f ms mean\n",
      prefix, static_cast<std::size_t>(engine.epochs_closed_total()),
      records.size(),
      static_cast<unsigned long long>(engine.windows_coalesced()),
      mean(total_ms), max_of(total_ms), mean(assemble_ms), mean(mine_ms),
      mean(snapshot_ms), feed.stall_max_ms, feed.stall_mean_ms);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_stream.json";
  std::string obs_dump_dir;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--obs-dump") == 0 && i + 1 < argc) {
      obs_dump_dir = argv[++i];
    } else {
      out_path = argv[i];
    }
  }

  const auto scenario = smash::synth::generate_stream(scenario_config(smoke));
  smash::bench::JsonReporter report("stream");

  // --- synchronous engine: probe detection after every publication ----------
  smash::stream::StreamEngine engine(stream_config(smoke, /*async=*/false),
                                     scenario.whois);
  const smash::stream::VerdictService service(engine.slot());
  const std::uint32_t epoch_seconds = engine.config().epoch_seconds;

  std::vector<EpochId> first_flagged(scenario.campaigns.size(), 0);
  std::vector<bool> detected(scenario.campaigns.size(), false);
  std::vector<std::string> full_digests;  // per-publication, identity oracle
  const auto probe = [&] {
    if (const auto snap = engine.snapshot()) {
      full_digests.push_back(snap->digest());
    }
    for (std::size_t c = 0; c < scenario.campaigns.size(); ++c) {
      if (detected[c]) continue;
      if (service.lookup(scenario.campaigns[c].servers[0]).malicious) {
        detected[c] = true;
        first_flagged[c] = engine.snapshot()->last_epoch();
      }
    }
  };
  const FeedResult sync_feed = feed_timed(engine, scenario, probe);
  report_close_records(report, engine, sync_feed, "stream");

  // --- asynchronous engine: ingest must never block on mining ---------------
  smash::stream::StreamEngine async_engine(stream_config(smoke, /*async=*/true),
                                           scenario.whois);
  const FeedResult async_feed = feed_timed(async_engine, scenario, [] {});
  report_close_records(report, async_engine, async_feed, "stream_async");

  // --- incremental delta re-mining: identity gate + re-mine speedup ---------
  // The same feed through an incremental engine. This is a differential
  // check, not just a benchmark: every published snapshot must be
  // byte-identical (digest) to the full-mine sync run above, and the bench
  // hard-fails on the first divergence.
  {
    auto inc_config = stream_config(smoke, /*async=*/false);
    inc_config.incremental_mining = true;
    smash::stream::StreamEngine inc_engine(inc_config, scenario.whois);
    std::vector<std::string> inc_digests;
    const FeedResult inc_feed = feed_timed(inc_engine, scenario, [&] {
      if (const auto snap = inc_engine.snapshot()) {
        inc_digests.push_back(snap->digest());
      }
    });
    if (inc_digests.size() != full_digests.size()) {
      std::fprintf(stderr,
                   "incremental gate: %zu publications vs %zu full-mine\n",
                   inc_digests.size(), full_digests.size());
      return 1;
    }
    for (std::size_t i = 0; i < inc_digests.size(); ++i) {
      if (inc_digests[i] != full_digests[i]) {
        std::fprintf(stderr,
                     "incremental gate: snapshot digest diverged at "
                     "publication %zu/%zu\n",
                     i + 1, inc_digests.size());
        return 1;
      }
    }
    report_close_records(report, inc_engine, inc_feed, "stream_incremental");

    // Opt-in approximate mode (warm-start Louvain repair) on the same
    // feed: no identity gate — it trades that contract away — but it must
    // still detect, and its re-mine time shows what the exact mode pays
    // for re-partitioning.
    auto approx_config = inc_config;
    approx_config.smash.delta_approximate_louvain = true;
    smash::stream::StreamEngine approx_engine(approx_config, scenario.whois);
    feed_timed(approx_engine, scenario, [] {});
    if (approx_engine.snapshot() == nullptr ||
        approx_engine.snapshot()->num_malicious_servers() == 0) {
      std::fprintf(stderr,
                   "incremental gate: approximate mode detected nothing\n");
      return 1;
    }
    std::vector<double> approx_mine_ms;
    for (const auto& r : approx_engine.close_records()) {
      approx_mine_ms.push_back(r.mine_ms);
    }

    std::vector<double> full_mine_ms, inc_mine_ms;
    for (const auto& r : engine.close_records()) full_mine_ms.push_back(r.mine_ms);
    for (const auto& r : inc_engine.close_records()) inc_mine_ms.push_back(r.mine_ms);
    const double speedup =
        mean(inc_mine_ms) > 0.0 ? mean(full_mine_ms) / mean(inc_mine_ms) : 0.0;
    const auto& delta = inc_engine.snapshot()->delta_stats();
    report.add("stream_incremental/delta_vs_full", speedup,
               {{"full_mine_mean_ms", mean(full_mine_ms)},
                {"incremental_mine_mean_ms", mean(inc_mine_ms)},
                {"approx_mine_mean_ms", mean(approx_mine_ms)},
                {"full_mine_max_ms", max_of(full_mine_ms)},
                {"incremental_mine_max_ms", max_of(inc_mine_ms)},
                {"approx_mine_max_ms", max_of(approx_mine_ms)},
                {"identical_publications", static_cast<double>(inc_digests.size())},
                {"final_dims_delta", static_cast<double>(delta.dims_delta)},
                {"final_dims_partition_reused",
                 static_cast<double>(delta.dims_partition_reused)},
                {"final_changed_items", static_cast<double>(delta.changed_items)},
                {"final_total_items", static_cast<double>(delta.total_items)},
                {"final_reused_pairs", static_cast<double>(delta.reused_pairs)},
                {"final_rescored_pairs", static_cast<double>(delta.rescored_pairs)}});
    std::printf(
        "incremental  mine %0.1f ms mean vs %0.1f ms full (%0.2fx; approx "
        "louvain %0.1f ms), %zu "
        "publications byte-identical  (final close: %llu/%llu items changed, "
        "%llu pairs reused, %llu dims delta-mined, %llu partitions reused)\n",
        mean(inc_mine_ms), mean(full_mine_ms), speedup, mean(approx_mine_ms),
        inc_digests.size(),
        static_cast<unsigned long long>(delta.changed_items),
        static_cast<unsigned long long>(delta.total_items),
        static_cast<unsigned long long>(delta.reused_pairs),
        static_cast<unsigned long long>(delta.dims_delta),
        static_cast<unsigned long long>(delta.dims_partition_reused));
  }

  // --- detection latency (sync engine) ---------------------------------------
  std::vector<double> latency_epochs;
  std::size_t missed = 0;
  for (std::size_t c = 0; c < scenario.campaigns.size(); ++c) {
    if (!detected[c]) {
      ++missed;
      continue;
    }
    const EpochId activation = scenario.campaigns[c].start_s / epoch_seconds;
    latency_epochs.push_back(first_flagged[c] >= activation
                                 ? static_cast<double>(first_flagged[c] - activation)
                                 : 0.0);
  }
  report.add("stream/detection_latency_epochs", mean(latency_epochs),
             {{"max_epochs", max_of(latency_epochs)},
              {"campaigns", static_cast<double>(scenario.campaigns.size())},
              {"missed", static_cast<double>(missed)}});
  std::printf("stream  detection latency %0.2f epochs mean / %0.0f max  (%zu/%zu detected)\n",
              mean(latency_epochs), max_of(latency_epochs),
              scenario.campaigns.size() - missed, scenario.campaigns.size());

  // --- verdict lookup throughput --------------------------------------------
  const std::size_t lookups = smoke ? 20000 : 1000000;
  std::size_t hits = 0;
  const double lookup_ms = smash::bench::time_once_ms([&] {
    for (std::size_t i = 0; i < lookups; ++i) {
      // Alternate flagged / benign / unknown hosts to mix hash paths.
      const auto& truth = scenario.campaigns[i % scenario.campaigns.size()];
      switch (i % 3) {
        case 0:
          hits += service.lookup(truth.servers[i % truth.servers.size()]).malicious;
          break;
        case 1:
          hits += service.lookup("site" + std::to_string(i % 97) + ".org").malicious;
          break;
        default:
          hits += service.lookup("never-seen" + std::to_string(i % 31) + ".example")
                      .malicious;
          break;
      }
    }
  });
  const double qps = lookup_ms > 0.0
                         ? static_cast<double>(lookups) / (lookup_ms / 1000.0)
                         : 0.0;
  report.add("stream/verdict_lookup", lookup_ms,
             {{"lookups", static_cast<double>(lookups)},
              {"qps", qps},
              {"hits", static_cast<double>(hits)}});
  std::printf("stream  %zu lookups in %0.1f ms  (%0.0f lookups/s)\n", lookups,
              lookup_ms, qps);

  // --- exporter-consistency gate: sampled latency vs lookup counter ---------
  // verdict.lookup_ns times every kLookupSampleStride-th lookup per thread;
  // verdict.lookups_total counts all of them. The two must agree — the gate
  // hard-fails when the histogram's sample count drifts from
  // lookups_total / stride, which is exactly what a broken sampling
  // predicate (the old `% stride == 1`, which oversampled each thread's
  // first lookup) produces.
  {
    const auto verdict_metrics = service.metrics()->snapshot();
    const auto* lookups_total = verdict_metrics.counter("verdict.lookups_total");
    const auto* lookup_ns = verdict_metrics.histogram("verdict.lookup_ns");
    if (lookups_total == nullptr || lookup_ns == nullptr) {
      std::fprintf(stderr, "sampling gate: verdict metrics missing\n");
      return 1;
    }
    constexpr std::uint64_t stride =
        smash::stream::VerdictService::kLookupSampleStride;
    const std::uint64_t expected = lookups_total->value / stride;
    // The stride counter is thread_local and shared across services, so a
    // thread can be mid-stride at either boundary: one sample of slack per
    // thread that looked anything up (this bench: the main thread).
    constexpr std::uint64_t slack = 2;
    const std::uint64_t diff = lookup_ns->count > expected
                                   ? lookup_ns->count - expected
                                   : expected - lookup_ns->count;
    if (diff > slack) {
      std::fprintf(stderr,
                   "sampling gate: verdict.lookup_ns count %llu vs "
                   "lookups_total %llu / stride %llu = %llu expected "
                   "(tolerance %llu)\n",
                   static_cast<unsigned long long>(lookup_ns->count),
                   static_cast<unsigned long long>(lookups_total->value),
                   static_cast<unsigned long long>(stride),
                   static_cast<unsigned long long>(expected),
                   static_cast<unsigned long long>(slack));
      return 1;
    }
    report.add("stream/verdict_sampling_gate",
               static_cast<double>(lookup_ns->count),
               {{"lookups_total", static_cast<double>(lookups_total->value)},
                {"sampled", static_cast<double>(lookup_ns->count)},
                {"stride", static_cast<double>(stride)}});
    std::printf("stream  sampling gate: %llu of %llu lookups timed (1/%llu)\n",
                static_cast<unsigned long long>(lookup_ns->count),
                static_cast<unsigned long long>(lookups_total->value),
                static_cast<unsigned long long>(stride));
  }

  // --- durability: WAL ingest tax per fsync policy, recovery wall-time ------
  const std::pair<const char*, smash::stream::WalFsync> policies[] = {
      {"off", smash::stream::WalFsync::kOff},
      {"on_seal", smash::stream::WalFsync::kOnSeal},
      {"every_record", smash::stream::WalFsync::kEveryRecord},
  };
  for (const auto& [policy_name, policy] : policies) {
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         (std::string("smash_perf_durability_") + policy_name))
            .string();
    std::filesystem::remove_all(dir);
    auto durable_config = stream_config(smoke, /*async=*/false);
    durable_config.durability_dir = dir;
    durable_config.fsync_policy = policy;
    durable_config.checkpoint_every_epochs = 6;

    FeedResult durable_feed;
    std::uintmax_t dir_bytes = 0;
    {
      smash::stream::StreamEngine durable(durable_config, scenario.whois);
      durable_feed = feed_timed(durable, scenario, [] {});
      for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        dir_bytes += entry.file_size();
      }
    }

    std::unique_ptr<smash::stream::StreamEngine> recovered;
    const double recover_ms = smash::bench::time_once_ms([&] {
      recovered = smash::stream::StreamEngine::recover(durable_config,
                                                       scenario.whois);
    });
    const auto& rstats = recovered->recovery_stats();
    const double overhead =
        sync_feed.feed_ms > 0.0 ? durable_feed.feed_ms / sync_feed.feed_ms
                                : 0.0;
    report.add(std::string("stream_durable_") + policy_name + "/feed",
               durable_feed.feed_ms,
               {{"overhead_vs_no_wal", overhead},
                {"stall_max_ms", durable_feed.stall_max_ms},
                {"stall_mean_ms", durable_feed.stall_mean_ms},
                {"dir_mib", static_cast<double>(dir_bytes) / (1024.0 * 1024.0)},
                {"recover_ms", recover_ms},
                {"events_replayed",
                 static_cast<double>(rstats.events_replayed)},
                {"used_checkpoint", rstats.used_checkpoint ? 1.0 : 0.0}});
    std::printf(
        "durable/%-12s feed %8.1f ms (%0.2fx no-WAL)  stall %0.3f ms max  "
        "%0.1f MiB on disk  recover %0.1f ms (%llu events replayed, ckpt=%d)\n",
        policy_name, durable_feed.feed_ms, overhead, durable_feed.stall_max_ms,
        static_cast<double>(dir_bytes) / (1024.0 * 1024.0), recover_ms,
        static_cast<unsigned long long>(rstats.events_replayed),
        rstats.used_checkpoint ? 1 : 0);
    recovered.reset();
    std::filesystem::remove_all(dir);
  }

  // --- observability: metrics + tracing tax, export consistency -------------
  {
    const auto obs_dir = [](const char* tag) {
      const std::string dir = (std::filesystem::temp_directory_path() /
                               (std::string("smash_perf_obs_") + tag))
                                  .string();
      std::filesystem::remove_all(dir);
      return dir;
    };
    auto obs_config = stream_config(smoke, /*async=*/false);
    obs_config.fsync_policy = smash::stream::WalFsync::kOnSeal;
    obs_config.checkpoint_every_epochs = 6;
    // Incremental mining on, so the dump carries the pipeline.delta.*
    // series and the delta-path spans the CI obs smoke asserts on.
    obs_config.incremental_mining = true;

    // Baseline: the identical durable feed with the registry detached (every
    // handle null) and the tracer disabled.
    obs_config.metrics_enabled = false;
    obs_config.durability_dir = obs_dir("off");
    double obs_off_ms = 0.0;
    {
      smash::stream::StreamEngine off_engine(obs_config, scenario.whois);
      obs_off_ms = feed_timed(off_engine, scenario, [] {}).feed_ms;
    }
    std::filesystem::remove_all(obs_config.durability_dir);

    // Instrumented: registry on, global span tracer recording, and — when
    // dumping — the periodic JSONL logger writing into the dump directory.
    obs_config.metrics_enabled = true;
    obs_config.durability_dir = obs_dir("on");
    if (!obs_dump_dir.empty()) {
      std::filesystem::create_directories(obs_dump_dir);
      obs_config.metrics_dir = obs_dump_dir;
      obs_config.metrics_interval_ms = 1000;
    }
    smash::obs::Tracer::global().enable(1u << 16);
    double obs_on_ms = 0.0;
    std::uint64_t publications = 0;
    std::shared_ptr<smash::obs::Registry> registry;
    {
      smash::stream::StreamEngine on_engine(obs_config, scenario.whois);
      obs_on_ms = feed_timed(on_engine, scenario, [] {}).feed_ms;
      publications = on_engine.snapshots_published();
      registry = on_engine.metrics();
    }
    const std::uint64_t spans = smash::obs::Tracer::global().recorded();
    const std::uint64_t dropped = smash::obs::Tracer::global().dropped();
    const std::string trace_json =
        smash::obs::Tracer::global().dump_chrome_json();
    smash::obs::Tracer::global().disable();
    std::filesystem::remove_all(obs_config.durability_dir);

    // Consistency gates: the exported metrics must agree with the bench's
    // own ground truth, and the trace must show one epoch's full dataflow.
    const auto snap = registry->snapshot();
    const auto* close_hist = snap.histogram("stream.close_to_publish_ms");
    if (close_hist == nullptr || close_hist->count != publications) {
      std::fprintf(stderr,
                   "obs gate: stream.close_to_publish_ms count %llu != %llu "
                   "publications\n",
                   close_hist ? static_cast<unsigned long long>(close_hist->count)
                              : 0ull,
                   static_cast<unsigned long long>(publications));
      return 1;
    }
    const auto* fsync_hist = snap.histogram("wal.fsync_ms");
    if (fsync_hist == nullptr || fsync_hist->count == 0) {
      std::fprintf(stderr, "obs gate: wal.fsync_ms histogram empty on a "
                           "durable on_seal run\n");
      return 1;
    }
    const auto* delta_counter = snap.counter("pipeline.delta.changed_2lds_total");
    if (delta_counter == nullptr || delta_counter->value == 0) {
      std::fprintf(stderr, "obs gate: pipeline.delta.changed_2lds_total "
                           "missing/zero on an incremental run\n");
      return 1;
    }
    for (const char* span_name :
         {"stream.ingest", "stream.epoch_seal", "stream.assemble",
          "stream.mine", "mine.join", "mine.delta_join", "louvain.sweep",
          "louvain.repair", "stream.publish", "wal.fsync", "ckpt.install"}) {
      if (trace_json.find(std::string("\"name\":\"") + span_name + "\"") ==
          std::string::npos) {
        std::fprintf(stderr, "obs gate: trace has no \"%s\" span\n", span_name);
        return 1;
      }
    }

    if (!obs_dump_dir.empty()) {
      const auto dump = [&](const char* file, const std::string& body) {
        std::ofstream out(std::filesystem::path(obs_dump_dir) / file,
                          std::ios::trunc);
        out << body;
        return out.good();
      };
      if (!dump("metrics.prom", smash::obs::render_prometheus(snap)) ||
          !dump("metrics.json", smash::obs::render_json(snap) + "\n") ||
          !dump("trace.json", trace_json)) {
        std::fprintf(stderr, "obs dump: failed writing to %s\n",
                     obs_dump_dir.c_str());
        return 1;
      }
      std::printf("obs dump: metrics.prom, metrics.json, metrics.jsonl, "
                  "trace.json in %s\n",
                  obs_dump_dir.c_str());
    }

    const double obs_overhead =
        obs_off_ms > 0.0 ? obs_on_ms / obs_off_ms : 0.0;
    report.add("stream_obs/feed", obs_on_ms,
               {{"obs_off_ms", obs_off_ms},
                {"overhead_vs_obs_off", obs_overhead},
                {"spans_recorded", static_cast<double>(spans)},
                {"spans_dropped", static_cast<double>(dropped)},
                {"wal_fsyncs", static_cast<double>(fsync_hist->count)},
                {"publications", static_cast<double>(publications)}});
    std::printf(
        "obs     feed %8.1f ms instrumented vs %8.1f ms off (%0.3fx)  "
        "%llu spans (%llu dropped), %llu fsyncs timed\n",
        obs_on_ms, obs_off_ms, obs_overhead,
        static_cast<unsigned long long>(spans),
        static_cast<unsigned long long>(dropped),
        static_cast<unsigned long long>(fsync_hist->count));
  }

  if (!report.write(out_path)) return 1;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
