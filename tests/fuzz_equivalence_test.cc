// Seeded randomized end-to-end differential fuzzer (docs/TESTING.md):
//
//  - random traces through SmashPipeline at threads {1, 4} x join budgets
//    {unbounded, tiny} must produce identical SmashResults — every
//    execution strategy (probe-parallel joins, key-range-sharded joins,
//    chunked-parallel Louvain, concurrent dimension fan-out with the
//    weighted budget split) is a pure wall-clock/memory trade;
//  - random event schedules (late events, multi-epoch gaps) through sync
//    vs async StreamEngines must publish byte-identical final snapshots
//    with every epoch close accounted.
//
// Runs fuzz_seeds() seeds (default 20): SMASH_FUZZ_ITERS scales the seed
// count (the nightly long-fuzz job uses 500), SMASH_FUZZ_SEED pins a
// single failing seed for reproduction.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "stream/engine.h"
#include "synth/stream_gen.h"
#include "test_helpers.h"
#include "util/rng.h"
#include "whois/whois.h"

namespace smash {
namespace {

using test::add_request;
using test::fuzz_seeds;
using test::resolve;

// --- random batch traces -----------------------------------------------------

struct FuzzTrace {
  net::Trace trace;
  whois::Registry registry;
};

// Random trace with campaign-shaped structure (shared clients, payloads,
// IPs, sometimes whois records) over benign noise, so every dimension and
// the correlation/pruning tail see real work. Deterministic from the seed.
FuzzTrace random_trace(std::uint64_t seed) {
  util::Rng rng(seed);
  FuzzTrace out;
  net::Trace& trace = out.trace;

  const std::uint32_t campaigns = 1 + static_cast<std::uint32_t>(rng.uniform(3));
  for (std::uint32_t c = 0; c < campaigns; ++c) {
    const std::uint32_t servers = 2 + static_cast<std::uint32_t>(rng.uniform(4));
    const std::uint32_t bots = 2 + static_cast<std::uint32_t>(rng.uniform(4));
    const bool shared_whois = rng.bernoulli(0.5);
    const bool shared_params = rng.bernoulli(0.3);
    whois::Record record;
    record.registrant = "actor" + std::to_string(c);
    record.email = "actor" + std::to_string(c) + "@mail.test";

    const std::string payload = "/payload" + std::to_string(c) + ".exe";
    for (std::uint32_t s = 0; s < servers; ++s) {
      const std::string host =
          "c" + std::to_string(c) + "s" + std::to_string(s) + ".test";
      for (std::uint32_t b = 0; b < bots; ++b) {
        const std::string client =
            "bot" + std::to_string(c) + "_" + std::to_string(b);
        std::string path = payload;
        if (shared_params) {
          path += "?id=" + std::to_string(rng.uniform(100)) + "&e=1";
        }
        add_request(trace, client, host, path);
        if (rng.bernoulli(0.4)) {
          add_request(trace, client, host,
                      "/extra" + std::to_string(rng.uniform(4)) + ".bin");
        }
      }
      // One or two IPs from a small per-campaign pool, so the IP-set
      // dimension finds shared infrastructure.
      resolve(trace, host,
              "10." + std::to_string(c) + ".0." + std::to_string(rng.uniform(3)));
      if (rng.bernoulli(0.5)) {
        resolve(trace, host,
                "10." + std::to_string(c) + ".0." + std::to_string(rng.uniform(3)));
      }
      if (shared_whois) out.registry.add(host, record);
    }
  }

  // Benign background: light random browsing.
  const std::uint32_t benign = 20 + static_cast<std::uint32_t>(rng.uniform(30));
  for (std::uint32_t s = 0; s < benign; ++s) {
    const std::string host = "site" + std::to_string(s) + ".org";
    const std::uint64_t visits = 1 + rng.uniform(5);
    for (std::uint64_t v = 0; v < visits; ++v) {
      add_request(trace, "user" + std::to_string(rng.uniform(40)), host,
                  "/page" + std::to_string(rng.uniform(8)) + ".html");
    }
    resolve(trace, host,
            "192.168." + std::to_string(s % 16) + "." + std::to_string(s));
  }

  // Sometimes a popular head server that trips the IDF filter.
  if (rng.bernoulli(0.5)) {
    for (std::uint32_t cl = 0; cl < 70; ++cl) {
      add_request(trace, "crowd" + std::to_string(cl), "portal.example",
                  "/index.html");
    }
    resolve(trace, "portal.example", "203.0.113.1");
  }

  trace.finalize();
  return out;
}

void expect_identical_results(const core::SmashResult& a,
                              const core::SmashResult& b,
                              const std::string& context) {
  ASSERT_EQ(a.pre.kept, b.pre.kept) << context;
  ASSERT_EQ(a.dims.size(), b.dims.size()) << context;
  for (std::size_t d = 0; d < a.dims.size(); ++d) {
    const auto& da = a.dims[d];
    const auto& db = b.dims[d];
    EXPECT_EQ(da.dimension, db.dimension) << context;
    EXPECT_EQ(da.ash_of, db.ash_of) << context << " dim=" << d;
    EXPECT_EQ(da.graph_edges, db.graph_edges) << context << " dim=" << d;
    EXPECT_EQ(da.modularity, db.modularity) << context << " dim=" << d;
    ASSERT_EQ(da.ashes.size(), db.ashes.size()) << context << " dim=" << d;
    for (std::size_t i = 0; i < da.ashes.size(); ++i) {
      EXPECT_EQ(da.ashes[i].members, db.ashes[i].members)
          << context << " dim=" << d << " ash=" << i;
      EXPECT_EQ(da.ashes[i].density, db.ashes[i].density)
          << context << " dim=" << d << " ash=" << i;
    }
    // The postings-cap counters are execution-invariant; only the
    // memory-shape counters (shard_passes / peak bytes) may differ.
    EXPECT_EQ(da.join_stats.skipped_keys, db.join_stats.skipped_keys)
        << context << " dim=" << d;
    EXPECT_EQ(da.join_stats.emitted_pairs, db.join_stats.emitted_pairs)
        << context << " dim=" << d;
    // Louvain trajectory counters are shared by every execution shape.
    EXPECT_EQ(da.louvain_stats.sweeps, db.louvain_stats.sweeps)
        << context << " dim=" << d;
    EXPECT_EQ(da.louvain_stats.moves, db.louvain_stats.moves)
        << context << " dim=" << d;
  }
  EXPECT_EQ(a.correlation.score, b.correlation.score) << context;
  EXPECT_EQ(a.correlation.groups, b.correlation.groups) << context;
  EXPECT_EQ(a.pruned.groups, b.pruned.groups) << context;
  ASSERT_EQ(a.campaigns.size(), b.campaigns.size()) << context;
  for (std::size_t c = 0; c < a.campaigns.size(); ++c) {
    EXPECT_EQ(a.campaigns[c].servers, b.campaigns[c].servers)
        << context << " campaign=" << c;
    EXPECT_EQ(a.campaigns[c].involved_clients, b.campaigns[c].involved_clients)
        << context << " campaign=" << c;
  }
}

core::SmashConfig fuzz_config(std::uint64_t seed, unsigned threads,
                              std::size_t budget) {
  core::SmashConfig config;
  config.idf_threshold = 50;
  config.enable_param_dimension = seed % 2 == 1;
  config.num_threads = threads;
  config.join_memory_budget_bytes = budget;
  return config;
}

TEST(FuzzParallelPipeline, RandomTracesThreadsAndBudgetsMatch) {
  constexpr std::size_t kTinyBudget = 2048;  // forces multi-pass sharded joins
  std::size_t campaigns_found = 0;
  for (const auto seed : fuzz_seeds(20)) {
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " (rerun with SMASH_FUZZ_SEED=" + std::to_string(seed) + ")");
    const FuzzTrace input = random_trace(seed);

    const core::SmashPipeline reference(fuzz_config(seed, 1, 0));
    const auto expected = reference.run(input.trace, input.registry);
    campaigns_found += expected.campaigns.size();

    for (const unsigned threads : {1u, 4u}) {
      for (const std::size_t budget : {std::size_t{0}, kTinyBudget}) {
        if (threads == 1 && budget == 0) continue;  // the reference itself
        const core::SmashPipeline pipeline(fuzz_config(seed, threads, budget));
        const auto result = pipeline.run(input.trace, input.registry);
        expect_identical_results(expected, result,
                                 "threads=" + std::to_string(threads) +
                                     " budget=" + std::to_string(budget));
      }
    }
  }
  // The harness must exercise real detections, not vacuously-empty runs
  // (over the full sweep; a single pinned seed may legitimately be quiet).
  if (!test::fuzz_seed_pinned()) EXPECT_GT(campaigns_found, 0u);
}

TEST(FuzzParallelPipeline, ReferenceRunIsDeterministic) {
  for (const auto seed : fuzz_seeds(5)) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const FuzzTrace a = random_trace(seed);
    const FuzzTrace b = random_trace(seed);
    ASSERT_EQ(a.trace.num_requests(), b.trace.num_requests());
    const core::SmashPipeline pipeline(fuzz_config(seed, 1, 0));
    expect_identical_results(pipeline.run(a.trace, a.registry),
                             pipeline.run(b.trace, b.registry), "rebuild");
  }
}

// --- random event schedules through the streaming engine ---------------------

constexpr std::uint32_t kEpochSeconds = 600;

// Random timestamped schedule: bursts of benign browsing and campaign
// polling with occasional multi-epoch gaps and late (out-of-order) events.
// Time never exceeds ~10 epochs, so sync re-mines stay cheap.
std::vector<synth::StreamEvent> random_schedule(std::uint64_t seed) {
  util::Rng rng(seed ^ 0x57fea11ULL);
  std::vector<synth::StreamEvent> events;
  std::uint64_t now = 1;

  const std::uint32_t campaign_servers =
      2 + static_cast<std::uint32_t>(rng.uniform(3));
  const std::uint32_t bots = 2 + static_cast<std::uint32_t>(rng.uniform(3));
  const std::uint64_t total_events = 600 + rng.uniform(400);

  for (std::uint64_t e = 0; e < total_events; ++e) {
    now += rng.uniform(20);
    if (rng.bernoulli(0.01)) {
      now += kEpochSeconds * (2 + rng.uniform(3));  // multi-epoch gap
    }
    if (now > 10 * kEpochSeconds) break;

    // 6% of events arrive late: stamped up to two epochs in the past, so
    // some fall behind the open epoch and take the late-drop/fold path.
    std::uint64_t stamp = now;
    if (rng.bernoulli(0.06)) {
      const std::uint64_t back = rng.uniform(2 * kEpochSeconds);
      stamp = back >= stamp ? 0 : stamp - back;
    }

    const std::uint64_t kind = rng.uniform(100);
    if (kind < 78) {
      stream::RequestEvent req;
      req.time_s = stamp;
      if (rng.bernoulli(0.45)) {  // campaign polling
        const auto c = rng.uniform(campaign_servers);
        req.client = "bot" + std::to_string(rng.uniform(bots));
        req.host = "evil" + std::to_string(c) + ".test";
        req.path = "/beacon.exe";
      } else {  // benign browsing
        req.client = "user" + std::to_string(rng.uniform(30));
        req.host = "site" + std::to_string(rng.uniform(25)) + ".org";
        req.path = "/page" + std::to_string(rng.uniform(6)) + ".html";
      }
      req.user_agent = "UA";
      events.emplace_back(std::move(req));
    } else if (kind < 92) {
      stream::ResolutionEvent res;
      res.time_s = stamp;
      if (rng.bernoulli(0.5)) {
        const auto c = rng.uniform(campaign_servers);
        res.host = "evil" + std::to_string(c) + ".test";
        res.ip = "10.9.0." + std::to_string(c % 3);
      } else {
        const auto s = rng.uniform(25);
        res.host = "site" + std::to_string(s) + ".org";
        res.ip = "192.168.1." + std::to_string(s);
      }
      events.emplace_back(std::move(res));
    } else {
      stream::RedirectEvent redir;
      redir.time_s = stamp;
      redir.from = "site" + std::to_string(rng.uniform(25)) + ".org";
      redir.to = "site" + std::to_string(rng.uniform(25)) + ".org";
      events.emplace_back(std::move(redir));
    }
  }
  return events;
}

stream::StreamConfig schedule_config(std::uint64_t seed, bool async) {
  stream::StreamConfig config;
  config.epoch_seconds = kEpochSeconds;
  config.window_epochs = 3 + static_cast<std::uint32_t>(seed % 3);
  config.drop_late_events = seed % 2 == 0;
  config.async_mining = async;
  config.smash.idf_threshold = 50;
  config.smash.num_threads = seed % 3 == 0 ? 4 : 1;
  return config;
}

// Deep equality of two published snapshots: the verdict index a reader
// sees must be byte-identical, not merely campaign-count equal.
void expect_identical_snapshots(const stream::DetectionSnapshot& a,
                                const stream::DetectionSnapshot& b) {
  EXPECT_EQ(a.first_epoch(), b.first_epoch());
  EXPECT_EQ(a.last_epoch(), b.last_epoch());
  EXPECT_EQ(a.sequence(), b.sequence());
  EXPECT_EQ(a.window_requests(), b.window_requests());
  EXPECT_EQ(a.kept_servers(), b.kept_servers());
  EXPECT_EQ(a.num_malicious_servers(), b.num_malicious_servers());
  EXPECT_EQ(a.postings_budget_exceeded(), b.postings_budget_exceeded());
  EXPECT_EQ(a.louvain_stats(), b.louvain_stats());
  EXPECT_EQ(a.late_dropped(), b.late_dropped());
  EXPECT_EQ(a.late_folded(), b.late_folded());
  ASSERT_EQ(a.campaigns().size(), b.campaigns().size());
  for (std::size_t c = 0; c < a.campaigns().size(); ++c) {
    EXPECT_EQ(a.campaigns()[c].servers, b.campaigns()[c].servers);
    EXPECT_EQ(a.campaigns()[c].involved_clients,
              b.campaigns()[c].involved_clients);
    EXPECT_EQ(a.campaigns()[c].single_client, b.campaigns()[c].single_client);
    for (const auto& host : a.campaigns()[c].servers) {
      const auto* va = a.find_host(host);
      const auto* vb = b.find_host(host);
      ASSERT_NE(va, nullptr) << host;
      ASSERT_NE(vb, nullptr) << host;
      EXPECT_EQ(va->campaign, vb->campaign) << host;
      EXPECT_EQ(va->campaign_servers, vb->campaign_servers) << host;
      EXPECT_EQ(va->window_requests, vb->window_requests) << host;
      EXPECT_EQ(va->active_epochs, vb->active_epochs) << host;
    }
  }
}

TEST(FuzzStreamEquivalence, RandomSchedulesSyncVsAsync) {
  std::size_t snapshots_with_verdicts = 0;
  for (const auto seed : fuzz_seeds(20)) {
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " (rerun with SMASH_FUZZ_SEED=" + std::to_string(seed) + ")");
    const auto events = random_schedule(seed);
    const whois::Registry registry;

    stream::StreamEngine sync_engine(schedule_config(seed, /*async=*/false),
                                     registry);
    for (const auto& event : events) synth::ingest_event(sync_engine, event);
    sync_engine.finish();

    stream::StreamEngine async_engine(schedule_config(seed, /*async=*/true),
                                      registry);
    for (const auto& event : events) synth::ingest_event(async_engine, event);
    async_engine.finish();

    EXPECT_EQ(sync_engine.epochs_closed_total(),
              async_engine.epochs_closed_total());
    const auto sync_snapshot = sync_engine.snapshot();
    const auto async_snapshot = async_engine.snapshot();
    ASSERT_NE(sync_snapshot, nullptr);
    ASSERT_NE(async_snapshot, nullptr);
    expect_identical_snapshots(*sync_snapshot, *async_snapshot);
    if (sync_snapshot->num_malicious_servers() > 0) ++snapshots_with_verdicts;

    // Every close is accounted, coalesced or not.
    std::uint64_t accounted = 0;
    for (const auto& record : async_engine.close_records()) {
      accounted += record.epochs_closed;
    }
    EXPECT_EQ(accounted, async_engine.epochs_closed_total());
    EXPECT_LE(async_engine.snapshots_published(),
              async_engine.epochs_closed_total());
  }
  // The schedules must produce real verdicts for the comparison to bite
  // (over the full sweep; a single pinned seed may legitimately be quiet).
  if (!test::fuzz_seed_pinned()) EXPECT_GT(snapshots_with_verdicts, 0u);
}

TEST(FuzzStreamEquivalence, FinalSyncSnapshotMatchesBatchMineOfWindow) {
  // The sync engine's last snapshot must be what a batch run over the
  // assembled window would publish — the streaming/batch contract, held
  // under randomized late events and epoch gaps.
  std::uint64_t late_events_seen = 0;
  std::uint64_t gaps_seen = 0;
  for (const auto seed : fuzz_seeds(10)) {
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " (rerun with SMASH_FUZZ_SEED=" + std::to_string(seed) + ")");
    const auto events = random_schedule(seed);
    const whois::Registry registry;

    const auto config = schedule_config(seed, /*async=*/false);
    stream::StreamEngine engine(config, registry);
    for (const auto& event : events) synth::ingest_event(engine, event);
    engine.finish();

    const auto snapshot = engine.snapshot();
    ASSERT_NE(snapshot, nullptr);
    late_events_seen += snapshot->late_dropped() + snapshot->late_folded();
    for (const auto& record : engine.close_records()) {
      if (record.epochs_closed > 1) ++gaps_seen;
    }

    const net::Trace window = engine.assemble_window();
    const core::SmashPipeline pipeline(config.smash);
    const auto batch = pipeline.run(window, registry);
    ASSERT_EQ(snapshot->campaigns().size(), batch.campaigns.size());
    for (std::size_t c = 0; c < batch.campaigns.size(); ++c) {
      const auto& mined = batch.campaigns[c];
      const auto& served = snapshot->campaigns()[c];
      ASSERT_EQ(served.servers.size(), mined.servers.size());
      for (std::size_t s = 0; s < mined.servers.size(); ++s) {
        EXPECT_EQ(served.servers[s], batch.server_name(mined.servers[s]));
      }
      EXPECT_EQ(served.involved_clients, mined.involved_clients.size());
    }
  }
  // The schedule generator must actually exercise the paths under test
  // (over the full sweep; a single pinned seed may legitimately be quiet).
  if (!test::fuzz_seed_pinned()) {
    EXPECT_GT(late_events_seen, 0u);
    EXPECT_GT(gaps_seen, 0u);
  }
}

}  // namespace
}  // namespace smash
