#include "stream/stream_config.h"

#include "util/check.h"

namespace smash::stream {

void StreamConfig::validate() const {
  SMASH_CHECK(epoch_seconds > 0, "StreamConfig: epoch_seconds must be > 0");
  SMASH_CHECK(window_epochs > 0, "StreamConfig: window_epochs must be > 0");
  SMASH_CHECK(fsync_policy <= WalFsync::kEveryRecord,
              "StreamConfig: unknown fsync_policy");
  SMASH_CHECK(durability_dir.empty() || checkpoint_every_epochs > 0,
              "StreamConfig: checkpoint_every_epochs must be > 0 when "
              "durability_dir is set");
}

}  // namespace smash::stream
