// URI-file similarity classes, paper §III-B2 eqs. (2)-(6).
//
// Short filenames (<= len chars) are similar only when equal; long
// filenames are similar when their character-frequency vectors have cosine
// > 0.8 (obfuscated names in one campaign share an alphabet, Fig. 4).
//
// We turn the pairwise relation into *classes*: every file maps to a class
// id such that similar files share a class (long files are grouped by
// single-linkage union-find over the cosine relation; exact equality is
// the identity on short files). With per-server *sets* of distinct files,
// the server-level eq. (7) score — product of the two directional
// mean-best-match ratios — reduces to the same bidirectional form as
// eqs. (1)/(8) over class sets:
//   File(Si,Sj) = (|Fi ∩ Fj| / |Fi|) * (|Fi ∩ Fj| / |Fj|)
// because each distinct file contributes max-similarity 1 exactly when the
// other server has a file of the same class. This equivalence is what lets
// the file dimension reuse the sparse co-occurrence join.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "util/interner.h"

namespace smash::core {

// Character-frequency cosine between two strings (eq. (6)). Case-sensitive
// over all 256 byte values. Returns 0 for empty inputs.
double char_frequency_cosine(std::string_view a, std::string_view b);

// Pairwise similarity of eqs. (2)-(5): equality for short names, cosine
// threshold for long names. `len` and `cosine_threshold` as configured.
bool files_similar(std::string_view a, std::string_view b, std::uint32_t len,
                   double cosine_threshold);

class FileClassifier {
 public:
  // Builds classes for every distinct file string in `files`. Long-file
  // grouping is O(L^2) over the L long filenames — L is small in practice
  // since almost all filenames are short (paper Fig. 10: 85% < 25 chars).
  FileClassifier(const util::Interner& files, std::uint32_t len,
                 double cosine_threshold);

  // Class id of a file id; class ids are dense in [0, num_classes).
  std::uint32_t class_of(std::uint32_t file_id) const { return class_of_.at(file_id); }
  std::uint32_t num_classes() const noexcept { return num_classes_; }
  std::uint32_t num_long_files() const noexcept { return num_long_files_; }

 private:
  std::vector<std::uint32_t> class_of_;
  std::uint32_t num_classes_ = 0;
  std::uint32_t num_long_files_ = 0;
};

}  // namespace smash::core
