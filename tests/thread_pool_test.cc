#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace smash::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  auto future = pool.submit([] {});
  future.get();
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The pool survives a throwing task.
  auto ok = pool.submit([] {});
  ok.get();
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(pool, kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, HandlesZeroAndOne) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
  int calls = 0;
  parallel_for(pool, 1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, RethrowsFirstExceptionAndCompletesRest) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 64;
  std::vector<std::atomic<int>> hits(kN);
  EXPECT_THROW(
      parallel_for(pool, kN,
                   [&](std::size_t i) {
                     ++hits[i];
                     if (i == 5) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // Every index was still dispatched despite the failure.
  std::size_t dispatched = 0;
  for (std::size_t i = 0; i < kN; ++i) dispatched += hits[i].load();
  EXPECT_EQ(dispatched, kN);
}

TEST(ParallelFor, MoreTasksThanThreads) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  parallel_for(pool, 500, [&](std::size_t i) { sum += static_cast<long>(i); });
  EXPECT_EQ(sum.load(), 500L * 499 / 2);
}

}  // namespace
}  // namespace smash::util
