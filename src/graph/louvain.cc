#include "graph/louvain.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>

#include "obs/trace.h"
#include "util/thread_pool.h"

namespace smash::graph {

namespace {

constexpr std::uint32_t kUnset = std::numeric_limits<std::uint32_t>::max();

// Auto chunk size of the chunked local-moving path: large enough that the
// per-chunk apply pass and the stamp bookkeeping amortize, small enough
// that frozen gains rarely go stale within a chunk.
constexpr std::uint32_t kDefaultChunkSize = 4096;

// Renumber arbitrary community labels to [0, k) preserving first-seen
// order. Labels are always < labels.size() (they start as node ids or
// dense community ids), so a flat remap array suffices.
std::uint32_t renumber(std::vector<std::uint32_t>& labels) {
  std::vector<std::uint32_t> remap(labels.size(), kUnset);
  std::uint32_t next = 0;
  for (auto& label : labels) {
    if (remap[label] == kUnset) remap[label] = next++;
    label = remap[label];
  }
  return next;
}

// Dense weight-to-adjacent-community accumulator with a touched list; all
// zero between nodes. One per evaluation worker (the chunked path probes
// several nodes concurrently) plus one for the apply/serial pass.
struct MoveScratch {
  std::vector<double> weight_to_comm;
  std::vector<std::uint32_t> touched;

  void reset(std::uint32_t n) {
    weight_to_comm.assign(n, 0.0);
    touched.clear();
    touched.reserve(64);
  }
};

// Picks the best community for `v` under the given community/tot state,
// with exactly the arithmetic and tie-break of the seed serial sweep: tot
// is read as if v had been removed from its own community (tot[old] - k_v,
// the same subtraction the seed performed in place), and candidates are
// scanned in ascending community id so the tie-break is independent of
// adjacency order. Pure apart from `scratch`, which is left zeroed.
std::uint32_t best_move(const Graph& g, std::uint32_t v,
                        const std::vector<std::uint32_t>& community_of,
                        const std::vector<double>& tot, double inv_m,
                        const LouvainOptions& options, MoveScratch& scratch) {
  const std::uint32_t old_comm = community_of[v];
  const double k_v = g.weighted_degree(v);
  auto& weight_to_comm = scratch.weight_to_comm;
  auto& touched = scratch.touched;

  touched.clear();
  touched.push_back(old_comm);  // moving back is always an option
  for (const auto& nb : g.neighbors(v)) {
    if (nb.node == v) continue;  // self-loop does not affect the gain delta
    const std::uint32_t c = community_of[nb.node];
    if (weight_to_comm[c] == 0.0 && c != old_comm) touched.push_back(c);
    weight_to_comm[c] += nb.weight;
  }

  // v removed from its community for the gain computation.
  const double tot_old = tot[old_comm] - k_v;

  // Gain of joining community c (relative, constant terms dropped):
  //   dQ(c) = w(v->c)/m - tot[c]*k_v/(2m^2)
  // We compare 2m*dQ = 2*w(v->c) - tot[c]*k_v/m to avoid divisions.
  std::sort(touched.begin(), touched.end());
  std::uint32_t best_comm = old_comm;
  double best_gain = 2.0 * weight_to_comm[old_comm] - tot_old * k_v * inv_m;
  for (const std::uint32_t comm : touched) {
    const double tot_c = comm == old_comm ? tot_old : tot[comm];
    const double gain = 2.0 * weight_to_comm[comm] - tot_c * k_v * inv_m;
    if (gain > best_gain + options.min_modularity_gain ||
        (gain > best_gain && comm < best_comm)) {
      best_gain = gain;
      best_comm = comm;
    }
  }
  for (const std::uint32_t comm : touched) weight_to_comm[comm] = 0.0;
  return best_comm;
}

// One level of local moving. Returns the (renumbered) node -> community map
// and whether anything moved.
struct LevelResult {
  std::vector<std::uint32_t> community_of;
  std::uint32_t num_communities = 0;
  bool improved = false;
};

// The seed's serial sweep: visit nodes in id order, each seeing every
// earlier move of the same sweep.
void serial_sweeps(const Graph& g, const LouvainOptions& options,
                   std::vector<std::uint32_t>& community_of,
                   std::vector<double>& tot, double inv_m, bool& improved,
                   LouvainStats& stats) {
  const std::uint32_t n = g.num_nodes();
  MoveScratch scratch;
  scratch.reset(n);

  for (int sweep = 0; sweep < options.max_sweeps_per_level; ++sweep) {
    SMASH_SPAN("louvain.sweep", "serial");
    ++stats.sweeps;
    bool moved_this_sweep = false;
    for (std::uint32_t v = 0; v < n; ++v) {
      const std::uint32_t old_comm = community_of[v];
      const double k_v = g.weighted_degree(v);
      const std::uint32_t best =
          best_move(g, v, community_of, tot, inv_m, options, scratch);
      ++stats.evaluated_nodes;
      // Exactly the seed's tot updates: remove v, re-add to the winner
      // (same slot when best == old_comm — the -k_v/+k_v round trip is NOT
      // always a floating-point no-op, and the chunked path replicates it).
      tot[old_comm] -= k_v;
      tot[best] += k_v;
      if (best != old_comm) {
        community_of[v] = best;
        moved_this_sweep = true;
        improved = true;
        ++stats.moves;
      }
    }
    if (!moved_this_sweep) break;
  }
}

// Chunked sweeps: evaluate a chunk of nodes in parallel against the state
// frozen at chunk start, then apply in node order with a staleness check.
//
// The apply pass trusts a frozen proposal only when nothing the node's
// serial evaluation would read has changed since chunk start:
//  - no neighbor of v changed community this chunk (weight-to-community
//    contributions, and thus the candidate set, are unchanged), and
//  - tot[] is unchanged for v's own community and for every candidate
//    community (the communities of v's neighbors) — including the
//    floating-point perturbation a no-move node's -k_v/+k_v round trip can
//    leave behind, which the apply pass detects by comparing tot before
//    and after.
// When the check passes, the frozen evaluation is bit-for-bit the serial
// evaluation; when it fails, the node is re-evaluated serially against the
// live state. Either way the applied move is exactly the serial move, so
// the whole trajectory — and the final partition — matches the serial
// sweep for every thread count and chunk size.
void chunked_sweeps(const Graph& g, const LouvainOptions& options,
                    util::ThreadPool* pool, unsigned threads,
                    std::vector<std::uint32_t>& community_of,
                    std::vector<double>& tot, double inv_m, bool& improved,
                    LouvainStats& stats) {
  const std::uint32_t n = g.num_nodes();
  const std::uint32_t chunk =
      options.chunk_size > 0 ? options.chunk_size : kDefaultChunkSize;

  // Per-worker dense scratch; slot 0 doubles as the apply-pass scratch
  // (evaluation has completed by the time apply runs).
  const unsigned workers = pool != nullptr ? std::max(1u, threads) : 1u;
  std::vector<MoveScratch> scratch(workers);
  for (auto& s : scratch) s.reset(n);

  std::vector<std::uint32_t> proposal(std::min<std::uint64_t>(chunk, n));
  // Epoch stamps instead of per-chunk clearing: a node/community is
  // "dirty" when its stamp equals the current chunk's epoch.
  std::vector<std::uint64_t> node_moved_epoch(n, 0);
  std::vector<std::uint64_t> comm_dirty_epoch(n, 0);
  std::uint64_t epoch = 0;

  for (int sweep = 0; sweep < options.max_sweeps_per_level; ++sweep) {
    SMASH_SPAN("louvain.sweep", "chunked");
    ++stats.sweeps;
    bool moved_this_sweep = false;

    for (std::uint64_t chunk_begin = 0; chunk_begin < n; chunk_begin += chunk) {
      const auto begin = static_cast<std::uint32_t>(chunk_begin);
      const auto end = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(chunk_begin + chunk, n));
      const std::uint32_t count = end - begin;
      ++epoch;
      ++stats.chunks;
      stats.evaluated_nodes += count;

      // Evaluate: pure reads of community_of/tot (frozen — the apply pass
      // of this chunk has not run), disjoint writes into `proposal`.
      if (pool != nullptr && workers > 1 && count > 1) {
        const unsigned slices = std::min<std::uint32_t>(workers, count);
        util::parallel_for(*pool, slices, [&](std::size_t slice) {
          MoveScratch& mine = scratch[slice];
          const auto lo = begin + static_cast<std::uint32_t>(
                                      std::uint64_t{count} * slice / slices);
          const auto hi = begin + static_cast<std::uint32_t>(
                                      std::uint64_t{count} * (slice + 1) / slices);
          for (std::uint32_t v = lo; v < hi; ++v) {
            proposal[v - begin] =
                best_move(g, v, community_of, tot, inv_m, options, mine);
          }
        });
      } else {
        for (std::uint32_t v = begin; v < end; ++v) {
          proposal[v - begin] =
              best_move(g, v, community_of, tot, inv_m, options, scratch[0]);
        }
      }

      // Apply in node order, re-evaluating serially on stale gains.
      for (std::uint32_t v = begin; v < end; ++v) {
        const std::uint32_t old_comm = community_of[v];
        const double k_v = g.weighted_degree(v);

        bool stale = comm_dirty_epoch[old_comm] == epoch;
        if (!stale) {
          for (const auto& nb : g.neighbors(v)) {
            if (nb.node == v) continue;
            if (node_moved_epoch[nb.node] == epoch ||
                comm_dirty_epoch[community_of[nb.node]] == epoch) {
              stale = true;
              break;
            }
          }
        }

        std::uint32_t best;
        if (stale) {
          best = best_move(g, v, community_of, tot, inv_m, options, scratch[0]);
          ++stats.stale_reevals;
        } else {
          best = proposal[v - begin];
        }

        const double tot_old_before = tot[old_comm];
        tot[old_comm] -= k_v;
        tot[best] += k_v;
        if (best != old_comm) {
          community_of[v] = best;
          node_moved_epoch[v] = epoch;
          comm_dirty_epoch[old_comm] = epoch;
          comm_dirty_epoch[best] = epoch;
          moved_this_sweep = true;
          improved = true;
          ++stats.moves;
        } else if (tot[old_comm] != tot_old_before) {
          // The -k_v/+k_v round trip rounded: later frozen proposals that
          // read this community's tot are no longer the serial evaluation.
          comm_dirty_epoch[old_comm] = epoch;
        }
      }
    }
    if (!moved_this_sweep) break;
  }
}

LevelResult local_moving(const Graph& g, const LouvainOptions& options,
                         util::ThreadPool* pool, LouvainStats& stats) {
  const std::uint32_t n = g.num_nodes();
  const double two_m = 2.0 * g.total_weight();

  LevelResult result;
  result.community_of.resize(n);
  for (std::uint32_t v = 0; v < n; ++v) result.community_of[v] = v;
  if (two_m <= 0.0) {
    result.num_communities = n;
    return result;  // edgeless graph: all singletons
  }
  const double inv_m = 1.0 / g.total_weight();

  // tot[c]: sum of weighted degrees of nodes in community c.
  std::vector<double> tot(n, 0.0);
  for (std::uint32_t v = 0; v < n; ++v) tot[v] = g.weighted_degree(v);

  const bool chunked = options.num_threads > 1 || options.chunk_size > 0;
  if (chunked) {
    chunked_sweeps(g, options, pool, std::max(1u, options.num_threads),
                   result.community_of, tot, inv_m, result.improved, stats);
  } else {
    serial_sweeps(g, options, result.community_of, tot, inv_m,
                  result.improved, stats);
  }

  result.num_communities = renumber(result.community_of);
  return result;
}

// Aggregate: one node per community; edge weights summed; intra-community
// weight becomes a self-loop. Community-bucketed counting sort over the
// nodes, then a dense per-community weight accumulator — no hash maps.
Graph aggregate(const Graph& g, const std::vector<std::uint32_t>& community_of,
                std::uint32_t num_communities) {
  const std::uint32_t n = g.num_nodes();

  // Counting sort: members of community c are
  // members[start[c] .. start[c+1]), ascending (nodes visited in order).
  std::vector<std::uint32_t> start(num_communities + 1, 0);
  for (std::uint32_t v = 0; v < n; ++v) ++start[community_of[v] + 1];
  for (std::uint32_t c = 0; c < num_communities; ++c) start[c + 1] += start[c];
  std::vector<std::uint32_t> members(n);
  {
    std::vector<std::uint32_t> cursor(start.begin(), start.end() - 1);
    for (std::uint32_t v = 0; v < n; ++v) members[cursor[community_of[v]]++] = v;
  }

  GraphBuilder builder(num_communities);
  std::vector<double> weight_to(num_communities, 0.0);
  std::vector<std::uint32_t> touched;
  for (std::uint32_t cu = 0; cu < num_communities; ++cu) {
    touched.clear();
    for (std::uint32_t idx = start[cu]; idx < start[cu + 1]; ++idx) {
      const std::uint32_t u = members[idx];
      for (const auto& nb : g.neighbors(u)) {
        const std::uint32_t cv = community_of[nb.node];
        // Each undirected edge is accumulated exactly once: from its
        // lower-community endpoint, and within a community from its
        // lower-id endpoint (self-loops pass the second test).
        if (cv < cu) continue;
        if (cv == cu && nb.node < u) continue;
        if (weight_to[cv] == 0.0) touched.push_back(cv);
        weight_to[cv] += nb.weight;
      }
    }
    std::sort(touched.begin(), touched.end());
    for (const std::uint32_t cv : touched) {
      builder.add_edge(cu, cv, weight_to[cv]);
      weight_to[cv] = 0.0;
    }
  }
  return std::move(builder).build();
}

// Shared worker pool for one louvain()/louvain_refined() call: created once
// when the options ask for parallel local moving, reused across levels and
// refinement passes. parallel_for also drains on the calling thread, so the
// pool is sized one short of the thread budget.
std::unique_ptr<util::ThreadPool> make_pool(const LouvainOptions& options) {
  if (options.num_threads <= 1) return nullptr;
  return std::make_unique<util::ThreadPool>(options.num_threads - 1);
}

LouvainResult louvain_impl(const Graph& g, const LouvainOptions& options,
                           util::ThreadPool* pool) {
  const std::uint32_t n = g.num_nodes();
  LouvainResult result;
  result.community_of.resize(n);
  for (std::uint32_t v = 0; v < n; ++v) result.community_of[v] = v;
  result.num_communities = n;

  Graph level_graph;          // graph at the current level
  const Graph* current = &g;  // avoids copying the input for level 0

  for (int level = 0; level < options.max_levels; ++level) {
    LevelResult lvl = local_moving(*current, options, pool, result.stats);
    if (!lvl.improved && level > 0) break;

    // Compose: original node -> level community.
    for (std::uint32_t v = 0; v < n; ++v) {
      result.community_of[v] = lvl.community_of[result.community_of[v]];
    }
    result.num_communities = lvl.num_communities;
    result.levels = level + 1;

    if (!lvl.improved) break;  // level 0 with nothing to move
    if (lvl.num_communities == current->num_nodes()) break;  // no merge happened

    level_graph = aggregate(*current, lvl.community_of, lvl.num_communities);
    current = &level_graph;
  }

  result.num_communities = renumber(result.community_of);
  result.modularity = modularity(g, result.community_of);
  return result;
}

}  // namespace

std::vector<std::vector<std::uint32_t>> LouvainResult::groups() const {
  std::vector<std::vector<std::uint32_t>> out(num_communities);
  for (std::uint32_t v = 0; v < community_of.size(); ++v) {
    out[community_of[v]].push_back(v);
  }
  return out;
}

LouvainResult louvain(const Graph& g, const LouvainOptions& options) {
  const auto pool = make_pool(options);
  return louvain_impl(g, options, pool.get());
}

LouvainResult louvain_refined(const Graph& g, const LouvainOptions& options) {
  const auto pool = make_pool(options);
  LouvainResult base = louvain_impl(g, options, pool.get());
  LouvainStats stats = base.stats;

  // Work queue of communities to try splitting (member lists over g).
  std::vector<std::vector<std::uint32_t>> queue = base.groups();
  std::vector<std::vector<std::uint32_t>> final_groups;

  // Dense node -> local-subgraph id map, reused across queue entries and
  // reset via the member list (kUnset marks non-members).
  std::vector<std::uint32_t> local_id(g.num_nodes(), kUnset);

  while (!queue.empty()) {
    std::vector<std::uint32_t> members = std::move(queue.back());
    queue.pop_back();
    if (members.size() <= 3) {
      final_groups.push_back(std::move(members));
      continue;
    }

    // Induced subgraph over `members`.
    for (std::uint32_t i = 0; i < members.size(); ++i) local_id[members[i]] = i;
    GraphBuilder builder(static_cast<std::uint32_t>(members.size()));
    for (auto u : members) {
      for (const auto& nb : g.neighbors(u)) {
        if (nb.node < u) continue;
        if (local_id[nb.node] == kUnset) continue;
        builder.add_edge(local_id[u], local_id[nb.node], nb.weight);
      }
    }
    for (auto u : members) local_id[u] = kUnset;
    const Graph sub = std::move(builder).build();
    const LouvainResult split = louvain_impl(sub, options, pool.get());
    stats += split.stats;

    if (split.num_communities <= 1) {
      final_groups.push_back(std::move(members));
      continue;
    }
    // Each part strictly smaller than `members`, so this terminates.
    for (auto& part : split.groups()) {
      std::vector<std::uint32_t> mapped;
      mapped.reserve(part.size());
      for (auto local : part) mapped.push_back(members[local]);
      queue.push_back(std::move(mapped));
    }
  }

  LouvainResult out;
  out.community_of.assign(g.num_nodes(), 0);
  out.num_communities = static_cast<std::uint32_t>(final_groups.size());
  out.levels = base.levels;
  out.stats = stats;
  for (std::uint32_t c = 0; c < final_groups.size(); ++c) {
    for (auto node : final_groups[c]) out.community_of[node] = c;
  }
  out.modularity = modularity(g, out.community_of);
  return out;
}

WarmStartResult louvain_warm_start(const Graph& g,
                                   const std::vector<std::uint32_t>& seed_community_of,
                                   const std::vector<std::uint32_t>& dirty_nodes,
                                   double fallback_fraction,
                                   const LouvainOptions& options) {
  WarmStartResult out;
  const std::uint32_t n = g.num_nodes();
  const bool seed_usable = seed_community_of.size() == n;
  const bool delta_small = static_cast<double>(dirty_nodes.size()) <=
                           fallback_fraction * static_cast<double>(n);
  if (!seed_usable || !delta_small) {
    out.result = louvain_refined(g, options);
    out.fell_back = true;
    return out;
  }

  // Densify seed labels (arbitrary uint32 values -> [0, n)) by sorted rank,
  // so the aggregate arrays below can be flat.
  std::vector<std::uint32_t> labels(seed_community_of);
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  std::vector<std::uint32_t> comm(n);
  for (std::uint32_t u = 0; u < n; ++u) {
    comm[u] = static_cast<std::uint32_t>(
        std::lower_bound(labels.begin(), labels.end(), seed_community_of[u]) -
        labels.begin());
  }
  const std::vector<std::uint32_t> seed_dense = comm;

  const double m = g.total_weight();
  std::size_t sweeps = 0;
  std::size_t moves = 0;
  std::size_t evaluated = 0;
  if (m > 0.0) {
    std::vector<double> tot(n, 0.0);  // sum of weighted degrees per community
    for (std::uint32_t u = 0; u < n; ++u) tot[comm[u]] += g.weighted_degree(u);

    std::vector<char> queued(n, 0);
    std::vector<std::uint32_t> frontier;
    frontier.reserve(dirty_nodes.size());
    for (const std::uint32_t u : dirty_nodes) {
      if (u < n && queued[u] == 0) {
        queued[u] = 1;
        frontier.push_back(u);
      }
    }
    std::sort(frontier.begin(), frontier.end());

    // Flat weight-to-community scoring array, reset via a touched list —
    // the same trick the join's probe counters use.
    std::vector<double> w_to(n, 0.0);
    std::vector<std::uint32_t> touched;
    const std::size_t max_sweeps =
        options.max_sweeps_per_level > 0
            ? static_cast<std::size_t>(options.max_sweeps_per_level)
            : 64;

    while (!frontier.empty() && sweeps < max_sweeps) {
      ++sweeps;
      std::vector<std::uint32_t> next;
      for (const std::uint32_t u : frontier) {
        queued[u] = 0;
        ++evaluated;
        const std::uint32_t c0 = comm[u];
        const double k_u = g.weighted_degree(u);
        touched.clear();
        for (const auto& nb : g.neighbors(u)) {
          if (nb.node == u) continue;
          const std::uint32_t c = comm[nb.node];
          if (w_to[c] == 0.0) touched.push_back(c);
          w_to[c] += nb.weight;
        }
        // Score of placing u (removed from c0 first) into community c:
        //   score(c) = w_to[c] - tot[c] * k_u / 2m
        // which is m * deltaQ up to a constant, so the argmax is the best
        // greedy move. Staying wins ties, then the smallest-ranked
        // community among the visited ones — both deterministic.
        tot[c0] -= k_u;
        double best_score = w_to[c0] - tot[c0] * k_u / (2.0 * m);
        std::uint32_t best = c0;
        std::sort(touched.begin(), touched.end());
        for (const std::uint32_t c : touched) {
          if (c == c0) continue;
          const double score = w_to[c] - tot[c] * k_u / (2.0 * m);
          if (score > best_score) {
            best_score = score;
            best = c;
          }
        }
        for (const std::uint32_t c : touched) w_to[c] = 0.0;
        tot[best] += k_u;
        if (best != c0) {
          comm[u] = best;
          ++moves;
          // The move may unlock further improvements around u.
          for (const auto& nb : g.neighbors(u)) {
            if (nb.node != u && queued[nb.node] == 0) {
              queued[nb.node] = 1;
              next.push_back(nb.node);
            }
          }
          if (queued[u] == 0) {
            queued[u] = 1;
            next.push_back(u);
          }
        }
      }
      std::sort(next.begin(), next.end());
      frontier = std::move(next);
    }
  }

  out.repair_sweeps = sweeps;
  for (std::uint32_t u = 0; u < n; ++u) {
    if (comm[u] != seed_dense[u]) ++out.repaired_nodes;
  }

  LouvainResult& r = out.result;
  r.community_of = std::move(comm);
  r.num_communities = renumber(r.community_of);
  r.levels = 0;
  r.stats.sweeps = sweeps;
  r.stats.evaluated_nodes = evaluated;
  r.stats.moves = moves;
  r.modularity = modularity(g, r.community_of);
  return out;
}

double modularity(const Graph& g, const std::vector<std::uint32_t>& community_of) {
  if (community_of.size() != g.num_nodes()) {
    throw std::invalid_argument("modularity: partition size mismatch");
  }
  const double two_m = 2.0 * g.total_weight();
  if (two_m <= 0.0) return 0.0;

  std::uint32_t max_label = 0;
  for (auto c : community_of) max_label = std::max(max_label, c);
  std::vector<double> in(max_label + 1, 0.0);   // 2x intra-community weight
  std::vector<double> tot(max_label + 1, 0.0);  // sum of weighted degrees

  for (std::uint32_t u = 0; u < g.num_nodes(); ++u) {
    tot[community_of[u]] += g.weighted_degree(u);
    for (const auto& nb : g.neighbors(u)) {
      if (community_of[nb.node] == community_of[u]) {
        // Each non-loop edge appears twice in the scan; self-loops appear
        // once but count twice toward `in`.
        in[community_of[u]] += nb.node == u ? 2.0 * nb.weight : nb.weight;
      }
    }
  }

  double q = 0.0;
  for (std::size_t c = 0; c < in.size(); ++c) {
    q += in[c] / two_m - (tot[c] / two_m) * (tot[c] / two_m);
  }
  return q;
}

}  // namespace smash::graph
