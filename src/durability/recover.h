// WAL-tail replay and checkpoint selection for StreamEngine::recover().
//
// Classification rules (docs/DURABILITY.md):
//   - A torn or CRC-invalid record in the LAST segment is the expected
//     signature of a crash mid-append: the segment is truncated to its
//     valid prefix and replay continues from there (bytes_truncated
//     reports how much was cut).
//   - The same damage in any EARLIER segment is real corruption — valid
//     records exist beyond it, so silently truncating would drop acked
//     state. That raises RecoveryError; nothing is modified.
//   - A CRC-valid record whose payload does not decode is a writer bug or
//     deliberate tampering, never a torn write: RecoveryError.
//   - Segments present on disk must form a contiguous run starting at the
//     replay position's segment; gaps raise RecoveryError.
//   - Checkpoint files that fail magic/CRC/decode are skipped (a crash
//     during checkpointing leaves ckpt.tmp, never a bad installed file,
//     but the corruption fuzzer flips bytes in installed ones too); the
//     previous checkpoint plus its longer WAL tail wins. With no usable
//     checkpoint, replay covers the whole WAL from segment 1.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>

#include "durability/checkpoint.h"
#include "durability/wal.h"

namespace smash::durability {

// Unrecoverable damage (or inconsistency) in the durability dir. Recovery
// fails loudly; it never guesses.
struct RecoveryError : std::runtime_error {
  explicit RecoveryError(const std::string& what) : std::runtime_error(what) {}
};

struct ReplayStats {
  std::uint64_t segments_scanned = 0;
  std::uint64_t records_replayed = 0;  // events + seal markers
  std::uint64_t events_replayed = 0;
  std::uint64_t bytes_replayed = 0;
  std::uint64_t bytes_truncated = 0;  // torn tail cut from the last segment
  // Where a resumed journal appends next. When the log's last valid record
  // is a seal marker the segment is complete (seals always rotate), so the
  // position moves to the next, not-yet-created segment.
  std::uint64_t next_segment = 1;
  std::uint64_t next_offset = 0;
};

// Newest checkpoint in `dir` that passes magic + CRC + decode, or nullopt
// (cold start / all checkpoints corrupt). `checkpoints_skipped`, when
// given, counts newer checkpoint files that had to be passed over.
std::optional<CheckpointState> load_latest_checkpoint(
    const std::string& dir, std::uint64_t* checkpoints_skipped = nullptr);

// Replays WAL records from (from_segment, from_offset) through the end of
// the log, invoking `apply` per decoded record in order. Truncates a torn
// last segment to its valid prefix (on disk) per the rules above — and,
// when `fsync_policy` is not kOff, fsyncs the truncated segment and its
// directory so a second machine crash cannot resurrect torn bytes under
// records the resumed journal appends after them. Throws RecoveryError on
// anything unrecoverable.
ReplayStats replay_wal(const std::string& dir, std::uint64_t from_segment,
                       std::uint64_t from_offset,
                       const std::function<void(const WalRecord&)>& apply,
                       FsyncPolicy fsync_policy = FsyncPolicy::kOff);

}  // namespace smash::durability
