#include "graph/similarity_join.h"

#include <gtest/gtest.h>

#include <map>

#include "util/rng.h"

namespace smash::graph {
namespace {

using util::IdSet;

TEST(CooccurrenceJoin, CountsSharedKeysExactly) {
  std::vector<IdSet> items;
  items.emplace_back(std::vector<std::uint32_t>{1, 2, 3});
  items.emplace_back(std::vector<std::uint32_t>{2, 3, 4});
  items.emplace_back(std::vector<std::uint32_t>{9});
  const auto pairs = cooccurrence_join(items);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].a, 0u);
  EXPECT_EQ(pairs[0].b, 1u);
  EXPECT_EQ(pairs[0].shared_keys, 2u);
}

TEST(CooccurrenceJoin, MinSharedFilters) {
  std::vector<IdSet> items;
  items.emplace_back(std::vector<std::uint32_t>{1, 2});
  items.emplace_back(std::vector<std::uint32_t>{2, 3});
  items.emplace_back(std::vector<std::uint32_t>{1, 2, 3});
  EXPECT_EQ(cooccurrence_join(items, 1).size(), 3u);
  EXPECT_EQ(cooccurrence_join(items, 2).size(), 2u);  // (0,2) and (1,2)
  EXPECT_EQ(cooccurrence_join(items, 3).size(), 0u);
  EXPECT_THROW(cooccurrence_join(items, 0), std::invalid_argument);
}

TEST(CooccurrenceJoin, PostingsCapSkipsHubKeys) {
  // Key 7 is shared by all items; with a cap of 2 it contributes nothing.
  std::vector<IdSet> items;
  for (std::uint32_t i = 0; i < 5; ++i) {
    items.emplace_back(std::vector<std::uint32_t>{7, 100 + i});
  }
  JoinOptions options;
  options.max_postings_length = 2;
  EXPECT_TRUE(cooccurrence_join(items, 1, options).empty());
  options.max_postings_length = 10;
  EXPECT_EQ(cooccurrence_join(items, 1, options).size(), 10u);  // C(5,2)
}

TEST(CooccurrenceJoin, RejectsUnnormalizedSets) {
  std::vector<IdSet> items(1);
  items[0].insert(3);  // inserted but never normalized
  EXPECT_THROW(cooccurrence_join(items), std::invalid_argument);
}

TEST(CooccurrenceJoin, OutputSortedAndCanonical) {
  std::vector<IdSet> items;
  items.emplace_back(std::vector<std::uint32_t>{1});
  items.emplace_back(std::vector<std::uint32_t>{1, 2});
  items.emplace_back(std::vector<std::uint32_t>{1, 2});
  const auto pairs = cooccurrence_join(items);
  ASSERT_EQ(pairs.size(), 3u);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_LT(pairs[i].a, pairs[i].b);
    if (i > 0) {
      EXPECT_TRUE(pairs[i - 1].a < pairs[i].a ||
                  (pairs[i - 1].a == pairs[i].a && pairs[i - 1].b < pairs[i].b));
    }
  }
}

// Property test: join agrees with brute-force intersection on random data.
class JoinPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JoinPropertyTest, MatchesBruteForce) {
  util::Rng rng(GetParam());
  const std::uint32_t num_items = 30;
  const std::uint32_t key_space = 40;
  std::vector<IdSet> items(num_items);
  for (auto& item : items) {
    const auto count = rng.uniform(8);
    for (std::uint64_t i = 0; i < count; ++i) {
      item.insert(static_cast<std::uint32_t>(rng.uniform(key_space)));
    }
    item.normalize();
  }

  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> expected;
  for (std::uint32_t a = 0; a < num_items; ++a) {
    for (std::uint32_t b = a + 1; b < num_items; ++b) {
      const auto shared =
          static_cast<std::uint32_t>(intersection_size(items[a], items[b]));
      if (shared >= 1) expected[{a, b}] = shared;
    }
  }

  const auto pairs = cooccurrence_join(items);
  ASSERT_EQ(pairs.size(), expected.size());
  for (const auto& pair : pairs) {
    const auto it = expected.find({pair.a, pair.b});
    ASSERT_NE(it, expected.end());
    EXPECT_EQ(pair.shared_keys, it->second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u, 12345u));

TEST(BidirectionalSimilarity, MatchesPaperEquation) {
  // eq. (1): (|∩|/|A|) * (|∩|/|B|)
  EXPECT_DOUBLE_EQ(bidirectional_similarity(2, 4, 2), 0.5);
  EXPECT_DOUBLE_EQ(bidirectional_similarity(3, 3, 3), 1.0);
  EXPECT_DOUBLE_EQ(bidirectional_similarity(0, 3, 3), 0.0);
  EXPECT_DOUBLE_EQ(bidirectional_similarity(1, 0, 3), 0.0);  // guard
}

TEST(BidirectionalSimilarity, SymmetricAndBounded) {
  for (std::uint32_t shared = 0; shared <= 5; ++shared) {
    for (std::size_t a = shared; a <= 8; ++a) {
      for (std::size_t b = shared; b <= 8; ++b) {
        if (a == 0 || b == 0) continue;
        const double s = bidirectional_similarity(shared, a, b);
        EXPECT_DOUBLE_EQ(s, bidirectional_similarity(shared, b, a));
        EXPECT_GE(s, 0.0);
        EXPECT_LE(s, 1.0);
      }
    }
  }
}

}  // namespace
}  // namespace smash::graph
