// Botnet hunting: the communication-activity scenario of the paper's
// introduction (Fig. 1a). Runs SMASH over a synthetic ISP day and walks
// the inferred C&C herds — domain-flux siblings, their shared IPs, whois
// correlation and URI files — the way an analyst would triage them.
//
//   ./botnet_hunt [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "core/evaluation.h"
#include "core/pipeline.h"
#include "synth/world.h"

int main(int argc, char** argv) {
  using namespace smash;

  auto config = synth::data2011day();
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);
  std::puts("generating ISP day trace (paper-scale clients, ~40x reduced volume)...");
  const synth::Dataset dataset = synth::generate_world(config);

  const core::SmashPipeline pipeline{core::SmashConfig{}};
  const core::SmashResult result = pipeline.run(dataset.trace, dataset.whois);
  const core::Evaluator evaluator(dataset.trace, dataset.signatures,
                                  dataset.blacklist, dataset.truth);

  // Hunt: campaigns whose members exhibit infrastructure correlation (IP
  // and/or whois secondary dimensions) — the C&C signature.
  std::puts("\n=== inferred C&C-style herds (infrastructure-correlated) ===");
  int shown = 0;
  for (const auto& campaign : result.campaigns) {
    bool infra = false;
    for (auto member : campaign.servers) {
      infra |= (result.correlation.dims_mask[member] & 0b110) != 0;  // ip|whois
    }
    if (!infra || campaign.servers.size() < 3) continue;
    if (++shown > 6) break;

    std::printf("\nherd #%d: %zu servers, %zu bot clients\n", shown,
                campaign.servers.size(), campaign.involved_clients.size());
    std::size_t listed = 0;
    for (auto member : campaign.servers) {
      if (listed++ >= 5) { std::puts("    ..."); break; }
      const auto& profile = result.server_profile(member);
      std::string files;
      for (auto f : profile.files) {
        if (!files.empty()) files += ",";
        files += result.pre.agg.files().name(f).substr(0, 20);
        if (files.size() > 40) break;
      }
      std::printf("    %-28s ips=%zu files=[%s] score=%.2f\n",
                  result.server_name(member).c_str(), profile.ips.size(),
                  files.c_str(), result.correlation.score[member]);
    }
    // What would the defender have known without SMASH?
    int confirmed = 0;
    for (auto member : campaign.servers) {
      const auto& name = result.server_name(member);
      confirmed += evaluator.ids2012_labeled(name) ||
                   evaluator.blacklist_confirmed(name);
    }
    std::printf("    -> IDS/blacklists knew %d of %zu; SMASH surfaces the rest "
                "via herd association\n",
                confirmed, campaign.servers.size());
  }

  if (shown == 0) {
    std::puts("no infrastructure-correlated herds found (unexpected for the preset)");
    return 1;
  }
  return 0;
}
