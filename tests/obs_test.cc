// Observability layer: registry exactness under concurrency, snapshot
// isolation, histogram bucket semantics, the Prometheus/JSON exporters
// (golden strings — exporter output is a contract for scrapers), the
// trace ring (wrap, concurrency, Chrome JSON), the metrics logger, and
// the StreamEngine/VerdictService integration.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/logger.h"
#include "obs/trace.h"
#include "stream/engine.h"
#include "stream/verdict.h"
#include "whois/whois.h"

namespace smash::obs {
namespace {

// Minimal JSON well-formedness check: balanced {}/[] outside strings, valid
// string escapes, non-empty. Not a parser — tools/check_trace.py does full
// validation in CI; this catches broken quoting/nesting at unit-test speed.
bool json_balanced(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': stack.push_back(c); break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !s.empty() && !in_string && stack.empty();
}

TEST(Counter, ConcurrentIncrementsSumExactly) {
  Registry registry;
  Counter& counter = registry.counter("test.hits_total");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  EXPECT_EQ(registry.snapshot().counter("test.hits_total")->value,
            kThreads * kPerThread);
}

TEST(Counter, HandleIsIdempotentPerName) {
  Registry registry;
  Counter& a = registry.counter("test.c_total");
  Counter& b = registry.counter("test.c_total");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  b.inc(4);
  EXPECT_EQ(a.value(), 7u);
}

TEST(Registry, SnapshotIsIsolatedFromLaterUpdates) {
  Registry registry;
  Counter& counter = registry.counter("test.c_total");
  Gauge& gauge = registry.gauge("test.depth");
  counter.inc(5);
  gauge.set(1.5);

  const MetricsSnapshot before = registry.snapshot();
  counter.inc(100);
  gauge.set(9.0);

  EXPECT_EQ(before.counter("test.c_total")->value, 5u);
  EXPECT_EQ(before.gauge("test.depth")->value, 1.5);
  const MetricsSnapshot after = registry.snapshot();
  EXPECT_EQ(after.counter("test.c_total")->value, 105u);
  EXPECT_EQ(after.gauge("test.depth")->value, 9.0);
  EXPECT_EQ(before.counter("test.missing"), nullptr);
}

TEST(HistogramMetric, BucketBoundariesAreInclusiveUpperBounds) {
  Registry registry;
  Histogram& h = registry.histogram("test.lat_ms", {1.0, 10.0, 100.0});
  // le semantics: v <= bound lands in that bucket; above the last bound
  // lands in +Inf.
  h.observe(0.5);    // bucket 0
  h.observe(1.0);    // bucket 0 (inclusive)
  h.observe(1.0001); // bucket 1
  h.observe(10.0);   // bucket 1 (inclusive)
  h.observe(99.9);   // bucket 2
  h.observe(100.0);  // bucket 2 (inclusive)
  h.observe(100.1);  // +Inf
  h.observe(1e9);    // +Inf

  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(counts[3], 2u);
  EXPECT_EQ(h.count(), 8u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.0001 + 10.0 + 99.9 + 100.0 + 100.1 + 1e9);
}

TEST(HistogramMetric, ConcurrentObservesCountExactly) {
  Registry registry;
  Histogram& h = registry.histogram("test.lat_ms", {1.0, 10.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.observe(static_cast<double>(t % 3) * 5.0);  // buckets 0, 1, 1
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(HistogramMetric, DefaultLatencyBucketsAreAscending) {
  for (const auto* bounds : {&latency_buckets_ms(), &latency_buckets_ns()}) {
    ASSERT_FALSE(bounds->empty());
    for (std::size_t i = 1; i < bounds->size(); ++i) {
      EXPECT_LT((*bounds)[i - 1], (*bounds)[i]);
    }
  }
}

TEST(Registry, CallbackGaugeEvaluatesAtSnapshotAndReplaces) {
  Registry registry;
  double value = 1.0;
  registry.gauge_callback("test.age_ms", [&value] { return value; });
  EXPECT_EQ(registry.snapshot().gauge("test.age_ms")->value, 1.0);
  value = 2.0;
  EXPECT_EQ(registry.snapshot().gauge("test.age_ms")->value, 2.0);

  // Replace-on-reregister (a recovered engine takes over the gauge).
  registry.gauge_callback("test.age_ms", [] { return 42.0; });
  EXPECT_EQ(registry.snapshot().gauge("test.age_ms")->value, 42.0);

  registry.remove("test.age_ms");
  EXPECT_EQ(registry.snapshot().gauge("test.age_ms"), nullptr);
}

TEST(RegistryDeathTest, KindMismatchIsFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Registry registry;
  registry.counter("test.name");
  EXPECT_DEATH(registry.gauge("test.name"), "different metric kind");
  registry.histogram("test.h", {1.0, 2.0});
  EXPECT_DEATH(registry.histogram("test.h", {1.0, 3.0}), "different bounds");
}

// Golden exposition output: scrapers parse this text, so the format is a
// contract — name sanitization, HELP/TYPE lines, cumulative buckets, +Inf,
// _sum/_count, and name-sorted ordering regardless of registration order.
TEST(RenderPrometheus, GoldenOutput) {
  Registry registry;
  registry.histogram("stream.mine_ms", {1.0, 10.0}, "mine latency")
      .observe(0.5);
  registry.histogram("stream.mine_ms", {1.0, 10.0}).observe(5.0);
  registry.histogram("stream.mine_ms", {1.0, 10.0}).observe(50.0);
  registry.counter("stream.events_total", "events ingested").inc(7);
  registry.gauge("stream.queue_depth").set(2.5);

  const std::string expected =
      "# HELP smash_stream_events_total events ingested\n"
      "# TYPE smash_stream_events_total counter\n"
      "smash_stream_events_total 7\n"
      "# HELP smash_stream_mine_ms mine latency\n"
      "# TYPE smash_stream_mine_ms histogram\n"
      "smash_stream_mine_ms_bucket{le=\"1\"} 1\n"
      "smash_stream_mine_ms_bucket{le=\"10\"} 2\n"
      "smash_stream_mine_ms_bucket{le=\"+Inf\"} 3\n"
      "smash_stream_mine_ms_sum 55.5\n"
      "smash_stream_mine_ms_count 3\n"
      "# TYPE smash_stream_queue_depth gauge\n"
      "smash_stream_queue_depth 2.5\n";
  EXPECT_EQ(registry.render_prometheus(), expected);
}

TEST(RenderJson, GoldenOutput) {
  Registry registry;
  registry.counter("a.events_total").inc(3);
  registry.gauge("b.depth").set(1.5);
  registry.histogram("c.lat_ms", {1.0, 10.0}).observe(0.5);

  const std::string expected =
      "{\"counters\":{\"a.events_total\":3},"
      "\"gauges\":{\"b.depth\":1.5},"
      "\"histograms\":{\"c.lat_ms\":{\"bounds\":[1,10],\"counts\":[1,0,0],"
      "\"count\":1,\"sum\":0.5}}}";
  const std::string json = registry.render_json();
  EXPECT_EQ(json, expected);
  EXPECT_TRUE(json_balanced(json));
}

TEST(RenderJson, EmptyRegistryIsValid) {
  Registry registry;
  EXPECT_EQ(registry.render_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
  EXPECT_EQ(registry.render_prometheus(), "");
}

// --- tracer ------------------------------------------------------------------

// The global tracer is process-wide state; each test enables a fresh ring
// and disables on exit so tests stay order-independent.
class TracerTest : public ::testing::Test {
 protected:
  void TearDown() override { Tracer::global().disable(); }
};

TEST_F(TracerTest, RecordsSpansWithNesting) {
  Tracer::global().enable(1024);
  {
    SMASH_SPAN("outer");
    SMASH_SPAN("inner", "detail-literal");
  }
  const auto events = Tracer::global().events();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start time: outer began first.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_STREQ(events[1].detail, "detail-literal");
  EXPECT_EQ(events[0].detail, nullptr);
  // The inner span nests inside the outer one on the timeline.
  EXPECT_GE(events[1].start_ns, events[0].start_ns);
  EXPECT_LE(events[1].start_ns + events[1].dur_ns,
            events[0].start_ns + events[0].dur_ns);
}

TEST_F(TracerTest, DisabledTracerRecordsNothing) {
  Tracer::global().enable(64);
  Tracer::global().disable();
  { SMASH_SPAN("ignored"); }
  EXPECT_TRUE(Tracer::global().events().empty());
}

TEST_F(TracerTest, InertSpanForSampling) {
  Tracer::global().enable(64);
  { Span span(nullptr); }
  EXPECT_TRUE(Tracer::global().events().empty());
}

TEST_F(TracerTest, RingWrapKeepsNewestAndCountsDropped) {
  Tracer::global().enable(4);
  for (int i = 0; i < 10; ++i) {
    SMASH_SPAN("wrap");
  }
  const auto events = Tracer::global().events();
  EXPECT_EQ(events.size(), 4u);
  EXPECT_EQ(Tracer::global().recorded(), 10u);
  EXPECT_EQ(Tracer::global().dropped(), 6u);
  // The survivors are the newest four records.
  for (const auto& e : events) EXPECT_GT(e.seq, 6u);
}

TEST_F(TracerTest, ConcurrentSpansAllLand) {
  Tracer::global().enable(1 << 16);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        SMASH_SPAN("mt");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(Tracer::global().recorded(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(Tracer::global().events().size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST_F(TracerTest, ChromeJsonIsWellFormedAndMonotonic) {
  Tracer::global().enable(256);
  {
    SMASH_SPAN("stream.epoch_seal");
    SMASH_SPAN("mine.join", "client");
  }
  const std::string json = Tracer::global().dump_chrome_json();
  EXPECT_TRUE(json_balanced(json));
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"stream.epoch_seal\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"detail\":\"client\"}"), std::string::npos);

  // Events are emitted sorted by ts.
  const auto events = Tracer::global().events();
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].start_ns, events[i].start_ns);
  }
}

TEST_F(TracerTest, ClearDropsEventsKeepsEnabled) {
  Tracer::global().enable(64);
  { SMASH_SPAN("before"); }
  Tracer::global().clear();
  EXPECT_TRUE(Tracer::global().events().empty());
  EXPECT_TRUE(Tracer::global().enabled());
  { SMASH_SPAN("after"); }
  EXPECT_EQ(Tracer::global().events().size(), 1u);
}

// --- logger ------------------------------------------------------------------

TEST(MetricsLogger, WritesJsonlLines) {
  const auto dir = std::filesystem::temp_directory_path() / "smash_obs_logger";
  std::filesystem::remove_all(dir);
  auto registry = std::make_shared<Registry>();
  registry->counter("test.events_total").inc(12);
  const std::string path = (dir / "metrics.jsonl").string();
  {
    // Long interval: only flush_now() and the final dtor line write.
    MetricsLogger logger(registry, path, std::chrono::milliseconds(60000));
    logger.flush_now();
    EXPECT_GE(logger.lines_written(), 1u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_TRUE(json_balanced(line)) << line;
    EXPECT_NE(line.find("\"ts_unix_ms\":"), std::string::npos);
    EXPECT_NE(line.find("\"test.events_total\":12"), std::string::npos);
  }
  EXPECT_GE(lines, 2u);  // flush_now + final dtor snapshot
  std::filesystem::remove_all(dir);
}

// --- engine integration ------------------------------------------------------

stream::RequestEvent event_at(std::uint64_t time_s, std::string client,
                              std::string host) {
  stream::RequestEvent e;
  e.time_s = time_s;
  e.client = std::move(client);
  e.host = std::move(host);
  e.path = "/x.html";
  e.user_agent = "UA";
  return e;
}

TEST(EngineMetrics, RegistryReflectsIngestAndPublishes) {
  whois::Registry whois_db;
  stream::StreamConfig config;
  config.epoch_seconds = 100;
  config.window_epochs = 3;
  config.smash.idf_threshold = 50;

  stream::StreamEngine engine(config, whois_db);
  ASSERT_NE(engine.metrics(), nullptr);
  for (int epoch = 0; epoch < 4; ++epoch) {
    for (int i = 0; i < 5; ++i) {
      engine.ingest(event_at(static_cast<std::uint64_t>(epoch) * 100 + i,
                             "c" + std::to_string(i), "evil.com"));
    }
  }
  engine.finish();

  const auto snap = engine.metrics()->snapshot();
  EXPECT_EQ(snap.counter("stream.events_total")->value, 20u);
  EXPECT_EQ(snap.counter("stream.epoch_closes_total")->value,
            engine.epochs_closed_total());
  // One close-to-publish observation per published snapshot — the bench's
  // consistency gate, held as an invariant here.
  EXPECT_EQ(snap.histogram("stream.close_to_publish_ms")->count,
            engine.snapshots_published());
  EXPECT_EQ(snap.histogram("stream.mine_ms")->count,
            engine.snapshots_published());
  EXPECT_GE(snap.gauge("stream.snapshot_age_ms")->value, 0.0);

  // Pipeline stage histograms landed on the same registry via
  // SmashConfig::metrics.
  EXPECT_EQ(snap.histogram("pipeline.mine_ms")->count,
            engine.snapshots_published());
  EXPECT_NE(snap.histogram("pipeline.mine_ms.client"), nullptr);
}

TEST(EngineMetrics, DisabledMeansNoRegistry) {
  whois::Registry whois_db;
  stream::StreamConfig config;
  config.epoch_seconds = 100;
  config.window_epochs = 3;
  config.metrics_enabled = false;

  stream::StreamEngine engine(config, whois_db);
  EXPECT_EQ(engine.metrics(), nullptr);
  engine.ingest(event_at(10, "c1", "a.com"));
  engine.ingest(event_at(250, "c2", "b.com"));
  engine.finish();
  EXPECT_GE(engine.snapshots_published(), 1u);  // detection unaffected
}

TEST(EngineMetrics, SharedRegistryAcrossEngineAndVerdicts) {
  whois::Registry whois_db;
  auto shared = std::make_shared<Registry>();
  stream::StreamConfig config;
  config.epoch_seconds = 100;
  config.window_epochs = 3;
  config.smash.idf_threshold = 50;
  config.metrics = shared;

  stream::StreamEngine engine(config, whois_db);
  ASSERT_EQ(engine.metrics(), shared);
  for (int i = 0; i < 5; ++i) {
    engine.ingest(event_at(static_cast<std::uint64_t>(i), "c" + std::to_string(i),
                           "evil.com"));
  }
  engine.finish();

  stream::VerdictService service(engine.slot(), shared);
  service.lookup("evil.com");
  service.lookup("benign.org");

  const auto snap = shared->snapshot();
  EXPECT_EQ(snap.counter("verdict.lookups_total")->value, 2u);
  EXPECT_EQ(snap.counter("stream.events_total")->value, 5u);
  EXPECT_EQ(service.stats().queries, 2u);
}

TEST(VerdictMetrics, PrivateRegistryKeepsPerInstanceStats) {
  whois::Registry whois_db;
  stream::StreamConfig config;
  config.epoch_seconds = 100;
  config.window_epochs = 3;
  stream::StreamEngine engine(config, whois_db);

  stream::VerdictService a(engine.slot());
  stream::VerdictService b(engine.slot());
  a.lookup("x.com");
  a.lookup("y.com");
  b.lookup("z.com");
  EXPECT_EQ(a.stats().queries, 2u);
  EXPECT_EQ(b.stats().queries, 1u);
}

}  // namespace
}  // namespace smash::obs
