// Named fault-injection sites for deterministic crash/corruption testing.
//
// Production code consults a site by name at the moment a fault could
// occur (durability::File does this around every write/fsync/rename); a
// disarmed site costs one mutex-guarded map lookup and does nothing. Tests
// arm a site programmatically (FailPoint::arm) and external harnesses arm
// through the SMASH_FAILPOINTS environment variable, so the same injection
// points drive in-process unit tests and the CI kill/restart crash matrix.
//
// Crash semantics: a site returning kCrash (or kShortWrite, after letting
// `bytes` through) makes the caller throw util::SimulatedCrash. The
// exception unwinds like a process death for in-process tests — everything
// already written to disk stays exactly as the crash left it, and the
// durability layer marks itself dead so teardown paths write nothing more.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace smash::util {

// Thrown at an armed injection site to simulate the process dying there.
struct SimulatedCrash : std::runtime_error {
  explicit SimulatedCrash(const std::string& site)
      : std::runtime_error("simulated crash at failpoint: " + site) {}
};

struct FailAction {
  enum class Kind : std::uint8_t {
    kNone,        // proceed normally
    kError,       // fail the operation cleanly (site raises its I/O error)
    kShortWrite,  // let `bytes` bytes through, then simulate a crash
    kCrash,       // simulate a crash before the operation does anything
  };
  Kind kind = Kind::kNone;
  std::uint64_t bytes = 0;  // kShortWrite only
};

class FailPoint {
 public:
  struct Spec {
    FailAction action;
    // Hits to pass through unharmed before firing. skip=2 fires on the
    // third time the site is reached.
    std::uint64_t skip = 0;
    // Fire this many times once reached (0 = every hit from `skip` on).
    std::uint64_t fire_count = 1;
  };

  // Arms (or re-arms, resetting the hit counter) the named site.
  static void arm(const std::string& name, Spec spec);
  static void disarm(const std::string& name);
  // Disarms every site and forgets all hit counters (test teardown).
  static void disarm_all();

  // Consults the site: counts the hit and returns the armed action when
  // the hit counter has passed `skip` (kNone otherwise or when disarmed).
  static FailAction consume(std::string_view name);

  // Hits observed at the site since it was last (re)armed; sites never
  // armed report 0. For test assertions.
  static std::uint64_t hits(std::string_view name);

  // Arms sites from SMASH_FAILPOINTS, a comma/semicolon-separated list of
  //   <site>=<kind>[:<bytes>][@<skip>]
  // with kind one of error | crash | short (short takes :<bytes>).
  // Example: SMASH_FAILPOINTS="wal.write=short:7@12,ckpt.write=crash@1".
  // The first consume() calls this once implicitly; explicit calls always
  // re-read the variable.
  static void arm_from_env();
};

}  // namespace smash::util
