// Daily monitoring deployment (paper §I: "it can be run everyday to detect
// daily malicious activities"). Replays a week of ISP traffic one day at a
// time, diffing each day's inferred herds against everything seen before —
// separating persistent infrastructure from agile domain-rotating
// campaigns, the paper's Fig. 7 view, as an operator workflow.
//
//   ./weekly_monitor [seed]
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>

#include "core/pipeline.h"
#include "net/trace.h"
#include "synth/world.h"

int main(int argc, char** argv) {
  using namespace smash;

  auto config = synth::data2012week();
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);
  std::puts("generating one week of ISP traffic...");
  const synth::Dataset dataset = synth::generate_world(config);

  const core::SmashPipeline pipeline{core::SmashConfig{}};

  std::set<std::string> known_servers;   // the operator's running blocklist
  std::set<std::string> known_clients;   // known-infected subscribers
  for (std::uint32_t day = 0; day < dataset.trace.num_days(); ++day) {
    const net::Trace day_trace = net::slice_day(dataset.trace, day);
    const core::SmashResult result = pipeline.run(day_trace, dataset.whois);

    std::set<std::string> today_servers;
    std::set<std::string> today_clients;
    int persistent = 0;
    int agile = 0;        // new servers, known-infected clients
    int brand_new = 0;    // new servers AND new clients
    for (const auto& campaign : result.campaigns) {
      bool old_client = false;
      for (auto c : campaign.involved_clients) {
        const auto& name = day_trace.clients().name(c);
        today_clients.insert(name);
        old_client |= known_clients.count(name) > 0;
      }
      for (auto member : campaign.servers) {
        const auto& name = result.server_name(member);
        today_servers.insert(name);
        if (known_servers.count(name)) ++persistent;
        else if (old_client) ++agile;
        else ++brand_new;
      }
    }

    std::printf(
        "day %u: %3zu campaigns, %4zu servers | persistent %4d, agile %4d "
        "(rotated domains), brand-new %4d | infected clients today %zu\n",
        day + 1, result.campaigns.size(), today_servers.size(), persistent,
        agile, day == 0 ? 0 : brand_new, today_clients.size());

    // The actionable deltas an operator would push to enforcement:
    if (day > 0) {
      int alerts = 0;
      for (const auto& name : today_servers) {
        if (known_servers.count(name)) continue;
        if (++alerts <= 3) std::printf("    new blocklist entry: %s\n", name.c_str());
      }
      if (alerts > 3) std::printf("    ... and %d more\n", alerts - 3);
    }
    known_servers.insert(today_servers.begin(), today_servers.end());
    known_clients.insert(today_clients.begin(), today_clients.end());
  }

  std::printf("\nweek total: %zu distinct malicious servers, %zu infected clients\n",
              known_servers.size(), known_clients.size());
  std::puts("note how most daily detections are AGILE — same infected clients,");
  std::puts("freshly rotated domains — which is why the paper argues for daily");
  std::puts("herd re-mining rather than static blocklists.");
  return 0;
}
