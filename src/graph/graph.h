// Compact weighted undirected graph (CSR) plus a builder.
//
// All similarity graphs in SMASH (one per dimension, paper §III-B) are
// built once and then only read by community detection, so an immutable
// CSR representation fits: O(V + E) memory, cache-friendly neighbor scans.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace smash::graph {

struct Edge {
  std::uint32_t u = 0;
  std::uint32_t v = 0;
  double weight = 1.0;
};

class Graph;

// Accumulates undirected edges; duplicate (u,v) pairs have their weights
// summed. Self-loops are allowed (Louvain's aggregation step produces them).
class GraphBuilder {
 public:
  explicit GraphBuilder(std::uint32_t num_nodes) : num_nodes_(num_nodes) {}

  void add_edge(std::uint32_t u, std::uint32_t v, double weight = 1.0) {
    if (u >= num_nodes_ || v >= num_nodes_) {
      throw std::out_of_range("GraphBuilder::add_edge: node id out of range");
    }
    if (weight <= 0.0) {
      throw std::invalid_argument("GraphBuilder::add_edge: weight must be > 0");
    }
    edges_.push_back({u, v, weight});
  }

  std::uint32_t num_nodes() const noexcept { return num_nodes_; }
  std::size_t num_raw_edges() const noexcept { return edges_.size(); }

  Graph build() &&;

 private:
  std::uint32_t num_nodes_;
  std::vector<Edge> edges_;
};

struct Neighbor {
  std::uint32_t node = 0;
  double weight = 0.0;
};

class Graph {
 public:
  Graph() = default;

  std::uint32_t num_nodes() const noexcept { return static_cast<std::uint32_t>(offsets_.empty() ? 0 : offsets_.size() - 1); }
  // Number of undirected edges (self-loops counted once).
  std::size_t num_edges() const noexcept { return num_edges_; }

  std::span<const Neighbor> neighbors(std::uint32_t u) const {
    if (u >= num_nodes()) throw std::out_of_range("Graph::neighbors: bad node");
    return {adj_.data() + offsets_[u], adj_.data() + offsets_[u + 1]};
  }

  // Weighted degree: sum of incident edge weights, self-loop counted twice
  // (the convention modularity needs).
  double weighted_degree(std::uint32_t u) const {
    if (u >= num_nodes()) throw std::out_of_range("Graph::weighted_degree: bad node");
    return weighted_degree_[u];
  }

  // Self-loop weight of u (0 if none).
  double self_loop(std::uint32_t u) const {
    if (u >= num_nodes()) throw std::out_of_range("Graph::self_loop: bad node");
    return self_loop_[u];
  }

  // Total edge weight m (self-loops counted once); 2m is the modularity
  // normalizer.
  double total_weight() const noexcept { return total_weight_; }

  bool has_edge(std::uint32_t u, std::uint32_t v) const;

 private:
  friend class GraphBuilder;

  std::vector<std::size_t> offsets_;  // size N+1
  std::vector<Neighbor> adj_;         // both directions; self-loop stored once
  std::vector<double> weighted_degree_;
  std::vector<double> self_loop_;
  double total_weight_ = 0.0;
  std::size_t num_edges_ = 0;
};

// Density of a node subset S: |E(S)| / (|S| choose 2), the w() term of
// paper eq. (9). Edges are counted unweighted; self-loops excluded.
// Returns 0 for |S| < 2.
double subset_density(const Graph& g, std::span<const std::uint32_t> nodes);

}  // namespace smash::graph
