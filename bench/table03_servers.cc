// Reproduces paper Table III: number of servers involved in malicious
// activities across the `thresh` sweep, plus the headline ratios (new
// servers vs IDS+blacklist, FP rate).
#include <cstdio>

#include "bench_common.h"
#include "util/strings.h"

int main() {
  using namespace smash;
  const auto table = bench::server_sweep_table(
      "Table III: number of servers in malicious activities (>= 2 clients)",
      {"2011day", "2012day"}, /*single_client=*/false);
  std::fputs(table.render().c_str(), stdout);

  // Headline ratios at the paper's operating point (thresh = 0.8).
  for (const char* preset : {"2011day", "2012day"}) {
    const auto& ds = bench::dataset(preset);
    const auto result = bench::run_at_threshold(ds, 0.8);
    const core::Evaluator evaluator(ds.trace, ds.signatures, ds.blacklist, ds.truth);
    const auto eval = evaluator.evaluate(result, false);
    const int confirmed = eval.server_counts.ids2012 + eval.server_counts.ids2013 +
                          eval.server_counts.blacklist;
    std::printf(
        "\n%s @0.8: %d servers; IDS+blacklist confirm %d; new servers %d "
        "(%.1fx the confirmed set); FP rate %.4f%%, updated %.4f%%\n",
        preset, eval.server_counts.smash, confirmed, eval.server_counts.new_servers,
        confirmed ? static_cast<double>(eval.server_counts.new_servers) / confirmed : 0.0,
        eval.fp_rate * 100, eval.fp_rate_updated * 100);
  }
  std::puts("\nShape targets (paper): new servers ~6-7x IDS+blacklist; highest");
  std::puts("  FP rate 0.064% (0.017% after noise removal); counts fall with thresh.");
  return 0;
}
