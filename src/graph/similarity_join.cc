#include "graph/similarity_join.h"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "util/thread_pool.h"

namespace smash::graph {

namespace {

// Flat CSR inverted index over the key range [key_base, key_base +
// num_keys): postings of key k are entries[offsets[k - key_base] ..
// offsets[k - key_base + 1]), in ascending item order (guaranteed by the
// counting-sort build iterating items in order). key_base is 0 for the
// whole-universe index; the bounded-memory sharded join builds one rebased
// index per key range.
struct PostingsIndex {
  std::vector<std::size_t> offsets;     // size num_keys + 1
  std::vector<std::uint32_t> entries;   // item ids
  std::uint32_t key_base = 0;           // first key this index covers
  std::uint32_t num_keys = 0;           // keys covered (0 when no keys)

  std::size_t offset(std::uint32_t key) const {
    return offsets[key - key_base];
  }
  std::size_t length(std::uint32_t key) const {
    return offsets[key - key_base + 1] - offsets[key - key_base];
  }
};

void validate_normalized(std::span<const util::IdSet> items) {
  for (const auto& item : items) {
    if (!item.is_normalized()) {
      throw std::invalid_argument("cooccurrence_join: IdSet not normalized");
    }
  }
}

PostingsIndex build_postings(std::span<const util::IdSet> items) {
  validate_normalized(items);
  PostingsIndex index;
  std::uint32_t max_key = 0;
  bool any_key = false;
  std::size_t total_entries = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!items[i].empty()) {
      any_key = true;
      max_key = std::max(max_key, items[i].values().back());
      total_entries += items[i].size();
    }
  }
  index.num_keys = any_key ? max_key + 1 : 0;

  index.offsets.assign(index.num_keys + 1, 0);
  for (const auto& item : items) {
    for (auto key : item) ++index.offsets[key + 1];
  }
  for (std::uint32_t k = 0; k < index.num_keys; ++k) {
    index.offsets[k + 1] += index.offsets[k];
  }

  index.entries.resize(total_entries);
  std::vector<std::size_t> cursor(index.offsets.begin(),
                                  index.offsets.end() - 1);
  for (std::uint32_t i = 0; i < items.size(); ++i) {
    for (auto key : items[i]) index.entries[cursor[key]++] = i;
  }
  return index;
}

// Rebased postings index covering only keys in [key_begin, key_end).
// Inputs must already be validated as normalized. The resident footprint
// of the returned index (offsets + build cursor + entries) is exactly
// postings_bytes(key_end - key_begin, entries in range) — the quantity
// plan_key_shards budgets for.
PostingsIndex build_postings_range(std::span<const util::IdSet> items,
                                   std::uint32_t key_begin,
                                   std::uint32_t key_end) {
  PostingsIndex index;
  index.key_base = key_begin;
  index.num_keys = key_end - key_begin;

  index.offsets.assign(index.num_keys + std::size_t{1}, 0);
  for (const auto& item : items) {
    const auto& keys = item.values();
    auto it = std::lower_bound(keys.begin(), keys.end(), key_begin);
    for (; it != keys.end() && *it < key_end; ++it) {
      ++index.offsets[*it - key_begin + 1];
    }
  }
  for (std::uint32_t k = 0; k < index.num_keys; ++k) {
    index.offsets[k + 1] += index.offsets[k];
  }

  index.entries.resize(index.offsets[index.num_keys]);
  std::vector<std::size_t> cursor(index.offsets.begin(),
                                  index.offsets.end() - 1);
  for (std::uint32_t i = 0; i < items.size(); ++i) {
    const auto& keys = items[i].values();
    auto it = std::lower_bound(keys.begin(), keys.end(), key_begin);
    for (; it != keys.end() && *it < key_end; ++it) {
      index.entries[cursor[*it - key_begin]++] = i;
    }
  }
  return index;
}

// Counts co-occurrences for probe items in [a_begin, a_end) against the
// shared postings index, appending (a, b, count) triples grouped by `a` in
// ascending (a, b) order. `counts` must be all-zero on entry and of size
// >= items.size(); it is restored to all-zero on exit.
void count_probe_range(std::span<const util::IdSet> items,
                       const PostingsIndex& index, std::uint32_t a_begin,
                       std::uint32_t a_end, std::uint32_t min_shared,
                       std::uint32_t max_postings_length,
                       std::vector<std::uint32_t>& counts,
                       std::vector<std::uint32_t>& touched,
                       std::vector<CooccurrencePair>& out,
                       std::size_t& candidate_pairs) {
  const std::uint32_t key_lo = index.key_base;
  const std::uint32_t key_hi = index.key_base + index.num_keys;
  for (std::uint32_t a = a_begin; a < a_end; ++a) {
    touched.clear();
    const auto& keys = items[a].values();
    auto kit = key_lo == 0
                   ? keys.begin()
                   : std::lower_bound(keys.begin(), keys.end(), key_lo);
    for (; kit != keys.end() && *kit < key_hi; ++kit) {
      const std::uint32_t key = *kit;
      const std::size_t len = index.length(key);
      if (len < 2 || len > max_postings_length) continue;
      const auto* begin = index.entries.data() + index.offset(key);
      const auto* end = begin + len;
      // Postings are ascending, so everything after `a` pairs with it.
      const auto* it = std::upper_bound(begin, end, a);
      candidate_pairs += static_cast<std::size_t>(end - it);
      for (; it != end; ++it) {
        const std::uint32_t b = *it;
        // Edge weights into the scoring array; 0 means "untouched" (a key
        // contributes exactly 1, so a touched slot is always >= 1).
        if (counts[b]++ == 0) touched.push_back(b);
      }
    }
    std::sort(touched.begin(), touched.end());
    for (const std::uint32_t b : touched) {
      if (counts[b] >= min_shared) out.push_back({a, b, counts[b]});
      counts[b] = 0;
    }
  }
}

// Counts co-occurrences for the probe items in probe_items[p_begin, p_end)
// against the shared postings index, appending (min, max, count) triples.
// Unlike count_probe_range this walks the *whole* postings list of each key
// (a probe item pairs with partners on either side of its own id), skipping
// the probe item itself and — so each probed-probed pair is emitted exactly
// once — any co-probed partner with a smaller id (that pair is counted when
// the smaller id is probed). `probed` is the membership mask of
// probe_items. Pairs are keyed (min, max), so the caller must sort the
// concatenated result; `counts` must be all-zero on entry and is restored
// on exit.
void count_probe_delta(std::span<const util::IdSet> items,
                       const PostingsIndex& index,
                       std::span<const std::uint32_t> probe_items,
                       std::size_t p_begin, std::size_t p_end,
                       const std::vector<char>& probed,
                       std::uint32_t min_shared,
                       std::uint32_t max_postings_length,
                       std::vector<std::uint32_t>& counts,
                       std::vector<std::uint32_t>& touched,
                       std::vector<CooccurrencePair>& out,
                       std::size_t& candidate_pairs) {
  for (std::size_t p = p_begin; p < p_end; ++p) {
    const std::uint32_t a = probe_items[p];
    touched.clear();
    for (const std::uint32_t key : items[a]) {
      const std::size_t len = index.length(key);
      if (len < 2 || len > max_postings_length) continue;
      const auto* it = index.entries.data() + index.offset(key);
      const auto* end = it + len;
      for (; it != end; ++it) {
        const std::uint32_t b = *it;
        if (b == a || (probed[b] != 0 && b < a)) continue;
        ++candidate_pairs;
        if (counts[b]++ == 0) touched.push_back(b);
      }
    }
    std::sort(touched.begin(), touched.end());
    for (const std::uint32_t b : touched) {
      if (counts[b] >= min_shared) {
        out.push_back({std::min(a, b), std::max(a, b), counts[b]});
      }
      counts[b] = 0;
    }
  }
}

// Accumulates (does not reset) key counters so the sharded join can sum
// across passes; every key lives in exactly one pass, so the totals match
// the single-pass join's.
void fill_key_stats(const PostingsIndex& index,
                    std::uint32_t max_postings_length, JoinStats& stats) {
  stats.postings_entries += index.entries.size();
  for (std::uint32_t k = 0; k < index.num_keys; ++k) {
    const std::size_t len = index.offsets[k + 1] - index.offsets[k];
    if (len == 0) continue;
    ++stats.num_keys;
    stats.peak_postings_length = std::max(stats.peak_postings_length, len);
    if (len > max_postings_length) {
      ++stats.skipped_keys;
      stats.skipped_entries += len;
    }
  }
}

}  // namespace

std::vector<CooccurrencePair> cooccurrence_join(
    std::span<const util::IdSet> items, std::uint32_t min_shared,
    const JoinOptions& options, JoinStats* stats) {
  if (min_shared == 0) {
    throw std::invalid_argument("cooccurrence_join: min_shared must be >= 1");
  }
  const PostingsIndex index = build_postings(items);

  JoinStats local;
  local.shard_passes = 1;
  local.peak_resident_postings_bytes =
      postings_bytes(index.num_keys, index.entries.size());
  fill_key_stats(index, options.max_postings_length, local);

  std::vector<CooccurrencePair> out;
  std::vector<std::uint32_t> counts(items.size(), 0);
  std::vector<std::uint32_t> touched;
  count_probe_range(items, index, 0, static_cast<std::uint32_t>(items.size()),
                    min_shared, options.max_postings_length, counts, touched,
                    out, local.candidate_pairs);
  local.emitted_pairs = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<CooccurrencePair> cooccurrence_join_parallel(
    std::span<const util::IdSet> items, std::uint32_t min_shared,
    const JoinOptions& options, unsigned num_threads, JoinStats* stats) {
  constexpr std::size_t kMinItemsPerShard = 256;
  const std::size_t n = items.size();
  unsigned shards = num_threads == 0 ? 1 : num_threads;
  shards = static_cast<unsigned>(
      std::min<std::size_t>(shards, std::max<std::size_t>(n / kMinItemsPerShard, 1)));
  if (shards <= 1) return cooccurrence_join(items, min_shared, options, stats);
  if (min_shared == 0) {
    throw std::invalid_argument("cooccurrence_join: min_shared must be >= 1");
  }

  const PostingsIndex index = build_postings(items);

  JoinStats local;
  local.shard_passes = 1;
  local.peak_resident_postings_bytes =
      postings_bytes(index.num_keys, index.entries.size());
  fill_key_stats(index, options.max_postings_length, local);

  std::vector<std::vector<CooccurrencePair>> shard_out(shards);
  std::vector<std::size_t> shard_candidates(shards, 0);
  util::ThreadPool pool(std::min(num_threads, shards));
  util::parallel_for(pool, shards, [&](std::size_t s) {
    const auto lo = static_cast<std::uint32_t>(n * s / shards);
    const auto hi = static_cast<std::uint32_t>(n * (s + 1) / shards);
    std::vector<std::uint32_t> counts(n, 0);
    std::vector<std::uint32_t> touched;
    count_probe_range(items, index, lo, hi, min_shared,
                      options.max_postings_length, counts, touched,
                      shard_out[s], shard_candidates[s]);
  });

  std::vector<CooccurrencePair> out;
  std::size_t total = 0;
  for (const auto& part : shard_out) total += part.size();
  out.reserve(total);
  // Shards are contiguous ascending probe ranges, so plain concatenation
  // reproduces the serial (a, b) order exactly.
  for (auto& part : shard_out) {
    out.insert(out.end(), part.begin(), part.end());
  }
  for (const auto c : shard_candidates) local.candidate_pairs += c;
  local.emitted_pairs = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<CooccurrencePair> cooccurrence_join_delta(
    std::span<const util::IdSet> items,
    std::span<const std::uint32_t> probe_items, std::uint32_t min_shared,
    const JoinOptions& options, unsigned num_threads, JoinStats* stats) {
  if (min_shared == 0) {
    throw std::invalid_argument("cooccurrence_join: min_shared must be >= 1");
  }
  for (std::size_t p = 0; p < probe_items.size(); ++p) {
    if (probe_items[p] >= items.size() ||
        (p > 0 && probe_items[p] <= probe_items[p - 1])) {
      throw std::invalid_argument(
          "cooccurrence_join_delta: probe_items must be ascending unique "
          "item ids");
    }
  }
  const PostingsIndex index = build_postings(items);

  JoinStats local;
  local.shard_passes = 1;
  local.peak_resident_postings_bytes =
      postings_bytes(index.num_keys, index.entries.size());
  fill_key_stats(index, options.max_postings_length, local);

  std::vector<char> probed(items.size(), 0);
  for (const std::uint32_t p : probe_items) probed[p] = 1;

  constexpr std::size_t kMinProbesPerShard = 64;
  const std::size_t np = probe_items.size();
  unsigned shards = num_threads == 0 ? 1 : num_threads;
  shards = static_cast<unsigned>(std::min<std::size_t>(
      shards, std::max<std::size_t>(np / kMinProbesPerShard, 1)));

  std::vector<CooccurrencePair> out;
  if (shards <= 1) {
    std::vector<std::uint32_t> counts(items.size(), 0);
    std::vector<std::uint32_t> touched;
    count_probe_delta(items, index, probe_items, 0, np, probed, min_shared,
                      options.max_postings_length, counts, touched, out,
                      local.candidate_pairs);
  } else {
    std::vector<std::vector<CooccurrencePair>> shard_out(shards);
    std::vector<std::size_t> shard_candidates(shards, 0);
    util::ThreadPool pool(std::min(num_threads, shards));
    util::parallel_for(pool, shards, [&](std::size_t s) {
      std::vector<std::uint32_t> counts(items.size(), 0);
      std::vector<std::uint32_t> touched;
      count_probe_delta(items, index, probe_items, np * s / shards,
                        np * (s + 1) / shards, probed, min_shared,
                        options.max_postings_length, counts, touched,
                        shard_out[s], shard_candidates[s]);
    });
    std::size_t total = 0;
    for (const auto& part : shard_out) total += part.size();
    out.reserve(total);
    for (auto& part : shard_out) {
      out.insert(out.end(), part.begin(), part.end());
    }
    for (const auto c : shard_candidates) local.candidate_pairs += c;
  }
  // A probe item emits partners on both sides of its own id under (min,
  // max) keys, so unlike the full join the output is not already globally
  // ordered. Every pair appears exactly once, so the sort is deterministic.
  std::sort(out.begin(), out.end(), [](const auto& p, const auto& q) {
    return p.a != q.a ? p.a < q.a : p.b < q.b;
  });
  local.emitted_pairs = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

KeyShardPlan plan_key_shards(std::span<const util::IdSet> items,
                             std::size_t memory_budget_bytes) {
  std::uint32_t max_key = 0;
  bool any_key = false;
  std::size_t total_entries = 0;
  for (const auto& item : items) {
    if (!item.empty()) {
      any_key = true;
      max_key = std::max(max_key, item.values().back());
      total_entries += item.size();
    }
  }
  const std::uint32_t num_keys = any_key ? max_key + 1 : 0;

  KeyShardPlan plan;
  plan.total_bytes = postings_bytes(num_keys, total_entries);
  if (num_keys == 0) return plan;
  if (memory_budget_bytes == 0 || plan.total_bytes <= memory_budget_bytes) {
    plan.ranges.push_back({0, num_keys, plan.total_bytes, total_entries});
    plan.peak_bytes = plan.total_bytes;
    return plan;
  }

  // Observed per-key cardinalities drive the plan: each key costs two
  // size_t slots (offset + build cursor) plus 4 bytes per posting entry.
  std::vector<std::uint32_t> key_len(num_keys, 0);
  for (const auto& item : items) {
    for (auto key : item) ++key_len[key];
  }

  constexpr std::size_t kRangeBaseBytes = postings_bytes(0, 0);
  constexpr std::size_t kPerKeyBytes = 2 * sizeof(std::size_t);
  std::uint32_t begin = 0;
  std::size_t bytes = kRangeBaseBytes;
  std::size_t entries = 0;
  for (std::uint32_t k = 0; k < num_keys; ++k) {
    const std::size_t add =
        kPerKeyBytes + key_len[k] * std::size_t{sizeof(std::uint32_t)};
    // Cut before a key that would overflow the budget — unless the range
    // is still empty, in which case the key is over budget all by itself
    // and gets a (reported) oversized range of its own.
    if (k > begin && bytes + add > memory_budget_bytes) {
      plan.ranges.push_back({begin, k, bytes, entries});
      begin = k;
      bytes = kRangeBaseBytes;
      entries = 0;
    }
    bytes += add;
    entries += key_len[k];
  }
  plan.ranges.push_back({begin, num_keys, bytes, entries});
  for (const auto& range : plan.ranges) {
    plan.peak_bytes = std::max(plan.peak_bytes, range.bytes);
  }
  return plan;
}

namespace {

constexpr std::uint64_t pack_pair(const CooccurrencePair& pair) noexcept {
  return (static_cast<std::uint64_t>(pair.a) << 32) | pair.b;
}

// Merges two (a, b)-sorted partial-count runs, summing the counts of pairs
// present in both.
std::vector<CooccurrencePair> merge_partials(std::vector<CooccurrencePair> x,
                                             std::vector<CooccurrencePair> y) {
  std::vector<CooccurrencePair> out;
  out.reserve(x.size() + y.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < x.size() && j < y.size()) {
    const auto kx = pack_pair(x[i]);
    const auto ky = pack_pair(y[j]);
    if (kx < ky) {
      out.push_back(x[i++]);
    } else if (ky < kx) {
      out.push_back(y[j++]);
    } else {
      out.push_back({x[i].a, x[i].b, x[i].shared_keys + y[j].shared_keys});
      ++i;
      ++j;
    }
  }
  out.insert(out.end(), x.begin() + static_cast<std::ptrdiff_t>(i), x.end());
  out.insert(out.end(), y.begin() + static_cast<std::ptrdiff_t>(j), y.end());
  return out;
}

}  // namespace

std::vector<CooccurrencePair> cooccurrence_join_sharded(
    std::span<const util::IdSet> items, std::uint32_t min_shared,
    const JoinOptions& options, std::size_t memory_budget_bytes,
    unsigned num_threads, JoinStats* stats) {
  if (min_shared == 0) {
    throw std::invalid_argument("cooccurrence_join: min_shared must be >= 1");
  }
  const KeyShardPlan plan = plan_key_shards(items, memory_budget_bytes);
  if (plan.ranges.size() <= 1) {
    // The whole index fits the budget (or there are no keys at all): the
    // single-pass join is the bounded-memory join. It validates the
    // items itself, so an unnormalized input still throws even though
    // the plan above was computed on garbage.
    return cooccurrence_join_parallel(items, min_shared, options, num_threads,
                                      stats);
  }
  validate_normalized(items);

  JoinStats local;
  local.shard_passes = plan.ranges.size();
  local.peak_resident_postings_bytes = plan.peak_bytes;

  const std::size_t n = items.size();
  // Within a pass the probe is range-sharded exactly like
  // cooccurrence_join_parallel; passes themselves run sequentially so at
  // most one range's postings index is ever resident.
  constexpr std::size_t kMinItemsPerShard = 256;
  unsigned probe_shards = num_threads == 0 ? 1 : num_threads;
  probe_shards = static_cast<unsigned>(std::min<std::size_t>(
      probe_shards, std::max<std::size_t>(n / kMinItemsPerShard, 1)));

  std::optional<util::ThreadPool> pool;
  if (probe_shards > 1) pool.emplace(probe_shards);

  // Probe scratch is allocated once and reused across passes
  // (count_probe_range restores counts to all-zero on exit).
  std::vector<std::vector<std::uint32_t>> counts(
      probe_shards, std::vector<std::uint32_t>(n, 0));
  std::vector<std::vector<std::uint32_t>> touched(probe_shards);

  std::vector<std::vector<CooccurrencePair>> pass_out;
  pass_out.reserve(plan.ranges.size());
  for (const auto& range : plan.ranges) {
    const PostingsIndex index =
        build_postings_range(items, range.begin, range.end);
    fill_key_stats(index, options.max_postings_length, local);

    std::vector<std::vector<CooccurrencePair>> shard_out(probe_shards);
    std::vector<std::size_t> shard_candidates(probe_shards, 0);
    const auto probe = [&](std::size_t s) {
      const auto lo = static_cast<std::uint32_t>(n * s / probe_shards);
      const auto hi = static_cast<std::uint32_t>(n * (s + 1) / probe_shards);
      // Per-pass counts are partial, so every touched pair is emitted
      // (min_shared 1 here); the real filter runs after the merge.
      count_probe_range(items, index, lo, hi, 1, options.max_postings_length,
                        counts[s], touched[s], shard_out[s],
                        shard_candidates[s]);
    };
    if (probe_shards > 1) {
      util::parallel_for(*pool, probe_shards, probe);
    } else {
      probe(0);
    }

    std::vector<CooccurrencePair> merged_pass;
    std::size_t total = 0;
    for (const auto& part : shard_out) total += part.size();
    merged_pass.reserve(total);
    for (auto& part : shard_out) {
      merged_pass.insert(merged_pass.end(), part.begin(), part.end());
    }
    for (const auto c : shard_candidates) local.candidate_pairs += c;
    pass_out.push_back(std::move(merged_pass));
  }

  // Balanced merge tree over the per-pass sorted runs: O(pairs * log S)
  // instead of the O(pairs * S) of a naive S-way scan.
  while (pass_out.size() > 1) {
    std::vector<std::vector<CooccurrencePair>> next;
    next.reserve((pass_out.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < pass_out.size(); i += 2) {
      next.push_back(
          merge_partials(std::move(pass_out[i]), std::move(pass_out[i + 1])));
    }
    if (pass_out.size() % 2 == 1) next.push_back(std::move(pass_out.back()));
    pass_out = std::move(next);
  }

  std::vector<CooccurrencePair> out = std::move(pass_out.front());
  if (min_shared > 1) {
    std::erase_if(out, [min_shared](const CooccurrencePair& pair) {
      return pair.shared_keys < min_shared;
    });
  }
  local.emitted_pairs = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<CooccurrencePair> cooccurrence_join_reference(
    std::span<const util::IdSet> items, std::uint32_t min_shared,
    const JoinOptions& options) {
  if (min_shared == 0) {
    throw std::invalid_argument("cooccurrence_join: min_shared must be >= 1");
  }

  // Inverted index: key -> items containing it, in ascending item order
  // (guaranteed by iterating items in order).
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> postings;
  for (std::uint32_t i = 0; i < items.size(); ++i) {
    if (!items[i].is_normalized()) {
      throw std::invalid_argument("cooccurrence_join: IdSet not normalized");
    }
    for (auto key : items[i]) postings[key].push_back(i);
  }

  // Count co-occurrences per pair. Key: packed (a<<32)|b with a < b.
  std::unordered_map<std::uint64_t, std::uint32_t> counts;
  for (const auto& [key, list] : postings) {
    (void)key;
    if (list.size() < 2 || list.size() > options.max_postings_length) continue;
    for (std::size_t x = 0; x < list.size(); ++x) {
      for (std::size_t y = x + 1; y < list.size(); ++y) {
        const std::uint64_t packed =
            (static_cast<std::uint64_t>(list[x]) << 32) | list[y];
        ++counts[packed];
      }
    }
  }

  std::vector<CooccurrencePair> out;
  out.reserve(counts.size());
  for (const auto& [packed, count] : counts) {
    if (count < min_shared) continue;
    out.push_back({static_cast<std::uint32_t>(packed >> 32),
                   static_cast<std::uint32_t>(packed & 0xffffffffu), count});
  }
  std::sort(out.begin(), out.end(), [](const auto& p, const auto& q) {
    return p.a != q.a ? p.a < q.a : p.b < q.b;
  });
  return out;
}

double bidirectional_similarity(std::uint32_t shared, std::size_t size_a,
                                std::size_t size_b) {
  if (size_a == 0 || size_b == 0) return 0.0;
  const double s = static_cast<double>(shared);
  return (s / static_cast<double>(size_a)) * (s / static_cast<double>(size_b));
}

}  // namespace smash::graph
