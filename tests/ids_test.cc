#include <gtest/gtest.h>

#include "ids/blacklist.h"
#include "ids/ground_truth.h"
#include "ids/signature.h"
#include "test_helpers.h"

namespace smash::ids {
namespace {

using test::add_request;

TEST(Signature, MatchCriteria) {
  net::HttpRequest req;
  req.path = "/a/login.php?uid=5&cmd=ping";
  req.user_agent = "BotAgent";

  Signature by_file{"T1", "login.php", "", "", Vintage::k2012};
  Signature by_ua{"T2", "", "BotAgent", "", Vintage::k2012};
  Signature by_pattern{"T3", "", "", "uid=&cmd=", Vintage::k2012};
  Signature all_three{"T4", "login.php", "BotAgent", "uid=&cmd=", Vintage::k2012};
  Signature wrong_file{"T5", "gate.php", "", "", Vintage::k2012};
  Signature wrong_pattern{"T6", "", "", "a=&b=", Vintage::k2012};

  EXPECT_TRUE(by_file.matches(req));
  EXPECT_TRUE(by_ua.matches(req));
  EXPECT_TRUE(by_pattern.matches(req));
  EXPECT_TRUE(all_three.matches(req));
  EXPECT_FALSE(wrong_file.matches(req));
  EXPECT_FALSE(wrong_pattern.matches(req));
}

TEST(SignatureEngine, RejectsInvalidSignatures) {
  SignatureEngine engine;
  EXPECT_THROW(engine.add({"", "f.php", "", "", Vintage::k2012}),
               std::invalid_argument);
  EXPECT_THROW(engine.add({"T", "", "", "", Vintage::k2012}), std::invalid_argument);
}

TEST(SignatureEngine, LabelsAggregateTo2ld) {
  net::Trace trace;
  add_request(trace, "c1", "www.evil.com", "/x/login.php?uid=1&cmd=2", "UA");
  add_request(trace, "c1", "good.com", "/index.html", "UA");
  trace.finalize();

  SignatureEngine engine;
  engine.add({"Trojan.X", "login.php", "", "", Vintage::k2012});
  const auto labels = engine.label(trace, Vintage::k2012);
  EXPECT_TRUE(labels.labeled("evil.com"));  // aggregated from www.evil.com
  EXPECT_FALSE(labels.labeled("www.evil.com"));
  EXPECT_FALSE(labels.labeled("good.com"));
  EXPECT_EQ(labels.threats.at("evil.com").count("Trojan.X"), 1u);
}

TEST(SignatureEngine, VintageSemantics) {
  net::Trace trace;
  add_request(trace, "c1", "a.com", "/old.php");
  add_request(trace, "c1", "b.com", "/new.php");
  trace.finalize();

  SignatureEngine engine;
  engine.add({"Old", "old.php", "", "", Vintage::k2012});
  engine.add({"New", "new.php", "", "", Vintage::k2013});

  const auto l2012 = engine.label(trace, Vintage::k2012);
  EXPECT_TRUE(l2012.labeled("a.com"));
  EXPECT_FALSE(l2012.labeled("b.com"));  // 2013 rule invisible in 2012

  // 2013 runs include 2012 rules: signature sets only grow.
  const auto l2013 = engine.label(trace, Vintage::k2013);
  EXPECT_TRUE(l2013.labeled("a.com"));
  EXPECT_TRUE(l2013.labeled("b.com"));
}

TEST(Blacklist, PrimaryConfirmsAlone) {
  Blacklist bl;
  bl.add_primary_source("phishtank");
  bl.list("phishtank", "bad.com");
  EXPECT_TRUE(bl.confirmed("bad.com"));
  EXPECT_FALSE(bl.confirmed("other.com"));
}

TEST(Blacklist, AggregatedNeedsTwo) {
  Blacklist bl;
  bl.add_aggregated_source("feed1");
  bl.add_aggregated_source("feed2");
  bl.list("feed1", "shady.com");
  EXPECT_FALSE(bl.confirmed("shady.com"));  // one aggregated feed: no
  bl.list("feed2", "shady.com");
  EXPECT_TRUE(bl.confirmed("shady.com"));  // two: yes (>= 2-of-78 rule)
}

TEST(Blacklist, UnknownSourceThrows) {
  Blacklist bl;
  EXPECT_THROW(bl.list("nope", "x.com"), std::invalid_argument);
}

TEST(Blacklist, SourcesListing) {
  Blacklist bl;
  bl.add_primary_source("p1");
  bl.add_aggregated_source("a1");
  bl.list("p1", "x.com");
  bl.list("a1", "x.com");
  const auto sources = bl.sources_listing("x.com");
  EXPECT_EQ(sources.size(), 2u);
  EXPECT_EQ(bl.num_sources(), 2u);
}

TEST(GroundTruth, CampaignOwnershipAndKinds) {
  GroundTruth truth;
  CampaignTruth cnc;
  cnc.name = "c1";
  cnc.kind = CampaignKind::kCnc;
  cnc.servers = {"evil.com", "evil2.com"};
  truth.add_campaign(cnc);

  CampaignTruth noise;
  noise.name = "n1";
  noise.kind = CampaignKind::kNoiseTorrent;
  noise.servers = {"tracker.net"};
  truth.add_campaign(noise);

  EXPECT_TRUE(truth.server_is_malicious("evil.com"));
  EXPECT_FALSE(truth.server_is_malicious("tracker.net"));
  EXPECT_TRUE(truth.server_is_noise("tracker.net"));
  EXPECT_FALSE(truth.server_is_noise("evil.com"));
  EXPECT_FALSE(truth.server_is_malicious("unknown.com"));
  EXPECT_EQ(truth.num_malicious_servers(), 2u);
  ASSERT_TRUE(truth.campaign_of("evil2.com").has_value());
  EXPECT_EQ(truth.campaigns()[*truth.campaign_of("evil2.com")].name, "c1");
}

TEST(GroundTruth, FirstRegistrationWins) {
  GroundTruth truth;
  CampaignTruth a;
  a.name = "a";
  a.kind = CampaignKind::kWebScanner;
  a.servers = {"victim.org"};
  truth.add_campaign(a);
  CampaignTruth b;
  b.name = "b";
  b.kind = CampaignKind::kIframeInjection;
  b.servers = {"victim.org"};
  truth.add_campaign(b);
  EXPECT_EQ(truth.campaigns()[*truth.campaign_of("victim.org")].name, "a");
}

TEST(GroundTruth, LivenessOracle) {
  GroundTruth truth;
  truth.mark_dead("gone.com");
  EXPECT_TRUE(truth.is_dead("gone.com"));
  EXPECT_FALSE(truth.is_dead("alive.com"));
}

TEST(GroundTruth, RejectsUnnamedCampaign) {
  GroundTruth truth;
  EXPECT_THROW(truth.add_campaign({}), std::invalid_argument);
}

TEST(CampaignKindHelpers, Taxonomy) {
  EXPECT_TRUE(kind_is_malicious(CampaignKind::kCnc));
  EXPECT_TRUE(kind_is_malicious(CampaignKind::kIframeInjection));
  EXPECT_FALSE(kind_is_malicious(CampaignKind::kNoiseTorrent));
  EXPECT_FALSE(kind_is_malicious(CampaignKind::kBenign));
  EXPECT_TRUE(kind_is_attacking(CampaignKind::kWebScanner));
  EXPECT_TRUE(kind_is_attacking(CampaignKind::kIframeInjection));
  EXPECT_FALSE(kind_is_attacking(CampaignKind::kCnc));
  EXPECT_NE(campaign_kind_name(CampaignKind::kDropZone), "?");
}

}  // namespace
}  // namespace smash::ids
