#include "stream/engine.h"

#include <chrono>
#include <utility>

namespace smash::stream {

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

StreamEngine::StreamEngine(StreamConfig config, const whois::Registry& registry)
    : config_(config), registry_(registry), pipeline_(config.smash),
      ingestor_(config) {}

void StreamEngine::ingest(const RequestEvent& event) {
  if (ingestor_.ingest(event).epochs_closed > 0) republish();
}

void StreamEngine::ingest(const ResolutionEvent& event) {
  if (ingestor_.ingest(event).epochs_closed > 0) republish();
}

void StreamEngine::ingest(const RedirectEvent& event) {
  if (ingestor_.ingest(event).epochs_closed > 0) republish();
}

void StreamEngine::finish() {
  if (!ingestor_.has_open_epoch()) return;
  ingestor_.close_epoch();
  republish();
}

void StreamEngine::republish() {
  const auto& window = ingestor_.window();
  if (window.empty()) return;

  EpochCloseRecord record;
  record.last_epoch = window.back().id();
  record.window_epochs = static_cast<std::uint32_t>(window.size());

  const auto start = std::chrono::steady_clock::now();
  const net::Trace window_trace = ingestor_.assemble_window();
  record.assemble_ms = ms_since(start);
  record.window_requests = window_trace.num_requests();

  const auto mine_start = std::chrono::steady_clock::now();
  const core::SmashResult result = pipeline_.run(window_trace, registry_);
  record.mine_ms = ms_since(mine_start);

  const auto snapshot_start = std::chrono::steady_clock::now();
  auto snapshot = DetectionSnapshot::build(
      result, window_trace, ingestor_.aggregates(), window.front().id(),
      window.back().id(), ++sequence_);
  record.kept_servers = snapshot->kept_servers();
  record.campaigns = snapshot->campaigns().size();
  record.malicious_servers = snapshot->num_malicious_servers();
  record.postings_budget_exceeded = snapshot->postings_budget_exceeded();
  slot_.publish(std::move(snapshot));
  record.snapshot_ms = ms_since(snapshot_start);

  record.total_ms = ms_since(start);
  close_records_.push_back(record);
}

}  // namespace smash::stream
