// Shared plumbing for the table/figure benches: dataset presets, pipeline
// sweeps, and the Table II/III row layout used by four different tables.
#pragma once

#include <string>
#include <vector>

#include "core/evaluation.h"
#include "core/pipeline.h"
#include "synth/world.h"
#include "util/strings.h"
#include "util/table.h"

namespace smash::bench {

// The paper's threshold sweep.
inline const std::vector<double> kThresholds{0.5, 0.8, 1.0, 1.5};

// Builds (and caches within the process) a dataset preset by name:
// "2011day", "2012day", "2012week".
const synth::Dataset& dataset(const std::string& preset);

// Runs the pipeline on `ds` with both campaign-class thresholds set to
// `thresh` (the sweep convention of Tables II/III/XI/XII).
core::SmashResult run_at_threshold(const synth::Dataset& ds, double thresh);

// Renders the Table II-style campaign-count sweep for one dataset pair.
// `single_client` selects the Appendix C population (Tables XI).
util::Table campaign_sweep_table(const std::string& title,
                                 const std::vector<std::string>& presets,
                                 bool single_client);

// Renders the Table III-style server-count sweep (Tables III / XII).
util::Table server_sweep_table(const std::string& title,
                               const std::vector<std::string>& presets,
                               bool single_client);

// Evaluation at the paper's operating point (multi 0.8 / single 1.0).
struct OperatingPoint {
  core::SmashResult result;
  core::EvaluationResult multi;
  core::EvaluationResult single;
};
OperatingPoint run_operating_point(const synth::Dataset& ds);

}  // namespace smash::bench
