// Runtime metrics registry: process-wide (or per-engine) named counters,
// gauges, and fixed-bucket latency histograms with near-free hot-path
// updates, plus Prometheus text-exposition and single-line JSON exporters.
//
// Design (docs/OBSERVABILITY.md):
//  - Hot path: counter/histogram updates are relaxed atomic increments on
//    per-thread-sharded, cache-line-padded cells — no locks, no fences, no
//    allocation. A counter increment is one thread-local read plus one
//    relaxed fetch_add; a histogram observe adds a small bucket search.
//  - Read path: snapshot-on-read. snapshot() sums the shards under the
//    registration mutex and returns an owned MetricsSnapshot; renderers
//    work from the snapshot, so exporting never perturbs the hot path
//    beyond the relaxed loads.
//  - Handles: counter()/gauge()/histogram() are idempotent per name and
//    return a reference that stays valid for the registry's lifetime.
//    Re-acquiring a name with a different metric kind is a fatal
//    SMASH_CHECK (one name, one meaning).
//  - Names are dotted lowercase ("stream.mine_ms"); the Prometheus
//    renderer prefixes "smash_" and maps every non-[a-zA-Z0-9_:] byte to
//    '_' ("smash_stream_mine_ms"). Counters end in "_total", histograms
//    carry their unit as a suffix ("_ms", "_ns") — see the catalog in
//    docs/OBSERVABILITY.md.
//
// Consistency model: counters are exact (every increment lands in exactly
// one shard); a snapshot taken concurrently with writers observes each
// metric at some point between the snapshot's start and end — per-metric
// monotonic, not a cross-metric atomic cut. Histogram per-bucket counts
// and the sum are updated with independent relaxed ops, so a concurrent
// snapshot can momentarily see count/sum skew by in-flight observations;
// both are exact once writers quiesce.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace smash::obs {

// Number of per-thread shards per counter/histogram. Threads are assigned
// round-robin at first use; more threads than shards just share cells
// (still exact — fetch_add — only contended).
inline constexpr std::size_t kMetricShards = 16;

// Stable small index for the calling thread, in [0, kMetricShards).
std::size_t metric_shard_index() noexcept;

namespace detail {
struct alignas(64) ShardCell {
  std::atomic<std::uint64_t> value{0};
};
}  // namespace detail

// Monotonic counter. Hot-path inc() is a relaxed fetch_add on the calling
// thread's shard; value() sums shards (exact once writers quiesce).
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    shards_[metric_shard_index()].value.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& cell : shards_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  friend class Registry;
  Counter() = default;
  std::array<detail::ShardCell, kMetricShards> shards_{};
};

// Last-write-wins instantaneous value (queue depth, snapshot sequence).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double v) noexcept { value_.fetch_add(v, std::memory_order_relaxed); }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  friend class Registry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram. `bounds` are ascending inclusive upper bounds
// (Prometheus `le` semantics): a sample v lands in the first bucket with
// v <= bounds[i]; anything above the last bound lands in the implicit
// +Inf bucket (index bounds.size()). count and sum ride along, so mean
// latency and rates fall out of any two snapshots.
class Histogram {
 public:
  void observe(double v) noexcept {
    std::size_t b = 0;
    while (b < bounds_.size() && v > bounds_[b]) ++b;
    auto& shard = shards_[metric_shard_index()];
    shard.counts[b].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(v, std::memory_order_relaxed);
  }

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  // Non-cumulative per-bucket counts (size bounds().size() + 1; last is
  // the +Inf bucket), summed across shards.
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const;
  double sum() const;

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  friend class Registry;
  explicit Histogram(std::vector<double> bounds);

  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts;
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  std::array<Shard, kMetricShards> shards_;
};

// Default bucket bounds for millisecond-scale latency histograms:
// 10 µs .. 30 s, roughly 1-2.5-5 per decade.
const std::vector<double>& latency_buckets_ms();
// Default bucket bounds for nanosecond-scale latency histograms
// (lock-free lookups): 50 ns .. ~1.6 ms, powers of two.
const std::vector<double>& latency_buckets_ns();

// --- snapshots ---------------------------------------------------------------

struct CounterSnapshot {
  std::string name, help;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name, help;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name, help;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  // non-cumulative; last = +Inf bucket
  std::uint64_t count = 0;
  double sum = 0.0;
};

// A point-in-time copy of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  const CounterSnapshot* counter(std::string_view name) const noexcept;
  const GaugeSnapshot* gauge(std::string_view name) const noexcept;
  const HistogramSnapshot* histogram(std::string_view name) const noexcept;
};

// Prometheus text exposition format (one HELP/TYPE block per metric,
// cumulative `le` buckets, names prefixed "smash_" and sanitized).
std::string render_prometheus(const MetricsSnapshot& snapshot);
// Single-line JSON object (JSONL-friendly; canonical dotted names).
std::string render_json(const MetricsSnapshot& snapshot);

// --- registry ----------------------------------------------------------------

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Process-wide registry for code with no engine-scoped registry at hand.
  // Engine-scoped registries (StreamConfig::metrics) are preferred: tests
  // and multi-engine processes then never share counters by accident.
  static Registry& global();

  // Find-or-create by name; the returned reference lives as long as the
  // registry. A name re-acquired with a different kind (or, for
  // histograms, different bounds) is a fatal SMASH_CHECK.
  Counter& counter(std::string_view name, std::string_view help = "");
  Gauge& gauge(std::string_view name, std::string_view help = "");
  Histogram& histogram(std::string_view name, std::vector<double> bounds,
                       std::string_view help = "");
  // histogram() with latency_buckets_ms().
  Histogram& latency_histogram_ms(std::string_view name,
                                  std::string_view help = "");

  // Gauge computed at snapshot time (snapshot age, queue depths owned by
  // another subsystem). Re-registering a name replaces the provider (a
  // recovered engine takes over its predecessor's gauge). The provider
  // must stay callable until remove()d — owners with shorter lifetimes
  // than the registry must remove() in their destructor. Providers are
  // invoked with the registry mutex held: they must not call back into
  // the registry.
  void gauge_callback(std::string_view name, std::function<double()> provider,
                      std::string_view help = "");

  // Drops a metric (any kind). Outstanding references go dangling — only
  // meant for callback gauges whose provider is dying.
  void remove(std::string_view name);

  MetricsSnapshot snapshot() const;
  std::string render_prometheus() const { return obs::render_prometheus(snapshot()); }
  std::string render_json() const { return obs::render_json(snapshot()); }

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kCallbackGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::function<double()> provider;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> metrics_;  // sorted => stable render
};

}  // namespace smash::obs
