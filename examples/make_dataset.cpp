// make_dataset — materialize a synthetic ISP dataset on disk, in the same
// TSV formats smash_cli consumes. Useful for sharing repro inputs or for
// feeding the pipeline from another process.
//
//   ./make_dataset --preset 2011day|2012day|2012week|tiny
//                  [--seed S] [--out PREFIX]
//
// Writes PREFIX_trace.tsv, PREFIX_whois.tsv and PREFIX_truth.tsv (campaign
// name, kind, servers — for scoring by external tools).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "synth/world.h"

int main(int argc, char** argv) {
  using namespace smash;

  std::string preset = "tiny";
  std::string prefix = "smash_dataset";
  std::uint64_t seed = 0;  // 0 = preset default
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) { std::fprintf(stderr, "missing value for %s\n", arg.c_str()); std::exit(2); }
      return argv[++i];
    };
    if (arg == "--preset") preset = next();
    else if (arg == "--seed") seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--out") prefix = next();
    else { std::fprintf(stderr, "unknown flag %s\n", arg.c_str()); return 2; }
  }

  synth::WorldConfig config;
  if (preset == "2011day") config = synth::data2011day();
  else if (preset == "2012day") config = synth::data2012day();
  else if (preset == "2012week") config = synth::data2012week();
  else if (preset == "tiny") config = synth::tiny_world();
  else { std::fprintf(stderr, "unknown preset %s\n", preset.c_str()); return 2; }
  if (seed != 0) config.seed = seed;

  std::fprintf(stderr, "generating %s (seed %llu)...\n", config.name.c_str(),
               static_cast<unsigned long long>(config.seed));
  const synth::Dataset dataset = synth::generate_world(config);

  dataset.trace.write_tsv(prefix + "_trace.tsv");
  dataset.whois.write_tsv(prefix + "_whois.tsv");
  {
    std::ofstream truth(prefix + "_truth.tsv");
    for (const auto& campaign : dataset.truth.campaigns()) {
      for (const auto& server : campaign.servers) {
        truth << campaign.name << '\t'
              << ids::campaign_kind_name(campaign.kind) << '\t' << server << '\n';
      }
    }
  }

  std::printf("%s: %u clients, %u hostnames, %zu requests, %zu truth campaigns\n",
              config.name.c_str(), dataset.trace.num_clients(),
              dataset.trace.num_servers(), dataset.trace.num_requests(),
              dataset.truth.campaigns().size());
  std::printf("wrote %s_trace.tsv, %s_whois.tsv, %s_truth.tsv\n", prefix.c_str(),
              prefix.c_str(), prefix.c_str());
  std::printf("analyze with: smash_cli --trace %s_trace.tsv --whois %s_whois.tsv\n",
              prefix.c_str(), prefix.c_str());
  return 0;
}
