#include "util/table.h"

#include <algorithm>
#include <stdexcept>

namespace smash::util {

void Table::set_header(std::vector<std::string> header) {
  if (!rows_.empty()) throw std::logic_error("Table: set_header after add_row");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  if (header_.empty()) throw std::logic_error("Table: add_row before set_header");
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table: row width does not match header");
  }
  rows_.push_back(std::move(row));
}

void Table::add_separator() { rows_.emplace_back(); }

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  auto rule = [&] {
    std::string line = "+";
    for (auto w : widths) line += std::string(w + 2, '-') + "+";
    return line + "\n";
  };

  std::string out;
  out += title_ + "\n";
  out += rule();
  out += render_row(header_);
  out += rule();
  for (const auto& row : rows_) {
    out += row.empty() ? rule() : render_row(row);
  }
  out += rule();
  return out;
}

}  // namespace smash::util
