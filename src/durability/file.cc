#include "durability/file.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "util/failpoint.h"

namespace smash::durability {

namespace {

[[noreturn]] void throw_errno(const std::string& op, const std::string& path) {
  throw IoError(op + " failed for " + path + ": " + std::strerror(errno));
}

void write_fd_all(int fd, const char* data, std::size_t len,
                  const std::string& path) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write", path);
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

}  // namespace

File::~File() {
  if (fd_ >= 0 && ::close(fd_) != 0) {
    std::fprintf(stderr, "durability::File: close(%s) failed at teardown: %s\n",
                 path_.c_str(), std::strerror(errno));
  }
}

File::File(File&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      offset_(std::exchange(other.offset_, 0)),
      path_(std::move(other.path_)),
      site_(std::move(other.site_)) {}

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    offset_ = std::exchange(other.offset_, 0);
    path_ = std::move(other.path_);
    site_ = std::move(other.site_);
  }
  return *this;
}

File File::create(const std::string& path, std::string site) {
  File file;
  file.fd_ = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (file.fd_ < 0) throw_errno("open", path);
  file.path_ = path;
  file.site_ = std::move(site);
  return file;
}

File File::append_to(const std::string& path, std::string site) {
  File file;
  file.fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (file.fd_ < 0) throw_errno("open", path);
  struct stat st{};
  if (::fstat(file.fd_, &st) != 0) {
    ::close(file.fd_);
    file.fd_ = -1;
    throw_errno("fstat", path);
  }
  file.offset_ = static_cast<std::uint64_t>(st.st_size);
  file.path_ = path;
  file.site_ = std::move(site);
  return file;
}

void File::write(std::string_view bytes) {
  if (fd_ < 0) throw IoError("write on closed file " + path_);
  const auto action = util::FailPoint::consume(site_ + ".write");
  switch (action.kind) {
    case util::FailAction::Kind::kNone:
      break;
    case util::FailAction::Kind::kError:
      throw IoError("injected I/O error writing " + path_);
    case util::FailAction::Kind::kCrash:
      throw util::SimulatedCrash(site_ + ".write");
    case util::FailAction::Kind::kShortWrite: {
      const std::size_t n =
          std::min<std::size_t>(bytes.size(), static_cast<std::size_t>(action.bytes));
      write_fd_all(fd_, bytes.data(), n, path_);
      offset_ += n;
      throw util::SimulatedCrash(site_ + ".write(short)");
    }
  }
  write_fd_all(fd_, bytes.data(), bytes.size(), path_);
  offset_ += bytes.size();
}

void File::sync() {
  if (fd_ < 0) throw IoError("sync on closed file " + path_);
  const auto action = util::FailPoint::consume(site_ + ".fsync");
  if (action.kind == util::FailAction::Kind::kError) {
    throw IoError("injected fsync error on " + path_);
  }
  if (action.kind != util::FailAction::Kind::kNone) {
    throw util::SimulatedCrash(site_ + ".fsync");
  }
  if (::fsync(fd_) != 0) throw_errno("fsync", path_);
}

void File::close() {
  if (fd_ < 0) return;
  const int fd = std::exchange(fd_, -1);
  if (::close(fd) != 0) throw_errno("close", path_);
}

bool File::exists(const std::string& path) {
  return std::filesystem::exists(path);
}

std::uint64_t File::size_of(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) throw IoError("stat failed for " + path + ": " + ec.message());
  return static_cast<std::uint64_t>(size);
}

std::string File::read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open " + path + " for reading");
  std::string out;
  out.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  if (in.bad()) throw IoError("read failed for " + path);
  return out;
}

void File::truncate_file(const std::string& path, std::uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    throw_errno("truncate", path);
  }
}

void File::rename_file(const std::string& from, const std::string& to,
                       const std::string& site) {
  const auto action = util::FailPoint::consume(site + ".rename");
  if (action.kind == util::FailAction::Kind::kError) {
    throw IoError("injected rename error " + from + " -> " + to);
  }
  if (action.kind != util::FailAction::Kind::kNone) {
    throw util::SimulatedCrash(site + ".rename");
  }
  if (::rename(from.c_str(), to.c_str()) != 0) throw_errno("rename", from);
}

void File::remove_file(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  if (ec) throw IoError("remove failed for " + path + ": " + ec.message());
}

void File::make_dirs(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) throw IoError("mkdir failed for " + dir + ": " + ec.message());
}

void File::sync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw_errno("open", path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw_errno("fsync", path);
}

void File::sync_dir(const std::string& dir, const std::string& site) {
  if (!site.empty()) {
    const auto action = util::FailPoint::consume(site + ".dirsync");
    if (action.kind == util::FailAction::Kind::kError) {
      throw IoError("injected fsync error on directory " + dir);
    }
    if (action.kind != util::FailAction::Kind::kNone) {
      throw util::SimulatedCrash(site + ".dirsync");
    }
  }
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) throw_errno("open(dir)", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw_errno("fsync(dir)", dir);
}

std::vector<std::string> File::list_dir(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) names.push_back(entry.path().filename().string());
  }
  if (ec) throw IoError("listdir failed for " + dir + ": " + ec.message());
  std::sort(names.begin(), names.end());
  return names;
}

DirLock::~DirLock() { release(); }

DirLock::DirLock(DirLock&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {}

DirLock& DirLock::operator=(DirLock&& other) noexcept {
  if (this != &other) {
    release();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
  }
  return *this;
}

DirLock DirLock::acquire(const std::string& dir) {
  DirLock lock;
  lock.path_ = dir + "/LOCK";
  lock.fd_ = ::open(lock.path_.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (lock.fd_ < 0) throw_errno("open(lock)", lock.path_);
  if (::flock(lock.fd_, LOCK_EX | LOCK_NB) != 0) {
    const int err = errno;
    ::close(lock.fd_);
    lock.fd_ = -1;
    throw IoError("durability dir " + dir +
                  " is locked by another journal: " + std::strerror(err));
  }
  return lock;
}

void DirLock::release() {
  if (fd_ < 0) return;
  // close() drops the flock with the last reference to the description.
  if (::close(std::exchange(fd_, -1)) != 0) {
    std::fprintf(stderr, "durability::DirLock: close(%s) failed: %s\n",
                 path_.c_str(), std::strerror(errno));
  }
}

}  // namespace smash::durability
