// Detection-quality evaluation against scenario ground truth: given the
// stream of DetectionSnapshot publications an engine produced over a
// scenario (reduced to DetectionObservations) and the scenario's
// ScenarioTruth, compute per-scenario precision, recall, F1, the
// false-positive 2LD count, and per-campaign detection latency in epochs.
// Pure functions over plain data, so tests can score hand-built
// observations without an engine; run_scenario() is the engine-backed
// convenience the bench and end-to-end tests share. Floors (floor_for)
// live here too, next to the metric definitions they constrain
// (docs/QUALITY.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stream/snapshot.h"
#include "stream/stream_config.h"
#include "synth/scenarios.h"

namespace smash::synth {

// One engine publication reduced to what quality scoring needs.
struct DetectionObservation {
  stream::EpochId last_epoch = 0;         // newest epoch of the mined window
  std::vector<std::string> flagged_2lds;  // every server of every campaign
};

DetectionObservation observe(const stream::DetectionSnapshot& snapshot);

struct ScenarioQuality {
  std::string scenario;
  std::size_t truth_servers = 0;   // distinct campaign 2LDs in truth
  std::size_t flagged_2lds = 0;    // distinct 2LDs flagged across publications
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;  // == the false-positive 2LD count
  std::size_t false_negatives = 0;
  // Precision/recall are 1.0 when their denominator is empty (flagging
  // nothing in an all-benign scenario is perfect, not undefined); F1 is 0
  // when both are 0.
  double precision = 1.0;
  double recall = 1.0;
  double f1 = 1.0;
  std::size_t campaigns = 0;
  std::size_t campaigns_detected = 0;
  // Epochs from campaign activation (start_s / epoch_seconds) to the first
  // publication flagging any of its servers; over detected campaigns only.
  double detection_latency_epochs_mean = 0.0;
  double detection_latency_epochs_max = 0.0;
};

// Scores one scenario: observations in publication order, truth from the
// generator, epoch_seconds from the engine config the observations came
// from. Flagged sets are unioned across publications — a campaign counts as
// detected (and its servers as true positives) if any window flagged it.
ScenarioQuality evaluate_quality(const std::string& scenario_name,
                                 const std::vector<DetectionObservation>& observations,
                                 const ScenarioTruth& truth,
                                 std::uint32_t epoch_seconds);

// Minimum acceptable quality for one scenario; quality_matrix exits
// non-zero when any tracked scenario falls below its floor.
struct QualityFloor {
  double min_precision = 0.0;
  double min_recall = 0.0;
  double max_detection_latency_epochs = 1e9;
  std::size_t max_false_positive_2lds = static_cast<std::size_t>(-1);
};

// The tracked floor for a matrix scenario family (by scenario name).
// Unknown names get a permissive default floor, so adding a scenario never
// fails the gate before its baseline is recorded.
QualityFloor floor_for(const std::string& scenario_name);

// True when `q` meets `floor`; on failure appends one line per violated
// bound to `why` (when non-null).
bool meets_floor(const ScenarioQuality& q, const QualityFloor& floor,
                 std::string* why = nullptr);

// Every tracked metric as "actual (floor ...)" lines — quality_matrix
// prints this on a floor violation so the failure shows the whole picture,
// not just the bounds that broke.
std::string describe_vs_floor(const ScenarioQuality& q,
                              const QualityFloor& floor);

// --- engine-backed evaluation -------------------------------------------------

struct ScenarioRun {
  std::vector<DetectionObservation> observations;  // one per publication
  std::vector<std::string> digests;  // snapshot digest per publication
};

// Feeds the scenario through a fresh StreamEngine under `config` (probing
// after every ingest so each publication is captured exactly once),
// finishes, and returns the publication trail. The scenario's whois
// registry backs the engine.
ScenarioRun run_scenario(const Scenario& scenario,
                         const stream::StreamConfig& config);

}  // namespace smash::synth
