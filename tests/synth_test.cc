#include "synth/world.h"

#include <gtest/gtest.h>

#include <set>

#include "dns/domain.h"

namespace smash::synth {
namespace {

class TinyWorldTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { dataset_ = new Dataset(generate_world(tiny_world())); }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static Dataset* dataset_;
};

Dataset* TinyWorldTest::dataset_ = nullptr;

TEST_F(TinyWorldTest, PopulationCountsAreSane) {
  const auto cfg = tiny_world();
  EXPECT_EQ(dataset_->trace.num_clients(), cfg.num_clients);
  EXPECT_GT(dataset_->trace.num_servers(), cfg.benign.num_tail_servers);
  EXPECT_GT(dataset_->trace.num_requests(), 1000u);
  EXPECT_EQ(dataset_->trace.num_days(), 1u);
}

TEST_F(TinyWorldTest, DeterministicForSameSeed) {
  const Dataset again = generate_world(tiny_world());
  EXPECT_EQ(again.trace.num_requests(), dataset_->trace.num_requests());
  EXPECT_EQ(again.trace.num_servers(), dataset_->trace.num_servers());
  // Spot-check a few requests byte-for-byte.
  for (std::size_t i = 0; i < 50 && i < again.trace.requests().size(); ++i) {
    const auto& a = again.trace.requests()[i];
    const auto& b = dataset_->trace.requests()[i];
    EXPECT_EQ(a.path, b.path);
    EXPECT_EQ(again.trace.servers().name(a.server),
              dataset_->trace.servers().name(b.server));
  }
}

TEST_F(TinyWorldTest, DifferentSeedsDiffer) {
  const Dataset other = generate_world(tiny_world(12345));
  // Same structural counts family but different content.
  bool any_difference = other.trace.num_requests() != dataset_->trace.num_requests();
  if (!any_difference) {
    for (std::size_t i = 0; i < 100; ++i) {
      if (other.trace.requests()[i].path != dataset_->trace.requests()[i].path) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST_F(TinyWorldTest, GroundTruthCoversFlagships) {
  std::set<std::string> names;
  for (const auto& campaign : dataset_->truth.campaigns()) names.insert(campaign.name);
  for (const char* expected :
       {"zeus-0", "bagle-0", "sality-0", "iframe-0", "scan-0", "phish-0",
        "dropzone-0", "exploitkit-0", "noise-torrent", "noise-teamviewer"}) {
    EXPECT_TRUE(names.count(expected)) << "missing campaign " << expected;
  }
}

TEST_F(TinyWorldTest, CampaignServersAppearInTrace) {
  std::set<std::string> trace_2lds;
  for (std::uint32_t s = 0; s < dataset_->trace.servers().size(); ++s) {
    trace_2lds.insert(dns::effective_2ld(dataset_->trace.servers().name(s)));
  }
  for (const auto& campaign : dataset_->truth.campaigns()) {
    for (const auto& server : campaign.servers) {
      EXPECT_TRUE(trace_2lds.count(server))
          << campaign.name << " server " << server << " never requested";
    }
  }
}

TEST_F(TinyWorldTest, NoiseIsNotMalicious) {
  for (const auto& campaign : dataset_->truth.campaigns()) {
    const bool is_noise = campaign.kind == ids::CampaignKind::kNoiseTorrent ||
                          campaign.kind == ids::CampaignKind::kNoiseTeamViewer;
    if (!is_noise) continue;
    for (const auto& server : campaign.servers) {
      EXPECT_FALSE(dataset_->truth.server_is_malicious(server));
      EXPECT_TRUE(dataset_->truth.server_is_noise(server));
    }
  }
}

TEST_F(TinyWorldTest, ZeusDomainsShareIpsAndWhois) {
  const ids::CampaignTruth* zeus = nullptr;
  for (const auto& campaign : dataset_->truth.campaigns()) {
    if (campaign.name == "zeus-0") zeus = &campaign;
  }
  ASSERT_NE(zeus, nullptr);
  ASSERT_GE(zeus->servers.size(), 2u);
  // Whois: any two Zeus domains share phone + name servers.
  const auto sim = dataset_->whois.similarity(zeus->servers[0], zeus->servers[1]);
  EXPECT_GE(sim.shared_fields, 2);
  // IPs: resolved sets overlap.
  const auto id0 = dataset_->trace.servers().find(zeus->servers[0]);
  const auto id1 = dataset_->trace.servers().find(zeus->servers[1]);
  ASSERT_TRUE(id0 && id1);
  EXPECT_GT(intersection_size(dataset_->trace.ips_of(*id0),
                              dataset_->trace.ips_of(*id1)),
            0u);
}

TEST_F(TinyWorldTest, SignatureEnginePopulated) {
  EXPECT_GT(dataset_->signatures.size(), 3u);
  const auto labels = dataset_->signatures.label(dataset_->trace, ids::Vintage::k2013);
  EXPECT_GT(labels.threats.size(), 0u);
}

TEST(WeekWorld, MultiDayStructure) {
  auto cfg = tiny_world(3);
  cfg.num_days = 7;
  cfg.name = "tiny-week";
  const Dataset ds = generate_world(cfg);
  EXPECT_EQ(ds.trace.num_days(), 7u);
  // Some campaign must be active beyond day 0.
  bool later_activity = false;
  for (const auto& campaign : ds.truth.campaigns()) {
    for (auto day : campaign.active_days) later_activity |= day > 0;
  }
  EXPECT_TRUE(later_activity);
}

TEST(ScaledConfig, ShrinksCounts) {
  const auto base = data2011day();
  const auto small = base.scaled(0.1);
  EXPECT_LT(small.num_clients, base.num_clients);
  EXPECT_LT(small.benign.num_tail_servers, base.benign.num_tail_servers);
  EXPECT_GE(small.benign.num_popular_servers, 1u);
  EXPECT_THROW(base.scaled(0.0), std::invalid_argument);
}

TEST(Presets, MatchPaperTableOne) {
  EXPECT_EQ(data2011day().num_clients, 14649u);
  EXPECT_EQ(data2012day().num_clients, 18354u);
  EXPECT_EQ(data2012week().num_clients, 28285u);
  EXPECT_EQ(data2012week().num_days, 7u);
}

}  // namespace
}  // namespace smash::synth
