// Durability layer tests: failpoint semantics, WAL/checkpoint codecs and
// their corruption classification, DurableJournal rotation/resume, and
// StreamEngine crash/recovery edge cases (seal-boundary crashes, torn
// checkpoint installs, late events, cold starts). The randomized
// crash-point matrix lives in tests/recovery_equivalence_test.cc; the WAL
// corruption fuzzer in tests/fuzz_equivalence_test.cc.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "durability/checkpoint.h"
#include "durability/file.h"
#include "durability/journal.h"
#include "durability/recover.h"
#include "durability/wal.h"
#include "stream/engine.h"
#include "stream_fuzz_helpers.h"
#include "synth/stream_gen.h"
#include "util/failpoint.h"
#include "whois/whois.h"

namespace smash {
namespace {

using durability::CheckpointState;
using durability::DurableJournal;
using durability::File;
using durability::FsyncPolicy;
using durability::RecoveryError;
using durability::SealMarker;
using durability::WalRecord;
using durability::WalWriter;
using util::FailAction;
using util::FailPoint;
using util::SimulatedCrash;

// Fresh, self-cleaning directory under the system temp dir.
struct TempDir {
  explicit TempDir(const std::string& name)
      : path((std::filesystem::temp_directory_path() / ("smash_dur_" + name))
                 .string()) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string path;
};

// Failpoints are process-global; every test that arms one runs under this
// fixture so a failing assertion can never leak an armed site into the
// next test.
class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPoint::disarm_all(); }
  void TearDown() override { FailPoint::disarm_all(); }
};

stream::RequestEvent req_at(std::uint64_t t, const std::string& client,
                            const std::string& host,
                            const std::string& path = "/a") {
  stream::RequestEvent e;
  e.time_s = t;
  e.client = client;
  e.host = host;
  e.path = path;
  e.user_agent = "UA";
  return e;
}

stream::ResolutionEvent res_at(std::uint64_t t, const std::string& host,
                               const std::string& ip) {
  stream::ResolutionEvent e;
  e.time_s = t;
  e.host = host;
  e.ip = ip;
  return e;
}

void flip_byte(const std::string& path, std::uint64_t offset) {
  std::string data = File::read_all(path);
  ASSERT_LT(offset, data.size());
  data[offset] ^= 0x5a;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

// --- failpoints --------------------------------------------------------------

TEST_F(DurabilityTest, FailPointSkipAndFireCountWindow) {
  FailPoint::Spec spec;
  spec.action.kind = FailAction::Kind::kError;
  spec.skip = 2;
  spec.fire_count = 2;
  FailPoint::arm("fp.window", spec);

  EXPECT_EQ(FailPoint::consume("fp.window").kind, FailAction::Kind::kNone);
  EXPECT_EQ(FailPoint::consume("fp.window").kind, FailAction::Kind::kNone);
  EXPECT_EQ(FailPoint::consume("fp.window").kind, FailAction::Kind::kError);
  EXPECT_EQ(FailPoint::consume("fp.window").kind, FailAction::Kind::kError);
  EXPECT_EQ(FailPoint::consume("fp.window").kind, FailAction::Kind::kNone);
  EXPECT_EQ(FailPoint::hits("fp.window"), 5u);

  FailPoint::disarm("fp.window");
  EXPECT_EQ(FailPoint::consume("fp.window").kind, FailAction::Kind::kNone);
  EXPECT_EQ(FailPoint::consume("fp.unarmed").kind, FailAction::Kind::kNone);
  EXPECT_EQ(FailPoint::hits("fp.unarmed"), 0u);
}

TEST_F(DurabilityTest, FailPointShortWriteCarriesBytes) {
  FailPoint::Spec spec;
  spec.action.kind = FailAction::Kind::kShortWrite;
  spec.action.bytes = 7;
  FailPoint::arm("fp.short", spec);
  const auto action = FailPoint::consume("fp.short");
  EXPECT_EQ(action.kind, FailAction::Kind::kShortWrite);
  EXPECT_EQ(action.bytes, 7u);
}

TEST_F(DurabilityTest, FailPointArmFromEnvParsesClauses) {
  ::setenv("SMASH_FAILPOINTS", "env.a=error@1,env.b=short:7;env.c=crash", 1);
  FailPoint::arm_from_env();
  ::unsetenv("SMASH_FAILPOINTS");

  EXPECT_EQ(FailPoint::consume("env.a").kind, FailAction::Kind::kNone);
  EXPECT_EQ(FailPoint::consume("env.a").kind, FailAction::Kind::kError);
  const auto b = FailPoint::consume("env.b");
  EXPECT_EQ(b.kind, FailAction::Kind::kShortWrite);
  EXPECT_EQ(b.bytes, 7u);
  EXPECT_EQ(FailPoint::consume("env.c").kind, FailAction::Kind::kCrash);
}

TEST_F(DurabilityTest, FileWriteInjection) {
  TempDir dir("file_inject");
  File::make_dirs(dir.path);
  const std::string path = dir.path + "/f";

  {
    File f = File::create(path, "t");
    FailPoint::Spec spec;
    spec.action.kind = FailAction::Kind::kError;
    FailPoint::arm("t.write", spec);
    EXPECT_THROW(f.write("abcdef"), durability::IoError);
    FailPoint::disarm_all();
  }
  {
    File f = File::create(path, "t");
    FailPoint::Spec spec;
    spec.action.kind = FailAction::Kind::kShortWrite;
    spec.action.bytes = 3;
    FailPoint::arm("t.write", spec);
    EXPECT_THROW(f.write("abcdef"), SimulatedCrash);
    FailPoint::disarm_all();
  }
  // The short write left exactly the injected prefix on disk.
  EXPECT_EQ(File::read_all(path), "abc");

  FailPoint::Spec spec;
  spec.action.kind = FailAction::Kind::kCrash;
  FailPoint::arm("t.rename", spec);
  EXPECT_THROW(File::rename_file(path, dir.path + "/g", "t"), SimulatedCrash);
  EXPECT_FALSE(File::exists(dir.path + "/g"));
}

// --- WAL codec and scanning --------------------------------------------------

TEST(WalCodec, RecordRoundtrip) {
  auto req = req_at(42, "c1", "h1.test", "/p?x=1");
  req.referrer = "ref.test";
  req.method = net::Method::kPost;
  req.status = 503;
  const auto decoded_req =
      durability::decode_record(durability::encode_record(WalRecord{req}));
  ASSERT_TRUE(decoded_req.has_value());
  const auto& r = std::get<stream::RequestEvent>(*decoded_req);
  EXPECT_EQ(r.time_s, 42u);
  EXPECT_EQ(r.client, "c1");
  EXPECT_EQ(r.host, "h1.test");
  EXPECT_EQ(r.path, "/p?x=1");
  EXPECT_EQ(r.user_agent, "UA");
  EXPECT_EQ(r.referrer, "ref.test");
  EXPECT_EQ(r.method, net::Method::kPost);
  EXPECT_EQ(r.status, 503);

  const auto decoded_res = durability::decode_record(
      durability::encode_record(WalRecord{res_at(7, "h.test", "10.0.0.1")}));
  ASSERT_TRUE(decoded_res.has_value());
  EXPECT_EQ(std::get<stream::ResolutionEvent>(*decoded_res).ip, "10.0.0.1");

  stream::RedirectEvent redir;
  redir.time_s = 9;
  redir.from = "a.test";
  redir.to = "b.test";
  const auto decoded_redir =
      durability::decode_record(durability::encode_record(WalRecord{redir}));
  ASSERT_TRUE(decoded_redir.has_value());
  EXPECT_EQ(std::get<stream::RedirectEvent>(*decoded_redir).to, "b.test");

  const auto decoded_seal = durability::decode_record(
      durability::encode_record(WalRecord{SealMarker{123}}));
  ASSERT_TRUE(decoded_seal.has_value());
  EXPECT_EQ(std::get<SealMarker>(*decoded_seal).epoch, 123u);
}

TEST(WalCodec, DecodeRejectsMalformedPayloads) {
  EXPECT_FALSE(durability::decode_record("").has_value());
  EXPECT_FALSE(durability::decode_record("\x63junk").has_value());  // type 0x63
  // Truncated body of a valid type.
  const auto seal = durability::encode_record(WalRecord{SealMarker{5}});
  EXPECT_FALSE(durability::decode_record(seal.substr(0, seal.size() - 1)).has_value());
  // Trailing garbage after a complete body (done() must hold).
  EXPECT_FALSE(durability::decode_record(seal + "x").has_value());
  // Out-of-range method byte: encoded request with method patched to 9.
  auto req = durability::encode_record(WalRecord{req_at(1, "c", "h.test")});
  req[1 + 8] = 9;  // type byte + u64 time_s, then the method byte
  EXPECT_FALSE(durability::decode_record(req).has_value());
}

TEST(WalCodec, SegmentNameRoundtrip) {
  const auto name = durability::segment_file_name(42);
  EXPECT_EQ(name, "wal-000000000042.log");
  const auto parsed = durability::parse_segment_file_name(name);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, 42u);
  EXPECT_FALSE(durability::parse_segment_file_name("wal-xyz.log").has_value());
  EXPECT_FALSE(durability::parse_segment_file_name("wal-42.log").has_value());
  EXPECT_FALSE(
      durability::parse_segment_file_name("ckpt-000000000042.log").has_value());
}

TEST(WalCodec, WriterThenScanRoundtrip) {
  TempDir dir("wal_scan");
  File::make_dirs(dir.path);
  std::vector<std::string> payloads = {
      durability::encode_record(WalRecord{req_at(1, "c", "h.test")}),
      durability::encode_record(WalRecord{res_at(2, "h.test", "10.0.0.1")}),
      durability::encode_record(WalRecord{SealMarker{0}}),
  };
  {
    WalWriter writer(dir.path, 1);
    for (const auto& p : payloads) writer.append(p);
  }
  const std::string data =
      File::read_all(dir.path + "/" + durability::segment_file_name(1));
  std::size_t i = 0;
  const auto scan = durability::scan_records(data, 0, [&](std::string_view p) {
    EXPECT_EQ(p, payloads[i++]);
    return true;
  });
  EXPECT_TRUE(scan.clean);
  EXPECT_EQ(scan.records, 3u);
  EXPECT_EQ(scan.valid_bytes, data.size());
}

TEST(WalCodec, ScanStopsAtTornTailAndCrcFlips) {
  TempDir dir("wal_torn");
  File::make_dirs(dir.path);
  std::uint64_t two_records = 0;
  {
    WalWriter writer(dir.path, 1);
    writer.append(durability::encode_record(WalRecord{req_at(1, "c", "h.test")}));
    writer.append(durability::encode_record(WalRecord{SealMarker{0}}));
    two_records = writer.offset();
    writer.append(durability::encode_record(WalRecord{req_at(700, "c", "h.test")}));
  }
  const std::string path = dir.path + "/" + durability::segment_file_name(1);
  const std::string intact = File::read_all(path);

  // Torn mid-record: valid prefix ends at the last record boundary.
  const auto torn = durability::scan_records(
      intact.substr(0, two_records + 5), 0, [](std::string_view) { return true; });
  EXPECT_FALSE(torn.clean);
  EXPECT_EQ(torn.records, 2u);
  EXPECT_EQ(torn.valid_bytes, two_records);

  // Flipped payload byte: CRC catches it at the same boundary.
  std::string flipped = intact;
  flipped[two_records + 10] ^= 0x5a;
  const auto crc = durability::scan_records(flipped, 0,
                                            [](std::string_view) { return true; });
  EXPECT_FALSE(crc.clean);
  EXPECT_EQ(crc.records, 2u);
  EXPECT_EQ(crc.error, "CRC32C mismatch");

  // A zeroed length field can never swallow the segment.
  std::string zeroed = intact;
  for (int b = 0; b < 4; ++b) zeroed[two_records + b] = '\0';
  const auto impossible = durability::scan_records(
      zeroed, 0, [](std::string_view) { return true; });
  EXPECT_FALSE(impossible.clean);
  EXPECT_EQ(impossible.error, "impossible record length");
}

// --- checkpoint codec --------------------------------------------------------

CheckpointState sample_checkpoint() {
  CheckpointState s;
  s.epoch_seconds = 600;
  s.window_epochs = 3;
  s.drop_late_events = false;
  s.closes_total = 5;
  s.records_logged = 42;
  s.started = true;
  s.open_epoch = 6;
  s.ingest_stats.requests = 100;
  s.ingest_stats.late_folded = 2;
  s.replay_segment = 4;
  s.replay_offset = 99;
  s.window.push_back({3, 0xdeadbeefu, std::string("shard-three-bytes")});
  s.window.push_back({4, 0x1234u, std::string("shard-four")});
  s.open_trace_bytes = "open-shard";
  s.window_requests = 123;
  s.aggregates.push_back({"evil.test", 50, 3, 2});
  s.aggregates.push_back({"site.org", 73, 0, 3});
  return s;
}

TEST(CheckpointCodec, Roundtrip) {
  const CheckpointState s = sample_checkpoint();
  const auto decoded = durability::decode_checkpoint(durability::encode_checkpoint(s));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->epoch_seconds, s.epoch_seconds);
  EXPECT_EQ(decoded->window_epochs, s.window_epochs);
  EXPECT_EQ(decoded->drop_late_events, s.drop_late_events);
  EXPECT_EQ(decoded->closes_total, s.closes_total);
  EXPECT_EQ(decoded->records_logged, s.records_logged);
  EXPECT_EQ(decoded->started, s.started);
  EXPECT_EQ(decoded->open_epoch, s.open_epoch);
  EXPECT_EQ(decoded->ingest_stats.requests, s.ingest_stats.requests);
  EXPECT_EQ(decoded->ingest_stats.late_folded, s.ingest_stats.late_folded);
  EXPECT_EQ(decoded->replay_segment, s.replay_segment);
  EXPECT_EQ(decoded->replay_offset, s.replay_offset);
  ASSERT_EQ(decoded->window.size(), 2u);
  EXPECT_EQ(decoded->window[0].epoch, 3u);
  EXPECT_EQ(decoded->window[0].pre_fingerprint, 0xdeadbeefu);
  EXPECT_EQ(decoded->window[0].trace_bytes, "shard-three-bytes");
  EXPECT_EQ(decoded->window[1].trace_bytes, "shard-four");
  EXPECT_EQ(decoded->open_trace_bytes, "open-shard");
  EXPECT_EQ(decoded->window_requests, 123u);
  ASSERT_EQ(decoded->aggregates.size(), 2u);
  EXPECT_EQ(decoded->aggregates[0].host_2ld, "evil.test");
  EXPECT_EQ(decoded->aggregates[0].requests, 50u);
  EXPECT_EQ(decoded->aggregates[1].active_epochs, 3u);
}

TEST(CheckpointCodec, EveryByteFlipIsRejected) {
  const auto blob = durability::encode_checkpoint(sample_checkpoint());
  for (std::size_t i = 0; i < blob.size(); ++i) {
    std::string corrupt = blob;
    corrupt[i] ^= 0x5a;
    EXPECT_FALSE(durability::decode_checkpoint(corrupt).has_value())
        << "flip at byte " << i;
  }
  EXPECT_FALSE(durability::decode_checkpoint(blob.substr(0, blob.size() - 1))
                   .has_value());
  EXPECT_FALSE(durability::decode_checkpoint("").has_value());
}

TEST(CheckpointCodec, FileNameRoundtrip) {
  const auto name = durability::checkpoint_file_name(7, 3);
  const auto parsed = durability::parse_checkpoint_file_name(name);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->closes, 7u);
  EXPECT_EQ(parsed->replay_segment, 3u);
  EXPECT_FALSE(durability::parse_checkpoint_file_name("ckpt.tmp").has_value());
  EXPECT_FALSE(durability::parse_checkpoint_file_name(
                   durability::segment_file_name(1))
                   .has_value());
  // Lexical order == (closes, segment) order, which pruning relies on.
  EXPECT_LT(durability::checkpoint_file_name(9, 2),
            durability::checkpoint_file_name(10, 1));
}

TEST_F(DurabilityTest, CheckpointInstallIsAtomic) {
  TempDir dir("ckpt_atomic");
  File::make_dirs(dir.path);
  const CheckpointState s = sample_checkpoint();
  durability::write_checkpoint_file(dir.path, s, FsyncPolicy::kOnSeal);
  EXPECT_FALSE(File::exists(dir.path + "/ckpt.tmp"));
  const auto loaded = durability::load_latest_checkpoint(dir.path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->closes_total, s.closes_total);
}

TEST_F(DurabilityTest, CrashDuringCheckpointInstallLeavesNoCheckpoint) {
  for (const char* site : {"ckpt.write", "ckpt.fsync", "ckpt.rename"}) {
    TempDir dir(std::string("ckpt_crash_") +
                (site + 5));  // strip the "ckpt." prefix for the dir name
    File::make_dirs(dir.path);
    FailPoint::Spec spec;
    spec.action.kind = FailAction::Kind::kCrash;
    FailPoint::arm(site, spec);
    EXPECT_THROW(durability::write_checkpoint_file(dir.path, sample_checkpoint(),
                                                   FsyncPolicy::kOnSeal),
                 SimulatedCrash)
        << site;
    FailPoint::disarm_all();
    // Nothing installed; at worst ckpt.tmp lingers and recovery ignores it.
    EXPECT_FALSE(durability::load_latest_checkpoint(dir.path).has_value()) << site;
  }
}

TEST_F(DurabilityTest, LoadSkipsCorruptNewestCheckpoint) {
  TempDir dir("ckpt_skip");
  File::make_dirs(dir.path);
  CheckpointState older = sample_checkpoint();
  older.closes_total = 1;
  CheckpointState newer = sample_checkpoint();
  newer.closes_total = 2;
  durability::write_checkpoint_file(dir.path, older, FsyncPolicy::kOff);
  durability::write_checkpoint_file(dir.path, newer, FsyncPolicy::kOff);
  flip_byte(dir.path + "/" +
                durability::checkpoint_file_name(2, newer.replay_segment),
            30);
  std::uint64_t skipped = 0;
  const auto loaded = durability::load_latest_checkpoint(dir.path, &skipped);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->closes_total, 1u);
  EXPECT_EQ(skipped, 1u);
}

// --- journal rotation, resume, fail-stop -------------------------------------

TEST_F(DurabilityTest, JournalRotatesOnSealAndCreatesSegmentsLazily) {
  TempDir dir("journal_rotate");
  DurableJournal journal(dir.path, FsyncPolicy::kOff);
  EXPECT_FALSE(DurableJournal::dir_has_state(dir.path));

  journal.append(req_at(1, "c", "h.test"));
  journal.append(res_at(2, "h.test", "10.0.0.1"));
  EXPECT_TRUE(DurableJournal::dir_has_state(dir.path));
  EXPECT_EQ(journal.position().segment, 1u);
  EXPECT_GT(journal.position().offset, 0u);

  journal.seal_epoch(0);
  EXPECT_EQ(journal.records_logged(), 3u);
  EXPECT_EQ(journal.position().segment, 2u);
  EXPECT_EQ(journal.position().offset, 0u);
  // Rotation is lazy: no segment-2 file until the next append.
  EXPECT_TRUE(File::exists(dir.path + "/" + durability::segment_file_name(1)));
  EXPECT_FALSE(File::exists(dir.path + "/" + durability::segment_file_name(2)));
  journal.append(req_at(700, "c", "h.test"));
  EXPECT_TRUE(File::exists(dir.path + "/" + durability::segment_file_name(2)));
}

TEST_F(DurabilityTest, JournalDirHasStateSeesCheckpointsToo) {
  TempDir dir("journal_state");
  EXPECT_FALSE(DurableJournal::dir_has_state(dir.path));  // missing dir
  File::make_dirs(dir.path);
  EXPECT_FALSE(DurableJournal::dir_has_state(dir.path));  // empty dir
  durability::write_checkpoint_file(dir.path, sample_checkpoint(),
                                    FsyncPolicy::kOff);
  EXPECT_TRUE(DurableJournal::dir_has_state(dir.path));
}

TEST_F(DurabilityTest, JournalIsDeadAfterFirstIoErrorAndKeepsThrowing) {
  TempDir dir("journal_dead");
  DurableJournal journal(dir.path, FsyncPolicy::kOff);
  journal.append(req_at(1, "c", "h.test"));

  FailPoint::Spec spec;
  spec.action.kind = FailAction::Kind::kError;
  FailPoint::arm("wal.write", spec);
  EXPECT_THROW(journal.append(req_at(2, "c", "h.test")), durability::IoError);
  EXPECT_TRUE(journal.dead());
  EXPECT_FALSE(journal.crashed());
  FailPoint::disarm_all();

  // A journal dead from a real I/O error must refuse later work loudly: a
  // caller that swallowed the first error can never keep ingesting with
  // journaling silently disabled. Nothing reaches disk, counters freeze.
  const auto size_before =
      File::size_of(dir.path + "/" + durability::segment_file_name(1));
  EXPECT_THROW(journal.append(req_at(3, "c", "h.test")), durability::IoError);
  EXPECT_THROW(journal.seal_epoch(0), durability::IoError);
  EXPECT_THROW(journal.write_checkpoint(sample_checkpoint()),
               durability::IoError);
  EXPECT_EQ(File::size_of(dir.path + "/" + durability::segment_file_name(1)),
            size_before);
  EXPECT_EQ(journal.records_logged(), 1u);
}

TEST_F(DurabilityTest, JournalNoOpsSilentlyAfterSimulatedCrash) {
  TempDir dir("journal_crashed");
  DurableJournal journal(dir.path, FsyncPolicy::kOff);
  journal.append(req_at(1, "c", "h.test"));

  FailPoint::Spec spec;
  spec.action.kind = FailAction::Kind::kCrash;
  FailPoint::arm("wal.write", spec);
  EXPECT_THROW(journal.append(req_at(2, "c", "h.test")), SimulatedCrash);
  EXPECT_TRUE(journal.dead());
  EXPECT_TRUE(journal.crashed());
  FailPoint::disarm_all();

  // Post-crash teardown must not smear the disk image under test: every
  // further operation is a silent no-op.
  const auto size_before =
      File::size_of(dir.path + "/" + durability::segment_file_name(1));
  journal.append(req_at(3, "c", "h.test"));
  journal.seal_epoch(0);
  journal.write_checkpoint(sample_checkpoint());
  EXPECT_EQ(File::size_of(dir.path + "/" + durability::segment_file_name(1)),
            size_before);
  EXPECT_EQ(journal.records_logged(), 1u);
}

TEST_F(DurabilityTest, JournalHoldsExclusiveDirLock) {
  TempDir dir("journal_lock");
  {
    DurableJournal journal(dir.path, FsyncPolicy::kOff);
    journal.append(req_at(1, "c", "h.test"));
    // A second journal (same process or another) must not be able to
    // interleave appends into the same segments.
    EXPECT_THROW(DurableJournal(dir.path, FsyncPolicy::kOff),
                 durability::IoError);
    EXPECT_THROW(DurableJournal(dir.path, FsyncPolicy::kOff, {1, 0}, 0),
                 durability::IoError);
  }
  // Destroying the holder releases the lock; the LOCK file itself is inert
  // and never counts as journal state.
  DurableJournal resumed(dir.path, FsyncPolicy::kOff, {1, 0}, 0);
  EXPECT_TRUE(DurableJournal::dir_has_state(dir.path));
}

TEST_F(DurabilityTest, SegmentCreationSyncsDirectoryUnderDurablePolicies) {
  // Counting probe: an armed kNone spec counts hits without injecting.
  FailPoint::Spec probe;
  probe.action.kind = FailAction::Kind::kNone;
  {
    TempDir dir("journal_dirsync");
    DurableJournal journal(dir.path, FsyncPolicy::kOnSeal);
    FailPoint::arm("wal.dirsync", probe);
    journal.append(req_at(1, "c", "h.test"));
    EXPECT_EQ(FailPoint::hits("wal.dirsync"), 1u);  // segment 1 created
    journal.seal_epoch(0);
    journal.append(req_at(700, "c", "h.test"));
    EXPECT_EQ(FailPoint::hits("wal.dirsync"), 2u);  // lazy rotation created 2

    // An injected directory-fsync failure is a real I/O error: fail-stop.
    FailPoint::Spec fail;
    fail.action.kind = FailAction::Kind::kError;
    FailPoint::arm("wal.dirsync", fail);
    journal.seal_epoch(1);
    EXPECT_THROW(journal.append(req_at(1400, "c", "h.test")),
                 durability::IoError);
    EXPECT_TRUE(journal.dead());
    FailPoint::disarm_all();
  }
  {
    // kOff never touches the directory (documented page-cache trade-off).
    TempDir dir("journal_dirsync_off");
    DurableJournal journal(dir.path, FsyncPolicy::kOff);
    FailPoint::arm("wal.dirsync", probe);
    journal.append(req_at(1, "c", "h.test"));
    journal.seal_epoch(0);
    journal.append(req_at(700, "c", "h.test"));
    EXPECT_EQ(FailPoint::hits("wal.dirsync"), 0u);
  }
}

TEST_F(DurabilityTest, JournalResumeContinuesSegment) {
  TempDir dir("journal_resume");
  std::uint64_t offset = 0;
  {
    DurableJournal journal(dir.path, FsyncPolicy::kOff);
    journal.append(req_at(1, "c", "h.test"));
    journal.append(req_at(2, "c", "h.test"));
    offset = journal.position().offset;
  }
  DurableJournal resumed(dir.path, FsyncPolicy::kOff, {1, offset}, 2);
  EXPECT_EQ(resumed.position().segment, 1u);
  EXPECT_EQ(resumed.position().offset, offset);
  EXPECT_EQ(resumed.records_logged(), 2u);
  resumed.append(req_at(3, "c", "h.test"));
  EXPECT_GT(resumed.position().offset, offset);

  const std::string data =
      File::read_all(dir.path + "/" + durability::segment_file_name(1));
  const auto scan =
      durability::scan_records(data, 0, [](std::string_view) { return true; });
  EXPECT_TRUE(scan.clean);
  EXPECT_EQ(scan.records, 3u);
}

// --- replay classification ---------------------------------------------------

TEST_F(DurabilityTest, ReplayTruncatesTornTailOfLastSegment) {
  TempDir dir("replay_torn");
  DurableJournal journal(dir.path, FsyncPolicy::kOff);
  journal.append(req_at(1, "c", "h.test"));
  journal.append(req_at(2, "c", "h.test"));
  const std::string path = dir.path + "/" + durability::segment_file_name(1);
  const auto intact_size = File::size_of(path);
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write("\x01\x02\x03", 3);  // torn header of a half-written record
  }

  std::uint64_t applied = 0;
  const auto stats = durability::replay_wal(
      dir.path, 1, 0, [&](const WalRecord&) { ++applied; });
  EXPECT_EQ(applied, 2u);
  EXPECT_EQ(stats.records_replayed, 2u);
  EXPECT_EQ(stats.events_replayed, 2u);
  EXPECT_EQ(stats.bytes_truncated, 3u);
  EXPECT_EQ(stats.next_segment, 1u);
  EXPECT_EQ(stats.next_offset, intact_size);
  // The torn tail is gone from disk, not just skipped.
  EXPECT_EQ(File::size_of(path), intact_size);
}

TEST_F(DurabilityTest, ReplayFailsLoudlyOnEarlierSegmentCorruption) {
  TempDir dir("replay_earlier");
  DurableJournal journal(dir.path, FsyncPolicy::kOff);
  journal.append(req_at(1, "c", "h.test"));
  journal.seal_epoch(0);
  journal.append(req_at(700, "c", "h.test"));
  flip_byte(dir.path + "/" + durability::segment_file_name(1), 12);
  EXPECT_THROW(durability::replay_wal(dir.path, 1, 0, [](const WalRecord&) {}),
               RecoveryError);
}

TEST_F(DurabilityTest, ReplayFailsLoudlyOnSegmentGapOrMissingStart) {
  TempDir dir("replay_gap");
  DurableJournal journal(dir.path, FsyncPolicy::kOff);
  journal.append(req_at(1, "c", "h.test"));
  journal.seal_epoch(0);
  journal.append(req_at(700, "c", "h.test"));
  // Segment 2 -> 3 leaves a hole at 2.
  std::filesystem::rename(dir.path + "/" + durability::segment_file_name(2),
                          dir.path + "/" + durability::segment_file_name(3));
  EXPECT_THROW(durability::replay_wal(dir.path, 1, 0, [](const WalRecord&) {}),
               RecoveryError);

  // Oldest present segment is past the replay position.
  File::remove_file(dir.path + "/" + durability::segment_file_name(1));
  EXPECT_THROW(durability::replay_wal(dir.path, 1, 0, [](const WalRecord&) {}),
               RecoveryError);

  // A checkpoint pointing into a missing segment must not cold-start.
  TempDir empty("replay_missing");
  File::make_dirs(empty.path);
  EXPECT_THROW(durability::replay_wal(empty.path, 1, 40, [](const WalRecord&) {}),
               RecoveryError);
  // ...but a position at the start of a not-yet-created segment is the
  // normal crash-right-after-seal shape.
  std::uint64_t applied = 0;
  const auto stats = durability::replay_wal(empty.path, 2, 0,
                                            [&](const WalRecord&) { ++applied; });
  EXPECT_EQ(applied, 0u);
  EXPECT_EQ(stats.next_segment, 2u);
  EXPECT_EQ(stats.next_offset, 0u);
}

TEST_F(DurabilityTest, ReplayFailsLoudlyOnUndecodableCrcValidRecord) {
  TempDir dir("replay_undecodable");
  File::make_dirs(dir.path);
  {
    WalWriter writer(dir.path, 1);
    writer.append(durability::encode_record(WalRecord{req_at(1, "c", "h.test")}));
    writer.append("\x63junk");  // CRC-valid frame, unknown record type
  }
  EXPECT_THROW(durability::replay_wal(dir.path, 1, 0, [](const WalRecord&) {}),
               RecoveryError);
}

TEST_F(DurabilityTest, ReplayAdvancesPastSealTerminatedSegment) {
  TempDir dir("replay_sealed");
  DurableJournal journal(dir.path, FsyncPolicy::kOff);
  journal.append(req_at(1, "c", "h.test"));
  journal.seal_epoch(0);
  const auto stats =
      durability::replay_wal(dir.path, 1, 0, [](const WalRecord&) {});
  EXPECT_EQ(stats.records_replayed, 2u);
  EXPECT_EQ(stats.events_replayed, 1u);
  EXPECT_EQ(stats.next_segment, 2u);
  EXPECT_EQ(stats.next_offset, 0u);
}

// --- engine-level recovery ---------------------------------------------------

stream::StreamConfig durable_config(const std::string& dir,
                                    stream::WalFsync policy,
                                    std::uint32_t checkpoint_every) {
  stream::StreamConfig config;
  config.epoch_seconds = 600;
  config.window_epochs = 3;
  config.smash.idf_threshold = 50;
  config.durability_dir = dir;
  config.fsync_policy = policy;
  config.checkpoint_every_epochs = checkpoint_every;
  return config;
}

// The non-durable twin of `config`, fed the same events as the oracle.
stream::StreamConfig reference_of(stream::StreamConfig config) {
  config.durability_dir.clear();
  return config;
}

void feed_range(stream::StreamEngine& engine,
                const std::vector<synth::StreamEvent>& events, std::size_t from,
                std::size_t to) {
  for (std::size_t i = from; i < to; ++i) synth::ingest_event(engine, events[i]);
}

TEST_F(DurabilityTest, ColdStartRecoverIsAFreshEngine) {
  TempDir dir("engine_cold");
  const whois::Registry registry;
  auto config = durable_config(dir.path, stream::WalFsync::kOff, 4);
  auto engine = stream::StreamEngine::recover(config, registry);
  EXPECT_TRUE(engine->recovery_stats().recovered);
  EXPECT_FALSE(engine->recovery_stats().used_checkpoint);
  EXPECT_EQ(engine->recovery_stats().records_replayed, 0u);
  EXPECT_EQ(engine->snapshot(), nullptr);

  const auto events = test::random_schedule(3);
  feed_range(*engine, events, 0, events.size());
  engine->finish();

  stream::StreamEngine reference(reference_of(config), registry);
  feed_range(reference, events, 0, events.size());
  reference.finish();

  const auto recovered_snap = engine->snapshot();
  const auto reference_snap = reference.snapshot();
  ASSERT_NE(recovered_snap, nullptr);
  ASSERT_NE(reference_snap, nullptr);
  test::expect_identical_snapshots(*recovered_snap, *reference_snap);
}

TEST_F(DurabilityTest, WalOnlyRecoveryMatchesUninterruptedRun) {
  TempDir dir("engine_walonly");
  const whois::Registry registry;
  // Checkpoint cadence far past the schedule: recovery replays pure WAL.
  const auto config = durable_config(dir.path, stream::WalFsync::kOnSeal, 1000000);
  const auto events = test::random_schedule(5);
  const std::size_t cut = events.size() / 2;

  {
    stream::StreamEngine engine(config, registry);
    feed_range(engine, events, 0, cut);
    // Dropped without finish(): the open epoch's tail lives only in the WAL.
  }

  auto recovered = stream::StreamEngine::recover(config, registry);
  EXPECT_TRUE(recovered->recovery_stats().recovered);
  EXPECT_FALSE(recovered->recovery_stats().used_checkpoint);
  EXPECT_GT(recovered->recovery_stats().records_replayed, 0u);
  feed_range(*recovered, events, cut, events.size());
  recovered->finish();

  stream::StreamEngine reference(reference_of(config), registry);
  feed_range(reference, events, 0, events.size());
  reference.finish();

  const auto recovered_snap = recovered->snapshot();
  const auto reference_snap = reference.snapshot();
  ASSERT_NE(recovered_snap, nullptr);
  ASSERT_NE(reference_snap, nullptr);
  test::expect_identical_snapshots(*recovered_snap, *reference_snap);
}

TEST_F(DurabilityTest, CheckpointedRecoveryReplaysOnlyTheTail) {
  TempDir dir("engine_ckpt");
  const whois::Registry registry;
  const auto config = durable_config(dir.path, stream::WalFsync::kOnSeal, 2);
  const auto events = test::random_schedule(6);

  {
    stream::StreamEngine engine(config, registry);
    feed_range(engine, events, 0, events.size());
    engine.finish();
  }

  auto recovered = stream::StreamEngine::recover(config, registry);
  EXPECT_TRUE(recovered->recovery_stats().used_checkpoint);
  EXPECT_GT(recovered->recovery_stats().checkpoint_closes, 0u);

  stream::StreamEngine reference(reference_of(config), registry);
  feed_range(reference, events, 0, events.size());
  reference.finish();

  const auto recovered_snap = recovered->snapshot();
  const auto reference_snap = reference.snapshot();
  ASSERT_NE(recovered_snap, nullptr);
  ASSERT_NE(reference_snap, nullptr);
  test::expect_identical_snapshots(*recovered_snap, *reference_snap);
}

// Crash exactly at the epoch-seal boundary, in all three shapes: before the
// seal record hits disk, torn mid-seal-record, and after the record but
// before its fsync. Recovery must land on the same state every time an
// uninterrupted engine would reach by replaying the surviving prefix.
TEST_F(DurabilityTest, CrashAtSealBoundaryRecovers) {
  struct Shape {
    const char* name;
    const char* site;
    FailAction action;
    std::uint64_t skip;
    bool seal_survives;
  };
  const Shape shapes[] = {
      // Armed after the two epoch-0 events are journaled, so the seal
      // record that events[2] forces is the first "wal.write" hit.
      {"before_seal_write", "wal.write", {FailAction::Kind::kCrash, 0}, 0, false},
      {"torn_seal_write", "wal.write", {FailAction::Kind::kShortWrite, 5}, 0, false},
      // Under kOnSeal only the seal fsyncs, which happens after its append.
      {"at_seal_fsync", "wal.fsync", {FailAction::Kind::kCrash, 0}, 0, true},
  };
  const whois::Registry registry;
  const std::vector<synth::StreamEvent> events = {
      synth::StreamEvent{req_at(10, "bot0", "evil0.test", "/beacon.exe")},
      synth::StreamEvent{res_at(20, "evil0.test", "10.9.0.1")},
      synth::StreamEvent{req_at(700, "bot1", "evil0.test", "/beacon.exe")},
      synth::StreamEvent{req_at(800, "bot0", "evil1.test", "/beacon.exe")},
  };

  for (const Shape& shape : shapes) {
    SCOPED_TRACE(shape.name);
    TempDir dir(std::string("engine_seal_") + shape.name);
    const auto config =
        durable_config(dir.path, stream::WalFsync::kOnSeal, 1000000);
    {
      stream::StreamEngine engine(config, registry);
      synth::ingest_event(engine, events[0]);
      synth::ingest_event(engine, events[1]);
      FailPoint::Spec spec;
      spec.action = shape.action;
      spec.skip = shape.skip;
      FailPoint::arm(shape.site, spec);
      // events[2] belongs to epoch 1: sealing epoch 0 hits the failpoint.
      EXPECT_THROW(synth::ingest_event(engine, events[2]), SimulatedCrash);
      FailPoint::disarm_all();
    }

    auto recovered = stream::StreamEngine::recover(config, registry);
    EXPECT_EQ(recovered->recovery_stats().events_replayed, 2u);
    EXPECT_EQ(recovered->epochs_closed_total(), shape.seal_survives ? 1u : 0u);
    if (shape.action.kind == FailAction::Kind::kShortWrite) {
      EXPECT_GT(recovered->recovery_stats().bytes_truncated, 0u);
    }
    // The crashed event was never acked; the client retries it.
    feed_range(*recovered, events, 2, events.size());
    recovered->finish();

    stream::StreamEngine reference(reference_of(config), registry);
    feed_range(reference, events, 0, events.size());
    reference.finish();

    const auto recovered_snap = recovered->snapshot();
    const auto reference_snap = reference.snapshot();
    ASSERT_NE(recovered_snap, nullptr);
    ASSERT_NE(reference_snap, nullptr);
    test::expect_identical_snapshots(*recovered_snap, *reference_snap);
  }
}

// Crash during the *second* checkpoint's install: the stale first
// checkpoint plus the longer WAL tail must win.
TEST_F(DurabilityTest, CrashDuringCheckpointWriteFallsBackToOlderCheckpoint) {
  for (const char* site : {"ckpt.write", "ckpt.rename"}) {
    SCOPED_TRACE(site);
    TempDir dir(std::string("engine_ckpt_crash_") + (site + 5));
    const whois::Registry registry;
    const auto config = durable_config(dir.path, stream::WalFsync::kOnSeal, 1);
    const auto events = test::random_schedule(9);
    std::size_t crashed_at = events.size();
    {
      stream::StreamEngine engine(config, registry);
      FailPoint::Spec spec;
      spec.action.kind = FailAction::Kind::kCrash;
      spec.skip = 1;  // first checkpoint installs, second crashes
      FailPoint::arm(site, spec);
      for (std::size_t i = 0; i < events.size(); ++i) {
        try {
          synth::ingest_event(engine, events[i]);
        } catch (const SimulatedCrash&) {
          crashed_at = i;
          break;
        }
      }
      FailPoint::disarm_all();
      ASSERT_LT(crashed_at, events.size()) << "schedule closed < 2 epochs";
    }

    auto recovered = stream::StreamEngine::recover(config, registry);
    EXPECT_TRUE(recovered->recovery_stats().used_checkpoint);
    // The tail since the surviving checkpoint replayed from the WAL.
    EXPECT_GT(recovered->recovery_stats().records_replayed, 0u);
    // The event whose close triggered the crashed checkpoint was journaled
    // and ingested before the crash, so it is NOT re-fed.
    feed_range(*recovered, events, crashed_at + 1, events.size());
    recovered->finish();

    stream::StreamEngine reference(reference_of(config), registry);
    feed_range(reference, events, 0, events.size());
    reference.finish();

    const auto recovered_snap = recovered->snapshot();
    const auto reference_snap = reference.snapshot();
    ASSERT_NE(recovered_snap, nullptr);
    ASSERT_NE(reference_snap, nullptr);
    test::expect_identical_snapshots(*recovered_snap, *reference_snap);
  }
}

TEST_F(DurabilityTest, LateEventsSurviveRecoveryUnderBothPolicies) {
  for (const bool drop_late : {true, false}) {
    SCOPED_TRACE(drop_late ? "drop" : "fold");
    TempDir dir(std::string("engine_late_") + (drop_late ? "drop" : "fold"));
    const whois::Registry registry;
    auto config = durable_config(dir.path, stream::WalFsync::kOff, 1000000);
    config.drop_late_events = drop_late;
    const std::vector<synth::StreamEvent> events = {
        synth::StreamEvent{req_at(10, "bot0", "evil0.test", "/beacon.exe")},
        synth::StreamEvent{req_at(700, "bot1", "evil0.test", "/beacon.exe")},
        synth::StreamEvent{req_at(5, "bot0", "evil0.test", "/beacon.exe")},  // late
        synth::StreamEvent{req_at(1300, "bot1", "evil0.test", "/beacon.exe")},
    };
    {
      stream::StreamEngine engine(config, registry);
      feed_range(engine, events, 0, 3);  // late event journaled pre-crash
    }
    auto recovered = stream::StreamEngine::recover(config, registry);
    feed_range(*recovered, events, 3, events.size());
    recovered->finish();

    stream::StreamEngine reference(reference_of(config), registry);
    feed_range(reference, events, 0, events.size());
    reference.finish();

    const auto recovered_snap = recovered->snapshot();
    const auto reference_snap = reference.snapshot();
    ASSERT_NE(recovered_snap, nullptr);
    ASSERT_NE(reference_snap, nullptr);
    // Late classification replays identically (drop vs fold is config-driven
    // and the WAL holds events in arrival order).
    EXPECT_EQ(recovered_snap->late_dropped(), drop_late ? 1u : 0u);
    EXPECT_EQ(recovered_snap->late_folded(), drop_late ? 0u : 1u);
    test::expect_identical_snapshots(*recovered_snap, *reference_snap);
  }
}

TEST_F(DurabilityTest, RecoveredEngineJournalsOnAndRecoversAgain) {
  TempDir dir("engine_twice");
  const whois::Registry registry;
  const auto config = durable_config(dir.path, stream::WalFsync::kOnSeal, 2);
  const auto events = test::random_schedule(11);
  const std::size_t cut = events.size() / 3;

  {
    stream::StreamEngine engine(config, registry);
    feed_range(engine, events, 0, cut);
  }
  std::string first_digest;
  {
    auto recovered = stream::StreamEngine::recover(config, registry);
    feed_range(*recovered, events, cut, events.size());
    recovered->finish();
    const auto snap = recovered->snapshot();
    ASSERT_NE(snap, nullptr);
    first_digest = snap->digest();
  }
  // Everything the recovered engine appended must itself recover.
  auto again = stream::StreamEngine::recover(config, registry);
  const auto snap = again->snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->digest(), first_digest);
}

// A recovery that replayed a tail installs a checkpoint immediately, so a
// crash-looping process replays a bounded tail instead of an ever-growing
// one — the second recovery starts from the recovery-time checkpoint and
// replays nothing.
TEST_F(DurabilityTest, RecoveryCheckpointsReplayedTailSoCrashLoopsStayBounded) {
  TempDir dir("engine_crashloop");
  const whois::Registry registry;
  // Cadence far past the schedule: without the recovery-time checkpoint
  // every recovery would re-replay the whole WAL forever.
  const auto config = durable_config(dir.path, stream::WalFsync::kOnSeal, 1000000);
  const auto events = test::random_schedule(13);
  const std::size_t cut = events.size() / 2;
  {
    stream::StreamEngine engine(config, registry);
    feed_range(engine, events, 0, cut);
  }
  std::string digest_after_first;
  {
    auto first = stream::StreamEngine::recover(config, registry);
    EXPECT_FALSE(first->recovery_stats().used_checkpoint);
    ASSERT_GT(first->recovery_stats().records_replayed, 0u);
    EXPECT_TRUE(first->recovery_stats().checkpoint_on_recovery);
    const auto snap = first->snapshot();
    if (snap != nullptr) digest_after_first = snap->digest();
  }
  bool checkpoint_installed = false;
  for (const auto& name : File::list_dir(dir.path)) {
    if (durability::parse_checkpoint_file_name(name)) checkpoint_installed = true;
  }
  EXPECT_TRUE(checkpoint_installed);

  // Crash loop, second lap: the tail is gone, the checkpoint carries it.
  auto second = stream::StreamEngine::recover(config, registry);
  EXPECT_TRUE(second->recovery_stats().used_checkpoint);
  EXPECT_EQ(second->recovery_stats().records_replayed, 0u);
  EXPECT_FALSE(second->recovery_stats().checkpoint_on_recovery);
  const auto second_snap = second->snapshot();
  if (second_snap != nullptr) {
    EXPECT_EQ(second_snap->digest(), digest_after_first);
  }

  // And the recovered state still equals the uninterrupted run's.
  feed_range(*second, events, cut, events.size());
  second->finish();
  stream::StreamEngine reference(reference_of(config), registry);
  feed_range(reference, events, 0, events.size());
  reference.finish();
  const auto recovered_snap = second->snapshot();
  const auto reference_snap = reference.snapshot();
  ASSERT_NE(recovered_snap, nullptr);
  ASSERT_NE(reference_snap, nullptr);
  test::expect_identical_snapshots(*recovered_snap, *reference_snap);
}

// Two engines must never append to one durability dir concurrently: the
// journal's flock guards both the fresh and the recover path.
TEST_F(DurabilityTest, ConcurrentEnginesOnOneDirAreRejected) {
  TempDir dir("engine_locked");
  const whois::Registry registry;
  const auto config = durable_config(dir.path, stream::WalFsync::kOff, 4);
  stream::StreamEngine engine(config, registry);
  synth::ingest_event(engine, synth::StreamEvent{req_at(10, "c", "h.test")});
  EXPECT_THROW(stream::StreamEngine::recover(config, registry),
               durability::IoError);
}

TEST_F(DurabilityTest, RecoverRejectsConfigMismatch) {
  TempDir dir("engine_mismatch");
  const whois::Registry registry;
  const auto config = durable_config(dir.path, stream::WalFsync::kOnSeal, 1);
  {
    stream::StreamEngine engine(config, registry);
    synth::ingest_event(engine,
                        synth::StreamEvent{req_at(10, "c", "h.test")});
    synth::ingest_event(engine,
                        synth::StreamEvent{req_at(700, "c", "h.test")});
    engine.finish();  // cadence 1: at least one checkpoint is installed
  }
  auto mismatched = config;
  mismatched.window_epochs = 5;
  EXPECT_THROW(stream::StreamEngine::recover(mismatched, registry), RecoveryError);
  auto late_mismatch = config;
  late_mismatch.drop_late_events = !config.drop_late_events;
  EXPECT_THROW(stream::StreamEngine::recover(late_mismatch, registry),
               RecoveryError);
}

// --- construction guards (SMASH_CHECK aborts) --------------------------------

TEST(DurabilityDeathTest, FreshEngineRefusesDirWithState) {
  TempDir dir("engine_refuse");
  {
    DurableJournal journal(dir.path, FsyncPolicy::kOff);
    journal.append(req_at(1, "c", "h.test"));
  }
  const whois::Registry registry;
  const auto config = durable_config(dir.path, stream::WalFsync::kOff, 4);
  EXPECT_DEATH({ stream::StreamEngine engine(config, registry); }, "recover");
}

TEST(DurabilityDeathTest, ValidateRejectsNonsenseConfigs) {
  stream::StreamConfig config;
  config.epoch_seconds = 0;
  EXPECT_DEATH(config.validate(), "epoch_seconds");

  stream::StreamConfig no_window;
  no_window.window_epochs = 0;
  EXPECT_DEATH(no_window.validate(), "window_epochs");

  stream::StreamConfig bad_policy;
  bad_policy.fsync_policy = static_cast<stream::WalFsync>(7);
  EXPECT_DEATH(bad_policy.validate(), "fsync_policy");

  stream::StreamConfig no_cadence;
  no_cadence.durability_dir = "/tmp/smash_dur_validate";
  no_cadence.checkpoint_every_epochs = 0;
  EXPECT_DEATH(no_cadence.validate(), "checkpoint_every_epochs");

  // The engine constructor validates, so a bad config dies before ingest.
  const whois::Registry registry;
  stream::StreamConfig engine_config;
  engine_config.epoch_seconds = 0;
  EXPECT_DEATH({ stream::StreamEngine engine(engine_config, registry); },
               "epoch_seconds");
}

}  // namespace
}  // namespace smash
