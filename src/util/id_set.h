// Sorted-vector id sets with fast intersection size. The similarity
// dimensions (paper eqs. 1, 7, 8) reduce to intersection cardinalities over
// client/file/IP id sets; sorted vectors beat hash sets for the merge-style
// intersections dominating that workload.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace smash::util {

// A set of dense ids stored as a sorted, deduplicated vector.
class IdSet {
 public:
  IdSet() = default;
  explicit IdSet(std::vector<std::uint32_t> ids) : ids_(std::move(ids)) {
    normalize();
  }

  // Adopts `ids` without re-normalizing. The caller promises the vector is
  // sorted and deduplicated (e.g. storage recovered via release()).
  static IdSet from_sorted_unique(std::vector<std::uint32_t> ids) {
    IdSet out;
    out.ids_ = std::move(ids);
    return out;
  }

  void insert(std::uint32_t id) { ids_.push_back(id); dirty_ = true; }

  // Pre-sizes the underlying vector, avoiding growth reallocations when
  // the number of inserts is known up front.
  void reserve(std::size_t n) { ids_.reserve(n); }

  // Moves the underlying storage out, leaving the set empty. Pairs with
  // from_sorted_unique() to hand a normalized set's ids to a new owner
  // without copying.
  std::vector<std::uint32_t> release() {
    std::vector<std::uint32_t> out = std::move(ids_);
    ids_.clear();
    dirty_ = false;
    return out;
  }

  // Must be called after a batch of inserts and before any query.
  void normalize() {
    std::sort(ids_.begin(), ids_.end());
    ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
    dirty_ = false;
  }

  bool contains(std::uint32_t id) const {
    return std::binary_search(ids_.begin(), ids_.end(), id);
  }

  std::size_t size() const noexcept { return ids_.size(); }
  bool empty() const noexcept { return ids_.empty(); }
  bool is_normalized() const noexcept { return !dirty_; }

  const std::vector<std::uint32_t>& values() const noexcept { return ids_; }

  auto begin() const noexcept { return ids_.begin(); }
  auto end() const noexcept { return ids_.end(); }

  friend std::size_t intersection_size(const IdSet& a, const IdSet& b) {
    std::size_t count = 0;
    auto ia = a.ids_.begin();
    auto ib = b.ids_.begin();
    while (ia != a.ids_.end() && ib != b.ids_.end()) {
      if (*ia < *ib) ++ia;
      else if (*ib < *ia) ++ib;
      else { ++count; ++ia; ++ib; }
    }
    return count;
  }

  friend IdSet intersection(const IdSet& a, const IdSet& b) {
    std::vector<std::uint32_t> out;
    std::set_intersection(a.ids_.begin(), a.ids_.end(), b.ids_.begin(),
                          b.ids_.end(), std::back_inserter(out));
    IdSet r;
    r.ids_ = std::move(out);
    return r;
  }

  friend std::size_t union_size(const IdSet& a, const IdSet& b) {
    return a.size() + b.size() - intersection_size(a, b);
  }

  friend bool operator==(const IdSet& a, const IdSet& b) { return a.ids_ == b.ids_; }

 private:
  std::vector<std::uint32_t> ids_;
  bool dirty_ = false;
};

}  // namespace smash::util
