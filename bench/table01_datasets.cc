// Reproduces paper Table I: ISP network traffic statistics for the three
// dataset presets. Absolute volumes are ~40x below the paper's traces (see
// DESIGN.md); the columns and relative ordering are the reproduction target.
#include <cstdio>

#include "bench_common.h"
#include "util/strings.h"

int main() {
  using namespace smash;
  util::Table table("Table I: ISP network traffic statistics (synthetic presets)");
  table.set_header({"", "Data2011day", "Data2012day", "Data2012week"});

  std::vector<std::string> clients{"# of clients"};
  std::vector<std::string> requests{"# of HTTP requests"};
  std::vector<std::string> servers{"# of servers"};
  std::vector<std::string> files{"# of URI files"};
  for (const char* preset : {"2011day", "2012day", "2012week"}) {
    const auto& ds = bench::dataset(preset);
    clients.push_back(util::with_commas(ds.trace.num_clients()));
    requests.push_back(util::with_commas(ds.trace.num_requests()));
    servers.push_back(util::with_commas(ds.trace.num_servers()));
    files.push_back(util::with_commas(ds.trace.count_distinct_uri_files()));
  }
  table.add_row(clients);
  table.add_row(requests);
  table.add_row(servers);
  table.add_row(files);
  std::fputs(table.render().c_str(), stdout);

  std::puts("\nPaper reference (real ISP traces, ~40x our request volume):");
  std::puts("  clients 14,649 / 18,354 / 28,285; requests 28.5M / 40.5M / 168.7M");
  std::puts("  servers 92,517 / 117,507 / 354,578; URI files 1.5M / 2.9M / 12.7M");
  return 0;
}
