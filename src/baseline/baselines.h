// Baseline detectors SMASH is compared against in the ablation bench.
//
// 1. FeatureVectorKMeans — the "simple way" the paper dismisses in §III-B:
//    give every server one multi-dimensional feature vector and cluster it
//    directly. Shows why incommensurable dimensions + a single weight per
//    dimension underperform per-dimension graph clustering + correlation.
// 2. ClientOnly — the main dimension alone (no secondary confirmation):
//    every main-dimension herd is reported as malicious. Shows the FP
//    blow-up that motivates correlation (§V-C1: only ~4% of main-dimension
//    ASHs are malicious).
// 3. IdsBlacklistOnly — what a deployment gets from signatures + blacklists
//    without SMASH (the "nearly 7x" comparison of §V-A2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/evaluation.h"
#include "core/pipeline.h"
#include "ids/blacklist.h"
#include "ids/signature.h"
#include "net/trace.h"
#include "whois/whois.h"

namespace smash::baseline {

struct BaselineResult {
  std::string name;
  // Groups of aggregated-server names reported as malicious campaigns.
  std::vector<std::vector<std::string>> campaigns;

  std::size_t num_servers() const;
};

// --- 1. single feature-vector k-means -------------------------------------------

struct KMeansConfig {
  std::uint32_t k = 64;           // number of clusters
  int max_iterations = 25;
  std::uint64_t seed = 42;        // centroid initialization
  // Per-dimension weights for the combined feature space (the quantity the
  // paper argues cannot be chosen well globally).
  double client_weight = 1.0;
  double file_weight = 1.0;
  double ip_weight = 1.0;
  double whois_weight = 1.0;
  // Clusters at least this dense in shared-client terms are reported.
  double report_cohesion = 0.5;
};

BaselineResult feature_vector_kmeans(const net::Trace& trace,
                                     const whois::Registry& registry,
                                     const core::SmashConfig& smash_config,
                                     const KMeansConfig& config);

// --- 2. main dimension only -------------------------------------------------------

BaselineResult client_dimension_only(const net::Trace& trace,
                                     const whois::Registry& registry,
                                     const core::SmashConfig& config);

// --- 3. IDS + blacklists only ------------------------------------------------------

BaselineResult ids_blacklist_only(const net::Trace& trace,
                                  const ids::SignatureEngine& signatures,
                                  const ids::Blacklist& blacklist);

// Scores a baseline against ground truth: how many reported servers are
// truly malicious vs benign (precision proxy), and how many of the truly
// malicious servers it reported (recall proxy).
struct BaselineScore {
  std::size_t reported = 0;
  std::size_t truly_malicious = 0;
  std::size_t benign_or_noise = 0;
  std::size_t total_malicious_in_truth = 0;

  double precision() const {
    return reported == 0 ? 0.0 : static_cast<double>(truly_malicious) / reported;
  }
  double recall() const {
    return total_malicious_in_truth == 0
               ? 0.0
               : static_cast<double>(truly_malicious) / total_malicious_in_truth;
  }
};

BaselineScore score_baseline(const BaselineResult& result,
                             const ids::GroundTruth& truth);

}  // namespace smash::baseline
