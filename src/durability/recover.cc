#include "durability/recover.h"

#include <algorithm>
#include <vector>

#include "durability/file.h"

namespace smash::durability {

std::optional<CheckpointState> load_latest_checkpoint(
    const std::string& dir, std::uint64_t* checkpoints_skipped) {
  if (checkpoints_skipped) *checkpoints_skipped = 0;
  if (!File::exists(dir)) return std::nullopt;
  std::vector<std::string> names;
  for (const auto& name : File::list_dir(dir)) {
    if (parse_checkpoint_file_name(name)) names.push_back(name);
  }
  // Zero-padded fields make lexical order == (closes, segment) order.
  for (auto it = names.rbegin(); it != names.rend(); ++it) {
    const std::string bytes = File::read_all(dir + "/" + *it);
    if (auto state = decode_checkpoint(bytes)) return state;
    if (checkpoints_skipped) ++*checkpoints_skipped;
  }
  return std::nullopt;
}

ReplayStats replay_wal(const std::string& dir, std::uint64_t from_segment,
                       std::uint64_t from_offset,
                       const std::function<void(const WalRecord&)>& apply,
                       FsyncPolicy fsync_policy) {
  ReplayStats stats;
  stats.next_segment = from_segment;
  stats.next_offset = from_offset;
  std::vector<std::uint64_t> segments;
  if (File::exists(dir)) {
    for (const auto& name : File::list_dir(dir)) {
      const auto seq = parse_segment_file_name(name);
      if (seq && *seq >= from_segment) segments.push_back(*seq);
    }
  }
  std::sort(segments.begin(), segments.end());

  if (segments.empty()) {
    // Crash after a seal rotated the log but before the next segment's
    // lazy creation — fine when the replay position is a segment start.
    if (from_offset > 0) {
      throw RecoveryError("checkpoint points into missing WAL segment " +
                          segment_file_name(from_segment));
    }
    return stats;
  }
  if (segments.front() != from_segment) {
    throw RecoveryError("WAL replay must start at " +
                        segment_file_name(from_segment) + " but oldest kept is " +
                        segment_file_name(segments.front()));
  }
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i + 1] != segments[i] + 1) {
      throw RecoveryError("WAL segment gap: " + segment_file_name(segments[i]) +
                          " is followed by " + segment_file_name(segments[i + 1]));
    }
  }

  bool last_record_was_seal = false;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const bool last = i + 1 == segments.size();
    const std::string path = dir + "/" + segment_file_name(segments[i]);
    const std::string data = File::read_all(path);
    const std::uint64_t start = i == 0 ? from_offset : 0;
    if (start > data.size()) {
      throw RecoveryError(path + " is shorter than the checkpoint position");
    }
    const ScanResult scan =
        scan_records(data, start, [&](std::string_view payload) {
          auto record = decode_record(payload);
          if (!record) {
            // CRC-valid bytes that do not decode were never a torn write.
            throw RecoveryError("undecodable CRC-valid record in " + path);
          }
          apply(*record);
          last_record_was_seal = std::holds_alternative<SealMarker>(*record);
          if (!last_record_was_seal) ++stats.events_replayed;
          return true;
        });
    ++stats.segments_scanned;
    stats.records_replayed += scan.records;
    stats.bytes_replayed += scan.valid_bytes - start;
    if (!scan.clean) {
      if (!last) {
        throw RecoveryError("corrupt record (" + scan.error + ") in " + path +
                            " with later segments present");
      }
      stats.bytes_truncated = data.size() - scan.valid_bytes;
      File::truncate_file(path, scan.valid_bytes);
      // The truncation must be durable before the resumed journal appends
      // at this offset: otherwise a machine crash could keep the old torn
      // bytes on disk under newer, partially flushed appends, leaving only
      // CRC framing to re-detect the mix.
      if (fsync_policy != FsyncPolicy::kOff) {
        File::sync_path(path);
        File::sync_dir(dir);
      }
    }
    if (last) {
      if (last_record_was_seal && scan.records > 0) {
        // The log ends on a seal: the segment is complete and the next
        // append belongs to the (lazily created) next segment.
        stats.next_segment = segments[i] + 1;
        stats.next_offset = 0;
      } else {
        stats.next_segment = segments[i];
        stats.next_offset = scan.valid_bytes;
      }
    }
  }
  return stats;
}

}  // namespace smash::durability
