// Incremental ("delta") re-mining across stream closes (ROADMAP item #1).
//
// The stream engine re-mines the whole window on every epoch close, yet a
// close changes only the epoch that arrived and — on a slide — the epochs
// that fell out. The DeltaMiner keeps per-dimension state from the previous
// close and recomputes only what changed:
//
//   stream close ── WindowDelta (epochs added/evicted, changed-2LD hint)
//        │
//        ▼  per dimension (canonical name-sorted node order)
//   change detection: translate window keys to *stable* ids that survive
//        │            window re-interning, diff against the cached sets
//        │            (the hint skips translation for untouched 2LDs)
//        ▼
//   delta join: probe only the changed nodes against the window's postings
//        │      index (graph::cooccurrence_join_delta)
//        ▼
//   edge merge: cached edges whose endpoints are both unchanged are carried
//        │      over verbatim; probed pairs are re-weighted and merged in
//        ▼
//   partition: the cached Louvain partition is reused iff the merged graph
//              is bitwise identical to the cached one; otherwise
//              louvain_refined re-runs (or, opt-in, warm-start repair)
//
// Identity contract: with SmashConfig::delta_approximate_louvain off, the
// mined ashes and every identity-relevant stat (louvain_stats, the
// postings-cap skip counters) are byte-identical to a from-scratch mine of
// the same window, for every thread count — enforced by the
// incremental-vs-full differential tests and the stream fuzzer. Full-mine
// fallbacks (first close, post-recovery, postings-cap eligibility change,
// changed fraction above SmashConfig::delta_max_changed_fraction,
// bounded-memory join budget) are decided per dimension and reported in
// DeltaStats, never silent.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/dimensions.h"
#include "core/preprocess.h"
#include "core/smash_config.h"
#include "graph/graph.h"
#include "util/interner.h"
#include "whois/whois.h"

namespace smash::core {

// Counters of one incremental mine, surfaced through SmashResult onto every
// DetectionSnapshot (like Join/LouvainStats). Excluded from the snapshot
// digest and from the incremental-vs-full identity comparison — the two
// paths legitimately differ here; that is the point of the counters.
struct DeltaStats {
  bool enabled = false;    // result came from SmashPipeline::run_incremental
  bool attempted = false;  // caches from a previously mined window existed
  std::uint32_t epochs_added = 0;    // epochs new since the last mined window
  std::uint32_t epochs_evicted = 0;  // epochs slid out since the last mined window
  std::uint32_t dims_delta = 0;      // dimensions mined via the delta join
  std::uint32_t dims_full = 0;       // dimensions fully re-mined
  std::uint32_t dims_partition_reused = 0;  // cached Louvain partitions reused
  std::size_t changed_items = 0;   // changed canonical nodes, summed over dims
  std::size_t total_items = 0;     // canonical nodes, summed over dims
  std::size_t probed_items = 0;    // nodes probed by the delta joins
  std::size_t rescored_pairs = 0;  // pairs re-counted by the delta joins
  std::size_t reused_pairs = 0;    // cached edges carried over un-probed
  std::size_t repaired_nodes = 0;  // warm-start Louvain: nodes moved (approx mode)
  std::size_t repair_sweeps = 0;   // warm-start Louvain: repair rounds (approx mode)
  // Full-mine fallback reasons, counted per dimension:
  std::uint32_t fallback_no_state = 0;  // no cache (first close, post-recovery)
  std::uint32_t fallback_changed_fraction = 0;  // over delta_max_changed_fraction
  std::uint32_t fallback_cap_change = 0;  // a key crossed the postings cap
  std::uint32_t fallback_budget = 0;      // bounded-memory join configured

  std::uint32_t full_fallbacks() const noexcept {
    return fallback_no_state + fallback_changed_fraction + fallback_cap_change +
           fallback_budget;
  }

  friend bool operator==(const DeltaStats&, const DeltaStats&) = default;
};

// What the stream engine knows changed between the previously *mined*
// window and the one being closed now (not necessarily adjacent windows:
// coalesced async closes skip intermediate ones).
struct WindowDelta {
  std::uint32_t epochs_added = 0;
  std::uint32_t epochs_evicted = 0;
  // Sorted unique 2LD names seen in the added/evicted epochs: a sound
  // over-approximation of the servers whose *window profiles* changed — a
  // 2LD absent from every added/evicted epoch contributed byte-identical
  // events to both windows, so its client/ip/param key sets are unchanged.
  // Dimensions whose keys couple servers to each other (file classes: one
  // server's new file can merge another server's classes) or to
  // out-of-window state (whois records) ignore the hint and always diff
  // their translated keys.
  std::vector<std::string> changed_2lds;
  // No previously mined window to diff against: every node counts as
  // changed and no cache exists, so every dimension full-mines.
  bool unknown = true;
};

// Stateful incremental miner. One instance per mining context — the stream
// engine owns one and calls it from whichever thread mines (the ingest
// thread in sync mode, the miner thread in async mode); it is not
// internally synchronized.
class DeltaMiner {
 public:
  // Mines every dimension of `pre` (kept-space results, same shape and —
  // approximate mode aside — same bytes as mine_all_dimensions) using the
  // cached state where the delta allows. `window_clients` / `window_ips`
  // are the window interners the profiles' key ids refer to. The cache is
  // committed only after every dimension succeeded, so a throw leaves the
  // previous state intact — but callers should reset() on error anyway:
  // the window that failed to mine is gone, and the stale cache would
  // disagree with the caller's notion of the last mined window.
  std::vector<DimensionAshes> mine(const PreprocessResult& pre,
                                   const whois::Registry& registry,
                                   const util::Interner& window_clients,
                                   const util::Interner& window_ips,
                                   const WindowDelta& delta,
                                   const SmashConfig& config,
                                   DeltaStats& stats);

  // Drops all cached state (recovery, error paths): the next mine()
  // transparently full-mines every dimension and rebuilds the caches.
  void reset();

 private:
  struct DimCache {
    bool valid = false;
    // Per canonical node: its window keys translated to stable ids, sorted.
    std::vector<std::vector<std::uint32_t>> stable_keys;
    // Stable ids of keys whose postings exceeded the cap, sorted. Carried
    // pair counts depend on key *eligibility*, so any change here forces a
    // full re-mine (fallback_cap_change).
    std::vector<std::uint32_t> skipped_keys;
    // Thresholded similarity edges, canonical space, ascending (u, v).
    std::vector<graph::Edge> edges;
    // Canonical-space partition + stats (before the kept-space remap).
    DimensionAshes canonical;
  };

  DimensionAshes mine_one(Dimension dimension, const PreprocessResult& pre,
                          const whois::Registry& registry,
                          const SmashConfig& config,
                          const std::vector<std::uint32_t>& canon,
                          const std::vector<std::string_view>& cur_names,
                          const DimensionKeyNameSources& sources,
                          const WindowDelta& delta, bool have_state,
                          bool same_node_set,
                          const std::vector<std::uint32_t>& prev_of_cur,
                          const std::vector<std::uint32_t>& cur_of_prev,
                          DimCache& staged, DeltaStats& stats);

  bool valid_ = false;
  // Canonical (name-sorted) server names of the last mined window; the
  // per-dimension caches are all indexed in this order.
  std::vector<std::string> prev_names_;
  std::vector<DimCache> dims_;
  // Append-only stable key-id interners, one per dimension. They survive
  // reset(): ids only accumulate, and a stable id is a pure function of the
  // key's canonical name, so stale entries are harmless.
  std::array<util::Interner, kNumDimensions + 1> stable_;
};

}  // namespace smash::core
