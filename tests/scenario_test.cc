// Scenario-matrix generator invariants (src/synth/scenarios.h): every
// generator is deterministic from its seed, ground truth is consistent
// with the emitted stream (campaign events only inside [start_s, end_s),
// truth servers actually appear, benign labels never overlap campaign
// labels), and the boundary shapes behave (zero-duration campaigns vanish,
// campaigns that fall off the back of the sliding window are forgotten).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "dns/domain.h"
#include "stream/engine.h"
#include "synth/quality.h"
#include "synth/scenarios.h"

namespace smash {
namespace {

// Hosts an event touches (redirects touch two).
std::vector<std::string> hosts_of(const synth::StreamEvent& event) {
  if (const auto* request = std::get_if<stream::RequestEvent>(&event)) {
    return {request->host};
  }
  if (const auto* resolution = std::get_if<stream::ResolutionEvent>(&event)) {
    return {resolution->host};
  }
  const auto& redirect = std::get<stream::RedirectEvent>(event);
  return {redirect.from, redirect.to};
}

TEST(ScenarioMatrix, DeterministicFromSeed) {
  const auto a = synth::scenario_matrix(/*smoke=*/true, 7);
  const auto b = synth::scenario_matrix(/*smoke=*/true, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(a[i].scenario.name);
    EXPECT_EQ(a[i].scenario.name, b[i].scenario.name);
    EXPECT_EQ(a[i].epoch_seconds, b[i].epoch_seconds);
    EXPECT_EQ(a[i].window_epochs, b[i].window_epochs);
    ASSERT_EQ(a[i].scenario.events.size(), b[i].scenario.events.size());
    // Event-for-event equality, not just counts: the defaulted operator==
    // on the event structs compares every field.
    for (std::size_t e = 0; e < a[i].scenario.events.size(); ++e) {
      ASSERT_EQ(a[i].scenario.events[e], b[i].scenario.events[e])
          << "event " << e;
    }
    const auto& ta = a[i].scenario.truth;
    const auto& tb = b[i].scenario.truth;
    EXPECT_EQ(ta.benign_2lds, tb.benign_2lds);
    EXPECT_EQ(ta.duration_s, tb.duration_s);
    ASSERT_EQ(ta.campaigns.size(), tb.campaigns.size());
    for (std::size_t c = 0; c < ta.campaigns.size(); ++c) {
      EXPECT_EQ(ta.campaigns[c].servers, tb.campaigns[c].servers);
      EXPECT_EQ(ta.campaigns[c].start_s, tb.campaigns[c].start_s);
      EXPECT_EQ(ta.campaigns[c].end_s, tb.campaigns[c].end_s);
      EXPECT_EQ(ta.campaigns[c].bots, tb.campaigns[c].bots);
    }
  }
}

TEST(ScenarioMatrix, DifferentSeedsDiffer) {
  const auto a = synth::scenario_matrix(/*smoke=*/true, 7);
  const auto b = synth::scenario_matrix(/*smoke=*/true, 8);
  ASSERT_EQ(a.size(), b.size());
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size() && !any_difference; ++i) {
    if (a[i].scenario.events.size() != b[i].scenario.events.size()) {
      any_difference = true;
      break;
    }
    for (std::size_t e = 0; e < a[i].scenario.events.size(); ++e) {
      if (!(a[i].scenario.events[e] == b[i].scenario.events[e])) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(ScenarioMatrix, TruthIsConsistentWithTheStream) {
  for (const auto& scenario_case : synth::scenario_matrix(/*smoke=*/true)) {
    const auto& scenario = scenario_case.scenario;
    SCOPED_TRACE(scenario.name);
    const auto& truth = scenario.truth;
    ASSERT_GT(scenario.events.size(), 0u);
    EXPECT_FALSE(truth.benign_2lds.empty());

    // Events are sorted by time and never escape the stream duration.
    for (std::size_t e = 1; e < scenario.events.size(); ++e) {
      ASSERT_LE(synth::event_time(scenario.events[e - 1]),
                synth::event_time(scenario.events[e]));
    }
    EXPECT_LT(synth::event_time(scenario.events.back()), truth.duration_s);

    std::set<std::string> campaign_2lds;
    for (const auto& campaign : truth.campaigns) {
      EXPECT_LT(campaign.start_s, campaign.end_s);
      EXPECT_LE(campaign.end_s, truth.duration_s);
      EXPECT_GT(campaign.bots, 0u);
      campaign_2lds.insert(campaign.servers.begin(), campaign.servers.end());
    }

    // Benign-only labels never overlap campaign labels.
    for (const auto& label : truth.benign_2lds) {
      EXPECT_FALSE(campaign_2lds.count(label)) << label;
    }

    // Campaign events stay inside their campaign's [start_s, end_s), and
    // every truth server actually appears in the stream.
    std::set<std::string> seen;
    for (const auto& event : scenario.events) {
      const auto when = synth::event_time(event);
      for (const auto& host : hosts_of(event)) {
        const std::string label = dns::effective_2ld(host);
        if (!campaign_2lds.count(label)) continue;
        seen.insert(label);
        bool inside_some_campaign = false;
        for (const auto& campaign : truth.campaigns) {
          if (std::find(campaign.servers.begin(), campaign.servers.end(),
                        label) == campaign.servers.end()) {
            continue;
          }
          if (when >= campaign.start_s && when < campaign.end_s) {
            inside_some_campaign = true;
          }
        }
        EXPECT_TRUE(inside_some_campaign)
            << label << " touched at t=" << when
            << " outside its active interval";
      }
    }
    EXPECT_EQ(seen.size(), campaign_2lds.size())
        << "some truth servers never appear in the stream";
  }
}

TEST(ScenarioBuilder, ZeroDurationCampaignLeavesNoTruthAndNoEvents) {
  synth::ScenarioBuilder builder("zero", 11, 7200);
  synth::BenignSpec benign;
  benign.servers = 10;
  benign.clients = 10;
  benign.visits = 50;
  builder.add_benign_background(benign);
  synth::CampaignSpec campaign;
  campaign.label = "ghost";
  campaign.start_s = 3600;
  campaign.end_s = 3600;  // [t, t) is empty
  builder.add_campaign(campaign);
  const auto scenario = std::move(builder).build();
  EXPECT_TRUE(scenario.truth.campaigns.empty());
  for (const auto& event : scenario.events) {
    for (const auto& host : hosts_of(event)) {
      EXPECT_EQ(host.find("ghost"), std::string::npos) << host;
    }
  }
}

TEST(ScenarioBuilder, CampaignBeyondStreamEndIsClampedToTruth) {
  synth::ScenarioBuilder builder("clamp", 12, 7200);
  synth::CampaignSpec campaign;
  campaign.label = "tail";
  campaign.start_s = 6000;
  campaign.end_s = 1000000;  // far past the stream end
  campaign.poll_interval_s = 300;
  builder.add_campaign(campaign);
  const auto scenario = std::move(builder).build();
  ASSERT_EQ(scenario.truth.campaigns.size(), 1u);
  EXPECT_EQ(scenario.truth.campaigns[0].end_s, 7200u);
  EXPECT_LT(synth::event_time(scenario.events.back()), 7200u);
}

TEST(ScenarioBuilder, CampaignSpanningWindowEvictionIsForgotten) {
  // A campaign active early in the stream must be flagged while its epochs
  // are inside the sliding window and must vanish from the final snapshot
  // once every active epoch has been evicted.
  synth::ScenarioBuilder builder("evict", 13, 7200);
  synth::BenignSpec benign;
  benign.servers = 40;
  benign.clients = 30;
  benign.visits = 900;  // keeps every epoch non-empty so closes keep coming
  builder.add_benign_background(benign);
  synth::CampaignSpec campaign;
  campaign.label = "early";
  campaign.servers = 4;
  campaign.bots = 4;
  campaign.start_s = 600;
  campaign.end_s = 1800;
  campaign.poll_interval_s = 150;
  builder.add_campaign(campaign);
  const auto scenario = std::move(builder).build();
  ASSERT_EQ(scenario.truth.campaigns.size(), 1u);
  const auto& truth = scenario.truth.campaigns[0];

  stream::StreamConfig config;
  config.epoch_seconds = 600;
  config.window_epochs = 2;
  config.smash.idf_threshold = 100;
  const auto run = synth::run_scenario(scenario, config);
  ASSERT_FALSE(run.observations.empty());

  const auto flags_campaign = [&](const synth::DetectionObservation& o) {
    return std::any_of(truth.servers.begin(), truth.servers.end(),
                       [&](const std::string& server) {
                         return std::find(o.flagged_2lds.begin(),
                                          o.flagged_2lds.end(),
                                          server) != o.flagged_2lds.end();
                       });
  };
  EXPECT_TRUE(std::any_of(run.observations.begin(), run.observations.end(),
                          flags_campaign))
      << "campaign never detected while inside the window";
  EXPECT_FALSE(flags_campaign(run.observations.back()))
      << "campaign still flagged after its epochs left the window";
}

TEST(ScenarioMatrix, FlashCrowdPressuresPruningNotJustCorrelation) {
  // The benign-only flash crowd must form real correlated candidate groups
  // (shared clients + shared files + shared hosting) that only referrer
  // pruning discards — if this decays into "no group ever forms", the
  // scenario stops guarding the pruning stage.
  for (const auto& scenario_case : synth::scenario_matrix(/*smoke=*/true)) {
    if (scenario_case.scenario.name != "flash_crowd_benign") continue;
    const auto trace = synth::to_batch_trace(scenario_case.scenario);
    core::SmashConfig config;
    config.idf_threshold = scenario_case.idf_threshold;
    const auto result =
        core::SmashPipeline(config).run(trace, scenario_case.scenario.whois);
    EXPECT_GT(result.correlation.groups.size(), 0u);
    EXPECT_EQ(result.campaigns.size(), 0u);
    return;
  }
  FAIL() << "flash_crowd_benign missing from the matrix";
}

}  // namespace
}  // namespace smash
