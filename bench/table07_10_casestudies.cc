// Reproduces paper Tables VII-X: the Bagle, Sality, iframe-injection, and
// Zeus case studies — showing the inferred herd with member servers, URI
// files, User-Agents, and parameter patterns, as the paper's tables do.
#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "bench_common.h"

namespace {

using namespace smash;

// Locates the detected campaign with the largest overlap with the named
// truth campaign and prints a paper-style member table.
void case_study(const synth::Dataset& ds, const core::SmashResult& result,
                const std::string& truth_name, const std::string& title,
                std::size_t max_rows) {
  const ids::CampaignTruth* truth = nullptr;
  for (const auto& campaign : ds.truth.campaigns()) {
    if (campaign.name == truth_name) truth = &campaign;
  }
  if (truth == nullptr) {
    std::printf("%s: truth campaign %s missing\n", title.c_str(), truth_name.c_str());
    return;
  }
  const std::set<std::string> truth_servers(truth->servers.begin(),
                                            truth->servers.end());

  const core::Campaign* best = nullptr;
  std::size_t best_overlap = 0;
  for (const auto& campaign : result.campaigns) {
    std::size_t overlap = 0;
    for (auto member : campaign.servers) {
      overlap += truth_servers.count(result.server_name(member));
    }
    if (overlap > best_overlap) {
      best_overlap = overlap;
      best = &campaign;
    }
  }

  util::Table table(title);
  table.set_header({"Server", "URI files", "UserAgent", "Param patterns"});
  if (best == nullptr) {
    std::printf("%s\n  NOT DETECTED (expected for sub-threshold herds)\n\n",
                title.c_str());
    return;
  }
  std::size_t rows = 0;
  for (auto member : best->servers) {
    if (rows++ >= max_rows) break;
    const auto& profile = result.server_profile(member);
    std::string files;
    std::size_t shown = 0;
    for (auto file : profile.files) {
      if (shown++ >= 2) { files += ",..."; break; }
      if (!files.empty()) files += ",";
      const auto& name = result.pre.agg.files().name(file);
      files += name.size() > 24 ? name.substr(0, 21) + "..." : name;
    }
    std::string ua = profile.user_agents.empty() ? "-" : *profile.user_agents.begin();
    if (ua.size() > 28) ua = ua.substr(0, 25) + "...";
    std::string params =
        profile.param_patterns.empty() ? "na" : *profile.param_patterns.begin();
    if (params.size() > 20) params = params.substr(0, 17) + "...";
    table.add_row({result.server_name(member), files, ua, params});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("  herd size %zu (showing %zu); overlap with ground truth %zu/%zu\n\n",
              best->servers.size(), std::min(max_rows, best->servers.size()),
              best_overlap, truth->servers.size());
}

}  // namespace

int main() {
  const auto& ds = bench::dataset("2011day");
  // Case studies run at thresh 0.5 so the small multi-dimension herds (the
  // Sality C&C pair, the drop zone) are visible, as discussed in
  // EXPERIMENTS.md; the flagship tiers are detected at 0.8 as well.
  const auto result = bench::run_at_threshold(ds, 0.5);

  case_study(ds, result, "bagle-0",
             "Table VII: Bagle botnet (download tier + C&C tier, one herd)", 8);
  case_study(ds, result, "sality-0",
             "Table VIII: Sality botnet (C&C pair + compromised download sites)", 8);
  case_study(ds, result, "iframe-0",
             "Table IX: iframe injection attack (WordPress sm3.php uploads)", 6);
  case_study(ds, result, "zeus-0",
             "Table X: Zeus botnet (DGA flux siblings serving login.php)", 8);
  std::puts("Shape targets (paper): Bagle merges 40 download + 54 C&C servers");
  std::puts("  via the shared bot clients; Zeus shows sibling cz.cc domains all");
  std::puts("  serving login.php; iframe herd is hundreds of benign sites.");
  return 0;
}
