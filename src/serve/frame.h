// Wire framing for the verdict server (docs/SERVING.md): length-prefixed
// binary frames carrying single or batched verdict lookups and their
// answers over a byte stream (TCP). The codec is transport-agnostic plain
// data in / plain data out — the server and load generator share it, and
// tests/serve_frame_test.cc round-trips it with no sockets involved.
//
// Frame layout (all integers little-endian, util/binary.h):
//
//   u32 payload_len            <= kMaxFramePayloadBytes, else the decoder
//   payload[payload_len]       hard-errors (never resynchronizes)
//
// Request payload:
//   u8  type                   kLookup | kBatch
//   u64 request_id             echoed verbatim in the response
//   u16 count                  1 for kLookup
//   count x { str host, str server_ip }   (u32-length-prefixed strings;
//                                          server_ip may be empty)
//
// Response payload:
//   u8  type                   echoes the request type
//   u64 request_id
//   u8  status                 FrameStatus (Ok | Stale | Rejected)
//   u64 snapshot_sequence      0 when no snapshot was available
//   u32 snapshot_age_ms        age of the answering snapshot at lookup time
//   u16 answered               number of lookups actually answered; may be
//                              < the request count (partial batch: the
//                              server shed mid-batch) and is 0 when the
//                              whole request was Rejected
//   answered x { u8 malicious, u32 campaign, u32 campaign_servers,
//                u64 window_requests, u32 active_epochs }
//
// FrameDecoder accumulates arbitrary byte slices (short/torn reads are the
// normal case) and yields complete payloads; a frame whose declared length
// exceeds kMaxFramePayloadBytes, or a payload that does not parse, is a
// loud terminal error — a framing bug or a hostile peer, never something
// to limp past.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace smash::serve {

// Hard ceiling on one frame's payload. Large enough for a kMaxBatchLookups
// batch of maximal hostnames, small enough that a corrupt or hostile
// length prefix cannot balloon a connection buffer.
inline constexpr std::uint32_t kMaxFramePayloadBytes = 1u << 20;  // 1 MiB
// Lookups allowed in one batch request.
inline constexpr std::uint16_t kMaxBatchLookups = 1024;

enum class FrameType : std::uint8_t {
  kLookup = 1,  // single lookup
  kBatch = 2,   // batched lookups, one answer per entry
};

// Serving status of a response (docs/SERVING.md has the semantics):
//  - kOk: answered from a snapshot within the staleness SLO (or no SLO).
//  - kStale: answered, but the snapshot's age exceeded the SLO — the data
//    is real but old; the caller decides whether old verdicts are usable.
//    Also the status before the first publication (age is unknowable).
//  - kRejected: admission control shed the request before lookup; the
//    response carries no answers.
enum class FrameStatus : std::uint8_t {
  kOk = 0,
  kStale = 1,
  kRejected = 2,
};

struct LookupKey {
  std::string host;
  std::string server_ip;  // optional; empty = host-only lookup
};

struct RequestFrame {
  FrameType type = FrameType::kLookup;
  std::uint64_t request_id = 0;
  std::vector<LookupKey> lookups;
};

// One answered lookup (the response-side mirror of VerdictAnswer's
// verdict-bearing fields).
struct AnswerEntry {
  bool malicious = false;
  std::uint32_t campaign = 0;
  std::uint32_t campaign_servers = 0;
  std::uint64_t window_requests = 0;
  std::uint32_t active_epochs = 0;
};

struct ResponseFrame {
  FrameType type = FrameType::kLookup;
  std::uint64_t request_id = 0;
  FrameStatus status = FrameStatus::kOk;
  std::uint64_t snapshot_sequence = 0;
  std::uint32_t snapshot_age_ms = 0;
  // answers.size() may be smaller than the request's lookup count: a batch
  // the server stopped answering partway (shed mid-batch) is explicit, not
  // padded. Empty when status == kRejected.
  std::vector<AnswerEntry> answers;
};

// Appends one complete frame (length prefix + payload) to `out`.
// encode_request SMASH_CHECKs the batch bounds (count >= 1, <=
// kMaxBatchLookups) — the caller owns request construction.
void encode_request(std::string& out, const RequestFrame& request);
void encode_response(std::string& out, const ResponseFrame& response);

// Parses one payload (no length prefix). Returns std::nullopt and sets
// `error` on malformed input.
std::optional<RequestFrame> decode_request(std::string_view payload,
                                           std::string* error = nullptr);
std::optional<ResponseFrame> decode_response(std::string_view payload,
                                             std::string* error = nullptr);

// Incremental frame extractor over a byte stream. feed() any-sized chunks
// as they arrive; next() hands out complete payloads in order. Once failed
// (oversized declared length), the decoder stays failed — the connection
// is unrecoverable because frame boundaries are lost.
class FrameDecoder {
 public:
  // Appends newly received bytes. No-op after a failure.
  void feed(std::string_view bytes);

  // Moves the next complete payload into `payload` and returns true;
  // returns false when no complete frame is buffered (or after failure).
  bool next(std::string& payload);

  bool failed() const noexcept { return failed_; }
  const std::string& error() const noexcept { return error_; }
  // Bytes buffered but not yet handed out (backpressure accounting).
  std::size_t buffered_bytes() const noexcept { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;  // prefix of buffer_ already handed out
  bool failed_ = false;
  std::string error_;
};

}  // namespace smash::serve
