#include "util/strings.h"

#include <cctype>
#include <cstdio>

namespace smash::util {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_nonempty(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  for (auto piece : split(s, sep)) {
    if (!piece.empty()) out.push_back(piece);
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string format_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string with_commas(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace smash::util
