// cooccurrence_join_delta: the probe-side incremental join the DeltaMiner
// re-scores changed items with. The contract under test: every pair with a
// probed endpoint is emitted with the exact count the full join would give
// it (cap and min_shared included), pairs between two un-probed items are
// never enumerated, and the probed + carried union reconstructs the full
// join byte-for-byte.
#include "graph/similarity_join.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace smash::graph {
namespace {

using util::IdSet;

std::vector<IdSet> random_items(util::Rng& rng, std::uint32_t num_items,
                                std::uint32_t key_space) {
  std::vector<IdSet> items(num_items);
  for (auto& item : items) {
    const std::uint64_t keys = rng.uniform(8);
    for (std::uint64_t k = 0; k < keys; ++k) {
      item.insert(static_cast<std::uint32_t>(rng.uniform(key_space)));
    }
    item.normalize();
  }
  return items;
}

// Pairs of `full` with at least one endpoint in `probe` — what the delta
// join must emit, nothing more, nothing less.
std::vector<CooccurrencePair> probed_subset(
    const std::vector<CooccurrencePair>& full,
    const std::vector<std::uint32_t>& probe) {
  std::vector<CooccurrencePair> out;
  for (const auto& pair : full) {
    if (std::binary_search(probe.begin(), probe.end(), pair.a) ||
        std::binary_search(probe.begin(), probe.end(), pair.b)) {
      out.push_back(pair);
    }
  }
  return out;
}

TEST(DeltaJoin, AllItemsProbedEqualsFullJoin) {
  util::Rng rng(7);
  const auto items = random_items(rng, 40, 30);
  std::vector<std::uint32_t> all(items.size());
  for (std::uint32_t i = 0; i < all.size(); ++i) all[i] = i;

  JoinStats full_stats;
  const auto full = cooccurrence_join(items, 2, {}, &full_stats);
  JoinStats delta_stats;
  const auto delta =
      cooccurrence_join_delta(items, all, 2, {}, /*num_threads=*/1, &delta_stats);
  EXPECT_EQ(delta, full);
  // The delta join indexes the whole window; its index-shape stats must
  // describe the same single-pass index the full join built.
  EXPECT_EQ(delta_stats.num_keys, full_stats.num_keys);
  EXPECT_EQ(delta_stats.postings_entries, full_stats.postings_entries);
  EXPECT_EQ(delta_stats.skipped_keys, full_stats.skipped_keys);
  EXPECT_EQ(delta_stats.shard_passes, 1u);
}

TEST(DeltaJoin, RandomProbeSubsetsMatchFullJoinRestriction) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    util::Rng rng(seed);
    const auto items = random_items(rng, 50, 25);
    const auto full = cooccurrence_join(items, 1);

    std::vector<std::uint32_t> probe;
    for (std::uint32_t i = 0; i < items.size(); ++i) {
      if (rng.bernoulli(0.3)) probe.push_back(i);
    }
    const auto delta = cooccurrence_join_delta(items, probe, 1, {}, 1);
    EXPECT_EQ(delta, probed_subset(full, probe));
  }
}

TEST(DeltaJoin, CapAppliesToFullPostingsLength) {
  // Key 7 is shared by every item; with a cap of 3 the FULL postings
  // length (5) disqualifies it even though only 2 items are probed —
  // counts must match the capped full join, not a capped probe view.
  std::vector<IdSet> items;
  for (std::uint32_t i = 0; i < 5; ++i) {
    items.emplace_back(std::vector<std::uint32_t>{7, 100 + i, 100 + (i + 1) % 5});
  }
  JoinOptions options;
  options.max_postings_length = 3;
  const auto full = cooccurrence_join(items, 1, options);
  const std::vector<std::uint32_t> probe{0, 1};
  const auto delta = cooccurrence_join_delta(items, probe, 1, options, 1);
  EXPECT_EQ(delta, probed_subset(full, probe));
}

TEST(DeltaJoin, EmptyProbeEmitsNothing) {
  util::Rng rng(11);
  const auto items = random_items(rng, 20, 10);
  JoinStats stats;
  const auto delta = cooccurrence_join_delta(items, {}, 1, {}, 1, &stats);
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(stats.emitted_pairs, 0u);
  // The index is still built (its shape stats feed JoinStats reporting).
  EXPECT_EQ(stats.shard_passes, 1u);
}

TEST(DeltaJoin, ParallelMatchesSerial) {
  util::Rng rng(13);
  const auto items = random_items(rng, 400, 60);
  std::vector<std::uint32_t> probe;
  for (std::uint32_t i = 0; i < items.size(); ++i) {
    if (rng.bernoulli(0.4)) probe.push_back(i);
  }
  const auto serial = cooccurrence_join_delta(items, probe, 1, {}, 1);
  const auto parallel = cooccurrence_join_delta(items, probe, 1, {}, 4);
  EXPECT_EQ(parallel, serial);
}

TEST(DeltaJoin, ValidatesArguments) {
  std::vector<IdSet> items(3);
  for (auto& item : items) item.normalize();
  const std::vector<std::uint32_t> first{0};
  EXPECT_THROW(cooccurrence_join_delta(items, first, 0, {}, 1),
               std::invalid_argument);  // min_shared == 0
  const std::vector<std::uint32_t> descending{2, 1};
  EXPECT_THROW(cooccurrence_join_delta(items, descending, 1, {}, 1),
               std::invalid_argument);  // not ascending
  const std::vector<std::uint32_t> out_of_range{3};
  EXPECT_THROW(cooccurrence_join_delta(items, out_of_range, 1, {}, 1),
               std::invalid_argument);  // item id past the end
}

}  // namespace
}  // namespace smash::graph
