// Evaluation harness (paper §IV-B, §V-A): scores SMASH's inferences
// against the IDS (two signature vintages), the blacklists, and the
// liveness oracle, reproducing the row taxonomy of Tables II/III/V/VI/XI/
// XII. Ground truth is consulted only for *scoring* (as the paper does);
// detection never sees it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "ids/blacklist.h"
#include "ids/ground_truth.h"
#include "ids/signature.h"

namespace smash::core {

enum class CampaignVerdict : std::uint8_t {
  kIds2012Total,
  kIds2013Total,
  kIds2012Partial,
  kIds2013Partial,
  kBlacklistPartial,
  kSuspicious,
  kFalsePositive,
};

enum class ServerVerdict : std::uint8_t {
  kIds2012,
  kIds2013,
  kBlacklist,
  kNewServer,  // unconfirmed but pattern-matching a confirmed herd member
  kSuspicious,
  kFalsePositive,
};

// Table II-shaped counts.
struct CampaignCounts {
  int smash = 0;
  int ids2012_total = 0;
  int ids2013_total = 0;
  int ids2012_partial = 0;
  int ids2013_partial = 0;
  int blacklist_partial = 0;
  int suspicious = 0;
  int false_positives = 0;
  int fp_updated = 0;  // excluding the torrent/TeamViewer noise herds
};

// Table III-shaped counts.
struct ServerCounts {
  int smash = 0;
  int ids2012 = 0;
  int ids2013 = 0;
  int blacklist = 0;
  int new_servers = 0;
  int suspicious = 0;
  int false_positives = 0;
  int fp_updated = 0;
};

struct CampaignEvaluation {
  const Campaign* campaign = nullptr;
  CampaignVerdict verdict = CampaignVerdict::kFalsePositive;
  bool noisy = false;  // majority of members are torrent/TeamViewer noise
};

struct FalseNegativeGroup {
  std::string threat_id;
  std::vector<std::string> missed_servers;  // IDS-labeled, not detected
};

struct EvaluationResult {
  std::vector<CampaignEvaluation> campaigns;
  CampaignCounts campaign_counts;
  ServerCounts server_counts;

  // Ground-truth diagnostics unavailable to the paper's authors but useful
  // for testing: how many detected servers are truly malicious / noise /
  // plain benign.
  int detected_truly_malicious = 0;
  int detected_noise = 0;
  int detected_benign = 0;

  // FP servers over all (aggregated) servers in the trace — the paper's
  // "false positive rate of only 0.064%".
  double fp_rate = 0.0;
  double fp_rate_updated = 0.0;

  // IDS-labeled servers SMASH missed, grouped by threat id (§V-A2).
  std::vector<FalseNegativeGroup> false_negatives;
};

class Evaluator {
 public:
  Evaluator(const net::Trace& trace, const ids::SignatureEngine& signatures,
            const ids::Blacklist& blacklist, const ids::GroundTruth& truth);

  // Evaluates the campaigns whose involved-client count matches
  // `single_client` (paper: main tables use >= 2; Appendix C uses 1).
  EvaluationResult evaluate(const SmashResult& result, bool single_client) const;

  // Per-server verdict within its campaign (exposed for case-study benches).
  ServerVerdict classify_server(const SmashResult& result, std::uint32_t kept_idx,
                                const Campaign& campaign,
                                CampaignVerdict campaign_verdict) const;

  bool ids2012_labeled(const std::string& server_2ld) const;
  bool ids2013_labeled(const std::string& server_2ld) const;  // 2013-only
  bool blacklist_confirmed(const std::string& server_2ld) const;

 private:
  CampaignVerdict classify_campaign(const SmashResult& result,
                                    const Campaign& campaign) const;

  const ids::Blacklist& blacklist_;
  const ids::GroundTruth& truth_;
  ids::IdsLabels labels2012_;
  ids::IdsLabels labels2013_;
};

}  // namespace smash::core
