// Open-loop load generator for the verdict server (docs/SERVING.md): a
// VerdictServer fronts a StreamEngine that keeps ingesting, mining and
// publishing a looping day-scale scenario underneath while staged offered
// load — static, linear ramp, oscillating/diurnal sinusoid (modeled on
// heyp-agents' oscillating workload stages), and a deliberate overload
// burst — is fired at it over real TCP.
//
// Open-loop means requests are sent on a schedule derived from the offered
// rate, never gated on responses: when the sender falls behind it bursts to
// catch up, and every latency is measured from the request's *scheduled*
// send time, so server-side queueing shows up as latency instead of being
// coordinated away (no coordinated omission). Per stage the bench reports
// offered vs achieved QPS, p50/p99/p999 latency, and the explicit
// outcome counts (ok / stale / rejected / partial batches).
//
// Usage: loadgen [BENCH_serve.json] [--smoke] [--stages a,b,...]
//                [--obs-dump <dir>]
//   --smoke: seconds-long stages for CI (same code paths, small rates).
//   --stages: comma-separated subset of static,ramp,oscillating,overload,
//             stale_probe (default: all, in that order).
//   --obs-dump: write the combined engine+serve registry (metrics.prom /
//               metrics.json) after the run, for tools/smash_stats.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <variant>
#include <vector>

#include "bench_common.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/server.h"
#include "stream/engine.h"
#include "synth/stream_gen.h"

namespace {

using Clock = std::chrono::steady_clock;
using smash::serve::FrameStatus;

constexpr double kPi = 3.14159265358979323846;

smash::synth::StreamScenarioConfig scenario_config() {
  smash::synth::StreamScenarioConfig config;
  config.seed = 2015;
  config.duration_s = 6 * 600;
  config.benign_servers = 80;
  config.benign_clients = 60;
  config.benign_visits = 800;
  config.popular_servers = 2;
  config.popular_clients = 70;
  config.campaigns = 2;
  config.campaign_servers = 5;
  config.campaign_bots = 5;
  config.poll_interval_s = 120;
  config.active_fraction = 0.5;
  return config;
}

// Replays the scenario in laps, shifting each lap's timestamps by a full
// scenario duration so ingest time stays monotone and epochs keep closing
// (and snapshots keep publishing) for as long as the stages run.
void feeder_loop(smash::stream::StreamEngine& engine,
                 const smash::synth::StreamScenario& scenario,
                 const std::atomic<bool>& stop,
                 std::atomic<std::uint64_t>& laps) {
  for (std::uint64_t lap = 0; !stop.load(std::memory_order_relaxed); ++lap) {
    std::size_t i = 0;
    for (const auto& event : scenario.events) {
      if (stop.load(std::memory_order_relaxed)) return;
      std::visit(
          [&](auto e) {
            e.time_s += lap * scenario.duration_s;
            engine.ingest(e);
          },
          event);
      // Yield regularly: the point is publications *during* the stages,
      // not ingest throughput — leave the core to the serving path.
      if (++i % 200 == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    laps.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

struct StageSpec {
  std::string name;
  double duration_s = 0.0;
  double qps_begin = 0.0;
  double qps_end = 0.0;  // == qps_begin for static
  enum class Shape { kStatic, kRamp, kOscillating } shape = Shape::kStatic;
  double cycles = 4.0;  // oscillating only
  // Overload: the receiver drains far slower than the offered rate while
  // requests are still being sent, so responses pile up against the
  // connection's pending bound and the shedding path (kRejected) engages.
  // The receiver never stops entirely — its slow progress keeps the
  // socket-buffer chain from wedging the blocking sender.
  bool slow_consumer = false;
};

// Offered rate at stage-relative time t.
double rate_at(const StageSpec& stage, double t) {
  const double f = stage.duration_s > 0.0 ? t / stage.duration_s : 0.0;
  switch (stage.shape) {
    case StageSpec::Shape::kStatic:
      return stage.qps_begin;
    case StageSpec::Shape::kRamp:
      return stage.qps_begin + (stage.qps_end - stage.qps_begin) * f;
    case StageSpec::Shape::kOscillating: {
      // heyp-agents GenWorkloadStagesOscillating: min + half-range lifted
      // by a sinusoid over `cycles` full periods.
      const double half = (stage.qps_end - stage.qps_begin) / 2.0;
      return stage.qps_begin + half +
             half * std::sin(f * stage.cycles * 2.0 * kPi);
    }
  }
  return stage.qps_begin;
}

struct StageResult {
  std::uint64_t sent = 0, received = 0;
  std::uint64_t ok = 0, stale = 0, rejected = 0;
  double duration_ms = 0.0;
  double offered_qps_mean = 0.0;
  std::vector<double> latency_us;  // per response, from scheduled send

  double percentile(double q) const {
    if (latency_us.empty()) return 0.0;
    std::vector<double> sorted = latency_us;
    std::sort(sorted.begin(), sorted.end());
    const auto idx = static_cast<std::size_t>(q * sorted.size());
    return sorted[std::min(idx, sorted.size() - 1)];
  }
};

// Runs one stage over a fresh connection. Sender and receiver share the
// socket: the sender paces scheduled sends (bursting when behind), the
// receiver matches responses back to scheduled send times by request_id.
StageResult run_stage(const StageSpec& stage, std::uint16_t port,
                      const std::vector<std::string>& hosts) {
  smash::serve::BlockingClient client("127.0.0.1", port);
  StageResult result;

  // Upper bound on requests (peak rate * duration, plus slack) so the
  // schedule array is indexable by request_id without locking.
  const double peak = std::max(stage.qps_begin, stage.qps_end);
  const auto capacity =
      static_cast<std::size_t>(peak * stage.duration_s * 1.1) + 16;
  std::vector<Clock::time_point> scheduled(capacity);

  std::atomic<std::uint64_t> sent{0};
  std::atomic<bool> sender_done{false};

  std::thread receiver([&] {
    for (;;) {
      if (stage.slow_consumer && !sender_done.load(std::memory_order_acquire)) {
        // Drain at ~2k/s against a much larger offered rate.
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
      const std::uint64_t target = sent.load(std::memory_order_acquire);
      if (sender_done.load(std::memory_order_acquire) &&
          result.received >= target) {
        break;
      }
      if (result.received >= target) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        continue;
      }
      auto response = client.receive();
      if (!response.has_value()) {
        std::fprintf(stderr, "loadgen: connection lost mid-stage %s\n",
                     stage.name.c_str());
        return;
      }
      ++result.received;
      switch (response->status) {
        case FrameStatus::kOk:
          ++result.ok;
          break;
        case FrameStatus::kStale:
          ++result.stale;
          break;
        case FrameStatus::kRejected:
          ++result.rejected;
          break;
      }
      const auto id = static_cast<std::size_t>(response->request_id);
      if (id < capacity) {
        result.latency_us.push_back(
            std::chrono::duration<double, std::micro>(Clock::now() -
                                                      scheduled[id])
                .count());
      }
    }
  });

  const auto start = Clock::now();
  double virt_s = 0.0;
  double rate_sum = 0.0;
  std::uint64_t id = 0;
  std::size_t host_i = 0;
  while (virt_s < stage.duration_s && id < capacity) {
    const double rate = std::max(1.0, rate_at(stage, virt_s));
    rate_sum += rate;
    const auto deadline =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(virt_s));
    // Behind schedule? No sleep — send immediately (burst catch-up).
    std::this_thread::sleep_until(deadline);
    scheduled[id] = deadline;
    smash::serve::RequestFrame request;
    request.type = smash::serve::FrameType::kLookup;
    request.request_id = id;
    smash::serve::LookupKey key;
    key.host = hosts[host_i++ % hosts.size()];
    request.lookups.push_back(key);
    client.send(request);
    sent.store(++id, std::memory_order_release);
    virt_s += 1.0 / rate;
  }
  sender_done.store(true, std::memory_order_release);
  receiver.join();
  result.sent = id;
  result.duration_ms = std::chrono::duration<double, std::milli>(
                           Clock::now() - start)
                           .count();
  result.offered_qps_mean = id > 0 ? rate_sum / static_cast<double>(id) : 0.0;
  return result;
}

std::uint64_t counter_of(const smash::obs::MetricsSnapshot& snapshot,
                         std::string_view name) {
  const auto* c = snapshot.counter(name);
  return c ? c->value : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_serve.json";
  std::string obs_dump_dir;
  std::string stage_filter;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--stages") == 0 && i + 1 < argc) {
      stage_filter = argv[++i];
    } else if (std::strcmp(argv[i], "--obs-dump") == 0 && i + 1 < argc) {
      obs_dump_dir = argv[++i];
    } else {
      out_path = argv[i];
    }
  }
  const auto wants = [&](const std::string& name) {
    if (stage_filter.empty()) return true;
    // Substring match over the comma-separated list is unambiguous here:
    // no stage name contains another.
    return stage_filter.find(name) != std::string::npos;
  };

  const auto scenario = smash::synth::generate_stream(scenario_config());
  const auto registry = std::make_shared<smash::obs::Registry>();

  smash::stream::StreamConfig stream_config;
  stream_config.epoch_seconds = 600;
  stream_config.window_epochs = 6;
  stream_config.async_mining = true;
  stream_config.smash.idf_threshold = 50;
  stream_config.metrics = registry;
  smash::stream::StreamEngine engine(stream_config, scenario.whois);

  smash::serve::ServeConfig serve_config;
  // Snapshot-staleness SLO: with the feeder looping, publications land
  // every few hundred ms and answers stay kOk; the stale_probe stage stops
  // the feeder and holds the SLO to flipping answers to kStale.
  serve_config.stale_after_ms = 2000.0;
  // Small enough bounds that the overload stage's un-drained responses
  // cross them at bench scale (see ServeConfig::sndbuf_bytes).
  serve_config.sndbuf_bytes = 4096;
  serve_config.max_pending_response_bytes = 32 * 1024;
  serve_config.metrics = registry;
  smash::serve::VerdictServer server(engine.slot(), serve_config);

  std::atomic<bool> stop_feeder{false};
  std::atomic<std::uint64_t> laps{0};
  std::thread feeder([&] { feeder_loop(engine, scenario, stop_feeder, laps); });

  // Serve nothing before the first snapshot: wait for publication #1.
  while (engine.snapshots_published() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Lookup mix: campaign servers (hits), benign and unknown hosts.
  std::vector<std::string> hosts;
  for (const auto& campaign : scenario.campaigns) {
    hosts.insert(hosts.end(), campaign.servers.begin(),
                 campaign.servers.end());
  }
  for (int i = 0; i < 10; ++i) {
    hosts.push_back("site" + std::to_string(i) + ".org");
    hosts.push_back("never-seen" + std::to_string(i) + ".example");
  }

  const double scale = smoke ? 1.0 : 4.0;
  std::vector<StageSpec> stages;
  stages.push_back({"static", smoke ? 3.0 : 10.0, 2000.0 * scale,
                    2000.0 * scale, StageSpec::Shape::kStatic});
  stages.push_back({"ramp", smoke ? 3.0 : 15.0, 500.0 * scale, 4000.0 * scale,
                    StageSpec::Shape::kRamp});
  stages.push_back({"oscillating", smoke ? 4.0 : 30.0, 500.0 * scale,
                    4000.0 * scale, StageSpec::Shape::kOscillating,
                    smoke ? 2.0 : 4.0});
  // Offered load far past what the slow consumer drains: the shedding path
  // must answer with explicit kRejected frames, never queue without bound.
  // Deliberately NOT scaled up in full mode — the point is crossing the
  // pending-bytes bound, not moving more bytes.
  {
    StageSpec overload{"overload", smoke ? 1.0 : 2.0, 20000.0, 20000.0,
                       StageSpec::Shape::kStatic};
    overload.slow_consumer = true;
    stages.push_back(overload);
  }

  smash::bench::JsonReporter report("serve");
  bool shedding_seen = false;
  for (const auto& stage : stages) {
    if (!wants(stage.name)) continue;
    const StageResult r = run_stage(stage, server.port(), hosts);
    if (r.received < r.sent) {
      std::fprintf(stderr, "loadgen: stage %s lost %llu responses\n",
                   stage.name.c_str(),
                   static_cast<unsigned long long>(r.sent - r.received));
      return 1;
    }
    shedding_seen = shedding_seen || r.rejected > 0 || r.stale > 0;
    const double achieved =
        r.duration_ms > 0.0
            ? static_cast<double>(r.received) / (r.duration_ms / 1e3)
            : 0.0;
    report.add("serve/" + stage.name, r.duration_ms,
               {{"offered_qps", r.offered_qps_mean},
                {"achieved_qps", achieved},
                {"sent", static_cast<double>(r.sent)},
                {"received", static_cast<double>(r.received)},
                {"ok", static_cast<double>(r.ok)},
                {"stale", static_cast<double>(r.stale)},
                {"rejected", static_cast<double>(r.rejected)},
                {"p50_us", r.percentile(0.50)},
                {"p99_us", r.percentile(0.99)},
                {"p999_us", r.percentile(0.999)}});
    std::printf(
        "%-12s offered %7.0f qps  achieved %7.0f qps  p50 %8.1f us  "
        "p99 %9.1f us  p999 %9.1f us  (%llu ok, %llu stale, %llu rejected)\n",
        stage.name.c_str(), r.offered_qps_mean, achieved, r.percentile(0.50),
        r.percentile(0.99), r.percentile(0.999),
        static_cast<unsigned long long>(r.ok),
        static_cast<unsigned long long>(r.stale),
        static_cast<unsigned long long>(r.rejected));
  }

  // Staleness probe: stop the feeder, outwait the SLO, and every answer
  // must flip to kStale — mining that has fallen behind is visible, never
  // silently served as fresh.
  if (wants("stale_probe")) {
    stop_feeder.store(true);
    feeder.join();
    engine.finish();
    std::this_thread::sleep_for(std::chrono::milliseconds(
        static_cast<int>(serve_config.stale_after_ms) + 200));
    StageSpec probe{"stale_probe", 0.5, 400.0, 400.0,
                    StageSpec::Shape::kStatic};
    const StageResult r = run_stage(probe, server.port(), hosts);
    shedding_seen = shedding_seen || r.stale > 0;
    if (r.stale != r.received) {
      std::fprintf(stderr,
                   "loadgen: stalled mining must answer kStale (%llu of %llu)\n",
                   static_cast<unsigned long long>(r.stale),
                   static_cast<unsigned long long>(r.received));
      return 1;
    }
    report.add("serve/stale_probe", r.duration_ms,
               {{"offered_qps", r.offered_qps_mean},
                {"sent", static_cast<double>(r.sent)},
                {"received", static_cast<double>(r.received)},
                {"ok", static_cast<double>(r.ok)},
                {"stale", static_cast<double>(r.stale)},
                {"rejected", static_cast<double>(r.rejected)},
                {"p50_us", r.percentile(0.50)},
                {"p99_us", r.percentile(0.99)},
                {"p999_us", r.percentile(0.999)}});
    std::printf("stale_probe  %llu/%llu answers kStale after the SLO\n",
                static_cast<unsigned long long>(r.stale),
                static_cast<unsigned long long>(r.received));
  } else {
    stop_feeder.store(true);
    feeder.join();
    engine.finish();
  }

  if (!shedding_seen && stage_filter.empty()) {
    std::fprintf(stderr,
                 "loadgen: no stage shed explicitly (rejected/stale all 0)\n");
    return 1;
  }

  // The combined registry, summarized into the report (and optionally
  // dumped for tools/smash_stats): the serving path's own account of what
  // the stages did to it.
  const auto metrics = registry->snapshot();
  report.add("serve/metrics_summary", 0.0,
             {{"accepted_total",
               static_cast<double>(counter_of(metrics, "serve.accepted_total"))},
              {"rejected_total",
               static_cast<double>(counter_of(metrics, "serve.rejected_total"))},
              {"stale_total",
               static_cast<double>(counter_of(metrics, "serve.stale_total"))},
              {"responses_total",
               static_cast<double>(counter_of(metrics, "serve.responses_total"))},
              {"partial_batches_total",
               static_cast<double>(
                   counter_of(metrics, "serve.partial_batches_total"))},
              {"connections_opened_total",
               static_cast<double>(
                   counter_of(metrics, "serve.connections_opened_total"))},
              {"snapshots_published",
               static_cast<double>(engine.snapshots_published())},
              {"feeder_laps", static_cast<double>(laps.load())}});

  if (!obs_dump_dir.empty()) {
    std::filesystem::create_directories(obs_dump_dir);
    std::ofstream prom(obs_dump_dir + "/metrics.prom");
    prom << smash::obs::render_prometheus(metrics);
    std::ofstream json(obs_dump_dir + "/metrics.json");
    json << smash::obs::render_json(metrics) << "\n";
  }

  if (!report.write(out_path)) return 1;
  std::printf("wrote %s (%llu snapshots published under load, %llu laps)\n",
              out_path.c_str(),
              static_cast<unsigned long long>(engine.snapshots_published()),
              static_cast<unsigned long long>(laps.load()));
  return 0;
}
