// Sparse similarity join via inverted indexing.
//
// The paper notes (§VI, Overhead) that naive pairwise similarity is O(N^2)
// and points to sparse matrix multiplication as the fix. The equivalent
// index-based formulation: for item i with key set K_i, the co-occurrence
// count |K_i ∩ K_j| for every j sharing at least one key is obtained by
// walking key -> item postings lists. Pairs sharing no key (similarity 0
// under eqs. 1/8) are never materialized.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/id_set.h"

namespace smash::graph {

struct CooccurrencePair {
  std::uint32_t a = 0;  // a < b
  std::uint32_t b = 0;
  std::uint32_t shared_keys = 0;  // |K_a ∩ K_b|
};

struct JoinOptions {
  // Postings lists longer than this are skipped when enumerating pairs: a
  // key shared by k items contributes k(k-1)/2 pairs, so one pathological
  // key (e.g. a crawler client contacting everything) can blow up the join.
  // Skipped keys still count toward exact similarity? No — see note below.
  //
  // NOTE: skipping a key UNDERCOUNTS shared_keys for the affected pairs;
  // SMASH's preprocessing (IDF filter) is responsible for removing such
  // hubs beforehand, and the default cap is high enough to be inert on
  // realistic inputs. It exists as a safety valve only.
  std::uint32_t max_postings_length = 20000;
};

// items[i] is the (normalized) key set of item i. Returns every pair with
// shared_keys >= min_shared, each pair exactly once with a < b.
std::vector<CooccurrencePair> cooccurrence_join(
    std::span<const util::IdSet> items, std::uint32_t min_shared = 1,
    const JoinOptions& options = {});

// The bidirectional-importance similarity form shared by the paper's main
// (eq. 1) and IP (eq. 8) dimensions:
//   sim = (shared/|K_a|) * (shared/|K_b|)
double bidirectional_similarity(std::uint32_t shared, std::size_t size_a,
                                std::size_t size_b);

}  // namespace smash::graph
