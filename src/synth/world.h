// A generated world: the trace SMASH analyzes plus the ground-truth
// apparatus (whois registry, IDS signature engine, blacklists, campaign
// truth) the evaluation scores against.
#pragma once

#include <string>

#include "ids/blacklist.h"
#include "ids/ground_truth.h"
#include "ids/signature.h"
#include "net/trace.h"
#include "synth/config.h"
#include "whois/whois.h"

namespace smash::synth {

struct Dataset {
  std::string name;
  net::Trace trace;
  whois::Registry whois;
  ids::SignatureEngine signatures;
  ids::Blacklist blacklist;
  ids::GroundTruth truth;
};

// Builds the full world deterministically from config.seed.
Dataset generate_world(const WorldConfig& config);

}  // namespace smash::synth
