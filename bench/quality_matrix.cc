// Detection-quality matrix (docs/QUALITY.md): runs every scenario family
// from src/synth/scenarios.h through the StreamEngine in full-re-mine AND
// incremental-mining modes, requires their per-publication snapshot
// digests to be identical (the verdict sets must agree exactly), scores
// the publication trail against the scenario's ground truth
// (src/synth/quality.h), and enforces per-scenario floors. Writes
// BENCH_quality.json (JsonReporter shape) so detection quality is a
// tracked trajectory alongside the perf benches.
//
// Usage: quality_matrix [out.json] [--smoke]
// Exits non-zero when any scenario falls below its floor or the
// incremental engine diverges from the full one.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "stream/stream_config.h"
#include "synth/quality.h"
#include "synth/scenarios.h"
#include "util/table.h"

namespace {

using namespace smash;

stream::StreamConfig engine_config(const synth::ScenarioCase& scenario_case,
                                   bool incremental) {
  stream::StreamConfig config;
  config.epoch_seconds = scenario_case.epoch_seconds;
  config.window_epochs = scenario_case.window_epochs;
  config.smash.idf_threshold = scenario_case.idf_threshold;
  if (incremental) {
    config.incremental_mining = true;
    config.reuse_shard_preprocess = true;
  }
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_quality.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  auto cases = synth::scenario_matrix(smoke);
  bench::JsonReporter report("quality_matrix");
  util::Table table(std::string("Detection quality matrix (") +
                    (smoke ? "smoke" : "full") + ")");
  table.set_header({"scenario", "precision", "recall", "F1", "FP 2LDs",
                    "latency (epochs)", "campaigns", "floor"});

  bool ok = true;
  for (const auto& scenario_case : cases) {
    const auto& scenario = scenario_case.scenario;
    const auto full_config = engine_config(scenario_case, /*incremental=*/false);

    double run_ms = 0.0;
    synth::ScenarioRun full_run;
    run_ms += bench::time_once_ms(
        [&] { full_run = synth::run_scenario(scenario, full_config); });

    synth::ScenarioRun incremental_run;
    run_ms += bench::time_once_ms([&] {
      incremental_run = synth::run_scenario(
          scenario, engine_config(scenario_case, /*incremental=*/true));
    });

    // The identity gate: incremental mining must publish the exact verdict
    // sets the full re-mine publishes, on every scenario shape.
    bool identical = full_run.digests.size() == incremental_run.digests.size();
    if (identical) {
      for (std::size_t p = 0; p < full_run.digests.size(); ++p) {
        if (full_run.digests[p] != incremental_run.digests[p]) {
          identical = false;
          std::fprintf(stderr,
                       "FAIL %s: incremental snapshot %zu diverges from the "
                       "full re-mine\n",
                       scenario.name.c_str(), p);
          break;
        }
      }
    } else {
      std::fprintf(stderr,
                   "FAIL %s: publication counts differ (full %zu, "
                   "incremental %zu)\n",
                   scenario.name.c_str(), full_run.digests.size(),
                   incremental_run.digests.size());
    }
    if (!identical) ok = false;

    const auto quality =
        synth::evaluate_quality(scenario.name, full_run.observations,
                                scenario.truth, scenario_case.epoch_seconds);
    const auto floor = synth::floor_for(scenario.name);
    std::string why;
    const bool floored = synth::meets_floor(quality, floor, &why);
    if (!floored) {
      ok = false;
      std::fprintf(stderr, "FAIL below floor:\n%s\nactual vs floor:\n%s",
                   why.c_str(),
                   synth::describe_vs_floor(quality, floor).c_str());
    }

    table.add_row(
        {scenario.name, util::format_fixed(quality.precision, 3),
         util::format_fixed(quality.recall, 3),
         util::format_fixed(quality.f1, 3),
         std::to_string(quality.false_positives),
         util::format_fixed(quality.detection_latency_epochs_mean, 1) + " / " +
             util::format_fixed(quality.detection_latency_epochs_max, 1),
         std::to_string(quality.campaigns_detected) + "/" +
             std::to_string(quality.campaigns),
         floored && identical ? "ok" : "FAIL"});

    report.add("quality/" + scenario.name, run_ms,
               {{"precision", quality.precision},
                {"recall", quality.recall},
                {"f1", quality.f1},
                {"false_positive_2lds",
                 static_cast<double>(quality.false_positives)},
                {"true_positives", static_cast<double>(quality.true_positives)},
                {"truth_servers", static_cast<double>(quality.truth_servers)},
                {"flagged_2lds", static_cast<double>(quality.flagged_2lds)},
                {"detection_latency_epochs_mean",
                 quality.detection_latency_epochs_mean},
                {"detection_latency_epochs_max",
                 quality.detection_latency_epochs_max},
                {"campaigns", static_cast<double>(quality.campaigns)},
                {"campaigns_detected",
                 static_cast<double>(quality.campaigns_detected)},
                {"publications", static_cast<double>(full_run.digests.size())},
                {"events", static_cast<double>(scenario.events.size())},
                {"incremental_identical", identical ? 1.0 : 0.0},
                {"floor_ok", floored ? 1.0 : 0.0},
                {"smoke", smoke ? 1.0 : 0.0}});
  }

  std::fputs(table.render().c_str(), stdout);
  if (!report.write(out_path)) return 1;
  std::printf("\nwrote %s (%zu scenarios)\n", out_path.c_str(), cases.size());
  if (!ok) {
    std::fputs("quality_matrix: FAILED (floor violation or divergence)\n",
               stderr);
    return 1;
  }
  return 0;
}
