// Descriptive statistics used by the evaluation harness and the figure
// benches (CDFs, percentiles, histograms).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace smash::util {

double mean(const std::vector<double>& v);
double variance(const std::vector<double>& v);  // population variance

// Percentile with linear interpolation, p in [0, 100]. v need not be sorted.
double percentile(std::vector<double> v, double p);

// Empirical CDF evaluated at the given points: fraction of samples <= x.
struct CdfPoint {
  double x = 0.0;
  double fraction = 0.0;
};

// Full empirical CDF (one point per distinct sample value).
std::vector<CdfPoint> empirical_cdf(std::vector<double> samples);

// Fraction of samples <= x.
double cdf_at(const std::vector<CdfPoint>& cdf, double x);

// Fixed-width histogram over [lo, hi) with `bins` buckets; samples outside
// the range are clamped into the first/last bucket AND counted in
// underflow/overflow, so a latency histogram can never silently hide tail
// outliers inside an edge bucket.
struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::uint64_t> counts;
  std::uint64_t underflow = 0;  // samples < lo (clamped into the first bucket)
  std::uint64_t overflow = 0;   // samples >= hi (clamped into the last bucket)

  Histogram(double lo_, double hi_, std::size_t bins);
  void add(double x);
  // Total samples, including the clamped under/overflowing ones.
  std::uint64_t total() const;
  // Render as an ASCII bar chart, `width` columns for the largest bucket.
  std::string ascii(int width = 50, int label_decimals = 0) const;
};

// The "S"-shaped normalizer from paper eq. (9):
//   phi(x) = 0.5 * (1 + erf((x - mu) / sigma)).
// mu promotes groups larger than mu; sigma sets steepness.
double phi_erf(double x, double mu, double sigma);

}  // namespace smash::util
