// Reproduces paper Table IV: attack categories of inferred servers that
// were confirmed by IDS/blacklists, split into communication vs attacking
// activities.
#include <cstdio>
#include <map>

#include "bench_common.h"

int main() {
  using namespace smash;
  std::map<ids::CampaignKind, int> counts;

  for (const char* preset : {"2011day", "2012day"}) {
    const auto& ds = bench::dataset(preset);
    const auto op = bench::run_operating_point(ds);
    const core::Evaluator evaluator(ds.trace, ds.signatures, ds.blacklist, ds.truth);
    for (const auto& eval : {op.multi, op.single}) {
      for (const auto& ce : eval.campaigns) {
        for (auto member : ce.campaign->servers) {
          const auto& name = op.result.server_name(member);
          const auto verdict =
              evaluator.classify_server(op.result, member, *ce.campaign, ce.verdict);
          if (verdict == core::ServerVerdict::kFalsePositive ||
              verdict == core::ServerVerdict::kSuspicious) {
            continue;  // Table IV covers confirmed servers only
          }
          const auto idx = ds.truth.campaign_of(name);
          if (!idx) continue;
          ++counts[ds.truth.campaigns()[*idx].kind];
        }
      }
    }
  }

  util::Table table("Table IV: attack categories (confirmed inferred servers)");
  table.set_header({"Activity", "Category", "# of servers"});
  const auto row = [&](const char* activity, ids::CampaignKind kind) {
    table.add_row({activity, std::string(ids::campaign_kind_name(kind)),
                   std::to_string(counts[kind])});
  };
  row("Communication", ids::CampaignKind::kCnc);
  row("Communication", ids::CampaignKind::kWebExploit);
  row("Communication", ids::CampaignKind::kPhishing);
  row("Communication", ids::CampaignKind::kDropZone);
  row("Communication", ids::CampaignKind::kOtherMalicious);
  row("Attacking", ids::CampaignKind::kWebScanner);
  row("Attacking", ids::CampaignKind::kIframeInjection);
  std::fputs(table.render().c_str(), stdout);
  std::puts("\nShape target (paper): 'other malicious servers' dominates the");
  std::puts("  communication side; both attacking categories are present.");
  return 0;
}
