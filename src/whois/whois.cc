#include "whois/whois.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "util/strings.h"

namespace smash::whois {

std::string_view field_name(Field f) noexcept {
  switch (f) {
    case Field::kRegistrant: return "registrant";
    case Field::kAddress: return "address";
    case Field::kEmail: return "email";
    case Field::kPhone: return "phone";
    case Field::kNameServers: return "name_servers";
  }
  return "?";
}

const std::string& Record::value(Field f) const {
  switch (f) {
    case Field::kRegistrant: return registrant;
    case Field::kAddress: return address;
    case Field::kEmail: return email;
    case Field::kPhone: return phone;
    case Field::kNameServers: return name_servers;
  }
  throw std::invalid_argument("Record::value: bad field");
}

std::string& Record::value(Field f) {
  return const_cast<std::string&>(static_cast<const Record&>(*this).value(f));
}

void Registry::add(std::string_view domain, Record record) {
  records_[std::string(domain)] = std::move(record);
}

const Record* Registry::find(std::string_view domain) const {
  auto it = records_.find(std::string(domain));
  return it == records_.end() ? nullptr : &it->second;
}

void Registry::add_proxy_value(std::string_view value) {
  proxy_values_.insert(std::string(value));
}

bool Registry::is_proxy_value(std::string_view value) const {
  return proxy_values_.count(std::string(value)) > 0;
}

SimilarityResult Registry::similarity(std::string_view domain_a,
                                      std::string_view domain_b,
                                      int min_shared) const {
  SimilarityResult result;
  const Record* a = find(domain_a);
  const Record* b = find(domain_b);
  if (a == nullptr || b == nullptr) return result;

  for (int i = 0; i < kNumFields; ++i) {
    const auto f = static_cast<Field>(i);
    const std::string& va = a->value(f);
    const std::string& vb = b->value(f);
    if (va.empty() && vb.empty()) continue;
    ++result.union_fields;
    if (!va.empty() && va == vb && !is_proxy_value(va)) ++result.shared_fields;
  }
  if (result.shared_fields >= min_shared && result.union_fields > 0) {
    result.score = static_cast<double>(result.shared_fields) /
                   static_cast<double>(result.union_fields);
  }
  return result;
}

namespace {
std::string_view dash_if_empty(std::string_view s) { return s.empty() ? "-" : s; }
std::string undash(std::string_view s) { return s == "-" ? std::string{} : std::string(s); }
}  // namespace

void Registry::write_tsv(const std::string& file_path) const {
  std::ofstream out(file_path);
  if (!out) throw std::runtime_error("Registry::write_tsv: cannot open " + file_path);
  for (const auto& value : proxy_values_) {
    out << "PROXY\t" << value << '\n';
  }
  for (const auto& [domain, rec] : records_) {
    out << "WHOIS\t" << domain << '\t' << dash_if_empty(rec.registrant) << '\t'
        << dash_if_empty(rec.address) << '\t' << dash_if_empty(rec.email) << '\t'
        << dash_if_empty(rec.phone) << '\t' << dash_if_empty(rec.name_servers)
        << '\n';
  }
}

Registry Registry::read_tsv(const std::string& file_path) {
  std::ifstream in(file_path);
  if (!in) throw std::runtime_error("Registry::read_tsv: cannot open " + file_path);
  Registry registry;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = util::split(line, '\t');
    if (fields[0] == "PROXY" && fields.size() == 2) {
      registry.add_proxy_value(fields[1]);
    } else if (fields[0] == "WHOIS" && fields.size() == 7) {
      Record rec;
      rec.registrant = undash(fields[2]);
      rec.address = undash(fields[3]);
      rec.email = undash(fields[4]);
      rec.phone = undash(fields[5]);
      rec.name_servers = undash(fields[6]);
      registry.add(fields[1], std::move(rec));
    } else {
      throw std::runtime_error("Registry::read_tsv: " + file_path + ":" +
                               std::to_string(line_no) + ": malformed record");
    }
  }
  return registry;
}

std::string join_name_servers(std::vector<std::string> servers) {
  std::sort(servers.begin(), servers.end());
  servers.erase(std::unique(servers.begin(), servers.end()), servers.end());
  return util::join(servers, ",");
}

}  // namespace smash::whois
