#include "graph/louvain.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace smash::graph {
namespace {

// Two k-cliques joined by a single weak bridge edge.
Graph two_cliques(std::uint32_t k, double bridge_weight) {
  GraphBuilder builder(2 * k);
  for (std::uint32_t u = 0; u < k; ++u) {
    for (std::uint32_t v = u + 1; v < k; ++v) {
      builder.add_edge(u, v, 1.0);
      builder.add_edge(k + u, k + v, 1.0);
    }
  }
  builder.add_edge(0, k, bridge_weight);
  return std::move(builder).build();
}

TEST(Louvain, SeparatesTwoCliques) {
  const Graph g = two_cliques(6, 0.1);
  const auto result = louvain(g);
  EXPECT_EQ(result.num_communities, 2u);
  // Same community within each clique.
  for (std::uint32_t v = 1; v < 6; ++v) {
    EXPECT_EQ(result.community_of[v], result.community_of[0]);
    EXPECT_EQ(result.community_of[6 + v], result.community_of[6]);
  }
  EXPECT_NE(result.community_of[0], result.community_of[6]);
  EXPECT_GT(result.modularity, 0.4);
}

TEST(Louvain, EdgelessGraphIsAllSingletons) {
  const Graph g = GraphBuilder(5).build();
  const auto result = louvain(g);
  EXPECT_EQ(result.num_communities, 5u);
  EXPECT_DOUBLE_EQ(result.modularity, 0.0);
}

TEST(Louvain, SingleCliqueStaysTogether) {
  const Graph g = two_cliques(5, 0.0001);  // bridge negligible
  GraphBuilder builder(4);
  for (std::uint32_t u = 0; u < 4; ++u) {
    for (std::uint32_t v = u + 1; v < 4; ++v) builder.add_edge(u, v);
  }
  const auto result = louvain(std::move(builder).build());
  EXPECT_EQ(result.num_communities, 1u);
}

TEST(Louvain, Deterministic) {
  const Graph g = two_cliques(8, 0.2);
  const auto a = louvain(g);
  const auto b = louvain(g);
  EXPECT_EQ(a.community_of, b.community_of);
  EXPECT_DOUBLE_EQ(a.modularity, b.modularity);
}

TEST(Modularity, PerfectPartitionBeatsRandom) {
  const Graph g = two_cliques(6, 0.1);
  std::vector<std::uint32_t> good(12);
  std::vector<std::uint32_t> merged(12, 0);
  for (std::uint32_t v = 0; v < 12; ++v) good[v] = v < 6 ? 0 : 1;
  EXPECT_GT(modularity(g, good), modularity(g, merged));
  EXPECT_THROW(modularity(g, std::vector<std::uint32_t>(3, 0)),
               std::invalid_argument);
}

TEST(Modularity, AllInOneCommunityIsNonPositiveQForCompleteGraph) {
  GraphBuilder builder(4);
  for (std::uint32_t u = 0; u < 4; ++u) {
    for (std::uint32_t v = u + 1; v < 4; ++v) builder.add_edge(u, v);
  }
  const Graph g = std::move(builder).build();
  // Q of the trivial one-community partition is 1 - 1 = 0.
  EXPECT_NEAR(modularity(g, std::vector<std::uint32_t>(4, 0)), 0.0, 1e-12);
}

// The resolution-limit scenario that motivates refinement: a long ring of
// small cliques bridged by single edges. Plain modularity merges adjacent
// cliques; refinement must recover the individual cliques.
TEST(LouvainRefined, SplitsRingOfCliques) {
  constexpr std::uint32_t kCliques = 24;
  constexpr std::uint32_t kSize = 4;
  GraphBuilder builder(kCliques * kSize);
  for (std::uint32_t c = 0; c < kCliques; ++c) {
    const std::uint32_t base = c * kSize;
    for (std::uint32_t u = 0; u < kSize; ++u) {
      for (std::uint32_t v = u + 1; v < kSize; ++v) {
        builder.add_edge(base + u, base + v, 1.0);
      }
    }
    // Bridge to the next clique.
    builder.add_edge(base, ((c + 1) % kCliques) * kSize, 0.3);
  }
  const Graph g = std::move(builder).build();

  const auto plain = louvain(g);
  const auto refined = louvain_refined(g);
  // Plain Louvain may agglomerate adjacent cliques (resolution limit) but
  // never does better than one community per clique.
  EXPECT_LE(plain.num_communities, kCliques);
  // Refinement recovers all of them exactly.
  EXPECT_EQ(refined.num_communities, kCliques);
  for (std::uint32_t c = 0; c < kCliques; ++c) {
    const std::uint32_t base = c * kSize;
    for (std::uint32_t v = 1; v < kSize; ++v) {
      EXPECT_EQ(refined.community_of[base + v], refined.community_of[base]);
    }
  }
}

TEST(LouvainRefined, CliqueIsStable) {
  GraphBuilder builder(8);
  for (std::uint32_t u = 0; u < 8; ++u) {
    for (std::uint32_t v = u + 1; v < 8; ++v) builder.add_edge(u, v);
  }
  const auto result = louvain_refined(std::move(builder).build());
  EXPECT_EQ(result.num_communities, 1u);
}

TEST(LouvainRefined, MatchesPlainOnTwoCliques) {
  const Graph g = two_cliques(6, 0.1);
  const auto refined = louvain_refined(g);
  EXPECT_EQ(refined.num_communities, 2u);
}

TEST(LouvainRefined, Deterministic) {
  const Graph g = two_cliques(7, 0.15);
  const auto a = louvain_refined(g);
  const auto b = louvain_refined(g);
  EXPECT_EQ(a.community_of, b.community_of);
}

// Same grouping of nodes regardless of which labels the communities got
// (warm start renumbers labels in first-seen order, so exact label values
// are not comparable across runs).
void expect_same_partition(const std::vector<std::uint32_t>& a,
                           const std::vector<std::uint32_t>& b) {
  ASSERT_EQ(a.size(), b.size());
  std::map<std::uint32_t, std::uint32_t> a_to_b;
  std::map<std::uint32_t, std::uint32_t> b_to_a;
  for (std::size_t v = 0; v < a.size(); ++v) {
    const auto [fwd, fwd_new] = a_to_b.emplace(a[v], b[v]);
    const auto [rev, rev_new] = b_to_a.emplace(b[v], a[v]);
    EXPECT_EQ(fwd->second, b[v]) << "node " << v;
    EXPECT_EQ(rev->second, a[v]) << "node " << v;
  }
}

// Warm-start repair (core/delta_mine.h's opt-in approximate mode): seed
// from a previous partition, sweep only around the dirty nodes.
TEST(LouvainWarmStart, CleanSeedWithNoDirtyNodesKeepsThePartition) {
  const Graph g = two_cliques(6, 0.1);
  const auto full = louvain_refined(g);
  const auto warm = louvain_warm_start(g, full.community_of, {}, 0.5);
  EXPECT_FALSE(warm.fell_back);
  EXPECT_EQ(warm.repaired_nodes, 0u);
  expect_same_partition(warm.result.community_of, full.community_of);
  EXPECT_DOUBLE_EQ(warm.result.modularity, full.modularity);
}

TEST(LouvainWarmStart, RepairsPerturbedSeedAroundDirtyNodes) {
  const Graph g = two_cliques(8, 0.1);
  auto seed = louvain_refined(g).community_of;
  // Misplace two nodes of the second clique into the first's community.
  seed[8] = seed[0];
  seed[9] = seed[0];
  const std::vector<std::uint32_t> dirty{8, 9};
  const auto warm = louvain_warm_start(g, seed, dirty, 0.5);
  EXPECT_FALSE(warm.fell_back);
  EXPECT_GE(warm.repaired_nodes, 2u);
  // Both cliques whole again.
  for (std::uint32_t v = 1; v < 8; ++v) {
    EXPECT_EQ(warm.result.community_of[v], warm.result.community_of[0]);
    EXPECT_EQ(warm.result.community_of[8 + v], warm.result.community_of[8]);
  }
  EXPECT_NE(warm.result.community_of[0], warm.result.community_of[8]);
}

TEST(LouvainWarmStart, ModularityNeverBelowSeedPartition) {
  const Graph g = two_cliques(7, 0.2);
  std::vector<std::uint32_t> seed(14);
  for (std::uint32_t v = 0; v < 14; ++v) seed[v] = v % 3;  // junk seed
  std::vector<std::uint32_t> dirty(14);
  for (std::uint32_t v = 0; v < 14; ++v) dirty[v] = v;
  const auto warm = louvain_warm_start(g, seed, dirty, 1.0);
  EXPECT_FALSE(warm.fell_back);
  EXPECT_GE(warm.result.modularity, modularity(g, seed) - 1e-12);
}

TEST(LouvainWarmStart, FallsBackOnSizeMismatchAndLargeDeltas) {
  const Graph g = two_cliques(6, 0.1);
  const auto full = louvain_refined(g);

  // Seed from a differently-sized graph: full re-run.
  const auto mismatched =
      louvain_warm_start(g, std::vector<std::uint32_t>(5, 0), {}, 0.5);
  EXPECT_TRUE(mismatched.fell_back);
  EXPECT_EQ(mismatched.result.community_of, full.community_of);

  // Dirty fraction above the cutoff: full re-run.
  std::vector<std::uint32_t> dirty(12);
  for (std::uint32_t v = 0; v < 12; ++v) dirty[v] = v;
  const auto over = louvain_warm_start(g, full.community_of, dirty, 0.25);
  EXPECT_TRUE(over.fell_back);
  EXPECT_EQ(over.result.community_of, full.community_of);
}

TEST(LouvainWarmStart, Deterministic) {
  const Graph g = two_cliques(9, 0.15);
  auto seed = louvain_refined(g).community_of;
  seed[9] = seed[0];
  const std::vector<std::uint32_t> dirty{9};
  const auto a = louvain_warm_start(g, seed, dirty, 0.5);
  const auto b = louvain_warm_start(g, seed, dirty, 0.5);
  EXPECT_EQ(a.result.community_of, b.result.community_of);
  EXPECT_EQ(a.repaired_nodes, b.repaired_nodes);
  EXPECT_EQ(a.repair_sweeps, b.repair_sweeps);
}

class LouvainCliqueSizeTest : public ::testing::TestWithParam<std::uint32_t> {};

// Property: for any clique size, both algorithms keep the clique whole and
// groups() partitions the nodes.
TEST_P(LouvainCliqueSizeTest, CliqueNeverSplits) {
  const std::uint32_t k = GetParam();
  GraphBuilder builder(k);
  for (std::uint32_t u = 0; u < k; ++u) {
    for (std::uint32_t v = u + 1; v < k; ++v) builder.add_edge(u, v);
  }
  const Graph g = std::move(builder).build();
  for (const auto& result : {louvain(g), louvain_refined(g)}) {
    EXPECT_EQ(result.num_communities, 1u);
    std::size_t total = 0;
    for (const auto& group : result.groups()) total += group.size();
    EXPECT_EQ(total, k);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LouvainCliqueSizeTest,
                         ::testing::Values(2u, 3u, 5u, 10u, 25u, 60u));

}  // namespace
}  // namespace smash::graph
