// Equivalence tests for the flat-scratch Louvain rewrite (dense
// weight-to-community array + touched list, counting-sort aggregation)
// against the seed's hash-map implementation, which is reproduced here
// verbatim as the reference. The rewrite visits candidate communities in
// ascending id order (the seed visited them in unordered_map order), so on
// graphs with genuinely tied moves the partitions may differ — but on
// planted structure they must agree exactly, and modularity must never be
// lower than the reference's on any input.
#include "graph/louvain.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "util/rng.h"

namespace smash::graph {
namespace {

// --- seed (hash-map) Louvain, kept as the behavioral reference ------------

std::uint32_t reference_renumber(std::vector<std::uint32_t>& labels) {
  std::unordered_map<std::uint32_t, std::uint32_t> remap;
  remap.reserve(labels.size());
  for (auto& label : labels) {
    auto [it, inserted] =
        remap.emplace(label, static_cast<std::uint32_t>(remap.size()));
    label = it->second;
  }
  return static_cast<std::uint32_t>(remap.size());
}

struct ReferenceLevel {
  std::vector<std::uint32_t> community_of;
  std::uint32_t num_communities = 0;
  bool improved = false;
};

ReferenceLevel reference_local_moving(const Graph& g,
                                      const LouvainOptions& options) {
  const std::uint32_t n = g.num_nodes();
  ReferenceLevel result;
  result.community_of.resize(n);
  for (std::uint32_t v = 0; v < n; ++v) result.community_of[v] = v;
  if (g.total_weight() <= 0.0) {
    result.num_communities = n;
    return result;
  }

  std::vector<double> tot(n, 0.0);
  for (std::uint32_t v = 0; v < n; ++v) tot[v] = g.weighted_degree(v);
  std::unordered_map<std::uint32_t, double> weight_to_comm;

  for (int sweep = 0; sweep < options.max_sweeps_per_level; ++sweep) {
    bool moved_this_sweep = false;
    for (std::uint32_t v = 0; v < n; ++v) {
      const std::uint32_t old_comm = result.community_of[v];
      const double k_v = g.weighted_degree(v);

      weight_to_comm.clear();
      weight_to_comm[old_comm] = 0.0;
      for (const auto& nb : g.neighbors(v)) {
        if (nb.node == v) continue;
        weight_to_comm[result.community_of[nb.node]] += nb.weight;
      }

      tot[old_comm] -= k_v;
      std::uint32_t best_comm = old_comm;
      double best_gain = 2.0 * weight_to_comm[old_comm] -
                         tot[old_comm] * k_v / g.total_weight();
      for (const auto& [comm, w] : weight_to_comm) {
        const double gain = 2.0 * w - tot[comm] * k_v / g.total_weight();
        if (gain > best_gain + options.min_modularity_gain ||
            (gain > best_gain && comm < best_comm)) {
          best_gain = gain;
          best_comm = comm;
        }
      }

      tot[best_comm] += k_v;
      if (best_comm != old_comm) {
        result.community_of[v] = best_comm;
        moved_this_sweep = true;
        result.improved = true;
      }
    }
    if (!moved_this_sweep) break;
  }

  result.num_communities = reference_renumber(result.community_of);
  return result;
}

Graph reference_aggregate(const Graph& g,
                          const std::vector<std::uint32_t>& community_of,
                          std::uint32_t num_communities) {
  GraphBuilder builder(num_communities);
  std::unordered_map<std::uint64_t, double> agg;
  agg.reserve(g.num_edges());
  for (std::uint32_t u = 0; u < g.num_nodes(); ++u) {
    for (const auto& nb : g.neighbors(u)) {
      if (nb.node < u) continue;
      std::uint32_t cu = community_of[u];
      std::uint32_t cv = community_of[nb.node];
      if (cu > cv) std::swap(cu, cv);
      const std::uint64_t key = (static_cast<std::uint64_t>(cu) << 32) | cv;
      agg[key] += nb.weight;
    }
  }
  for (const auto& [key, weight] : agg) {
    builder.add_edge(static_cast<std::uint32_t>(key >> 32),
                     static_cast<std::uint32_t>(key & 0xffffffffu), weight);
  }
  return std::move(builder).build();
}

LouvainResult reference_louvain(const Graph& g, const LouvainOptions& options = {}) {
  const std::uint32_t n = g.num_nodes();
  LouvainResult result;
  result.community_of.resize(n);
  for (std::uint32_t v = 0; v < n; ++v) result.community_of[v] = v;
  result.num_communities = n;

  Graph level_graph;
  const Graph* current = &g;
  for (int level = 0; level < options.max_levels; ++level) {
    ReferenceLevel lvl = reference_local_moving(*current, options);
    if (!lvl.improved && level > 0) break;
    for (std::uint32_t v = 0; v < n; ++v) {
      result.community_of[v] = lvl.community_of[result.community_of[v]];
    }
    result.num_communities = lvl.num_communities;
    result.levels = level + 1;
    if (!lvl.improved) break;
    if (lvl.num_communities == current->num_nodes()) break;
    level_graph = reference_aggregate(*current, lvl.community_of,
                                      lvl.num_communities);
    current = &level_graph;
  }
  result.num_communities = reference_renumber(result.community_of);
  result.modularity = modularity(g, result.community_of);
  return result;
}

// --- graph generators ------------------------------------------------------

Graph planted_cliques(std::uint32_t cliques, std::uint32_t size,
                      double bridge_probability, std::uint64_t seed) {
  util::Rng rng(seed);
  GraphBuilder builder(cliques * size);
  for (std::uint32_t c = 0; c < cliques; ++c) {
    const std::uint32_t base = c * size;
    for (std::uint32_t u = 0; u < size; ++u) {
      for (std::uint32_t v = u + 1; v < size; ++v) {
        builder.add_edge(base + u, base + v, 1.0);
      }
    }
  }
  for (std::uint32_t c = 0; c + 1 < cliques; ++c) {
    if (rng.bernoulli(bridge_probability)) {
      builder.add_edge(c * size, (c + 1) * size, 0.3);
    }
  }
  return std::move(builder).build();
}

Graph random_graph(std::uint32_t n, double edge_probability,
                   std::uint64_t seed) {
  util::Rng rng(seed);
  GraphBuilder builder(n);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) {
      if (rng.bernoulli(edge_probability)) {
        builder.add_edge(u, v, 0.25 + rng.uniform01());
      }
    }
  }
  return std::move(builder).build();
}

// Are two labelings the same partition (up to label renaming)?
bool same_partition(const std::vector<std::uint32_t>& a,
                    const std::vector<std::uint32_t>& b) {
  if (a.size() != b.size()) return false;
  std::unordered_map<std::uint32_t, std::uint32_t> a_to_b;
  std::unordered_map<std::uint32_t, std::uint32_t> b_to_a;
  for (std::size_t v = 0; v < a.size(); ++v) {
    const auto [ab, ab_new] = a_to_b.emplace(a[v], b[v]);
    const auto [ba, ba_new] = b_to_a.emplace(b[v], a[v]);
    if (ab->second != b[v] || ba->second != a[v]) return false;
  }
  return true;
}

// --- tests -----------------------------------------------------------------

class LouvainScratchTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LouvainScratchTest, SamePartitionAsSeedOnPlantedCliques) {
  const Graph g = planted_cliques(60, 6, 0.4, GetParam());
  const auto dense = louvain(g);
  const auto reference = reference_louvain(g);
  EXPECT_TRUE(same_partition(dense.community_of, reference.community_of));
  EXPECT_NEAR(dense.modularity, reference.modularity, 1e-9);
}

TEST_P(LouvainScratchTest, ModularityNeverLowerThanSeedOnRandomGraphs) {
  const Graph g = random_graph(150, 0.04, GetParam() ^ 0x5a5aULL);
  const auto dense = louvain(g);
  const auto reference = reference_louvain(g);
  // Tie-break order can differ (see file comment) but quality must not.
  EXPECT_GE(dense.modularity, reference.modularity - 1e-9);
  // And the result must be a valid partition of the same size scale.
  EXPECT_GT(dense.num_communities, 0u);
  for (auto c : dense.community_of) EXPECT_LT(c, dense.num_communities);
}

TEST_P(LouvainScratchTest, RefinedModularityNeverLowerAndDeterministic) {
  const Graph g = random_graph(120, 0.05, GetParam() + 9000);
  const auto a = louvain_refined(g);
  const auto b = louvain_refined(g);
  EXPECT_EQ(a.community_of, b.community_of);
  EXPECT_DOUBLE_EQ(a.modularity, b.modularity);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LouvainScratchTest,
                         ::testing::Values(3u, 21u, 77u, 500u, 8191u));

TEST(LouvainScratch, DeterministicAcrossRepeatedRuns) {
  const Graph g = random_graph(200, 0.03, 424242);
  const auto a = louvain(g);
  const auto b = louvain(g);
  EXPECT_EQ(a.community_of, b.community_of);
  EXPECT_EQ(a.num_communities, b.num_communities);
  EXPECT_DOUBLE_EQ(a.modularity, b.modularity);
}

TEST(LouvainScratch, AggregationHandlesSelfLoopsLikeSeed) {
  // Force a two-level run: two cliques that merge, then aggregate with
  // self-loops. The dense path must produce the same final modularity.
  GraphBuilder builder(8);
  for (std::uint32_t u = 0; u < 4; ++u) {
    for (std::uint32_t v = u + 1; v < 4; ++v) {
      builder.add_edge(u, v, 1.0);
      builder.add_edge(4 + u, 4 + v, 1.0);
    }
  }
  builder.add_edge(0, 4, 0.1);
  const Graph g = std::move(builder).build();
  const auto dense = louvain(g);
  const auto reference = reference_louvain(g);
  EXPECT_EQ(dense.num_communities, reference.num_communities);
  EXPECT_NEAR(dense.modularity, reference.modularity, 1e-12);
}

}  // namespace
}  // namespace smash::graph
