#include "whois/whois.h"

#include <gtest/gtest.h>

namespace smash::whois {
namespace {

Record make_record(std::string registrant, std::string address, std::string email,
                   std::string phone, std::string ns) {
  Record rec;
  rec.registrant = std::move(registrant);
  rec.address = std::move(address);
  rec.email = std::move(email);
  rec.phone = std::move(phone);
  rec.name_servers = std::move(ns);
  return rec;
}

TEST(Registry, SimilaritySharedOverUnion) {
  Registry reg;
  // The paper's Fig. 5 shape: different registrants, same address, phone
  // and name servers -> 3 shared of 5 -> 0.6.
  reg.add("a.com", make_record("alice", "addr1", "a@x.com", "+1.555", "ns1,ns2"));
  reg.add("b.com", make_record("bob", "addr1", "b@x.com", "+1.555", "ns1,ns2"));
  const auto sim = reg.similarity("a.com", "b.com");
  EXPECT_EQ(sim.shared_fields, 3);
  EXPECT_EQ(sim.union_fields, 5);
  EXPECT_DOUBLE_EQ(sim.score, 0.6);
}

TEST(Registry, MinSharedGate) {
  Registry reg;
  reg.add("a.com", make_record("alice", "addr1", "a@x.com", "+1", "ns1"));
  reg.add("b.com", make_record("bob", "addr1", "b@y.com", "+2", "ns2"));
  // Only one shared field: below the >= 2 gate.
  const auto sim = reg.similarity("a.com", "b.com");
  EXPECT_EQ(sim.shared_fields, 1);
  EXPECT_DOUBLE_EQ(sim.score, 0.0);
  // Explicit gate of 1 admits it.
  EXPECT_GT(reg.similarity("a.com", "b.com", 1).score, 0.0);
}

TEST(Registry, ProxyValuesDoNotCount) {
  Registry reg;
  reg.add_proxy_value("WhoisGuard Protected");
  reg.add_proxy_value("privacy@proxy.example");
  reg.add("a.com", make_record("WhoisGuard Protected", "addr1",
                               "privacy@proxy.example", "+1", "ns1"));
  reg.add("b.com", make_record("WhoisGuard Protected", "addr2",
                               "privacy@proxy.example", "+1", "ns2"));
  // Registrant and email match but are proxy values; only phone counts.
  const auto sim = reg.similarity("a.com", "b.com");
  EXPECT_EQ(sim.shared_fields, 1);
  EXPECT_DOUBLE_EQ(sim.score, 0.0);
  EXPECT_TRUE(reg.is_proxy_value("WhoisGuard Protected"));
  EXPECT_FALSE(reg.is_proxy_value("alice"));
}

TEST(Registry, EmptyFieldsShrinkTheUnion) {
  Registry reg;
  reg.add("a.com", make_record("alice", "", "a@x.com", "", "ns1"));
  reg.add("b.com", make_record("alice", "", "a@x.com", "", ""));
  const auto sim = reg.similarity("a.com", "b.com");
  EXPECT_EQ(sim.shared_fields, 2);
  EXPECT_EQ(sim.union_fields, 3);  // registrant, email, ns (one side)
  EXPECT_DOUBLE_EQ(sim.score, 2.0 / 3.0);
}

TEST(Registry, UnknownDomainScoresZero) {
  Registry reg;
  reg.add("a.com", make_record("alice", "x", "y", "z", "ns"));
  EXPECT_DOUBLE_EQ(reg.similarity("a.com", "missing.com").score, 0.0);
  EXPECT_EQ(reg.find("missing.com"), nullptr);
  EXPECT_NE(reg.find("a.com"), nullptr);
}

TEST(Registry, OverwriteReplacesRecord) {
  Registry reg;
  reg.add("a.com", make_record("old", "", "", "", ""));
  reg.add("a.com", make_record("new", "", "", "", ""));
  EXPECT_EQ(reg.find("a.com")->registrant, "new");
  EXPECT_EQ(reg.size(), 1u);
}

TEST(JoinNameServers, SortsAndDedupes) {
  EXPECT_EQ(join_name_servers({"ns2.x.com", "ns1.x.com", "ns2.x.com"}),
            "ns1.x.com,ns2.x.com");
  EXPECT_EQ(join_name_servers({}), "");
}

TEST(Record, FieldAccessors) {
  Record rec = make_record("r", "a", "e", "p", "n");
  EXPECT_EQ(rec.value(Field::kRegistrant), "r");
  EXPECT_EQ(rec.value(Field::kAddress), "a");
  EXPECT_EQ(rec.value(Field::kEmail), "e");
  EXPECT_EQ(rec.value(Field::kPhone), "p");
  EXPECT_EQ(rec.value(Field::kNameServers), "n");
  rec.value(Field::kEmail) = "e2";
  EXPECT_EQ(rec.email, "e2");
}

TEST(FieldName, AllNamed) {
  for (int f = 0; f < kNumFields; ++f) {
    EXPECT_NE(field_name(static_cast<Field>(f)), "?");
  }
}

}  // namespace
}  // namespace smash::whois
