// Configuration of the streaming subsystem: epoch-windowed ingest over the
// batch SMASH pipeline. The paper mines a full collection window (one day,
// or one week) as a single batch; the streaming engine instead ingests
// timestamped requests continuously, partitions them into fixed epochs, and
// re-mines a sliding window of the last `window_epochs` epochs on every
// epoch close.
#pragma once

#include <cstdint>
#include <functional>

#include "core/smash_config.h"

namespace smash::stream {

// Epoch index: event time in seconds divided by StreamConfig::epoch_seconds.
using EpochId = std::uint64_t;

struct StreamConfig {
  // Epoch length (unit: seconds; default 3600 = one hour): long enough for
  // a campaign's bots to accumulate the co-visits the client dimension
  // needs, short enough that detection latency stays within the paper's
  // daily cadence.
  std::uint32_t epoch_seconds = 3600;

  // Sliding window (unit: epochs; default 24 = a full day at the default
  // epoch length): the engine mines the last `window_epochs` closed
  // epochs, matching the batch pipeline's one-day collection window.
  std::uint32_t window_epochs = 24;

  // Events older than the open epoch. When true (default) they are dropped
  // and counted (IngestStats::late_dropped); when false they are folded
  // into the open epoch so no traffic is lost at the cost of epoch purity.
  bool drop_late_events = true;

  // Asynchronous mining: epoch closes hand the window to a dedicated
  // mining thread and ingest returns immediately; closes that arrive while
  // a mine is in flight coalesce into one "latest window" re-mine
  // (skip-to-newest — the queue never grows past one pending job), and
  // snapshots publish in close order with `DetectionSnapshot::sequence()`
  // accounting for every skipped intermediate window. When false (default)
  // the re-mine runs synchronously on the ingest thread, one snapshot per
  // republish, as the batch-equivalence tests drive it.
  bool async_mining = false;

  // Reuse each epoch shard's preprocessed form (cached at seal time,
  // core/preshard.h): every re-mine merges the cached shards instead of
  // re-preprocessing the assembled window, so sliding the window costs
  // O(new epoch) per-request work. Output is byte-identical either way;
  // disable only to cross-check against the assemble-and-preprocess path.
  bool reuse_shard_preprocess = true;

  // Test/bench hook: artificial delay (unit: milliseconds; default 0 =
  // none) per mine, before snapshot build, used to force epoch closes to
  // pile up behind an in-flight mine so coalescing is deterministic in
  // tests. Leave 0 in production.
  std::uint32_t mine_throttle_ms = 0;

  // Test hook: invoked once per mine at the throttle point (after mining,
  // before snapshot build). An exception it throws takes the mine-failure
  // path: the engine stays drainable and finish()/wait_for_mining() rethrow
  // the error on the writer thread. Leave null in production.
  std::function<void()> mine_test_hook;

  // Pipeline tunables for each window re-mine. smash.num_threads sizes
  // the mining fan-out AND the parallel shard-preprocess merge
  // (core::merge_shard_pres); with async_mining those threads run inside
  // the dedicated mining thread, on top of the ingest thread.
  // smash.join_memory_budget_bytes bounds each re-mine's resident
  // postings memory the same way it does a batch run (docs/MEMORY.md) —
  // the sliding window already bounds input size, so streaming rarely
  // needs it, but long windows over heavy traffic can set both.
  core::SmashConfig smash;

  EpochId epoch_of(std::uint64_t time_s) const noexcept {
    return epoch_seconds == 0 ? 0 : time_s / epoch_seconds;
  }
};

}  // namespace smash::stream
