// HTTP request records and URI helpers.
//
// SMASH is a passive log-analysis system: the only inputs it needs from the
// network substrate are, per request, the (client, server-hostname, URI,
// referrer, status, User-Agent) tuple, plus the hostname -> IP resolution
// observed for each server (paper §III, §IV-A). This header defines those
// records and the URI-file extraction rule of §III-B2.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace smash::net {

enum class Method : std::uint8_t { kGet, kPost, kHead };

std::string_view method_name(Method m) noexcept;

struct HttpRequest {
  std::uint32_t client = 0;  // dense client id (see Trace)
  std::uint32_t server = 0;  // dense server id, the Host header as requested
  std::uint32_t day = 0;     // day index within the trace (0-based)
  Method method = Method::kGet;
  std::uint16_t status = 200;
  std::string path;        // URI path incl. optional query, e.g. "/a/b.php?x=1"
  std::string user_agent;  // may be "-" (absent), matching the paper's Table IX
  std::string referrer;    // referring *hostname*, empty if none
};

// The paper's URI-file definition (§III-B2): "the substring of a URI
// starting from the last '/' until the end before the question mark".
// uri_file("/images/news.php?p=1") == "news.php"; uri_file("/") == "".
std::string_view uri_file(std::string_view path) noexcept;

// Path with the query string removed.
std::string_view uri_path_only(std::string_view path) noexcept;

// Query string after '?', or empty.
std::string_view uri_query(std::string_view path) noexcept;

// Parse the query into (key, value) pairs in order of appearance.
std::vector<std::pair<std::string_view, std::string_view>> query_params(
    std::string_view path);

// Parameter *pattern*: the ordered keys with values blanked, e.g.
// "/x.php?p=16435&id=217&e=0" -> "p=&id=&e=".  §V-A2 uses shared parameter
// patterns to confirm "New Servers" against IDS-confirmed ones.
std::string param_pattern(std::string_view path);

// True for 301/302/303/307/308.
bool is_redirect_status(std::uint16_t status) noexcept;

// True for 4xx/5xx — used by the "suspicious campaign" verification rule
// (§V-A1: "at least half of the servers ... have error code").
bool is_error_status(std::uint16_t status) noexcept;

}  // namespace smash::net
