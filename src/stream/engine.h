// StreamEngine: the streaming dataflow over the batch pipeline.
//
//   events -> StreamIngestor (epoch shards, window ring, aggregates)
//          -> on epoch close: hand the window's sealed shards to the miner
//          -> merge cached per-epoch preprocessed shards (core/preshard.h)
//          -> SmashPipeline::run_preprocessed over the merged window
//          -> DetectionSnapshot, published RCU-style via SnapshotSlot
//          -> VerdictService (stream/verdict.h) answers without blocking
//
// Threading model: one writer thread calls ingest()/finish(); any number of
// reader threads call snapshot()/VerdictService::lookup concurrently.
//
// Mining runs in one of two modes (StreamConfig::async_mining):
//
//  - Synchronous (default): the re-mine runs on the ingest thread at epoch
//    close, exactly one snapshot per republish. Ingest stalls for the
//    duration of the mine.
//  - Asynchronous: the close captures the window (shared_ptr'd immutable
//    shards + ingest counters) into a MiningJob and returns to ingest
//    immediately; a single dedicated mining thread mines and publishes.
//    Closes that arrive while a mine is in flight coalesce into one
//    pending "latest window" job — skip-to-newest, the queue never grows
//    past one entry — and snapshots still publish in close order.
//
// Snapshot `sequence()` counts epoch closes, not publications: in both
// modes a jump of more than one (EpochCloseRecord::epochs_closed > 1)
// records intermediate windows that were skipped — by a multi-epoch
// timestamp gap in ingest, or by async coalescing. Nothing is skipped
// silently.
//
// The only writer->reader shared state is the SnapshotSlot's atomic
// shared_ptr — readers never wait on mining and keep their snapshot alive
// until they drop it. See SnapshotSlot for the precise (not-quite-lock-free)
// guarantee. Mining-thread/ingest-thread shared state is confined to the
// job hand-off (mine_mutex_) and the close records (records_mutex_).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/pipeline.h"
#include "stream/ingest.h"
#include "stream/snapshot.h"
#include "stream/stream_config.h"
#include "util/thread_pool.h"
#include "whois/whois.h"

namespace smash::durability {
class DurableJournal;
struct CheckpointState;
}  // namespace smash::durability

namespace smash::obs {
class Counter;
class Gauge;
class Histogram;
class MetricsLogger;
class Registry;
}  // namespace smash::obs

namespace smash::stream {

// RCU-style publication point: the writer stores a new immutable snapshot,
// readers load the current one; the shared_ptr control block keeps old
// snapshots alive for readers mid-lookup. Neither side takes a user-level
// lock and readers never wait on mining, but note that mainstream standard
// libraries implement std::atomic<std::shared_ptr> with a tiny internal
// spinlock (is_lock_free() is false), so load/store briefly contend on a
// refcount update. A hazard-pointer slot would make this truly lock-free
// if that window ever shows up in profiles.
class SnapshotSlot {
 public:
  void publish(std::shared_ptr<const DetectionSnapshot> next) {
    slot_.store(std::move(next), std::memory_order_release);
  }

  [[nodiscard]] std::shared_ptr<const DetectionSnapshot> acquire() const {
    return slot_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::shared_ptr<const DetectionSnapshot>> slot_{};
};

// Timing/outcome record of one snapshot publication (the perf_stream bench
// reports these as epoch-close-to-publish latency).
struct EpochCloseRecord {
  EpochId last_epoch = 0;        // newest epoch in the published window
  std::uint32_t window_epochs = 0;
  // Epoch closes this publication covers. 1 in steady state; > 1 when
  // intermediate windows were skipped (multi-epoch ingest gap, or async
  // coalescing while a mine was in flight).
  std::uint64_t epochs_closed = 1;
  std::size_t window_requests = 0;
  std::size_t kept_servers = 0;
  std::size_t campaigns = 0;
  std::size_t malicious_servers = 0;
  double assemble_ms = 0.0;  // preprocessed-shard merge (or trace assembly)
  double mine_ms = 0.0;      // SmashPipeline mining tail
  double snapshot_ms = 0.0;  // DetectionSnapshot::build + publish
  double total_ms = 0.0;     // epoch close -> snapshot visible to readers
  bool postings_budget_exceeded = false;
};

class StreamEngine {
 public:
  // `registry` must outlive the engine (whois data is registration-time
  // state, not traffic, so it is not streamed). When
  // config.durability_dir is set, the constructor arms the WAL; it refuses
  // (SMASH_CHECK) a directory that already holds WAL or checkpoint state —
  // that state belongs to recover().
  StreamEngine(StreamConfig config, const whois::Registry& registry);
  // Drains any in-flight mine (the final snapshot still publishes).
  ~StreamEngine();

  // Rebuilds an engine from config.durability_dir after a crash: loads the
  // newest valid checkpoint (skipping corrupt ones), replays the WAL tail
  // — truncating a torn last segment to its valid prefix — and republishes
  // the current window. The recovered engine's subsequent snapshots are
  // byte-identical to an uninterrupted engine's at the same closes
  // (tests/recovery_equivalence_test.cc). An empty or absent directory is
  // a cold start. Throws durability::RecoveryError on unrecoverable
  // corruption or a config/checkpoint mismatch; never silently diverges.
  static std::unique_ptr<StreamEngine> recover(StreamConfig config,
                                               const whois::Registry& registry);

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  // Forwards to the ingestor; when the event closes one or more epochs the
  // window is re-mined — synchronously before this call returns, or handed
  // to the mining thread (async mode). Single writer thread only.
  void ingest(const RequestEvent& event);
  void ingest(const ResolutionEvent& event);
  void ingest(const RedirectEvent& event);

  // Seals the open epoch, publishes a final snapshot, and waits for any
  // in-flight mining to finish; on return the snapshot reflects the full
  // stream. Call at stream end (or a forced checkpoint). No-op before the
  // first event.
  void finish();

  // Blocks until no mine is running or pending (async mode; immediate
  // no-op in sync mode). The last published snapshot then reflects the
  // newest closed window. If an async mine failed, rethrows its exception
  // here on the calling (writer) thread — the engine itself stays usable
  // and the next epoch close mines again.
  void wait_for_mining();

  // Current snapshot, or nullptr before the first publication. Callable
  // from any thread; never waits on mining.
  [[nodiscard]] std::shared_ptr<const DetectionSnapshot> snapshot() const {
    return slot_.acquire();
  }
  const SnapshotSlot& slot() const noexcept { return slot_; }

  const StreamIngestor& ingestor() const noexcept { return ingestor_; }
  const StreamConfig& config() const noexcept { return config_; }

  // How this engine's state was rebuilt when it came from recover();
  // all-zero for a fresh engine. Also carried on every published snapshot.
  const RecoveryStats& recovery_stats() const noexcept { return recovery_stats_; }

  // The engine's metrics registry (docs/OBSERVABILITY.md has the catalog):
  // the one from StreamConfig::metrics, or the engine-private registry
  // created when that was null. Null when config.metrics_enabled is false.
  // Callable from any thread; render via registry->render_prometheus() /
  // render_json().
  std::shared_ptr<obs::Registry> metrics() const noexcept {
    return metrics_registry_;
  }

  // Snapshots actually published. Callable from any thread.
  std::uint64_t snapshots_published() const noexcept {
    return snapshots_published_.load(std::memory_order_acquire);
  }
  // Epoch closes observed so far (>= snapshots_published(); the difference
  // is windows skipped by gaps or coalescing). Writer thread's view.
  std::uint64_t epochs_closed_total() const noexcept { return closes_total_; }
  // Times a pending (not yet started) mining job was replaced by a newer
  // window before it ran.
  std::uint64_t windows_coalesced() const noexcept {
    return windows_coalesced_.load(std::memory_order_relaxed);
  }

  // Per-publication records, in publication order. Returns a copy: in
  // async mode the mining thread appends concurrently.
  std::vector<EpochCloseRecord> close_records() const;

  // The current closed window as one trace (what the next publish would
  // mine). Exposed for the stream/batch equivalence tests.
  net::Trace assemble_window() const { return ingestor_.assemble_window(); }

 private:
  // Recovery constructor: adopts a restored ingestor, a resumed journal
  // and the replayed counters. Only recover() calls it.
  struct RecoveredTag {};
  StreamEngine(RecoveredTag, StreamConfig config, const whois::Registry& registry,
               StreamIngestor ingestor,
               std::unique_ptr<durability::DurableJournal> journal,
               std::uint64_t closes_total, RecoveryStats recovery_stats);

  // An immutable capture of one closed window, handed to the miner.
  struct MiningJob {
    std::vector<std::shared_ptr<const EpochShard>> shards;
    IngestStats ingest_stats{};
    std::uint64_t closes_upto = 0;  // closes_total_ when the job was made
    std::chrono::steady_clock::time_point closed_at{};
  };

  // Resolves the metrics registry from config_ (shared, private, or null
  // per StreamConfig::metrics_enabled/metrics) and points
  // config_.smash.metrics at it so pipeline re-mines record into the same
  // surface. Runs in the member-initializer list, before pipeline_.
  std::shared_ptr<obs::Registry> init_metrics();
  // Acquires the metric handles below and registers the snapshot-age
  // callback gauge; starts the MetricsLogger when metrics_dir is set.
  void bind_metrics();

  // Raw handles into metrics_registry_ (all null when metrics are off) so
  // the hot paths pay one null check + relaxed increment, never a name
  // lookup. The registry owns the metrics; references stay valid for its
  // lifetime.
  struct MetricHandles {
    obs::Counter* events = nullptr;
    obs::Counter* epoch_closes = nullptr;
    obs::Counter* windows_coalesced = nullptr;
    obs::Counter* snapshots = nullptr;
    obs::Histogram* close_to_publish_ms = nullptr;
    obs::Histogram* assemble_ms = nullptr;
    obs::Histogram* mine_ms = nullptr;
    obs::Histogram* snapshot_build_ms = nullptr;
    obs::Histogram* mine_queue_wait_ms = nullptr;
    obs::Gauge* mine_queue_depth = nullptr;
    // Incremental-mining counters (pipeline.delta.* — registered whenever
    // metrics are on, so they render at 0 when incremental_mining is off).
    obs::Counter* delta_changed_2lds = nullptr;
    obs::Counter* delta_rescored_pairs = nullptr;
    obs::Counter* delta_reused_pairs = nullptr;
    obs::Counter* delta_repair_sweeps = nullptr;
    obs::Counter* delta_full_fallbacks = nullptr;
  };

  // Write-ahead step run before an event is journaled or ingested: when
  // the event's epoch is past the open one, logs the seal marker for the
  // open epoch (segment rotation point). No-op without durability.
  void durable_prepare(std::uint64_t time_s);
  // Writes a checkpoint every checkpoint_every_epochs closes (writer
  // thread; no-op without durability).
  void maybe_checkpoint(std::uint32_t closed);
  durability::CheckpointState build_checkpoint() const;

  // Ingest-thread epilogue: accounts `closed` epoch closes and routes the
  // new window to the sync or async mining path.
  void on_epochs_closed(std::uint32_t closed);
  // Sync path: mine and publish on the calling (ingest) thread.
  void republish_sync();
  // Async path: capture the window; start the miner or coalesce into the
  // pending job.
  void submit_or_coalesce();
  // Mining-thread loop: mine `job`, then keep draining pending jobs.
  void mining_loop(MiningJob job);
  // Shared mine+publish tail. `live_aggregates` is the ingestor's map (sync
  // path only); the async path rebuilds identical aggregates from the
  // captured shards so the mining thread never reads mutable ingest state.
  void mine_and_publish(
      const std::vector<std::shared_ptr<const EpochShard>>& shards,
      const WindowAggregates* live_aggregates, const IngestStats& ingest_stats,
      std::uint64_t closes_upto, std::chrono::steady_clock::time_point closed_at);
  // Epoch delta between the last *mined* window (mined_window_2lds_) and
  // the window about to be mined: added/evicted epochs plus the sorted
  // union of their shards' distinct 2LDs (the changed-2LD hint the delta
  // miner narrows change detection with). `unknown` when nothing was mined
  // yet (first close, or post-recovery — the caches are empty either way).
  // Mining-context only: ingest thread in sync mode, the single mining
  // thread in async mode — mine_and_publish calls are serialized.
  core::WindowDelta compute_window_delta(
      const std::vector<std::shared_ptr<const EpochShard>>& shards) const;

  StreamConfig config_;
  const whois::Registry& registry_;
  // Declared before pipeline_: init_metrics() sets config_.smash.metrics,
  // which pipeline_'s constructor copies.
  std::shared_ptr<obs::Registry> metrics_registry_;
  MetricHandles metrics_{};
  // steady_clock nanoseconds of the last publish (-1 before the first);
  // feeds the stream.snapshot_age_ms callback gauge.
  std::atomic<std::int64_t> last_publish_ns_{-1};
  // Writer-thread sampling counter for the stream.ingest span (1/1024).
  std::uint32_t ingest_sample_ = 0;
  core::SmashPipeline pipeline_;
  StreamIngestor ingestor_;
  SnapshotSlot slot_;

  // Incremental re-mining state (null / empty unless
  // config_.incremental_mining). Both live in the mining context — the
  // ingest thread in sync mode, the single mining thread in async mode —
  // and mine_and_publish calls are serialized, so no locking is needed.
  // A recovered engine starts with a fresh miner (empty caches): its first
  // post-recovery close transparently falls back to a full mine.
  std::unique_ptr<core::DeltaMiner> delta_miner_;
  // (epoch id, distinct 2LDs) of each shard in the last window actually
  // mined — not the last closed window; async coalescing can skip closes —
  // from which compute_window_delta derives added/evicted epochs.
  std::vector<std::pair<EpochId, std::vector<std::string>>> mined_window_2lds_;

  // Write-ahead log + checkpoints (null without durability_dir). All
  // journal operations run on the writer thread.
  std::unique_ptr<durability::DurableJournal> journal_;
  std::uint64_t closes_since_checkpoint_ = 0;  // ingest thread only
  RecoveryStats recovery_stats_{};

  std::uint64_t closes_total_ = 0;  // ingest thread only
  std::atomic<std::uint64_t> snapshots_published_{0};
  std::atomic<std::uint64_t> windows_coalesced_{0};

  mutable std::mutex records_mutex_;
  std::uint64_t published_closes_ = 0;  // guarded by records_mutex_
  std::vector<EpochCloseRecord> close_records_;

  std::mutex mine_mutex_;
  std::condition_variable mine_cv_;
  bool mine_in_flight_ = false;          // guarded by mine_mutex_
  std::optional<MiningJob> pending_;     // guarded by mine_mutex_
  // Exception that escaped an async mine, rethrown by wait_for_mining() on
  // the writer thread. Guarded by mine_mutex_.
  std::exception_ptr mine_error_;
  // Periodic JSONL metrics writer (null unless metrics_dir is set). Holds
  // a shared_ptr to the registry, so member order is not load-bearing.
  std::unique_ptr<obs::MetricsLogger> metrics_logger_;
  // Single-thread pool running mining_loop; last member so it is destroyed
  // (joined) before any state the loop touches.
  std::unique_ptr<util::ThreadPool> miner_;
};

}  // namespace smash::stream
