#include "graph/louvain.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace smash::graph {

namespace {

constexpr std::uint32_t kUnset = std::numeric_limits<std::uint32_t>::max();

// Renumber arbitrary community labels to [0, k) preserving first-seen
// order. Labels are always < labels.size() (they start as node ids or
// dense community ids), so a flat remap array suffices.
std::uint32_t renumber(std::vector<std::uint32_t>& labels) {
  std::vector<std::uint32_t> remap(labels.size(), kUnset);
  std::uint32_t next = 0;
  for (auto& label : labels) {
    if (remap[label] == kUnset) remap[label] = next++;
    label = remap[label];
  }
  return next;
}

// One level of local moving. Returns the (renumbered) node -> community map
// and whether anything moved.
struct LevelResult {
  std::vector<std::uint32_t> community_of;
  std::uint32_t num_communities = 0;
  bool improved = false;
};

LevelResult local_moving(const Graph& g, const LouvainOptions& options) {
  const std::uint32_t n = g.num_nodes();
  const double two_m = 2.0 * g.total_weight();

  LevelResult result;
  result.community_of.resize(n);
  for (std::uint32_t v = 0; v < n; ++v) result.community_of[v] = v;
  if (two_m <= 0.0) {
    result.num_communities = n;
    return result;  // edgeless graph: all singletons
  }
  const double inv_m = 1.0 / g.total_weight();

  // tot[c]: sum of weighted degrees of nodes in community c.
  std::vector<double> tot(n, 0.0);
  for (std::uint32_t v = 0; v < n; ++v) tot[v] = g.weighted_degree(v);

  // Scratch: weight from the current node to each adjacent community.
  // Dense array + touched list; all-zero between nodes. Edge weights are
  // strictly positive (GraphBuilder enforces it), so a touched community
  // other than old_comm always has weight > 0.
  std::vector<double> weight_to_comm(n, 0.0);
  std::vector<std::uint32_t> touched;
  touched.reserve(64);

  for (int sweep = 0; sweep < options.max_sweeps_per_level; ++sweep) {
    bool moved_this_sweep = false;
    for (std::uint32_t v = 0; v < n; ++v) {
      const std::uint32_t old_comm = result.community_of[v];
      const double k_v = g.weighted_degree(v);

      touched.clear();
      touched.push_back(old_comm);  // moving back is always an option
      for (const auto& nb : g.neighbors(v)) {
        if (nb.node == v) continue;  // self-loop does not affect the gain delta
        const std::uint32_t c = result.community_of[nb.node];
        if (weight_to_comm[c] == 0.0 && c != old_comm) touched.push_back(c);
        weight_to_comm[c] += nb.weight;
      }

      // Remove v from its community for the gain computation.
      tot[old_comm] -= k_v;

      // Gain of joining community c (relative, constant terms dropped):
      //   dQ(c) = w(v->c)/m - tot[c]*k_v/(2m^2)
      // We compare 2m*dQ = 2*w(v->c) - tot[c]*k_v/m to avoid divisions.
      // Candidates are scanned in ascending community id so the tie-break
      // below is independent of adjacency order.
      std::sort(touched.begin(), touched.end());
      std::uint32_t best_comm = old_comm;
      double best_gain =
          2.0 * weight_to_comm[old_comm] - tot[old_comm] * k_v * inv_m;
      for (const std::uint32_t comm : touched) {
        const double gain = 2.0 * weight_to_comm[comm] - tot[comm] * k_v * inv_m;
        if (gain > best_gain + options.min_modularity_gain ||
            (gain > best_gain && comm < best_comm)) {
          best_gain = gain;
          best_comm = comm;
        }
      }
      for (const std::uint32_t comm : touched) weight_to_comm[comm] = 0.0;

      tot[best_comm] += k_v;
      if (best_comm != old_comm) {
        result.community_of[v] = best_comm;
        moved_this_sweep = true;
        result.improved = true;
      }
    }
    if (!moved_this_sweep) break;
  }

  result.num_communities = renumber(result.community_of);
  return result;
}

// Aggregate: one node per community; edge weights summed; intra-community
// weight becomes a self-loop. Community-bucketed counting sort over the
// nodes, then a dense per-community weight accumulator — no hash maps.
Graph aggregate(const Graph& g, const std::vector<std::uint32_t>& community_of,
                std::uint32_t num_communities) {
  const std::uint32_t n = g.num_nodes();

  // Counting sort: members of community c are
  // members[start[c] .. start[c+1]), ascending (nodes visited in order).
  std::vector<std::uint32_t> start(num_communities + 1, 0);
  for (std::uint32_t v = 0; v < n; ++v) ++start[community_of[v] + 1];
  for (std::uint32_t c = 0; c < num_communities; ++c) start[c + 1] += start[c];
  std::vector<std::uint32_t> members(n);
  {
    std::vector<std::uint32_t> cursor(start.begin(), start.end() - 1);
    for (std::uint32_t v = 0; v < n; ++v) members[cursor[community_of[v]]++] = v;
  }

  GraphBuilder builder(num_communities);
  std::vector<double> weight_to(num_communities, 0.0);
  std::vector<std::uint32_t> touched;
  for (std::uint32_t cu = 0; cu < num_communities; ++cu) {
    touched.clear();
    for (std::uint32_t idx = start[cu]; idx < start[cu + 1]; ++idx) {
      const std::uint32_t u = members[idx];
      for (const auto& nb : g.neighbors(u)) {
        const std::uint32_t cv = community_of[nb.node];
        // Each undirected edge is accumulated exactly once: from its
        // lower-community endpoint, and within a community from its
        // lower-id endpoint (self-loops pass the second test).
        if (cv < cu) continue;
        if (cv == cu && nb.node < u) continue;
        if (weight_to[cv] == 0.0) touched.push_back(cv);
        weight_to[cv] += nb.weight;
      }
    }
    std::sort(touched.begin(), touched.end());
    for (const std::uint32_t cv : touched) {
      builder.add_edge(cu, cv, weight_to[cv]);
      weight_to[cv] = 0.0;
    }
  }
  return std::move(builder).build();
}

}  // namespace

std::vector<std::vector<std::uint32_t>> LouvainResult::groups() const {
  std::vector<std::vector<std::uint32_t>> out(num_communities);
  for (std::uint32_t v = 0; v < community_of.size(); ++v) {
    out[community_of[v]].push_back(v);
  }
  return out;
}

LouvainResult louvain(const Graph& g, const LouvainOptions& options) {
  const std::uint32_t n = g.num_nodes();
  LouvainResult result;
  result.community_of.resize(n);
  for (std::uint32_t v = 0; v < n; ++v) result.community_of[v] = v;
  result.num_communities = n;

  Graph level_graph;          // graph at the current level
  const Graph* current = &g;  // avoids copying the input for level 0

  for (int level = 0; level < options.max_levels; ++level) {
    LevelResult lvl = local_moving(*current, options);
    if (!lvl.improved && level > 0) break;

    // Compose: original node -> level community.
    for (std::uint32_t v = 0; v < n; ++v) {
      result.community_of[v] = lvl.community_of[result.community_of[v]];
    }
    result.num_communities = lvl.num_communities;
    result.levels = level + 1;

    if (!lvl.improved) break;  // level 0 with nothing to move
    if (lvl.num_communities == current->num_nodes()) break;  // no merge happened

    level_graph = aggregate(*current, lvl.community_of, lvl.num_communities);
    current = &level_graph;
  }

  result.num_communities = renumber(result.community_of);
  result.modularity = modularity(g, result.community_of);
  return result;
}

LouvainResult louvain_refined(const Graph& g, const LouvainOptions& options) {
  LouvainResult base = louvain(g, options);

  // Work queue of communities to try splitting (member lists over g).
  std::vector<std::vector<std::uint32_t>> queue = base.groups();
  std::vector<std::vector<std::uint32_t>> final_groups;

  // Dense node -> local-subgraph id map, reused across queue entries and
  // reset via the member list (kUnset marks non-members).
  std::vector<std::uint32_t> local_id(g.num_nodes(), kUnset);

  while (!queue.empty()) {
    std::vector<std::uint32_t> members = std::move(queue.back());
    queue.pop_back();
    if (members.size() <= 3) {
      final_groups.push_back(std::move(members));
      continue;
    }

    // Induced subgraph over `members`.
    for (std::uint32_t i = 0; i < members.size(); ++i) local_id[members[i]] = i;
    GraphBuilder builder(static_cast<std::uint32_t>(members.size()));
    for (auto u : members) {
      for (const auto& nb : g.neighbors(u)) {
        if (nb.node < u) continue;
        if (local_id[nb.node] == kUnset) continue;
        builder.add_edge(local_id[u], local_id[nb.node], nb.weight);
      }
    }
    for (auto u : members) local_id[u] = kUnset;
    const Graph sub = std::move(builder).build();
    const LouvainResult split = louvain(sub, options);

    if (split.num_communities <= 1) {
      final_groups.push_back(std::move(members));
      continue;
    }
    // Each part strictly smaller than `members`, so this terminates.
    for (auto& part : split.groups()) {
      std::vector<std::uint32_t> mapped;
      mapped.reserve(part.size());
      for (auto local : part) mapped.push_back(members[local]);
      queue.push_back(std::move(mapped));
    }
  }

  LouvainResult out;
  out.community_of.assign(g.num_nodes(), 0);
  out.num_communities = static_cast<std::uint32_t>(final_groups.size());
  out.levels = base.levels;
  for (std::uint32_t c = 0; c < final_groups.size(); ++c) {
    for (auto node : final_groups[c]) out.community_of[node] = c;
  }
  out.modularity = modularity(g, out.community_of);
  return out;
}

double modularity(const Graph& g, const std::vector<std::uint32_t>& community_of) {
  if (community_of.size() != g.num_nodes()) {
    throw std::invalid_argument("modularity: partition size mismatch");
  }
  const double two_m = 2.0 * g.total_weight();
  if (two_m <= 0.0) return 0.0;

  std::uint32_t max_label = 0;
  for (auto c : community_of) max_label = std::max(max_label, c);
  std::vector<double> in(max_label + 1, 0.0);   // 2x intra-community weight
  std::vector<double> tot(max_label + 1, 0.0);  // sum of weighted degrees

  for (std::uint32_t u = 0; u < g.num_nodes(); ++u) {
    tot[community_of[u]] += g.weighted_degree(u);
    for (const auto& nb : g.neighbors(u)) {
      if (community_of[nb.node] == community_of[u]) {
        // Each non-loop edge appears twice in the scan; self-loops appear
        // once but count twice toward `in`.
        in[community_of[u]] += nb.node == u ? 2.0 * nb.weight : nb.weight;
      }
    }
  }

  double q = 0.0;
  for (std::size_t c = 0; c < in.size(); ++c) {
    q += in[c] / two_m - (tot[c] / two_m) * (tot[c] / two_m);
  }
  return q;
}

}  // namespace smash::graph
