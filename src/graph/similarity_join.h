// Sparse similarity join via inverted indexing.
//
// The paper notes (§VI, Overhead) that naive pairwise similarity is O(N^2)
// and points to sparse matrix multiplication as the fix. The equivalent
// index-based formulation: for item i with key set K_i, the co-occurrence
// count |K_i ∩ K_j| for every j sharing at least one key is obtained by
// walking key -> item postings lists. Pairs sharing no key (similarity 0
// under eqs. 1/8) are never materialized.
//
// Implementation notes: the index is a flat CSR postings buffer (offsets +
// one contiguous entry array, no per-key vectors) and pair counting uses a
// probe-side dense scoring array with a touched list instead of a hash map
// keyed by packed pairs. Output is produced already grouped by `a` in
// ascending (a, b) order, so no final sort is needed and results are
// byte-identical across runs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/id_set.h"

namespace smash::graph {

struct CooccurrencePair {
  std::uint32_t a = 0;  // a < b
  std::uint32_t b = 0;
  std::uint32_t shared_keys = 0;  // |K_a ∩ K_b|

  friend bool operator==(const CooccurrencePair&, const CooccurrencePair&) = default;
};

struct JoinOptions {
  // Postings lists longer than this are skipped when enumerating pairs: a
  // key shared by k items contributes k(k-1)/2 pairs, so one pathological
  // key (e.g. a crawler client contacting everything) can blow up the join.
  //
  // NOTE: skipping a key UNDERCOUNTS shared_keys for the affected pairs;
  // SMASH's preprocessing (IDF filter) is responsible for removing such
  // hubs beforehand, and the default cap is high enough to be inert on
  // realistic inputs. It exists as a safety valve only. JoinStats reports
  // how often it fired so the undercount is observable instead of silent.
  std::uint32_t max_postings_length = 20000;
};

// Observability counters for one join invocation.
struct JoinStats {
  std::size_t num_keys = 0;              // distinct keys indexed
  std::size_t postings_entries = 0;      // total (key, item) entries
  std::size_t peak_postings_length = 0;  // longest postings list, incl. skipped
  std::size_t skipped_keys = 0;          // keys over max_postings_length
  std::size_t skipped_entries = 0;       // postings entries under skipped keys
  std::size_t candidate_pairs = 0;       // counter increments performed
  std::size_t emitted_pairs = 0;         // pairs meeting min_shared

  friend bool operator==(const JoinStats&, const JoinStats&) = default;
};

// items[i] is the (normalized) key set of item i. Returns every pair with
// shared_keys >= min_shared, each pair exactly once with a < b, sorted by
// (a, b). Deterministic: identical inputs yield identical outputs. When
// `stats` is non-null it is overwritten with this invocation's counters.
std::vector<CooccurrencePair> cooccurrence_join(
    std::span<const util::IdSet> items, std::uint32_t min_shared = 1,
    const JoinOptions& options = {}, JoinStats* stats = nullptr);

// Probe-range-sharded parallel join: identical output to the serial form
// (shards are contiguous ranges of `a`, concatenated in order), using up to
// `num_threads` worker threads. Falls back to the serial join when
// num_threads <= 1 or the input is small.
std::vector<CooccurrencePair> cooccurrence_join_parallel(
    std::span<const util::IdSet> items, std::uint32_t min_shared,
    const JoinOptions& options, unsigned num_threads,
    JoinStats* stats = nullptr);

// The original hash-map-based join (packed-pair unordered_map), retained as
// a reference implementation for equivalence tests and the speedup
// benchmark in bench/perf_micro.cc. Same contract and output order as
// cooccurrence_join.
std::vector<CooccurrencePair> cooccurrence_join_reference(
    std::span<const util::IdSet> items, std::uint32_t min_shared = 1,
    const JoinOptions& options = {});

// The bidirectional-importance similarity form shared by the paper's main
// (eq. 1) and IP (eq. 8) dimensions:
//   sim = (shared/|K_a|) * (shared/|K_b|)
double bidirectional_similarity(std::uint32_t shared, std::size_t size_a,
                                std::size_t size_b);

}  // namespace smash::graph
