#include "core/correlation.h"

#include <gtest/gtest.h>

#include "test_helpers.h"
#include "util/stats.h"

namespace smash::core {
namespace {

using test::add_request;
using test::resolve;

SmashConfig base_config() {
  SmashConfig config;
  config.idf_threshold = 100;
  return config;
}

struct MiniWorld {
  net::Trace trace;
  whois::Registry registry;
};

// A campaign of `n` servers sharing 2 bots, one URI file, and (optionally)
// flux IPs + whois — the canonical multi-dimension herd.
MiniWorld campaign_world(int n, bool with_ip, bool with_whois) {
  MiniWorld world;
  whois::Record shared;
  shared.email = "herd@mail.com";
  shared.phone = "+1.555";
  for (int s = 0; s < n; ++s) {
    const std::string host = "srv" + std::to_string(s) + ".com";
    for (const char* bot : {"bot1", "bot2"}) {
      add_request(world.trace, bot, host, "/mal/gate.php?id=1");
    }
    if (with_ip) {
      resolve(world.trace, host, "9.9.9.1");
      resolve(world.trace, host, "9.9.9.2");
    }
    if (with_whois) world.registry.add(host, shared);
  }
  // Background pair so the graph has benign content too.
  add_request(world.trace, "u1", "benign1.org", "/b1x.html");
  add_request(world.trace, "u2", "benign2.org", "/b2x.html");
  world.trace.finalize();
  return world;
}

CorrelationResult run_correlation(const MiniWorld& world, const SmashConfig& config,
                                  PreprocessResult* pre_out = nullptr) {
  auto pre = preprocess(world.trace, config);
  const auto dims = mine_all_dimensions(pre, world.registry, config);
  auto result = correlate(pre, dims, config);
  if (pre_out != nullptr) *pre_out = std::move(pre);
  return result;
}

TEST(Correlation, ScoreGrowsWithDimensions) {
  const auto config = base_config();
  const auto one_dim = run_correlation(campaign_world(10, false, false), config);
  const auto two_dim = run_correlation(campaign_world(10, true, false), config);
  const auto three_dim = run_correlation(campaign_world(10, true, true), config);

  const auto max_score = [](const CorrelationResult& r) {
    double best = 0.0;
    for (double s : r.score) best = std::max(best, s);
    return best;
  };
  EXPECT_LT(max_score(one_dim), max_score(two_dim));
  EXPECT_LT(max_score(two_dim), max_score(three_dim));
  // Each extra dimension adds ~phi(10) for this clique world.
  EXPECT_NEAR(max_score(one_dim), util::phi_erf(10, config.mu, config.sigma), 0.05);
  EXPECT_NEAR(max_score(three_dim),
              3 * util::phi_erf(10, config.mu, config.sigma), 0.15);
}

TEST(Correlation, DimsMaskTracksContributingDimensions) {
  const auto config = base_config();
  PreprocessResult pre;
  const auto result = run_correlation(campaign_world(8, true, true), config, &pre);
  bool found = false;
  for (std::uint32_t i = 0; i < pre.kept.size(); ++i) {
    if (pre.agg.server_name(pre.kept[i]).starts_with("srv")) {
      EXPECT_EQ(result.dims_mask[i], 0b111);  // file | ip | whois
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Correlation, ThresholdRemovesWeakServers) {
  // Small single-dimension herd: phi(4) = 0.5, below the 0.8 default.
  auto config = base_config();
  config.score_threshold = 0.8;
  const auto weak = run_correlation(campaign_world(4, false, false), config);
  EXPECT_TRUE(weak.groups.empty());

  config.score_threshold = 0.5;  // phi(4) == 0.5 passes (>= comparison)
  const auto kept = run_correlation(campaign_world(4, false, false), config);
  ASSERT_EQ(kept.groups.size(), 1u);
  EXPECT_EQ(kept.groups[0].size(), 4u);
}

TEST(Correlation, PaperThresholdLadder) {
  // One secondary dimension, large herd: detected at 0.8, not at 1.0
  // ("score higher than 1.0 means ... at least two secondary dimensions").
  auto config = base_config();
  config.score_threshold = 1.0;
  EXPECT_TRUE(run_correlation(campaign_world(30, false, false), config).groups.empty());
  config.score_threshold = 0.8;
  EXPECT_FALSE(run_correlation(campaign_world(30, false, false), config).groups.empty());
  // Two secondary dimensions clear 1.0 but (for mid-size herds, where
  // 2*phi(6) ~ 1.39) not 1.5; three dimensions clear 1.5.
  config.score_threshold = 1.0;
  EXPECT_FALSE(run_correlation(campaign_world(6, true, false), config).groups.empty());
  config.score_threshold = 1.5;
  EXPECT_TRUE(run_correlation(campaign_world(6, true, false), config).groups.empty());
  EXPECT_FALSE(run_correlation(campaign_world(6, true, true), config).groups.empty());
}

TEST(Correlation, ServersWithoutMainHerdScoreZero) {
  const auto config = base_config();
  PreprocessResult pre;
  const auto result = run_correlation(campaign_world(6, true, true), config, &pre);
  for (std::uint32_t i = 0; i < pre.kept.size(); ++i) {
    if (pre.agg.server_name(pre.kept[i]).starts_with("benign")) {
      EXPECT_DOUBLE_EQ(result.score[i], 0.0);
      EXPECT_EQ(result.dims_mask[i], 0);
    }
  }
}

TEST(Correlation, SingleClientHerdsUseStricterThreshold) {
  MiniWorld world;
  // One bot, 12 servers, file + ip dims: score ~ 2*phi(12) ~ 1.8.
  for (int s = 0; s < 12; ++s) {
    const std::string host = "solo" + std::to_string(s) + ".com";
    add_request(world.trace, "lonebot", host, "/m/x.php");
    resolve(world.trace, host, "5.5.5.5");
  }
  world.trace.finalize();

  auto config = base_config();
  config.score_threshold = 0.8;
  config.single_client_score_threshold = 1.0;
  auto pre = preprocess(world.trace, config);
  const auto dims = mine_all_dimensions(pre, world.registry, config);
  const auto result = correlate(pre, dims, config);
  ASSERT_EQ(result.groups.size(), 1u);
  for (auto member : result.groups[0]) {
    EXPECT_EQ(result.herd_clients[member], 1u);
  }
  // With the single-client threshold pushed above the achievable score,
  // the same herd disappears.
  config.single_client_score_threshold = 2.5;
  const auto strict = correlate(pre, dims, config);
  EXPECT_TRUE(strict.groups.empty());
}

TEST(Correlation, SingletonSurvivorsAreDropped) {
  // Two servers share bots (main herd), but only one of them shares a file
  // with anything: the lone survivor cannot form a group.
  MiniWorld world;
  for (const char* bot : {"b1", "b2"}) {
    add_request(world.trace, bot, "pair1.com", "/common.php");
    add_request(world.trace, bot, "pair2.com", "/unique2.php");
  }
  // Unrelated herd that makes common.php a shared file for pair1 only...
  // actually common.php needs >= 9 sharers to clear phi at 0.8; use 0.3.
  for (const char* bot : {"z1", "z2"}) {
    add_request(world.trace, bot, "other1.com", "/common.php");
    add_request(world.trace, bot, "other2.com", "/unique3.php");
  }
  world.trace.finalize();

  auto config = base_config();
  config.score_threshold = 0.1;
  auto pre = preprocess(world.trace, config);
  const auto dims = mine_all_dimensions(pre, world.registry, config);
  const auto result = correlate(pre, dims, config);
  // Groups must never contain a single server (paper: "groups with only one
  // server left are also removed").
  for (const auto& group : result.groups) EXPECT_GE(group.size(), 2u);
}

TEST(Correlation, RequiresAllFourDimensions) {
  MiniWorld world = campaign_world(4, false, false);
  auto config = base_config();
  auto pre = preprocess(world.trace, config);
  auto dims = mine_all_dimensions(pre, world.registry, config);
  dims.pop_back();
  EXPECT_THROW(correlate(pre, dims, config), std::invalid_argument);
}

}  // namespace
}  // namespace smash::core
