// Benign background generation plus builder plumbing. The malicious and
// noise herds live in campaigns.cc.
#include "synth/world.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dns/dga.h"
#include "dns/domain.h"
#include "synth/world_builder.h"
#include "util/strings.h"

namespace smash::synth {

using internal::WorldBuilder;

Dataset generate_world(const WorldConfig& config) {
  return WorldBuilder(config).build();
}

namespace internal {

namespace {
constexpr std::string_view kSubdomains[] = {"www", "cdn", "m", "api", "img", "static"};
constexpr std::string_view kStopFiles[] = {"index.html", "favicon.ico",
                                           "robots.txt", "main.css", "logo.png"};

constexpr std::string_view kPrimaryBlacklists[] = {
    "malware-domain-blocklist", "malware-domain-list", "phishtank",
    "spyeye-tracker",           "zeus-tracker",        "virustotal", "wot"};
// Aggregated feeds behind the WhatIsMyIPAddress-style >= 2 rule.
constexpr int kNumAggregatedFeeds = 8;
}  // namespace

WorldBuilder::WorldBuilder(const WorldConfig& config)
    : cfg_(config), root_(config.seed) {
  ds_.name = config.name;

  // Clients: residential DSL pools, "10.<a>.<b>.<c>".
  client_names_.reserve(cfg_.num_clients);
  for (std::uint32_t i = 0; i < cfg_.num_clients; ++i) {
    client_names_.push_back("10." + std::to_string(i / 65536 % 256) + "." +
                            std::to_string(i / 256 % 256) + "." +
                            std::to_string(i % 256));
  }
  client_order_.resize(cfg_.num_clients);
  for (std::uint32_t i = 0; i < cfg_.num_clients; ++i) client_order_[i] = i;
  auto shuffle_rng = root_.fork("client-order");
  shuffle_rng.shuffle(client_order_);

  benign_uas_ = {
      "Mozilla/5.0 (Windows NT 6.1) Firefox/10.0",
      "Mozilla/5.0 (Windows NT 5.1) Chrome/17.0",
      "Mozilla/4.0 (compatible; MSIE 8.0)",
      "Mozilla/5.0 (Macintosh) Safari/534.52",
      "Opera/9.80 (Windows NT 6.0)",
  };

  for (auto src : kPrimaryBlacklists) ds_.blacklist.add_primary_source(src);
  for (int i = 0; i < kNumAggregatedFeeds; ++i) {
    ds_.blacklist.add_aggregated_source("agg-feed-" + std::to_string(i));
  }
  ds_.whois.add_proxy_value("WhoisGuard Protected");
  ds_.whois.add_proxy_value("privacy@whoisguard.example");
}

Dataset WorldBuilder::build() && {
  generate_popular_servers();
  generate_tail_servers();
  generate_referrer_groups();
  generate_redirect_chains();
  generate_covisit_groups();
  generate_noise_herds();
  generate_flagship_campaigns();
  generate_generic_campaigns();
  ds_.trace.finalize();
  return std::move(ds_);
}

// --- emission helpers --------------------------------------------------------

void WorldBuilder::emit(std::uint32_t client, const std::string& host,
                        std::uint32_t day, std::string path,
                        std::string user_agent, std::string referrer,
                        std::uint16_t status) {
  net::HttpRequest req;
  req.client = ds_.trace.intern_client(client_names_.at(client));
  req.server = ds_.trace.intern_server(host);
  req.day = day;
  req.status = status;
  req.path = std::move(path);
  req.user_agent = std::move(user_agent);
  req.referrer = std::move(referrer);
  ds_.trace.add_request(std::move(req));
}

void WorldBuilder::resolve(const std::string& host, const std::string& ip) {
  ds_.trace.add_resolution(ds_.trace.intern_server(host),
                           ds_.trace.intern_ip(ip));
}

void WorldBuilder::resolve_unique(const std::string& host, util::Rng& rng) {
  (void)rng;
  // Deterministic unique address derived from a counter: no collisions with
  // flux pools (which use the random 1.x-223.x space sparsely).
  const std::uint64_t n = ip_counter_++;
  resolve(host, "198." + std::to_string(n / 65536 % 64 + 18) + "." +
                    std::to_string(n / 256 % 256) + "." +
                    std::to_string(n % 256));
}

std::string WorldBuilder::maybe_subdomain(util::Rng& rng,
                                          const std::string& host_2ld) {
  if (!rng.bernoulli(cfg_.benign.subdomain_fraction)) return host_2ld;
  return std::string(kSubdomains[rng.uniform(std::size(kSubdomains))]) + "." +
         host_2ld;
}

std::string WorldBuilder::benign_user_agent(util::Rng& rng) {
  return benign_uas_[rng.uniform(benign_uas_.size())];
}

whois::Record WorldBuilder::random_whois(util::Rng& rng, bool behind_proxy) {
  whois::Record rec;
  if (behind_proxy) {
    rec.registrant = "WhoisGuard Protected";
    rec.email = "privacy@whoisguard.example";
  } else {
    rec.registrant = "person-" + std::to_string(rng.next() % 100000000);
    rec.email = "mail" + std::to_string(rng.next() % 100000000) + "@example.org";
  }
  rec.address = "addr-" + std::to_string(rng.next() % 100000000);
  rec.phone = "+1." + std::to_string(1000000000 + rng.next() % 9000000000ULL);
  rec.name_servers = whois::join_name_servers(
      {"ns1.host" + std::to_string(rng.next() % 1000000) + ".net",
       "ns2.host" + std::to_string(rng.next() % 1000000) + ".net"});
  return rec;
}

void WorldBuilder::register_whois(const std::string& domain_2ld, util::Rng& rng) {
  ds_.whois.add(domain_2ld, random_whois(rng, rng.bernoulli(0.25)));
}

std::vector<std::uint32_t> WorldBuilder::take_clients(std::uint32_t n) {
  std::vector<std::uint32_t> out;
  out.reserve(n);
  while (out.size() < n && client_cursor_ < client_order_.size()) {
    out.push_back(client_order_[client_cursor_++]);
  }
  if (out.size() < n) {
    throw std::runtime_error("WorldBuilder: client pool exhausted; raise num_clients");
  }
  return out;
}

std::string WorldBuilder::fresh_domain(util::Rng& rng, std::string_view tld) {
  // A counter suffix guarantees global uniqueness; the word stem keeps the
  // name realistic.
  std::string base = dns::random_word_domain(rng, tld);
  const auto dot = base.find('.');
  return base.substr(0, dot) + std::to_string(domain_counter_++) + base.substr(dot);
}

std::string WorldBuilder::stop_file(util::Rng& rng) const {
  return std::string(kStopFiles[rng.uniform(std::size(kStopFiles))]);
}

std::vector<std::uint32_t> WorldBuilder::active_days(Dynamics dynamics,
                                                     util::Rng& rng) const {
  std::vector<std::uint32_t> days;
  if (cfg_.num_days == 1) return {0};
  switch (dynamics) {
    case Dynamics::kPersistent:
    case Dynamics::kAgile:
      for (std::uint32_t d = 0; d < cfg_.num_days; ++d) days.push_back(d);
      break;
    case Dynamics::kNew: {
      const auto start =
          1 + static_cast<std::uint32_t>(rng.uniform(cfg_.num_days - 1));
      for (std::uint32_t d = start; d < cfg_.num_days; ++d) days.push_back(d);
      break;
    }
  }
  return days;
}

// --- benign background ---------------------------------------------------------

void WorldBuilder::generate_popular_servers() {
  auto rng = root_.fork("popular");
  const auto& b = cfg_.benign;
  // Client-count curve: rank-0 server is the most popular.
  for (std::uint32_t s = 0; s < b.num_popular_servers; ++s) {
    const std::string domain = fresh_domain(rng);
    register_whois(domain, rng);
    resolve_unique(domain, rng);
    const double rank_factor =
        1.0 / std::pow(static_cast<double>(s) + 1.0, b.popular_zipf_exponent);
    auto clients_target = static_cast<std::uint32_t>(
        b.popular_min_clients +
        rank_factor * (b.popular_max_clients - b.popular_min_clients));
    clients_target = std::min(clients_target, cfg_.num_clients);
    const std::uint32_t num_pages = 40 + static_cast<std::uint32_t>(rng.uniform(200));

    const auto visitors = rng.sample_without_replacement(cfg_.num_clients, clients_target);
    for (std::uint32_t day = 0; day < cfg_.num_days; ++day) {
      for (auto c : visitors) {
        // Not every subscriber visits every popular site every day.
        if (cfg_.num_days > 1 && !rng.bernoulli(0.7)) continue;
        const auto visits = 1 + rng.uniform(2);
        for (std::uint64_t v = 0; v < visits; ++v) {
          const auto page = rng.uniform(num_pages);
          emit(c, maybe_subdomain(rng, domain), day,
               "/s" + std::to_string(s) + "/p" + std::to_string(page) + "s" +
                   std::to_string(s) + ".html",
               benign_user_agent(rng), /*referrer=*/"");
        }
      }
    }
  }
}

void WorldBuilder::generate_tail_servers() {
  auto rng = root_.fork("tail");
  const auto& b = cfg_.benign;
  for (std::uint32_t s = 0; s < b.num_tail_servers; ++s) {
    const std::string domain = fresh_domain(rng);
    register_whois(domain, rng);
    resolve_unique(domain, rng);
    const auto num_clients = static_cast<std::uint32_t>(
        b.tail_min_clients + rng.uniform(b.tail_max_clients - b.tail_min_clients + 1));
    const auto num_pages = static_cast<std::uint32_t>(
        b.tail_min_pages + rng.uniform(b.tail_max_pages - b.tail_min_pages + 1));
    const bool serves_stop_files = rng.bernoulli(b.stop_file_fraction);

    const auto visitors = rng.sample_without_replacement(cfg_.num_clients, num_clients);
    for (std::uint32_t day = 0; day < cfg_.num_days; ++day) {
      for (auto c : visitors) {
        if (cfg_.num_days > 1 && !rng.bernoulli(0.5)) continue;
        const auto visits = 1 + rng.uniform(3);
        for (std::uint64_t v = 0; v < visits; ++v) {
          std::string path;
          if (serves_stop_files && rng.bernoulli(0.3)) {
            path = "/" + stop_file(rng);
          } else {
            path = "/t" + std::to_string(s) + "/pg" +
                   std::to_string(rng.uniform(num_pages)) + "t" +
                   std::to_string(s) + ".html";
          }
          emit(c, maybe_subdomain(rng, domain), day, std::move(path),
               benign_user_agent(rng), "");
        }
      }
    }
  }
}

void WorldBuilder::generate_referrer_groups() {
  auto rng = root_.fork("referrer");
  const auto& b = cfg_.benign;
  for (std::uint32_t g = 0; g < b.num_referrer_groups; ++g) {
    const std::string landing = fresh_domain(rng);
    register_whois(landing, rng);
    resolve_unique(landing, rng);
    const auto group_size = static_cast<std::uint32_t>(
        b.referrer_group_min_size +
        rng.uniform(b.referrer_group_max_size - b.referrer_group_min_size + 1));
    std::vector<std::string> embedded;
    for (std::uint32_t e = 0; e < group_size; ++e) {
      embedded.push_back(fresh_domain(rng, e % 2 == 0 ? "com" : "net"));
      register_whois(embedded.back(), rng);
      resolve_unique(embedded.back(), rng);
    }
    // 30% of groups deploy one shared widget file across the embedded
    // servers: these survive the file dimension and must be caught by the
    // referrer-pruning stage instead.
    const bool shared_widget = rng.bernoulli(0.3);
    const std::string widget = "wdg" + std::to_string(g) + ".js";

    ids::CampaignTruth tag;
    tag.name = "benign-referrer-" + std::to_string(g);
    tag.kind = ids::CampaignKind::kBenign;
    tag.servers.push_back(dns::effective_2ld(landing));
    for (const auto& e : embedded) tag.servers.push_back(dns::effective_2ld(e));
    ds_.truth.add_campaign(std::move(tag));

    const auto num_clients = static_cast<std::uint32_t>(
        b.covisit_group_min_clients +
        rng.uniform(b.covisit_group_max_clients * 2 - b.covisit_group_min_clients));
    const auto visitors = rng.sample_without_replacement(cfg_.num_clients, num_clients);
    for (std::uint32_t day = 0; day < cfg_.num_days; ++day) {
      for (auto c : visitors) {
        if (cfg_.num_days > 1 && !rng.bernoulli(0.5)) continue;
        const std::string ua = benign_user_agent(rng);
        emit(c, landing, day, "/g" + std::to_string(g) + "/home.html", ua, "");
        for (std::uint32_t e = 0; e < embedded.size(); ++e) {
          const std::string path =
              shared_widget ? "/assets/" + widget
                            : "/a" + std::to_string(e) + "/res" +
                                  std::to_string(g) + "_" + std::to_string(e) + ".js";
          emit(c, embedded[e], day, path, ua, /*referrer=*/landing);
        }
      }
    }
  }
}

void WorldBuilder::generate_redirect_chains() {
  auto rng = root_.fork("redirect");
  const auto& b = cfg_.benign;
  for (std::uint32_t g = 0; g < b.num_redirect_chains; ++g) {
    const auto chain_len =
        1 + static_cast<std::uint32_t>(rng.uniform(b.redirect_chain_max_len));
    std::vector<std::string> hops;
    for (std::uint32_t h = 0; h < chain_len; ++h) {
      hops.push_back(fresh_domain(rng, "cc"));
      register_whois(hops.back(), rng);
    }
    const std::string landing = fresh_domain(rng);
    register_whois(landing, rng);
    resolve_unique(landing, rng);

    ids::CampaignTruth tag;
    tag.name = "benign-redirect-" + std::to_string(g);
    tag.kind = ids::CampaignKind::kBenign;
    for (const auto& hop : hops) tag.servers.push_back(dns::effective_2ld(hop));
    tag.servers.push_back(dns::effective_2ld(landing));
    ds_.truth.add_campaign(std::move(tag));
    // Redirectors in one chain share hosting (same IP) and the same
    // redirect script, so they survive correlation and must be collapsed
    // by redirection pruning (paper §III-D).
    auto ip_rng = rng.fork("chain-ip" + std::to_string(g));
    const std::string shared_ip = dns::random_ipv4(ip_rng);
    for (const auto& hop : hops) resolve(hop, shared_ip);
    for (std::uint32_t h = 0; h < hops.size(); ++h) {
      ds_.trace.add_redirect(ds_.trace.intern_server(hops[h]),
                             ds_.trace.intern_server(h + 1 < hops.size()
                                                         ? hops[h + 1]
                                                         : landing));
    }

    const auto num_clients = static_cast<std::uint32_t>(
        b.covisit_group_min_clients +
        rng.uniform(b.covisit_group_max_clients - b.covisit_group_min_clients + 1));
    const auto visitors = rng.sample_without_replacement(cfg_.num_clients, num_clients);
    for (std::uint32_t day = 0; day < cfg_.num_days; ++day) {
      for (auto c : visitors) {
        if (cfg_.num_days > 1 && !rng.bernoulli(0.4)) continue;
        const std::string ua = benign_user_agent(rng);
        for (std::uint32_t h = 0; h < hops.size(); ++h) {
          emit(c, hops[h], day, "/go" + std::to_string(g) + ".php?u=" + std::to_string(c),
               ua, h == 0 ? "" : hops[h - 1], /*status=*/302);
        }
        emit(c, landing, day, "/l" + std::to_string(g) + "/land.html", ua,
             hops.back());
      }
    }
  }
}

void WorldBuilder::generate_covisit_groups() {
  auto rng = root_.fork("covisit");
  const auto& b = cfg_.benign;
  const auto total = b.num_similar_content_groups + b.num_unknown_groups;
  for (std::uint32_t g = 0; g < total; ++g) {
    const auto group_size = 3 + static_cast<std::uint32_t>(rng.uniform(5));
    std::vector<std::string> members;
    for (std::uint32_t s = 0; s < group_size; ++s) {
      members.push_back(fresh_domain(rng, g % 3 == 0 ? "net" : "com"));
      register_whois(members.back(), rng);
      resolve_unique(members.back(), rng);
    }
    // A sliver of "unknown" groups shares a storefront script; they are
    // low-confidence ASHs that only clear thresh = 0.5 (extra FPs in the
    // paper's lowest-threshold column).
    const bool is_unknown = g >= b.num_similar_content_groups;
    const bool shared_cart = is_unknown && rng.bernoulli(0.12);

    ids::CampaignTruth tag;
    tag.name = (is_unknown ? "benign-unknown-" : "benign-similar-") + std::to_string(g);
    tag.kind = ids::CampaignKind::kBenign;
    for (const auto& s : members) tag.servers.push_back(dns::effective_2ld(s));
    ds_.truth.add_campaign(std::move(tag));

    const auto num_clients = static_cast<std::uint32_t>(
        b.covisit_group_min_clients +
        rng.uniform(b.covisit_group_max_clients - b.covisit_group_min_clients + 1));
    const auto visitors = rng.sample_without_replacement(cfg_.num_clients, num_clients);
    for (std::uint32_t day = 0; day < cfg_.num_days; ++day) {
      for (auto c : visitors) {
        if (cfg_.num_days > 1 && !rng.bernoulli(0.5)) continue;
        for (std::uint32_t s = 0; s < members.size(); ++s) {
          std::string path = shared_cart
                                 ? "/shop/cart" + std::to_string(g) + ".php?item=" +
                                       std::to_string(rng.uniform(50))
                                 : "/v" + std::to_string(g) + "_" + std::to_string(s) +
                                       "/page" + std::to_string(rng.uniform(12)) +
                                           "v" + std::to_string(g) + "_" +
                                           std::to_string(s) + ".html";
          emit(c, maybe_subdomain(rng, members[s]), day, std::move(path),
               benign_user_agent(rng), "");
        }
      }
    }
  }
}

std::string WorldBuilder::make_victim_server(util::Rng& rng,
                                             std::vector<std::string>* pages) {
  const std::string domain = fresh_domain(rng, rng.bernoulli(0.3) ? "org" : "com");
  register_whois(domain, rng);
  resolve_unique(domain, rng);
  const auto num_pages = 3 + static_cast<std::uint32_t>(rng.uniform(5));
  std::vector<std::string> own_pages;
  for (std::uint32_t p = 0; p < num_pages; ++p) {
    own_pages.push_back("/w" + std::to_string(domain_counter_) + "/n" +
                        std::to_string(p) + "w" + std::to_string(domain_counter_) +
                        ".html");
  }
  // 1-2 legitimate visitors so the victim is not a single-client server.
  const auto visitors = rng.sample_without_replacement(
      cfg_.num_clients, 1 + static_cast<std::uint32_t>(rng.uniform(2)));
  for (std::uint32_t day = 0; day < cfg_.num_days; ++day) {
    for (auto c : visitors) {
      if (cfg_.num_days > 1 && !rng.bernoulli(0.5)) continue;
      emit(c, domain, day, own_pages[rng.uniform(own_pages.size())],
           benign_user_agent(rng), "");
    }
  }
  if (pages != nullptr) *pages = std::move(own_pages);
  return domain;
}

}  // namespace internal

// --- presets -------------------------------------------------------------------

WorldConfig WorldConfig::scaled(double factor) const {
  if (factor <= 0.0) throw std::invalid_argument("WorldConfig::scaled: factor <= 0");
  WorldConfig out = *this;
  const auto scale32 = [factor](std::uint32_t v, std::uint32_t floor_value = 1) {
    return std::max<std::uint32_t>(
        floor_value, static_cast<std::uint32_t>(static_cast<double>(v) * factor));
  };
  out.num_clients = scale32(num_clients, 16);
  out.benign.num_popular_servers = scale32(benign.num_popular_servers);
  out.benign.popular_min_clients = scale32(benign.popular_min_clients, 4);
  out.benign.popular_max_clients = scale32(benign.popular_max_clients, 8);
  out.benign.num_tail_servers = scale32(benign.num_tail_servers);
  out.benign.num_referrer_groups = scale32(benign.num_referrer_groups);
  out.benign.num_redirect_chains = scale32(benign.num_redirect_chains);
  out.benign.num_similar_content_groups = scale32(benign.num_similar_content_groups);
  out.benign.num_unknown_groups = scale32(benign.num_unknown_groups);
  out.noise.torrent_trackers = scale32(noise.torrent_trackers, 6);
  out.noise.teamviewer_servers = scale32(noise.teamviewer_servers, 6);
  out.malicious.iframe_targets = scale32(malicious.iframe_targets, 8);
  out.malicious.scan_min_targets = scale32(malicious.scan_min_targets, 6);
  out.malicious.scan_max_targets = scale32(malicious.scan_max_targets, 8);
  out.malicious.bagle_download_servers = scale32(malicious.bagle_download_servers, 5);
  out.malicious.bagle_cnc_servers = scale32(malicious.bagle_cnc_servers, 5);
  out.malicious.num_generic_multi_client = scale32(malicious.num_generic_multi_client, 2);
  out.malicious.num_generic_single_client = scale32(malicious.num_generic_single_client, 2);
  return out;
}

WorldConfig data2011day() {
  WorldConfig cfg;
  cfg.name = "Data2011day";
  cfg.seed = 20111017;
  cfg.num_days = 1;
  cfg.num_clients = 14649;  // paper Table I
  return cfg;
}

WorldConfig data2012day() {
  WorldConfig cfg;
  cfg.name = "Data2012day";
  cfg.seed = 20120814;
  cfg.num_days = 1;
  cfg.num_clients = 18354;  // paper Table I
  // 2012 trace is larger (117k vs 92k servers in the paper).
  cfg.benign.num_tail_servers = 28000;
  cfg.benign.num_popular_servers = 300;
  cfg.malicious.num_generic_multi_client = 16;
  cfg.malicious.num_generic_single_client = 90;
  // The 2012-day inference results are smaller in the paper (287 servers at
  // 0.8): fewer large attacking campaigns were active that day.
  cfg.malicious.iframe_targets = 90;
  cfg.malicious.scan_min_targets = 25;
  cfg.malicious.scan_max_targets = 60;
  cfg.malicious.bagle_download_servers = 12;
  cfg.malicious.bagle_cnc_servers = 15;
  return cfg;
}

WorldConfig data2012week() {
  WorldConfig cfg;
  cfg.name = "Data2012week";
  cfg.seed = 20121008;
  cfg.num_days = 7;
  cfg.num_clients = 28285;  // paper Table I
  // Keep per-day volume moderate so the 7-day x full-pipeline benches stay
  // fast; the paper's week trace is likewise ~ 0.6x the daily rate.
  cfg.benign.num_popular_servers = 150;
  cfg.benign.num_tail_servers = 12000;
  cfg.benign.num_referrer_groups = 60;
  cfg.malicious.iframe_targets = 250;
  cfg.malicious.scan_min_targets = 60;
  cfg.malicious.scan_max_targets = 150;
  cfg.malicious.num_generic_multi_client = 24;
  cfg.malicious.num_generic_single_client = 60;
  return cfg;
}

WorldConfig tiny_world(std::uint64_t seed) {
  WorldConfig cfg;
  cfg.name = "tiny";
  cfg.seed = seed;
  cfg.num_days = 1;
  cfg.num_clients = 400;
  cfg.benign.num_popular_servers = 12;
  cfg.benign.popular_min_clients = 80;
  cfg.benign.popular_max_clients = 200;
  cfg.benign.num_tail_servers = 350;
  cfg.benign.num_referrer_groups = 8;
  cfg.benign.num_redirect_chains = 3;
  cfg.benign.num_similar_content_groups = 3;
  cfg.benign.num_unknown_groups = 5;
  cfg.noise.torrent_trackers = 12;
  cfg.noise.teamviewer_servers = 8;
  cfg.malicious.zeus_domains = 6;
  cfg.malicious.bagle_download_servers = 6;
  cfg.malicious.bagle_cnc_servers = 8;
  cfg.malicious.iframe_targets = 25;
  cfg.malicious.num_scans = 1;
  cfg.malicious.scan_min_targets = 10;
  cfg.malicious.scan_max_targets = 16;
  cfg.malicious.num_generic_multi_client = 4;
  cfg.malicious.num_generic_single_client = 6;
  cfg.malicious.num_no_secondary = 1;
  return cfg;
}

}  // namespace smash::synth
