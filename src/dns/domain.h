// Domain-name utilities: effective second-level-domain (2LD) extraction.
//
// SMASH's preprocessing (paper §III-A) aggregates hostnames that share a
// second-level domain: a.xyz.com and b.xyz.com both become xyz.com, all
// Facebook CDN hosts become fbcdn.net, all EC2 hosts become amazonaws.com.
// Multi-label public suffixes (co.uk, cz.cc, ...) must be treated as the
// "TLD" so that 4k0t111m.cz.cc aggregates to itself rather than to cz.cc —
// the Zeus case study (Table X) depends on this.
#pragma once

#include <string>
#include <string_view>

namespace smash::dns {

// True if `host` looks like an IPv4 dotted quad. IP-literal "hostnames" are
// never aggregated (the paper treats IPs as servers in their own right).
bool is_ipv4_literal(std::string_view host) noexcept;

// True if `suffix` is in the embedded public-suffix subset (lower-case,
// no leading dot), e.g. "com", "co.uk", "cz.cc", "dyndns.org".
bool is_public_suffix(std::string_view suffix) noexcept;

// Effective 2LD: the public suffix plus one label.
//   a.xyz.com      -> xyz.com
//   cdn.fbcdn.net  -> fbcdn.net
//   4k0t111m.cz.cc -> 4k0t111m.cz.cc
//   10.1.2.3       -> 10.1.2.3 (unchanged)
// A bare public suffix or single label is returned unchanged.
std::string effective_2ld(std::string_view host);

// Basic well-formedness: non-empty labels of [a-z0-9-], no leading/trailing
// dots. (Case-insensitive; callers should lower-case first.)
bool is_valid_hostname(std::string_view host) noexcept;

}  // namespace smash::dns
