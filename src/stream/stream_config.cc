#include "stream/stream_config.h"

#include "util/check.h"

namespace smash::stream {

void StreamConfig::validate() const {
  SMASH_CHECK(epoch_seconds > 0, "StreamConfig: epoch_seconds must be > 0");
  SMASH_CHECK(window_epochs > 0, "StreamConfig: window_epochs must be > 0");
  SMASH_CHECK(fsync_policy <= WalFsync::kEveryRecord,
              "StreamConfig: unknown fsync_policy");
  SMASH_CHECK(durability_dir.empty() || checkpoint_every_epochs > 0,
              "StreamConfig: checkpoint_every_epochs must be > 0 when "
              "durability_dir is set");
  SMASH_CHECK(!incremental_mining || reuse_shard_preprocess,
              "StreamConfig: incremental_mining requires "
              "reuse_shard_preprocess (the delta caches key off the merged "
              "shard preprocess state)");
  SMASH_CHECK(smash.delta_max_changed_fraction >= 0.0 &&
                  smash.delta_max_changed_fraction <= 1.0,
              "StreamConfig: smash.delta_max_changed_fraction must be in "
              "[0, 1]");
}

}  // namespace smash::stream
