#include "serve/frame.h"

#include "util/binary.h"
#include "util/check.h"

namespace smash::serve {

namespace {

void fail(std::string* error, std::string_view what) {
  if (error != nullptr) error->assign(what);
}

}  // namespace

void encode_request(std::string& out, const RequestFrame& request) {
  SMASH_CHECK(!request.lookups.empty(), "encode_request: empty lookup batch");
  SMASH_CHECK(request.lookups.size() <= kMaxBatchLookups,
              "encode_request: batch exceeds kMaxBatchLookups");
  std::string payload;
  util::put_u8(payload, static_cast<std::uint8_t>(request.type));
  util::put_u64(payload, request.request_id);
  util::put_u16(payload, static_cast<std::uint16_t>(request.lookups.size()));
  for (const auto& key : request.lookups) {
    util::put_bytes(payload, key.host);
    util::put_bytes(payload, key.server_ip);
  }
  SMASH_CHECK(payload.size() <= kMaxFramePayloadBytes,
              "encode_request: frame exceeds kMaxFramePayloadBytes");
  util::put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out += payload;
}

void encode_response(std::string& out, const ResponseFrame& response) {
  std::string payload;
  util::put_u8(payload, static_cast<std::uint8_t>(response.type));
  util::put_u64(payload, response.request_id);
  util::put_u8(payload, static_cast<std::uint8_t>(response.status));
  util::put_u64(payload, response.snapshot_sequence);
  util::put_u32(payload, response.snapshot_age_ms);
  util::put_u16(payload, static_cast<std::uint16_t>(response.answers.size()));
  for (const auto& answer : response.answers) {
    util::put_u8(payload, answer.malicious ? 1 : 0);
    util::put_u32(payload, answer.campaign);
    util::put_u32(payload, answer.campaign_servers);
    util::put_u64(payload, answer.window_requests);
    util::put_u32(payload, answer.active_epochs);
  }
  SMASH_CHECK(payload.size() <= kMaxFramePayloadBytes,
              "encode_response: frame exceeds kMaxFramePayloadBytes");
  util::put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out += payload;
}

std::optional<RequestFrame> decode_request(std::string_view payload,
                                           std::string* error) {
  util::BinaryReader reader(payload);
  RequestFrame request;
  std::uint8_t type = 0;
  std::uint16_t count = 0;
  if (!reader.u8(type) || !reader.u64(request.request_id) ||
      !reader.u16(count)) {
    fail(error, "request header truncated");
    return std::nullopt;
  }
  if (type != static_cast<std::uint8_t>(FrameType::kLookup) &&
      type != static_cast<std::uint8_t>(FrameType::kBatch)) {
    fail(error, "unknown request type");
    return std::nullopt;
  }
  request.type = static_cast<FrameType>(type);
  if (count == 0 || count > kMaxBatchLookups ||
      (request.type == FrameType::kLookup && count != 1)) {
    fail(error, "request lookup count out of bounds");
    return std::nullopt;
  }
  request.lookups.resize(count);
  for (auto& key : request.lookups) {
    if (!reader.str(key.host) || !reader.str(key.server_ip)) {
      fail(error, "request lookup entry truncated");
      return std::nullopt;
    }
  }
  if (!reader.done()) {
    fail(error, "request has trailing bytes");
    return std::nullopt;
  }
  return request;
}

std::optional<ResponseFrame> decode_response(std::string_view payload,
                                             std::string* error) {
  util::BinaryReader reader(payload);
  ResponseFrame response;
  std::uint8_t type = 0;
  std::uint8_t status = 0;
  std::uint16_t answered = 0;
  if (!reader.u8(type) || !reader.u64(response.request_id) ||
      !reader.u8(status) || !reader.u64(response.snapshot_sequence) ||
      !reader.u32(response.snapshot_age_ms) || !reader.u16(answered)) {
    fail(error, "response header truncated");
    return std::nullopt;
  }
  if (type != static_cast<std::uint8_t>(FrameType::kLookup) &&
      type != static_cast<std::uint8_t>(FrameType::kBatch)) {
    fail(error, "unknown response type");
    return std::nullopt;
  }
  if (status > static_cast<std::uint8_t>(FrameStatus::kRejected)) {
    fail(error, "unknown response status");
    return std::nullopt;
  }
  response.type = static_cast<FrameType>(type);
  response.status = static_cast<FrameStatus>(status);
  if (answered > kMaxBatchLookups) {
    fail(error, "response answer count out of bounds");
    return std::nullopt;
  }
  response.answers.resize(answered);
  for (auto& answer : response.answers) {
    std::uint8_t malicious = 0;
    if (!reader.u8(malicious) || !reader.u32(answer.campaign) ||
        !reader.u32(answer.campaign_servers) ||
        !reader.u64(answer.window_requests) ||
        !reader.u32(answer.active_epochs)) {
      fail(error, "response answer entry truncated");
      return std::nullopt;
    }
    answer.malicious = malicious != 0;
  }
  if (!reader.done()) {
    fail(error, "response has trailing bytes");
    return std::nullopt;
  }
  return response;
}

void FrameDecoder::feed(std::string_view bytes) {
  if (failed_) return;
  // Compact lazily: only when the dead prefix dominates, so steady-state
  // feeding is an append, not a shuffle.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes.data(), bytes.size());
}

bool FrameDecoder::next(std::string& payload) {
  if (failed_) return false;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 4) return false;
  util::BinaryReader reader(
      std::string_view(buffer_).substr(consumed_, available));
  std::uint32_t length = 0;
  reader.u32(length);  // cannot fail: available >= 4
  if (length > kMaxFramePayloadBytes) {
    failed_ = true;
    error_ = "frame payload length " + std::to_string(length) +
             " exceeds kMaxFramePayloadBytes";
    buffer_.clear();
    consumed_ = 0;
    return false;
  }
  if (available < 4 + static_cast<std::size_t>(length)) return false;
  payload.assign(buffer_, consumed_ + 4, length);
  consumed_ += 4 + length;
  return true;
}

}  // namespace smash::serve
